//! Symbol tables and `extract()`.
//!
//! §4.2: "the PHP `extract` command is commonly used to import key-value
//! pairs from a hash map into a local symbol table [...] Populating such a
//! symbol table always occurs using dynamic key names." A symbol table *is*
//! a hash map, which is exactly why symbol-table traffic is hash-table
//! accelerator traffic.

use crate::array::{ArrayKey, PhpArray};
use crate::context::RuntimeContext;
use crate::value::PhpValue;

/// A variable scope backed by a [`PhpArray`].
#[derive(Debug)]
pub struct SymbolTable {
    table: PhpArray,
}

impl SymbolTable {
    /// Creates an empty symbol table registered with the context's heap (so
    /// it has a base address the hardware hash table can key on).
    pub fn new(ctx: &RuntimeContext) -> Self {
        let mut table = PhpArray::new();
        let block = ctx.alloc_scoped(table.heap_size());
        table.set_base_addr(block.addr);
        SymbolTable { table }
    }

    /// Defines or overwrites a variable (metered hash SET).
    pub fn set(&mut self, ctx: &RuntimeContext, name: &str, value: PhpValue) {
        ctx.array_set(&mut self.table, ArrayKey::from(name), value);
    }

    /// Reads a variable (metered hash GET).
    pub fn get(&self, ctx: &RuntimeContext, name: &str) -> Option<PhpValue> {
        ctx.array_get(&self.table, &ArrayKey::from(name))
    }

    /// Removes a variable.
    pub fn unset(&mut self, ctx: &RuntimeContext, name: &str) -> bool {
        ctx.array_remove(&mut self.table, &ArrayKey::from(name))
            .is_some()
    }

    /// PHP `extract($arr)`: imports every string-keyed pair of `source` as a
    /// variable. Returns the number of variables imported.
    pub fn extract(&mut self, ctx: &RuntimeContext, source: &PhpArray) -> usize {
        let mut imported = 0;
        let pairs: Vec<(ArrayKey, PhpValue)> =
            source.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        ctx.charge_foreach(source);
        for (key, value) in pairs {
            if let ArrayKey::Str(_) = key {
                ctx.refcount_on_copy(&value);
                ctx.array_set(&mut self.table, key, value);
                imported += 1;
            }
        }
        imported
    }

    /// Number of defined variables.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the scope is empty.
    pub fn is_empty(&self) -> bool {
        self.table.len() == 0
    }

    /// Access to the backing array (e.g. for the hash-table accelerator).
    pub fn as_array(&self) -> &PhpArray {
        &self.table
    }

    /// Mutable access to the backing array.
    pub fn as_array_mut(&mut self) -> &mut PhpArray {
        &mut self.table
    }
}

/// A stack of scopes: one global table plus function-local tables, mirroring
/// how "these PHP applications often store key-value pairs in a global or
/// local symbol table to communicate their values to other functions in the
/// appropriate scope" (§4.2).
#[derive(Debug)]
pub struct Scopes {
    global: SymbolTable,
    locals: Vec<SymbolTable>,
}

impl Scopes {
    /// Creates the scope stack with an empty global table.
    pub fn new(ctx: &RuntimeContext) -> Self {
        Scopes {
            global: SymbolTable::new(ctx),
            locals: Vec::new(),
        }
    }

    /// Pushes a fresh function-local scope.
    pub fn push_local(&mut self, ctx: &RuntimeContext) {
        self.locals.push(SymbolTable::new(ctx));
    }

    /// Pops the innermost local scope.
    ///
    /// # Panics
    ///
    /// Panics if there is no local scope.
    pub fn pop_local(&mut self) {
        self.locals.pop().expect("pop_local with no local scope");
    }

    /// The current (innermost) scope.
    pub fn current(&mut self) -> &mut SymbolTable {
        self.locals.last_mut().unwrap_or(&mut self.global)
    }

    /// The global scope.
    pub fn global(&mut self) -> &mut SymbolTable {
        &mut self.global
    }

    /// Variable lookup: current scope only (PHP has no scope chaining for
    /// plain variables; globals need `global`/`$GLOBALS`).
    pub fn get(&self, ctx: &RuntimeContext, name: &str) -> Option<PhpValue> {
        match self.locals.last() {
            Some(local) => local.get(ctx, name),
            None => self.global.get(ctx, name),
        }
    }

    /// Sets a variable in the current scope.
    pub fn set(&mut self, ctx: &RuntimeContext, name: &str, value: PhpValue) {
        self.current().set(ctx, name, value);
    }

    /// Depth of local scopes.
    pub fn depth(&self) -> usize {
        self.locals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::PhpArray;

    #[test]
    fn set_get_unset() {
        let ctx = RuntimeContext::new();
        let mut t = SymbolTable::new(&ctx);
        t.set(&ctx, "title", PhpValue::from("Hello"));
        assert!(t
            .get(&ctx, "title")
            .unwrap()
            .loose_eq(&PhpValue::from("Hello")));
        assert!(t.unset(&ctx, "title"));
        assert!(!t.unset(&ctx, "title"));
        assert!(t.get(&ctx, "title").is_none());
    }

    #[test]
    fn extract_imports_string_keys_only() {
        let ctx = RuntimeContext::new();
        let mut t = SymbolTable::new(&ctx);
        let src = PhpArray::from_pairs([
            (ArrayKey::from("a"), PhpValue::from(1i64)),
            (ArrayKey::Int(0), PhpValue::from(2i64)),
            (ArrayKey::from("b"), PhpValue::from(3i64)),
        ]);
        let n = t.extract(&ctx, &src);
        assert_eq!(n, 2);
        assert!(t.get(&ctx, "a").is_some());
        assert!(t.get(&ctx, "b").is_some());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn extract_charges_hash_category() {
        let ctx = RuntimeContext::new();
        let mut t = SymbolTable::new(&ctx);
        let src = PhpArray::from_pairs([(ArrayKey::from("k"), PhpValue::from(1i64))]);
        let before = ctx.profiler().total_uops();
        t.extract(&ctx, &src);
        assert!(ctx.profiler().total_uops() > before);
        let breakdown = ctx.profiler().category_breakdown();
        assert!(breakdown.contains_key(&crate::profile::Category::HashMap));
    }

    #[test]
    fn scopes_isolate_locals() {
        let ctx = RuntimeContext::new();
        let mut scopes = Scopes::new(&ctx);
        scopes.set(&ctx, "g", PhpValue::from(1i64));
        scopes.push_local(&ctx);
        assert!(scopes.get(&ctx, "g").is_none(), "locals don't see globals");
        scopes.set(&ctx, "x", PhpValue::from(2i64));
        assert!(scopes.get(&ctx, "x").is_some());
        scopes.pop_local();
        assert!(scopes.get(&ctx, "g").is_some());
        assert!(scopes.get(&ctx, "x").is_none());
    }

    #[test]
    #[should_panic(expected = "pop_local with no local scope")]
    fn pop_empty_panics() {
        let ctx = RuntimeContext::new();
        let mut scopes = Scopes::new(&ctx);
        scopes.pop_local();
    }
}
