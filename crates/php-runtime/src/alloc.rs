//! Software slab allocator — the VM's baseline heap manager.
//!
//! §4.3 of the paper: "the VM typically uses the well-known slab allocation
//! technique. [...] the VM allocates a large chunk of memory and breaks it up
//! into smaller segments of a fixed size according to the slab class's size
//! and stores the pointer to those segments in the associated free list."
//!
//! This is a *simulated* allocator: it manages a synthetic address space and
//! charges micro-op costs to the profiler (§5.2: malloc ≈ 69 µops, free ≈ 37
//! µops on average, assuming cache hits). It also collects the statistics the
//! paper's Figure 8 is built from: the allocation-size CDF and the per-slab
//! live-memory timeline.

use crate::profile::{Category, OpCost, Profiler};
use std::collections::HashMap;

/// Granularity of the small size classes, in bytes (§4.3: 8 slabs cover
/// requests up to 128 B).
pub const SMALL_CLASS_GRANULARITY: usize = 16;
/// Number of small size classes (16 B .. 128 B).
pub const SMALL_CLASS_COUNT: usize = 8;
/// Largest request served by a slab class; anything bigger goes to the
/// (expensive) kernel path.
pub const MAX_SLAB_SIZE: usize = 4096;

/// Rounded sizes of all slab classes.
pub const CLASS_SIZES: [usize; 14] = [
    16, 32, 48, 64, 80, 96, 112, 128, // the 8 small classes
    192, 256, 512, 1024, 2048, 4096, // large classes
];

/// Simulated chunk size carved into slab segments.
const CHUNK_BYTES: u64 = 256 * 1024;

/// Micro-op costs of the software paths (calibrated so that the measured
/// averages land near the paper's 69 / 37 µops; see `tab_uops`).
mod cost {
    /// malloc fast path: size-class lookup + free-list pop.
    pub const MALLOC_FAST: u64 = 62;
    /// malloc carving a fresh segment from the current chunk.
    pub const MALLOC_CARVE: u64 = 150;
    /// malloc needing a new chunk from the kernel.
    pub const MALLOC_REFILL: u64 = 900;
    /// malloc of an over-4096-byte request (kernel mmap path).
    pub const MALLOC_HUGE: u64 = 1800;
    /// free fast path: push onto free list.
    pub const FREE_FAST: u64 = 36;
    /// free of a huge block.
    pub const FREE_HUGE: u64 = 700;
}

/// A live allocation handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Block {
    /// Simulated virtual address (16-byte aligned, never 0).
    pub addr: u64,
    /// Requested size in bytes.
    pub size: usize,
    /// Index into [`CLASS_SIZES`], or `usize::MAX` for huge blocks.
    pub class: usize,
}

/// One sample of the per-slab live-memory timeline (Figure 8b/8c).
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSample {
    /// Allocation-event counter at the time of the sample.
    pub tick: u64,
    /// Live bytes per small class (length [`SMALL_CLASS_COUNT`]).
    pub live_small: [u64; SMALL_CLASS_COUNT],
    /// Live bytes in large classes combined.
    pub live_large: u64,
}

/// Aggregate allocator statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AllocStats {
    /// malloc calls per class index (last slot = huge).
    pub allocs_by_class: Vec<u64>,
    /// free calls per class index (last slot = huge).
    pub frees_by_class: Vec<u64>,
    /// Histogram of requested sizes in 16-byte bins up to 4096 (bin 255 =
    /// huge). Drives the Figure 8a CDF.
    pub size_histogram: Vec<u64>,
    /// Free-list hit count (malloc served without carving).
    pub freelist_hits: u64,
    /// malloc calls total.
    pub mallocs: u64,
    /// free calls total.
    pub frees: u64,
    /// Total µops spent in malloc.
    pub malloc_uops: u64,
    /// Total µops spent in free.
    pub free_uops: u64,
    /// Peak live bytes.
    pub peak_live: u64,
}

impl AllocStats {
    /// Average micro-ops per malloc (§5.2 reports 69).
    pub fn avg_malloc_uops(&self) -> f64 {
        if self.mallocs == 0 {
            0.0
        } else {
            self.malloc_uops as f64 / self.mallocs as f64
        }
    }

    /// Average micro-ops per free (§5.2 reports 37).
    pub fn avg_free_uops(&self) -> f64 {
        if self.frees == 0 {
            0.0
        } else {
            self.free_uops as f64 / self.frees as f64
        }
    }

    /// Fraction of mallocs requesting at most `bytes` (Figure 8a).
    pub fn cdf_at(&self, bytes: usize) -> f64 {
        let total: u64 = self.size_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let bin = (bytes / SMALL_CLASS_GRANULARITY).min(self.size_histogram.len() - 1);
        let cum: u64 = self.size_histogram[..=bin].iter().sum();
        cum as f64 / total as f64
    }
}

struct SizeClass {
    /// Segment size in bytes.
    size: usize,
    /// Free segment addresses (LIFO for reuse locality).
    free: Vec<u64>,
    /// Bump pointer within the current chunk.
    bump: u64,
    /// End of the current chunk.
    chunk_end: u64,
    /// Live bytes.
    live: u64,
}

/// The software slab allocator.
///
/// All methods take a [`Profiler`] so costs are attributed to the
/// `malloc`/`free` leaf functions in the [`Category::Heap`] category.
pub struct SlabAllocator {
    classes: Vec<SizeClass>,
    /// addr -> (class index, requested size); huge blocks use class=usize::MAX.
    live_blocks: HashMap<u64, (usize, usize)>,
    next_addr: u64,
    stats: AllocStats,
    timeline: Vec<TimelineSample>,
    timeline_interval: u64,
    tick: u64,
    total_live: u64,
    /// Per-request memory ceiling (the `memory_limit` ini analogue). `None`
    /// means unlimited.
    memory_limit: Option<u64>,
}

impl std::fmt::Debug for SlabAllocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlabAllocator")
            .field("live_blocks", &self.live_blocks.len())
            .field("total_live", &self.total_live)
            .field("tick", &self.tick)
            .finish()
    }
}

impl Default for SlabAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl SlabAllocator {
    /// Creates an allocator with the standard class layout.
    pub fn new() -> Self {
        let classes = CLASS_SIZES
            .iter()
            .map(|&size| SizeClass {
                size,
                free: Vec::new(),
                bump: 0,
                chunk_end: 0,
                live: 0,
            })
            .collect();
        SlabAllocator {
            classes,
            live_blocks: HashMap::new(),
            next_addr: 0x1000,
            stats: AllocStats {
                allocs_by_class: vec![0; CLASS_SIZES.len() + 1],
                frees_by_class: vec![0; CLASS_SIZES.len() + 1],
                size_histogram: vec![0; 257],
                ..Default::default()
            },
            timeline: Vec::new(),
            timeline_interval: 64,
            tick: 0,
            total_live: 0,
            memory_limit: None,
        }
    }

    /// Sets the per-request memory ceiling (`None` = unlimited). When an
    /// allocation would push live bytes past the ceiling, [`malloc`] panics
    /// with an "Allowed memory size ... exhausted" message the request
    /// sandbox catches and converts into an OOM outcome.
    ///
    /// [`malloc`]: SlabAllocator::malloc
    pub fn set_memory_limit(&mut self, limit: Option<u64>) {
        self.memory_limit = limit;
    }

    /// The configured memory ceiling, if any.
    pub fn memory_limit(&self) -> Option<u64> {
        self.memory_limit
    }

    fn check_memory_limit(&self, incoming: usize) {
        if let Some(limit) = self.memory_limit {
            if self.total_live + incoming as u64 > limit {
                panic!(
                    "Allowed memory size of {limit} bytes exhausted \
                     (tried to allocate {incoming} bytes)"
                );
            }
        }
    }

    /// Sets how often (in allocation events) the live-memory timeline is
    /// sampled. Default: every 64 events.
    pub fn set_timeline_interval(&mut self, every: u64) {
        self.timeline_interval = every.max(1);
    }

    /// Index of the slab class serving `size`, or `None` for huge requests.
    pub fn class_for(size: usize) -> Option<usize> {
        if size == 0 || size > MAX_SLAB_SIZE {
            return None;
        }
        Some(match CLASS_SIZES.binary_search(&size) {
            Ok(i) => i,
            Err(i) => i,
        })
    }

    /// Allocates `size` bytes.
    ///
    /// Charges the software malloc cost to the profiler and returns a
    /// simulated block. Zero-size requests are rounded up to 1 byte.
    pub fn malloc(&mut self, size: usize, prof: &Profiler) -> Block {
        let size = size.max(1);
        self.check_memory_limit(size);
        self.tick += 1;
        self.stats.mallocs += 1;
        let bin = (size / SMALL_CLASS_GRANULARITY).min(256);
        self.stats.size_histogram[bin] += 1;

        let block = match Self::class_for(size) {
            Some(ci) => {
                let (addr, uops) = self.small_alloc(ci);
                self.stats.allocs_by_class[ci] += 1;
                self.stats.malloc_uops += uops;
                prof.record("slab_malloc", Category::Heap, OpCost::mixed(uops));
                self.classes[ci].live += self.classes[ci].size as u64;
                self.total_live += self.classes[ci].size as u64;
                self.live_blocks.insert(addr, (ci, size));
                Block {
                    addr,
                    size,
                    class: ci,
                }
            }
            None => {
                let addr = self.fresh_range(size as u64);
                *self.stats.allocs_by_class.last_mut().unwrap() += 1;
                self.stats.malloc_uops += cost::MALLOC_HUGE;
                prof.record(
                    "kernel_mmap_alloc",
                    Category::Heap,
                    OpCost::mixed(cost::MALLOC_HUGE),
                );
                self.total_live += size as u64;
                self.live_blocks.insert(addr, (usize::MAX, size));
                Block {
                    addr,
                    size,
                    class: usize::MAX,
                }
            }
        };
        self.stats.peak_live = self.stats.peak_live.max(self.total_live);
        if self.tick.is_multiple_of(self.timeline_interval) {
            self.sample_timeline();
        }
        block
    }

    fn small_alloc(&mut self, ci: usize) -> (u64, u64) {
        if let Some(addr) = self.classes[ci].free.pop() {
            self.stats.freelist_hits += 1;
            return (addr, cost::MALLOC_FAST);
        }
        let seg = self.classes[ci].size as u64;
        if self.classes[ci].bump + seg > self.classes[ci].chunk_end {
            let start = self.fresh_range(CHUNK_BYTES);
            self.classes[ci].bump = start;
            self.classes[ci].chunk_end = start + CHUNK_BYTES;
            let addr = self.classes[ci].bump;
            self.classes[ci].bump += seg;
            return (addr, cost::MALLOC_REFILL);
        }
        let addr = self.classes[ci].bump;
        self.classes[ci].bump += seg;
        (addr, cost::MALLOC_CARVE)
    }

    fn fresh_range(&mut self, bytes: u64) -> u64 {
        let addr = self.next_addr;
        self.next_addr += (bytes + 15) & !15;
        addr
    }

    /// Frees a previously allocated block.
    ///
    /// # Panics
    ///
    /// Panics on double free or on a block this allocator never produced —
    /// those are simulation bugs, not recoverable conditions.
    pub fn free(&mut self, block: Block, prof: &Profiler) {
        let (ci, size) = self
            .live_blocks
            .remove(&block.addr)
            .expect("free of unknown or already-freed block");
        assert_eq!(size, block.size, "free with mismatched size");
        self.tick += 1;
        self.stats.frees += 1;
        if ci == usize::MAX {
            *self.stats.frees_by_class.last_mut().unwrap() += 1;
            self.stats.free_uops += cost::FREE_HUGE;
            prof.record(
                "kernel_mmap_free",
                Category::Heap,
                OpCost::mixed(cost::FREE_HUGE),
            );
            self.total_live -= size as u64;
        } else {
            self.stats.frees_by_class[ci] += 1;
            self.stats.free_uops += cost::FREE_FAST;
            prof.record("slab_free", Category::Heap, OpCost::mixed(cost::FREE_FAST));
            self.classes[ci].free.push(block.addr);
            self.classes[ci].live -= self.classes[ci].size as u64;
            self.total_live -= self.classes[ci].size as u64;
        }
        if self.tick.is_multiple_of(self.timeline_interval) {
            self.sample_timeline();
        }
    }

    /// Pops a free segment of class `ci` *without* charging the malloc cost
    /// — used by the hardware heap manager's prefetcher to refill hardware
    /// free lists (§4.3). Returns `None` when the software free list is
    /// empty (the prefetcher then triggers a carve at software cost).
    pub fn steal_free_segment(&mut self, ci: usize) -> Option<u64> {
        self.classes.get_mut(ci)?.free.pop()
    }

    /// Carves a fresh segment for class `ci` on behalf of the hardware heap
    /// manager, charging the software cost. Used when the prefetcher misses.
    pub fn carve_for_hardware(&mut self, ci: usize, prof: &Profiler) -> u64 {
        let (addr, uops) = self.small_alloc(ci);
        prof.record("slab_malloc", Category::Heap, OpCost::mixed(uops));
        self.stats.malloc_uops += uops;
        self.stats.mallocs += 1;
        self.stats.allocs_by_class[ci] += 1;
        addr
    }

    /// Returns a segment to class `ci`'s software free list on behalf of the
    /// hardware heap manager (overflow eviction / `hmflush`).
    pub fn return_segment(&mut self, ci: usize, addr: u64) {
        self.classes[ci].free.push(addr);
    }

    /// Registers a hardware-served allocation so the live-memory accounting
    /// stays correct (the hardware manager serves the request, but the block
    /// is logically part of the heap).
    pub fn note_hardware_alloc(&mut self, ci: usize, addr: u64, size: usize) {
        self.check_memory_limit(size);
        self.tick += 1;
        let bin = (size / SMALL_CLASS_GRANULARITY).min(256);
        self.stats.size_histogram[bin] += 1;
        self.classes[ci].live += self.classes[ci].size as u64;
        self.total_live += self.classes[ci].size as u64;
        self.stats.peak_live = self.stats.peak_live.max(self.total_live);
        self.live_blocks.insert(addr, (ci, size));
        if self.tick.is_multiple_of(self.timeline_interval) {
            self.sample_timeline();
        }
    }

    /// Unregisters a hardware-served free.
    pub fn note_hardware_free(&mut self, addr: u64) {
        if let Some((ci, _size)) = self.live_blocks.remove(&addr) {
            if ci != usize::MAX {
                self.classes[ci].live -= self.classes[ci].size as u64;
                self.total_live -= self.classes[ci].size as u64;
            }
        }
        self.tick += 1;
        if self.tick.is_multiple_of(self.timeline_interval) {
            self.sample_timeline();
        }
    }

    fn sample_timeline(&mut self) {
        let mut live_small = [0u64; SMALL_CLASS_COUNT];
        for (i, slot) in live_small.iter_mut().enumerate() {
            *slot = self.classes[i].live;
        }
        let live_large: u64 = self.classes[SMALL_CLASS_COUNT..]
            .iter()
            .map(|c| c.live)
            .sum();
        self.timeline.push(TimelineSample {
            tick: self.tick,
            live_small,
            live_large,
        });
    }

    /// Live bytes right now.
    pub fn live_bytes(&self) -> u64 {
        self.total_live
    }

    /// Number of live blocks.
    pub fn live_block_count(&self) -> usize {
        self.live_blocks.len()
    }

    /// Aggregate statistics (Figure 8a, §5.2 µop table).
    pub fn stats(&self) -> &AllocStats {
        &self.stats
    }

    /// The live-memory timeline (Figure 8b/8c).
    pub fn timeline(&self) -> &[TimelineSample] {
        &self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prof() -> Profiler {
        Profiler::new()
    }

    #[test]
    fn class_for_rounds_up() {
        assert_eq!(SlabAllocator::class_for(1), Some(0));
        assert_eq!(SlabAllocator::class_for(16), Some(0));
        assert_eq!(SlabAllocator::class_for(17), Some(1));
        assert_eq!(SlabAllocator::class_for(128), Some(7));
        assert_eq!(SlabAllocator::class_for(129), Some(8));
        assert_eq!(SlabAllocator::class_for(4096), Some(13));
        assert_eq!(SlabAllocator::class_for(4097), None);
        assert_eq!(SlabAllocator::class_for(0), None);
    }

    #[test]
    fn malloc_free_roundtrip_reuses_address() {
        let mut a = SlabAllocator::new();
        let p = prof();
        let b1 = a.malloc(24, &p);
        a.free(b1, &p);
        let b2 = a.malloc(30, &p); // same class (32B)
        assert_eq!(b1.addr, b2.addr, "LIFO free list should recycle");
        assert_eq!(a.stats().freelist_hits, 1);
    }

    #[test]
    fn live_accounting_balances() {
        let mut a = SlabAllocator::new();
        let p = prof();
        let blocks: Vec<Block> = (0..100).map(|i| a.malloc(8 + i % 120, &p)).collect();
        assert_eq!(a.live_block_count(), 100);
        assert!(a.live_bytes() > 0);
        for b in blocks {
            a.free(b, &p);
        }
        assert_eq!(a.live_block_count(), 0);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "free of unknown")]
    fn double_free_panics() {
        let mut a = SlabAllocator::new();
        let p = prof();
        let b = a.malloc(16, &p);
        a.free(b, &p);
        a.free(b, &p);
    }

    #[test]
    #[should_panic(expected = "Allowed memory size")]
    fn memory_limit_exceeded_panics() {
        let mut a = SlabAllocator::new();
        let p = prof();
        a.set_memory_limit(Some(64));
        let _ = a.malloc(32, &p);
        let _ = a.malloc(64, &p); // 32 (rounded) + 64 > 64 → OOM
    }

    #[test]
    fn memory_limit_cleared_allows_allocation() {
        let mut a = SlabAllocator::new();
        let p = prof();
        a.set_memory_limit(Some(16));
        a.set_memory_limit(None);
        let b = a.malloc(4096, &p);
        a.free(b, &p);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    fn huge_allocation_uses_kernel_path() {
        let mut a = SlabAllocator::new();
        let p = prof();
        let b = a.malloc(100_000, &p);
        assert_eq!(b.class, usize::MAX);
        assert!(p.function("kernel_mmap_alloc").is_some());
        a.free(b, &p);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    fn avg_costs_near_paper_with_reuse() {
        // With strong memory reuse (paper §4.3) nearly every malloc hits the
        // free list, so the average should approach the fast-path cost and
        // land in the neighbourhood of the paper's 69 µops.
        let mut a = SlabAllocator::new();
        let p = prof();
        for _ in 0..2000 {
            let b1 = a.malloc(48, &p);
            let b2 = a.malloc(96, &p);
            a.free(b1, &p);
            a.free(b2, &p);
        }
        let avg = a.stats().avg_malloc_uops();
        assert!((55.0..85.0).contains(&avg), "avg malloc µops {avg}");
        let avg_f = a.stats().avg_free_uops();
        assert!((30.0..45.0).contains(&avg_f), "avg free µops {avg_f}");
    }

    #[test]
    fn size_cdf_reflects_small_dominance() {
        let mut a = SlabAllocator::new();
        let p = prof();
        let mut live = Vec::new();
        for i in 0..1000 {
            let size = if i % 10 == 0 { 600 } else { 16 + (i % 8) * 16 };
            live.push(a.malloc(size, &p));
        }
        let cdf128 = a.stats().cdf_at(128);
        assert!(cdf128 > 0.85, "≤128B should dominate, got {cdf128}");
        for b in live {
            a.free(b, &p);
        }
    }

    #[test]
    fn timeline_records_flat_reuse() {
        let mut a = SlabAllocator::new();
        a.set_timeline_interval(8);
        let p = prof();
        // Steady-state churn: allocate 4, free 4, repeatedly.
        for _ in 0..200 {
            let bs: Vec<Block> = (0..4).map(|_| a.malloc(32, &p)).collect();
            for b in bs {
                a.free(b, &p);
            }
        }
        let tl = a.timeline();
        assert!(tl.len() > 10);
        // Live memory for the 32B class stays bounded (strong reuse ⇒ flat).
        let max_live = tl.iter().map(|s| s.live_small[1]).max().unwrap();
        assert!(max_live <= 4 * 32);
    }

    #[test]
    fn hardware_interop_keeps_accounting() {
        let mut a = SlabAllocator::new();
        let p = prof();
        let b = a.malloc(32, &p);
        a.free(b, &p);
        // Prefetcher steals the freed segment for the hardware free list.
        let seg = a.steal_free_segment(1).unwrap();
        assert_eq!(seg, b.addr);
        // Hardware serves an allocation from it.
        a.note_hardware_alloc(1, seg, 30);
        assert_eq!(a.live_block_count(), 1);
        a.note_hardware_free(seg);
        assert_eq!(a.live_block_count(), 0);
        // Overflow: hardware returns the segment to software.
        a.return_segment(1, seg);
        let again = a.malloc(32, &p);
        assert_eq!(again.addr, seg);
    }
}
