//! Software slab allocator — the VM's baseline heap manager.
//!
//! §4.3 of the paper: "the VM typically uses the well-known slab allocation
//! technique. [...] the VM allocates a large chunk of memory and breaks it up
//! into smaller segments of a fixed size according to the slab class's size
//! and stores the pointer to those segments in the associated free list."
//!
//! This is a *simulated* allocator: it manages a synthetic address space and
//! charges micro-op costs to the profiler (§5.2: malloc ≈ 69 µops, free ≈ 37
//! µops on average, assuming cache hits). It also collects the statistics the
//! paper's Figure 8 is built from: the allocation-size CDF and the per-slab
//! live-memory timeline.

use crate::profile::{Category, OpCost, Profiler};
use std::collections::{HashMap, HashSet};

/// Granularity of the small size classes, in bytes (§4.3: 8 slabs cover
/// requests up to 128 B).
pub const SMALL_CLASS_GRANULARITY: usize = 16;
/// Number of small size classes (16 B .. 128 B).
pub const SMALL_CLASS_COUNT: usize = 8;
/// Largest request served by a slab class; anything bigger goes to the
/// (expensive) kernel path.
pub const MAX_SLAB_SIZE: usize = 4096;

/// Rounded sizes of all slab classes.
pub const CLASS_SIZES: [usize; 14] = [
    16, 32, 48, 64, 80, 96, 112, 128, // the 8 small classes
    192, 256, 512, 1024, 2048, 4096, // large classes
];

/// Simulated chunk size carved into slab segments.
const CHUNK_BYTES: u64 = 256 * 1024;

/// Pseudo-class index marking a block served by the request arena (see
/// [`SlabAllocator::arena_malloc`]). Distinct from `usize::MAX`, which marks
/// huge kernel-path blocks.
pub const ARENA_CLASS: usize = usize::MAX - 1;

/// Micro-op costs of the software paths (calibrated so that the measured
/// averages land near the paper's 69 / 37 µops; see `tab_uops`).
mod cost {
    /// malloc fast path: size-class lookup + free-list pop.
    pub const MALLOC_FAST: u64 = 62;
    /// malloc carving a fresh segment from the current chunk.
    pub const MALLOC_CARVE: u64 = 150;
    /// malloc needing a new chunk from the kernel.
    pub const MALLOC_REFILL: u64 = 900;
    /// malloc of an over-4096-byte request (kernel mmap path).
    pub const MALLOC_HUGE: u64 = 1800;
    /// free fast path: push onto free list.
    pub const FREE_FAST: u64 = 36;
    /// free of a huge block.
    pub const FREE_HUGE: u64 = 700;
    /// arena bump allocation: limit check + pointer increment.
    pub const ARENA_BUMP: u64 = 10;
    /// arena needing a new chunk from the kernel.
    pub const ARENA_REFILL: u64 = 900;
    /// logical free of an arena block: live-byte accounting only, the
    /// memory itself is reclaimed wholesale at epoch reset.
    pub const ARENA_FREE: u64 = 4;
    /// O(1) epoch reset: rewind the bump pointer, zero the counters.
    pub const ARENA_RESET: u64 = 40;
}

/// A live allocation handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Block {
    /// Simulated virtual address (16-byte aligned, never 0).
    pub addr: u64,
    /// Requested size in bytes.
    pub size: usize,
    /// Index into [`CLASS_SIZES`], or `usize::MAX` for huge blocks.
    pub class: usize,
    /// Arena epoch that produced this block ([`ARENA_CLASS`] blocks only;
    /// 0 for free-list and huge blocks, whose validity is tracked through
    /// the allocator's live-block map instead). Lets [`SlabAllocator::free`]
    /// reject a stale handle whose address was recycled by an epoch reset.
    pub epoch: u64,
}

/// One sample of the per-slab live-memory timeline (Figure 8b/8c).
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSample {
    /// Allocation-event counter at the time of the sample.
    pub tick: u64,
    /// Live bytes per small class (length [`SMALL_CLASS_COUNT`]).
    pub live_small: [u64; SMALL_CLASS_COUNT],
    /// Live bytes in large classes combined.
    pub live_large: u64,
}

/// Aggregate allocator statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AllocStats {
    /// malloc calls per class index (last slot = huge).
    pub allocs_by_class: Vec<u64>,
    /// free calls per class index (last slot = huge).
    pub frees_by_class: Vec<u64>,
    /// Histogram of requested sizes in 16-byte bins up to 4096 (bin 255 =
    /// huge). Drives the Figure 8a CDF.
    pub size_histogram: Vec<u64>,
    /// Free-list hit count (malloc served without carving).
    pub freelist_hits: u64,
    /// malloc calls total.
    pub mallocs: u64,
    /// free calls total.
    pub frees: u64,
    /// Total µops spent in malloc.
    pub malloc_uops: u64,
    /// Total µops spent in free.
    pub free_uops: u64,
    /// Peak live bytes.
    pub peak_live: u64,
    /// Allocations served by the request arena (bump path).
    pub arena_allocs: u64,
    /// Arena epoch resets performed.
    pub arena_resets: u64,
    /// Bytes reclaimed wholesale by epoch resets (blocks that were still
    /// live when the epoch ended).
    pub arena_bytes_reclaimed: u64,
}

impl AllocStats {
    /// Average micro-ops per malloc (§5.2 reports 69).
    pub fn avg_malloc_uops(&self) -> f64 {
        if self.mallocs == 0 {
            0.0
        } else {
            self.malloc_uops as f64 / self.mallocs as f64
        }
    }

    /// Average micro-ops per free (§5.2 reports 37).
    pub fn avg_free_uops(&self) -> f64 {
        if self.frees == 0 {
            0.0
        } else {
            self.free_uops as f64 / self.frees as f64
        }
    }

    /// Fraction of mallocs requesting at most `bytes` (Figure 8a).
    ///
    /// Total zero — no allocations recorded, or a default-constructed stats
    /// value whose histogram is empty — yields `0.0` rather than dividing
    /// by (or indexing into) nothing.
    pub fn cdf_at(&self, bytes: usize) -> f64 {
        if self.size_histogram.is_empty() {
            return 0.0;
        }
        let total: u64 = self.size_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let bin = (bytes / SMALL_CLASS_GRANULARITY).min(self.size_histogram.len() - 1);
        let cum: u64 = self.size_histogram[..=bin].iter().sum();
        cum as f64 / total as f64
    }
}

/// Summary of one arena epoch reset (see [`SlabAllocator::reset_arena_epoch`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaEpochReport {
    /// Arena blocks still live when the epoch ended, reclaimed wholesale.
    pub blocks_reclaimed: u64,
    /// Bytes those blocks occupied.
    pub bytes_reclaimed: u64,
    /// µops the free-list teardown of those blocks would have cost, minus
    /// the constant reset cost actually charged.
    pub uops_saved: u64,
}

/// Per-request bump arena. Arena blocks are never entered into
/// `live_blocks` or any free list — their liveness is a handful of counters,
/// which is what makes the end-of-epoch reset O(1).
struct ArenaState {
    /// Bump pointer within the current arena chunk.
    bump: u64,
    /// Starts of every chunk the arena owns, in acquisition order. Chunks
    /// are retained across epochs: a reset rewinds to `chunks[0]` and later
    /// refills walk this list before asking the kernel for a fresh range,
    /// so multi-chunk epochs recycle their whole address space too.
    chunks: Vec<u64>,
    /// Index into `chunks` of the chunk `bump` points into.
    cur_chunk: usize,
    /// End of the current chunk.
    chunk_end: u64,
    /// Monotonically increasing epoch id (starts at 1), stamped into every
    /// arena [`Block`] so frees can reject stale handles from an earlier
    /// epoch whose addresses have been recycled.
    epoch: u64,
    /// Addresses logically freed this epoch — double-free detection for
    /// the arena path, mirroring the free-list path's `live_blocks` panic.
    /// Simulator integrity state only (like `live_blocks` itself): its
    /// maintenance charges no simulated µops.
    freed: HashSet<u64>,
    /// Live arena blocks (allocated minus logically freed) this epoch.
    block_count: u64,
    /// Live arena bytes per slab class this epoch. Fixed-size, so zeroing
    /// it at reset is a constant-time operation.
    live_by_class: [u64; CLASS_SIZES.len()],
}

impl ArenaState {
    fn new() -> Self {
        ArenaState {
            bump: 0,
            chunks: Vec::new(),
            cur_chunk: 0,
            chunk_end: 0,
            epoch: 1,
            freed: HashSet::new(),
            block_count: 0,
            live_by_class: [0; CLASS_SIZES.len()],
        }
    }

    fn live_bytes(&self) -> u64 {
        self.live_by_class.iter().sum()
    }

    /// Whether the bump state is already fully rewound (nothing allocated
    /// since the last reset).
    fn rewound(&self) -> bool {
        match self.chunks.first() {
            Some(&first) => self.cur_chunk == 0 && self.bump == first,
            None => true,
        }
    }
}

struct SizeClass {
    /// Segment size in bytes.
    size: usize,
    /// Free segment addresses (LIFO for reuse locality).
    free: Vec<u64>,
    /// Bump pointer within the current chunk.
    bump: u64,
    /// End of the current chunk.
    chunk_end: u64,
    /// Live bytes.
    live: u64,
}

/// The software slab allocator.
///
/// All methods take a [`Profiler`] so costs are attributed to the
/// `malloc`/`free` leaf functions in the [`Category::Heap`] category.
pub struct SlabAllocator {
    classes: Vec<SizeClass>,
    /// addr -> (class index, requested size); huge blocks use class=usize::MAX.
    live_blocks: HashMap<u64, (usize, usize)>,
    next_addr: u64,
    stats: AllocStats,
    timeline: Vec<TimelineSample>,
    timeline_interval: u64,
    tick: u64,
    total_live: u64,
    /// Per-request memory ceiling (the `memory_limit` ini analogue). `None`
    /// means unlimited.
    memory_limit: Option<u64>,
    /// Request arena (epoch) state.
    arena: ArenaState,
    /// Whether [`arena_malloc`] bump-allocates or falls through to the
    /// free-list path. Off by default; flipped per-machine by callers that
    /// trust the region analysis.
    ///
    /// [`arena_malloc`]: SlabAllocator::arena_malloc
    arena_enabled: bool,
}

impl std::fmt::Debug for SlabAllocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlabAllocator")
            .field("live_blocks", &self.live_blocks.len())
            .field("total_live", &self.total_live)
            .field("tick", &self.tick)
            .finish()
    }
}

impl Default for SlabAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl SlabAllocator {
    /// Creates an allocator with the standard class layout.
    pub fn new() -> Self {
        let classes = CLASS_SIZES
            .iter()
            .map(|&size| SizeClass {
                size,
                free: Vec::new(),
                bump: 0,
                chunk_end: 0,
                live: 0,
            })
            .collect();
        SlabAllocator {
            classes,
            live_blocks: HashMap::new(),
            next_addr: 0x1000,
            stats: AllocStats {
                allocs_by_class: vec![0; CLASS_SIZES.len() + 1],
                frees_by_class: vec![0; CLASS_SIZES.len() + 1],
                size_histogram: vec![0; 257],
                ..Default::default()
            },
            timeline: Vec::new(),
            timeline_interval: 64,
            tick: 0,
            total_live: 0,
            memory_limit: None,
            arena: ArenaState::new(),
            arena_enabled: false,
        }
    }

    /// Turns the request-arena mode on or off. Affects only
    /// [`arena_malloc`]; `malloc` always uses the free-list path.
    ///
    /// [`arena_malloc`]: SlabAllocator::arena_malloc
    pub fn set_arena_enabled(&mut self, enabled: bool) {
        self.arena_enabled = enabled;
    }

    /// Whether arena mode is on.
    pub fn arena_enabled(&self) -> bool {
        self.arena_enabled
    }

    /// Sets the per-request memory ceiling (`None` = unlimited). When an
    /// allocation would push live bytes past the ceiling, [`malloc`] panics
    /// with an "Allowed memory size ... exhausted" message the request
    /// sandbox catches and converts into an OOM outcome.
    ///
    /// [`malloc`]: SlabAllocator::malloc
    pub fn set_memory_limit(&mut self, limit: Option<u64>) {
        self.memory_limit = limit;
    }

    /// The configured memory ceiling, if any.
    pub fn memory_limit(&self) -> Option<u64> {
        self.memory_limit
    }

    fn check_memory_limit(&self, incoming: usize) {
        if let Some(limit) = self.memory_limit {
            if self.total_live + incoming as u64 > limit {
                panic!(
                    "Allowed memory size of {limit} bytes exhausted \
                     (tried to allocate {incoming} bytes)"
                );
            }
        }
    }

    /// Sets how often (in allocation events) the live-memory timeline is
    /// sampled. Default: every 64 events.
    pub fn set_timeline_interval(&mut self, every: u64) {
        self.timeline_interval = every.max(1);
    }

    /// Index of the slab class serving `size`, or `None` for huge requests.
    pub fn class_for(size: usize) -> Option<usize> {
        if size == 0 || size > MAX_SLAB_SIZE {
            return None;
        }
        Some(match CLASS_SIZES.binary_search(&size) {
            Ok(i) => i,
            Err(i) => i,
        })
    }

    /// Allocates `size` bytes.
    ///
    /// Charges the software malloc cost to the profiler and returns a
    /// simulated block. Zero-size requests are rounded up to 1 byte.
    pub fn malloc(&mut self, size: usize, prof: &Profiler) -> Block {
        let size = size.max(1);
        self.check_memory_limit(size);
        self.tick += 1;
        self.stats.mallocs += 1;
        let bin = (size / SMALL_CLASS_GRANULARITY).min(256);
        self.stats.size_histogram[bin] += 1;

        let block = match Self::class_for(size) {
            Some(ci) => {
                let (addr, uops) = self.small_alloc(ci);
                self.stats.allocs_by_class[ci] += 1;
                self.stats.malloc_uops += uops;
                prof.record("slab_malloc", Category::Heap, OpCost::mixed(uops));
                self.classes[ci].live += self.classes[ci].size as u64;
                self.total_live += self.classes[ci].size as u64;
                self.live_blocks.insert(addr, (ci, size));
                Block {
                    addr,
                    size,
                    class: ci,
                    epoch: 0,
                }
            }
            None => {
                let addr = self.fresh_range(size as u64);
                *self.stats.allocs_by_class.last_mut().unwrap() += 1;
                self.stats.malloc_uops += cost::MALLOC_HUGE;
                prof.record(
                    "kernel_mmap_alloc",
                    Category::Heap,
                    OpCost::mixed(cost::MALLOC_HUGE),
                );
                self.total_live += size as u64;
                self.live_blocks.insert(addr, (usize::MAX, size));
                Block {
                    addr,
                    size,
                    class: usize::MAX,
                    epoch: 0,
                }
            }
        };
        self.stats.peak_live = self.stats.peak_live.max(self.total_live);
        if self.tick.is_multiple_of(self.timeline_interval) {
            self.sample_timeline();
        }
        block
    }

    fn small_alloc(&mut self, ci: usize) -> (u64, u64) {
        if let Some(addr) = self.classes[ci].free.pop() {
            self.stats.freelist_hits += 1;
            return (addr, cost::MALLOC_FAST);
        }
        let seg = self.classes[ci].size as u64;
        if self.classes[ci].bump + seg > self.classes[ci].chunk_end {
            let start = self.fresh_range(CHUNK_BYTES);
            self.classes[ci].bump = start;
            self.classes[ci].chunk_end = start + CHUNK_BYTES;
            let addr = self.classes[ci].bump;
            self.classes[ci].bump += seg;
            return (addr, cost::MALLOC_REFILL);
        }
        let addr = self.classes[ci].bump;
        self.classes[ci].bump += seg;
        (addr, cost::MALLOC_CARVE)
    }

    /// Allocates `size` bytes from the request arena when arena mode is on
    /// and the size fits a slab class; otherwise behaves exactly like
    /// [`malloc`](SlabAllocator::malloc).
    ///
    /// Arena blocks bump-allocate at a fraction of the free-list cost and
    /// are reclaimed wholesale by [`reset_arena_epoch`]. They charge the
    /// same rounded (class) size against `total_live` as the free-list path
    /// would, so memory-limit behaviour is identical in both modes. Huge
    /// (>4096 B) requests always take the kernel path: they are not
    /// request-churn, and keeping them out of the arena keeps the epoch
    /// cheap to reason about.
    ///
    /// [`reset_arena_epoch`]: SlabAllocator::reset_arena_epoch
    pub fn arena_malloc(&mut self, size: usize, prof: &Profiler) -> Block {
        if !self.arena_enabled {
            return self.malloc(size, prof);
        }
        let size = size.max(1);
        let Some(ci) = Self::class_for(size) else {
            return self.malloc(size, prof);
        };
        let rounded = CLASS_SIZES[ci] as u64;
        self.check_memory_limit(size);
        self.tick += 1;
        self.stats.mallocs += 1;
        self.stats.arena_allocs += 1;
        let bin = (size / SMALL_CLASS_GRANULARITY).min(256);
        self.stats.size_histogram[bin] += 1;
        self.stats.allocs_by_class[ci] += 1;
        let uops = if self.arena.bump + rounded > self.arena.chunk_end {
            if self.arena.cur_chunk + 1 < self.arena.chunks.len() {
                // Advance into a chunk the arena already owns (recycled by
                // an earlier epoch reset) — a pointer swap, no kernel trip.
                self.arena.cur_chunk += 1;
                let start = self.arena.chunks[self.arena.cur_chunk];
                self.arena.bump = start;
                self.arena.chunk_end = start + CHUNK_BYTES;
                cost::ARENA_BUMP
            } else {
                let start = self.fresh_range(CHUNK_BYTES);
                self.arena.chunks.push(start);
                self.arena.cur_chunk = self.arena.chunks.len() - 1;
                self.arena.bump = start;
                self.arena.chunk_end = start + CHUNK_BYTES;
                cost::ARENA_REFILL
            }
        } else {
            cost::ARENA_BUMP
        };
        let addr = self.arena.bump;
        self.arena.bump += rounded;
        self.stats.malloc_uops += uops;
        prof.record("arena_bump_alloc", Category::Heap, OpCost::mixed(uops));
        self.arena.block_count += 1;
        self.arena.live_by_class[ci] += rounded;
        self.total_live += rounded;
        self.stats.peak_live = self.stats.peak_live.max(self.total_live);
        if self.tick.is_multiple_of(self.timeline_interval) {
            self.sample_timeline();
        }
        Block {
            addr,
            size,
            class: ARENA_CLASS,
            epoch: self.arena.epoch,
        }
    }

    /// Logical free of an arena block: cheap counter updates so live-byte
    /// and live-block accounting stay in lockstep with free-list mode. The
    /// address itself is not recycled until [`reset_arena_epoch`].
    ///
    /// # Panics
    ///
    /// Like the free-list path, panics on double free or on a stale handle
    /// from a previous epoch (whose address an epoch reset may have handed
    /// to a different block) — simulation bugs, not recoverable conditions.
    ///
    /// [`reset_arena_epoch`]: SlabAllocator::reset_arena_epoch
    fn arena_free(&mut self, block: Block, prof: &Profiler) {
        let ci = Self::class_for(block.size).expect("arena block with non-slab size");
        let rounded = CLASS_SIZES[ci] as u64;
        assert_eq!(
            block.epoch, self.arena.epoch,
            "arena free of a stale block from a previous epoch"
        );
        assert!(
            self.arena.freed.insert(block.addr),
            "arena double free at {:#x}",
            block.addr
        );
        assert!(
            self.arena.block_count > 0 && self.arena.live_by_class[ci] >= rounded,
            "arena free without a matching live arena block"
        );
        self.tick += 1;
        self.stats.frees += 1;
        self.stats.frees_by_class[ci] += 1;
        self.stats.free_uops += cost::ARENA_FREE;
        prof.record(
            "arena_logical_free",
            Category::Heap,
            OpCost::mixed(cost::ARENA_FREE),
        );
        self.arena.block_count -= 1;
        self.arena.live_by_class[ci] -= rounded;
        self.total_live -= rounded;
        if self.tick.is_multiple_of(self.timeline_interval) {
            self.sample_timeline();
        }
    }

    /// Ends the current arena epoch in O(1): every arena block still live is
    /// reclaimed by rewinding the bump pointer and zeroing the (fixed-size)
    /// counters — no per-block walk, no free-list pushes. Charges a single
    /// constant reset cost and reports what a free-list teardown of the same
    /// blocks would have cost instead.
    ///
    /// Sound only if no arena block is referenced after the reset — the
    /// contract the region analysis (`php-analysis::region`) certifies per
    /// allocation site.
    pub fn reset_arena_epoch(&mut self, prof: &Profiler) -> ArenaEpochReport {
        let blocks = self.arena.block_count;
        let bytes = self.arena.live_bytes();
        if blocks == 0 && bytes == 0 && self.arena.rewound() {
            // Nothing allocated since the last reset: no handles to
            // invalidate, so the epoch id need not advance either.
            return ArenaEpochReport::default();
        }
        self.tick += 1;
        self.stats.arena_resets += 1;
        self.stats.arena_bytes_reclaimed += bytes;
        self.stats.free_uops += cost::ARENA_RESET;
        prof.record(
            "arena_epoch_reset",
            Category::Heap,
            OpCost::mixed(cost::ARENA_RESET),
        );
        self.total_live -= bytes;
        self.arena.block_count = 0;
        self.arena.live_by_class = [0; CLASS_SIZES.len()];
        // Rewind to the *first* owned chunk: chunks acquired by a spilling
        // epoch stay owned and are reused by later refills, so the epoch's
        // whole address range recycles, not just its last chunk.
        self.arena.cur_chunk = 0;
        if let Some(&first) = self.arena.chunks.first() {
            self.arena.bump = first;
            self.arena.chunk_end = first + CHUNK_BYTES;
        }
        self.arena.epoch += 1;
        self.arena.freed.clear();
        if self.tick.is_multiple_of(self.timeline_interval) {
            self.sample_timeline();
        }
        ArenaEpochReport {
            blocks_reclaimed: blocks,
            bytes_reclaimed: bytes,
            uops_saved: (blocks * cost::FREE_FAST).saturating_sub(cost::ARENA_RESET),
        }
    }

    /// Live arena blocks this epoch.
    pub fn arena_block_count(&self) -> usize {
        self.arena.block_count as usize
    }

    /// Live arena bytes this epoch.
    pub fn arena_live_bytes(&self) -> u64 {
        self.arena.live_bytes()
    }

    fn fresh_range(&mut self, bytes: u64) -> u64 {
        let addr = self.next_addr;
        self.next_addr += (bytes + 15) & !15;
        addr
    }

    /// Frees a previously allocated block.
    ///
    /// # Panics
    ///
    /// Panics on double free or on a block this allocator never produced —
    /// those are simulation bugs, not recoverable conditions.
    pub fn free(&mut self, block: Block, prof: &Profiler) {
        if block.class == ARENA_CLASS {
            self.arena_free(block, prof);
            return;
        }
        let (ci, size) = self
            .live_blocks
            .remove(&block.addr)
            .expect("free of unknown or already-freed block");
        assert_eq!(size, block.size, "free with mismatched size");
        self.tick += 1;
        self.stats.frees += 1;
        if ci == usize::MAX {
            *self.stats.frees_by_class.last_mut().unwrap() += 1;
            self.stats.free_uops += cost::FREE_HUGE;
            prof.record(
                "kernel_mmap_free",
                Category::Heap,
                OpCost::mixed(cost::FREE_HUGE),
            );
            self.total_live -= size as u64;
        } else {
            self.stats.frees_by_class[ci] += 1;
            self.stats.free_uops += cost::FREE_FAST;
            prof.record("slab_free", Category::Heap, OpCost::mixed(cost::FREE_FAST));
            self.classes[ci].free.push(block.addr);
            self.classes[ci].live -= self.classes[ci].size as u64;
            self.total_live -= self.classes[ci].size as u64;
        }
        if self.tick.is_multiple_of(self.timeline_interval) {
            self.sample_timeline();
        }
    }

    /// Pops a free segment of class `ci` *without* charging the malloc cost
    /// — used by the hardware heap manager's prefetcher to refill hardware
    /// free lists (§4.3). Returns `None` when the software free list is
    /// empty (the prefetcher then triggers a carve at software cost).
    pub fn steal_free_segment(&mut self, ci: usize) -> Option<u64> {
        self.classes.get_mut(ci)?.free.pop()
    }

    /// Carves a fresh segment for class `ci` on behalf of the hardware heap
    /// manager, charging the software cost. Used when the prefetcher misses.
    pub fn carve_for_hardware(&mut self, ci: usize, prof: &Profiler) -> u64 {
        let (addr, uops) = self.small_alloc(ci);
        prof.record("slab_malloc", Category::Heap, OpCost::mixed(uops));
        self.stats.malloc_uops += uops;
        self.stats.mallocs += 1;
        self.stats.allocs_by_class[ci] += 1;
        addr
    }

    /// Returns a segment to class `ci`'s software free list on behalf of the
    /// hardware heap manager (overflow eviction / `hmflush`).
    pub fn return_segment(&mut self, ci: usize, addr: u64) {
        self.classes[ci].free.push(addr);
    }

    /// Registers a hardware-served allocation so the live-memory accounting
    /// stays correct (the hardware manager serves the request, but the block
    /// is logically part of the heap).
    pub fn note_hardware_alloc(&mut self, ci: usize, addr: u64, size: usize) {
        self.check_memory_limit(size);
        self.tick += 1;
        let bin = (size / SMALL_CLASS_GRANULARITY).min(256);
        self.stats.size_histogram[bin] += 1;
        self.classes[ci].live += self.classes[ci].size as u64;
        self.total_live += self.classes[ci].size as u64;
        self.stats.peak_live = self.stats.peak_live.max(self.total_live);
        self.live_blocks.insert(addr, (ci, size));
        if self.tick.is_multiple_of(self.timeline_interval) {
            self.sample_timeline();
        }
    }

    /// Unregisters a hardware-served free.
    pub fn note_hardware_free(&mut self, addr: u64) {
        if let Some((ci, _size)) = self.live_blocks.remove(&addr) {
            if ci != usize::MAX {
                self.classes[ci].live -= self.classes[ci].size as u64;
                self.total_live -= self.classes[ci].size as u64;
            }
        }
        self.tick += 1;
        if self.tick.is_multiple_of(self.timeline_interval) {
            self.sample_timeline();
        }
    }

    fn sample_timeline(&mut self) {
        let mut live_small = [0u64; SMALL_CLASS_COUNT];
        for (i, slot) in live_small.iter_mut().enumerate() {
            *slot = self.classes[i].live + self.arena.live_by_class[i];
        }
        let live_large: u64 = self.classes[SMALL_CLASS_COUNT..]
            .iter()
            .map(|c| c.live)
            .sum::<u64>()
            + self.arena.live_by_class[SMALL_CLASS_COUNT..]
                .iter()
                .sum::<u64>();
        self.timeline.push(TimelineSample {
            tick: self.tick,
            live_small,
            live_large,
        });
    }

    /// Live bytes right now.
    pub fn live_bytes(&self) -> u64 {
        self.total_live
    }

    /// Number of live blocks, counting arena blocks not yet reclaimed —
    /// kept in lockstep with free-list mode so differential live-block
    /// checks see identical counts whether arena mode is on or off.
    pub fn live_block_count(&self) -> usize {
        self.live_blocks.len() + self.arena.block_count as usize
    }

    /// Aggregate statistics (Figure 8a, §5.2 µop table).
    pub fn stats(&self) -> &AllocStats {
        &self.stats
    }

    /// The live-memory timeline (Figure 8b/8c).
    pub fn timeline(&self) -> &[TimelineSample] {
        &self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prof() -> Profiler {
        Profiler::new()
    }

    #[test]
    fn class_for_rounds_up() {
        assert_eq!(SlabAllocator::class_for(1), Some(0));
        assert_eq!(SlabAllocator::class_for(16), Some(0));
        assert_eq!(SlabAllocator::class_for(17), Some(1));
        assert_eq!(SlabAllocator::class_for(128), Some(7));
        assert_eq!(SlabAllocator::class_for(129), Some(8));
        assert_eq!(SlabAllocator::class_for(4096), Some(13));
        assert_eq!(SlabAllocator::class_for(4097), None);
        assert_eq!(SlabAllocator::class_for(0), None);
    }

    #[test]
    fn malloc_free_roundtrip_reuses_address() {
        let mut a = SlabAllocator::new();
        let p = prof();
        let b1 = a.malloc(24, &p);
        a.free(b1, &p);
        let b2 = a.malloc(30, &p); // same class (32B)
        assert_eq!(b1.addr, b2.addr, "LIFO free list should recycle");
        assert_eq!(a.stats().freelist_hits, 1);
    }

    #[test]
    fn live_accounting_balances() {
        let mut a = SlabAllocator::new();
        let p = prof();
        let blocks: Vec<Block> = (0..100).map(|i| a.malloc(8 + i % 120, &p)).collect();
        assert_eq!(a.live_block_count(), 100);
        assert!(a.live_bytes() > 0);
        for b in blocks {
            a.free(b, &p);
        }
        assert_eq!(a.live_block_count(), 0);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "free of unknown")]
    fn double_free_panics() {
        let mut a = SlabAllocator::new();
        let p = prof();
        let b = a.malloc(16, &p);
        a.free(b, &p);
        a.free(b, &p);
    }

    #[test]
    #[should_panic(expected = "Allowed memory size")]
    fn memory_limit_exceeded_panics() {
        let mut a = SlabAllocator::new();
        let p = prof();
        a.set_memory_limit(Some(64));
        let _ = a.malloc(32, &p);
        let _ = a.malloc(64, &p); // 32 (rounded) + 64 > 64 → OOM
    }

    #[test]
    fn memory_limit_cleared_allows_allocation() {
        let mut a = SlabAllocator::new();
        let p = prof();
        a.set_memory_limit(Some(16));
        a.set_memory_limit(None);
        let b = a.malloc(4096, &p);
        a.free(b, &p);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    fn huge_allocation_uses_kernel_path() {
        let mut a = SlabAllocator::new();
        let p = prof();
        let b = a.malloc(100_000, &p);
        assert_eq!(b.class, usize::MAX);
        assert!(p.function("kernel_mmap_alloc").is_some());
        a.free(b, &p);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    fn avg_costs_near_paper_with_reuse() {
        // With strong memory reuse (paper §4.3) nearly every malloc hits the
        // free list, so the average should approach the fast-path cost and
        // land in the neighbourhood of the paper's 69 µops.
        let mut a = SlabAllocator::new();
        let p = prof();
        for _ in 0..2000 {
            let b1 = a.malloc(48, &p);
            let b2 = a.malloc(96, &p);
            a.free(b1, &p);
            a.free(b2, &p);
        }
        let avg = a.stats().avg_malloc_uops();
        assert!((55.0..85.0).contains(&avg), "avg malloc µops {avg}");
        let avg_f = a.stats().avg_free_uops();
        assert!((30.0..45.0).contains(&avg_f), "avg free µops {avg_f}");
    }

    #[test]
    fn size_cdf_reflects_small_dominance() {
        let mut a = SlabAllocator::new();
        let p = prof();
        let mut live = Vec::new();
        for i in 0..1000 {
            let size = if i % 10 == 0 { 600 } else { 16 + (i % 8) * 16 };
            live.push(a.malloc(size, &p));
        }
        let cdf128 = a.stats().cdf_at(128);
        assert!(cdf128 > 0.85, "≤128B should dominate, got {cdf128}");
        for b in live {
            a.free(b, &p);
        }
    }

    #[test]
    fn timeline_records_flat_reuse() {
        let mut a = SlabAllocator::new();
        a.set_timeline_interval(8);
        let p = prof();
        // Steady-state churn: allocate 4, free 4, repeatedly.
        for _ in 0..200 {
            let bs: Vec<Block> = (0..4).map(|_| a.malloc(32, &p)).collect();
            for b in bs {
                a.free(b, &p);
            }
        }
        let tl = a.timeline();
        assert!(tl.len() > 10);
        // Live memory for the 32B class stays bounded (strong reuse ⇒ flat).
        let max_live = tl.iter().map(|s| s.live_small[1]).max().unwrap();
        assert!(max_live <= 4 * 32);
    }

    #[test]
    fn zero_request_stats_are_all_zero() {
        // Satellite: division-by-zero / empty-state hardening. A freshly
        // built allocator and a default-constructed AllocStats (empty
        // histogram!) must both answer without panicking.
        let a = SlabAllocator::new();
        assert_eq!(a.stats().avg_malloc_uops(), 0.0);
        assert_eq!(a.stats().avg_free_uops(), 0.0);
        assert_eq!(a.stats().cdf_at(0), 0.0);
        assert_eq!(a.stats().cdf_at(128), 0.0);
        assert_eq!(a.stats().cdf_at(usize::MAX), 0.0);
        assert!(a.timeline().is_empty());

        let empty = AllocStats::default();
        assert!(empty.size_histogram.is_empty());
        assert_eq!(empty.cdf_at(64), 0.0);
        assert_eq!(empty.avg_malloc_uops(), 0.0);
        assert_eq!(empty.avg_free_uops(), 0.0);
    }

    #[test]
    fn arena_disabled_falls_through_to_freelist() {
        let mut a = SlabAllocator::new();
        let p = prof();
        let b = a.arena_malloc(32, &p);
        assert_ne!(b.class, ARENA_CLASS);
        assert_eq!(a.arena_block_count(), 0);
        a.free(b, &p);
        assert_eq!(a.live_block_count(), 0);
    }

    #[test]
    fn arena_alloc_and_logical_free_balance() {
        let mut a = SlabAllocator::new();
        a.set_arena_enabled(true);
        let p = prof();
        let b1 = a.arena_malloc(24, &p); // class 1 → 32 B
        let b2 = a.arena_malloc(100, &p); // class 6 → 112 B
        assert_eq!(b1.class, ARENA_CLASS);
        assert_eq!(a.arena_block_count(), 2);
        assert_eq!(a.live_block_count(), 2);
        assert_eq!(a.live_bytes(), 32 + 112);
        assert_eq!(a.arena_live_bytes(), 32 + 112);
        a.free(b1, &p);
        assert_eq!(a.arena_block_count(), 1);
        assert_eq!(a.live_bytes(), 112);
        a.free(b2, &p);
        assert_eq!(a.live_block_count(), 0);
        assert_eq!(a.live_bytes(), 0);
        assert_eq!(a.stats().arena_allocs, 2);
    }

    #[test]
    fn arena_epoch_reset_reclaims_everything_in_one_op() {
        let mut a = SlabAllocator::new();
        a.set_arena_enabled(true);
        let p = prof();
        for _ in 0..50 {
            let _ = a.arena_malloc(48, &p);
        }
        assert_eq!(a.arena_block_count(), 50);
        let frees_before = a.stats().frees;
        let report = a.reset_arena_epoch(&p);
        assert_eq!(report.blocks_reclaimed, 50);
        assert_eq!(report.bytes_reclaimed, 50 * 48);
        assert_eq!(report.uops_saved, 50 * cost::FREE_FAST - cost::ARENA_RESET);
        assert_eq!(a.arena_block_count(), 0);
        assert_eq!(a.live_block_count(), 0);
        assert_eq!(a.live_bytes(), 0);
        // O(1): the reset retires no per-block free events.
        assert_eq!(a.stats().frees, frees_before);
        assert_eq!(a.stats().arena_resets, 1);
        assert_eq!(a.stats().arena_bytes_reclaimed, 50 * 48);
        // An empty epoch resets to a no-op report.
        let empty = a.reset_arena_epoch(&p);
        assert_eq!(empty, ArenaEpochReport::default());
    }

    #[test]
    fn arena_reset_recycles_chunk_addresses() {
        let mut a = SlabAllocator::new();
        a.set_arena_enabled(true);
        let p = prof();
        let first = a.arena_malloc(64, &p);
        let _ = a.arena_malloc(64, &p);
        a.reset_arena_epoch(&p);
        let again = a.arena_malloc(64, &p);
        assert_eq!(again.addr, first.addr, "reset rewinds the bump pointer");
    }

    #[test]
    #[should_panic(expected = "arena double free")]
    fn arena_double_free_panics() {
        let mut a = SlabAllocator::new();
        a.set_arena_enabled(true);
        let p = prof();
        let b = a.arena_malloc(32, &p);
        // A second live block of the same class keeps the aggregate
        // counters satisfied — only the per-address check can catch this.
        let _live = a.arena_malloc(32, &p);
        a.free(b, &p);
        a.free(b, &p);
    }

    #[test]
    #[should_panic(expected = "stale block from a previous epoch")]
    fn arena_stale_epoch_free_panics() {
        let mut a = SlabAllocator::new();
        a.set_arena_enabled(true);
        let p = prof();
        let stale = a.arena_malloc(32, &p);
        a.reset_arena_epoch(&p);
        // The reset recycled the address: this block now owns it.
        let fresh = a.arena_malloc(32, &p);
        assert_eq!(stale.addr, fresh.addr);
        a.free(stale, &p);
    }

    #[test]
    fn arena_multi_chunk_epoch_recycles_every_chunk() {
        let mut a = SlabAllocator::new();
        a.set_arena_enabled(true);
        let p = prof();
        // 64 blocks of the 4096-byte class fill one 256 KiB chunk; the
        // 65th spills into a second. Both chunks must recycle on reset.
        let first: Vec<u64> = (0..65).map(|_| a.arena_malloc(4096, &p).addr).collect();
        a.reset_arena_epoch(&p);
        let second: Vec<u64> = (0..65).map(|_| a.arena_malloc(4096, &p).addr).collect();
        assert_eq!(
            first, second,
            "reset must rewind to the epoch's first chunk"
        );
    }

    #[test]
    fn arena_huge_requests_take_kernel_path() {
        let mut a = SlabAllocator::new();
        a.set_arena_enabled(true);
        let p = prof();
        let b = a.arena_malloc(100_000, &p);
        assert_eq!(b.class, usize::MAX);
        assert_eq!(a.arena_block_count(), 0);
        a.free(b, &p);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    fn arena_respects_memory_limit_like_freelist_mode() {
        // Arena charges the same rounded class size against total_live as
        // the free-list path, so OOM behaviour is mode-independent.
        let mut a = SlabAllocator::new();
        a.set_arena_enabled(true);
        a.set_memory_limit(Some(64));
        let p = prof();
        let _ = a.arena_malloc(32, &p);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = a.arena_malloc(64, &p);
        }));
        assert!(r.is_err(), "32 (rounded) + 64 > 64 must OOM in arena mode");
    }

    #[test]
    fn arena_timeline_includes_arena_live_bytes() {
        let mut a = SlabAllocator::new();
        a.set_arena_enabled(true);
        a.set_timeline_interval(1);
        let p = prof();
        let _ = a.arena_malloc(32, &p); // small class 1
        let _ = a.arena_malloc(600, &p); // large class (1024)
        let last = a.timeline().last().unwrap().clone();
        assert_eq!(last.live_small[1], 32);
        assert_eq!(last.live_large, 1024);
    }

    #[test]
    fn hardware_interop_keeps_accounting() {
        let mut a = SlabAllocator::new();
        let p = prof();
        let b = a.malloc(32, &p);
        a.free(b, &p);
        // Prefetcher steals the freed segment for the hardware free list.
        let seg = a.steal_free_segment(1).unwrap();
        assert_eq!(seg, b.addr);
        // Hardware serves an allocation from it.
        a.note_hardware_alloc(1, seg, 30);
        assert_eq!(a.live_block_count(), 1);
        a.note_hardware_free(seg);
        assert_eq!(a.live_block_count(), 0);
        // Overflow: hardware returns the segment to software.
        a.return_segment(1, seg);
        let again = a.malloc(32, &p);
        assert_eq!(again.addr, seg);
    }
}
