//! `RuntimeContext` — the VM facade wiring allocator, profiler, refcount
//! meter, and string library together.
//!
//! Every *metered* runtime operation flows through this type so its cost is
//! attributed to the right leaf function and category. Workloads and the
//! interpreter hold a single context per simulated request stream.

use crate::alloc::{Block, SlabAllocator, ARENA_CLASS};
use crate::array::{ArrayKey, PhpArray, WalkCost};
use crate::profile::{Category, OpCost, Profiler};
use crate::refcount::RefcountMeter;
use crate::strfuncs::{StrLib, StrMode};
use crate::string::PhpStr;
use crate::value::PhpValue;
use std::cell::{Cell, RefCell};

/// Kind of hash-map request, used by accelerator integration and statistics
/// (§4.2 distinguishes GET and SET mixes: "relatively higher percentage of
/// SET requests (ranging from 15-25%)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashOp {
    /// Read of a key.
    Get,
    /// Write of a key.
    Set,
    /// Key removal.
    Unset,
    /// Whole-map deallocation.
    Free,
    /// Ordered iteration.
    Foreach,
}

/// A recorded hash-map access, consumed by the hardware hash table model.
#[derive(Debug, Clone, PartialEq)]
pub struct HashEvent {
    /// Request kind.
    pub op: HashOp,
    /// Base address of the map.
    pub base_addr: u64,
    /// Key (cloned; int keys rendered canonically).
    pub key: Option<ArrayKey>,
    /// Software walk cost that was charged.
    pub sw_uops: u64,
}

/// Static-analysis facts applying to one hash-map access: which parts of its
/// dynamic bookkeeping were proven unnecessary ahead of time. The default is
/// "no facts" — full dynamic metering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStatic {
    /// Refcount traffic for the moved value is provably elidable.
    pub elide_rc: bool,
    /// The fetched value's type is statically proven (skip the type check).
    pub skip_type_check: bool,
}

/// The runtime context.
#[derive(Debug)]
pub struct RuntimeContext {
    profiler: Profiler,
    allocator: RefCell<SlabAllocator>,
    refcount: RefcountMeter,
    str_mode: Cell<StrMode>,
    scoped_blocks: RefCell<Vec<Block>>,
    hash_events: RefCell<Vec<HashEvent>>,
    record_hash_events: Cell<bool>,
    get_count: Cell<u64>,
    set_count: Cell<u64>,
    fuel: Cell<Option<u64>>,
    uop_deadline: Cell<Option<u64>>,
}

impl Default for RuntimeContext {
    fn default() -> Self {
        Self::new()
    }
}

impl RuntimeContext {
    /// Creates a fresh context with scalar string routines.
    pub fn new() -> Self {
        RuntimeContext {
            profiler: Profiler::new(),
            allocator: RefCell::new(SlabAllocator::new()),
            refcount: RefcountMeter::new(),
            str_mode: Cell::new(StrMode::Scalar),
            scoped_blocks: RefCell::new(Vec::new()),
            hash_events: RefCell::new(Vec::new()),
            record_hash_events: Cell::new(false),
            get_count: Cell::new(0),
            set_count: Cell::new(0),
            fuel: Cell::new(None),
            uop_deadline: Cell::new(None),
        }
    }

    // -- execution budget ----------------------------------------------------

    /// Arms (or with `None`, disarms) the step-count fuel budget. Each
    /// interpreter step consumes one unit via
    /// [`RuntimeContext::consume_fuel`]; exhaustion makes that call report
    /// `false` so callers can abort the request cleanly.
    pub fn set_fuel(&self, fuel: Option<u64>) {
        self.fuel.set(fuel);
    }

    /// Remaining fuel, or `None` when unmetered.
    pub fn fuel_remaining(&self) -> Option<u64> {
        self.fuel.get()
    }

    /// Arms (or disarms) the wall-clock-equivalent deadline, expressed as a
    /// ceiling on the profiler's cumulative µop count.
    pub fn set_uop_deadline(&self, deadline: Option<u64>) {
        self.uop_deadline.set(deadline);
    }

    /// The armed µop deadline, if any.
    pub fn uop_deadline(&self) -> Option<u64> {
        self.uop_deadline.get()
    }

    /// Consumes `n` units of fuel. Returns `false` once the fuel budget is
    /// exhausted or the µop deadline has passed — the caller must then stop
    /// executing. With no budget armed this always returns `true`.
    pub fn consume_fuel(&self, n: u64) -> bool {
        if let Some(f) = self.fuel.get() {
            if f < n {
                self.fuel.set(Some(0));
                return false;
            }
            self.fuel.set(Some(f - n));
        }
        if let Some(deadline) = self.uop_deadline.get() {
            if self.profiler.total_uops() >= deadline {
                return false;
            }
        }
        true
    }

    /// The profiler.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// The refcount meter.
    pub fn refcount(&self) -> &RefcountMeter {
        &self.refcount
    }

    /// Runs `f` with the slab allocator borrowed mutably.
    pub fn with_allocator<R>(&self, f: impl FnOnce(&mut SlabAllocator) -> R) -> R {
        f(&mut self.allocator.borrow_mut())
    }

    /// Selects the software string implementation family.
    pub fn set_str_mode(&self, mode: StrMode) {
        self.str_mode.set(mode);
    }

    /// A string-library handle bound to this context's profiler and mode.
    pub fn strlib(&self) -> StrLib<'_> {
        StrLib::new(&self.profiler, self.str_mode.get())
    }

    // -- heap ---------------------------------------------------------------

    /// Allocates `size` bytes through the software slab allocator.
    pub fn malloc(&self, size: usize) -> Block {
        self.allocator.borrow_mut().malloc(size, &self.profiler)
    }

    /// Turns the allocator's request-arena mode on or off for this context.
    pub fn set_arena_enabled(&self, enabled: bool) {
        self.allocator.borrow_mut().set_arena_enabled(enabled);
    }

    /// Whether arena mode is on.
    pub fn arena_enabled(&self) -> bool {
        self.allocator.borrow().arena_enabled()
    }

    /// Allocates `size` bytes from the request arena when arena mode is on
    /// (falling back to the free-list path otherwise). Callers must only use
    /// this for allocations the region analysis proved arena-safe.
    pub fn arena_malloc(&self, size: usize) -> Block {
        self.allocator
            .borrow_mut()
            .arena_malloc(size, &self.profiler)
    }

    /// Frees a block.
    pub fn free(&self, block: Block) {
        self.allocator.borrow_mut().free(block, &self.profiler);
    }

    /// Allocates a block that lives until [`RuntimeContext::end_request`]
    /// (request-arena lifetime, like PHP's per-request memory).
    pub fn alloc_scoped(&self, size: usize) -> Block {
        let b = self.malloc(size);
        self.scoped_blocks.borrow_mut().push(b);
        b
    }

    /// [`RuntimeContext::alloc_scoped`] with a region-analysis verdict:
    /// arena-safe sites bump-allocate into the request arena and skip the
    /// scoped free list entirely — the epoch reset in
    /// [`RuntimeContext::end_request`] reclaims them in O(1).
    pub fn alloc_scoped_static(&self, size: usize, arena_safe: bool) -> Block {
        if arena_safe {
            let b = self.arena_malloc(size);
            if b.class == ARENA_CLASS {
                return b;
            }
            // Arena off (or huge request): fell through to the free-list
            // path, so the block must be torn down per-block as usual.
            self.scoped_blocks.borrow_mut().push(b);
            return b;
        }
        self.alloc_scoped(size)
    }

    /// Frees all request-scoped blocks (end of a simulated request), then
    /// resets the arena epoch: every arena block still live is reclaimed in
    /// one constant-cost operation, and the saved teardown work is booked
    /// into the static-savings counters.
    pub fn end_request(&self) {
        let blocks: Vec<Block> = std::mem::take(&mut *self.scoped_blocks.borrow_mut());
        let mut alloc = self.allocator.borrow_mut();
        for b in blocks {
            alloc.free(b, &self.profiler);
        }
        let report = alloc.reset_arena_epoch(&self.profiler);
        if report.blocks_reclaimed > 0 {
            self.profiler
                .note_arena_reset(report.bytes_reclaimed, report.uops_saved);
        }
    }

    /// Creates a string *value*, charging its transient heap allocation and
    /// immediate release — the paper's "once a HTML tag is produced [...]
    /// the memory associated with these strings are recycled" churn pattern.
    pub fn make_transient_str(&self, s: impl Into<PhpStr>) -> PhpValue {
        let s: PhpStr = s.into();
        let b = self.malloc(s.heap_size());
        self.free(b);
        PhpValue::str(s)
    }

    /// [`RuntimeContext::make_transient_str`] with a region-analysis
    /// verdict: an arena-safe transient string churns through the bump
    /// arena (cheap alloc, logical free) instead of the free lists.
    pub fn make_transient_str_static(&self, s: impl Into<PhpStr>, arena_safe: bool) -> PhpValue {
        if !arena_safe {
            return self.make_transient_str(s);
        }
        let s: PhpStr = s.into();
        let b = self.arena_malloc(s.heap_size());
        self.free(b);
        PhpValue::str(s)
    }

    /// Creates a string value whose backing allocation lives for the request.
    pub fn make_str(&self, s: impl Into<PhpStr>) -> PhpValue {
        let s: PhpStr = s.into();
        self.alloc_scoped(s.heap_size());
        PhpValue::str(s)
    }

    /// Creates a new array with a simulated base address (request-scoped).
    pub fn new_array(&self) -> PhpArray {
        self.new_array_static(false)
    }

    /// [`RuntimeContext::new_array`] with a region-analysis verdict for the
    /// descriptor allocation.
    pub fn new_array_static(&self, arena_safe: bool) -> PhpArray {
        let mut a = PhpArray::new();
        let b = self.alloc_scoped_static(64, arena_safe); // descriptor allocation
        a.set_base_addr(b.addr);
        a
    }

    // -- type checks & refcounting -------------------------------------------

    /// Charges one dynamic type check (the overhead checked-load \[22\]
    /// removes).
    pub fn type_check(&self, _v: &PhpValue) {
        self.profiler.record(
            "zval_type_check",
            Category::TypeCheck,
            PhpValue::type_check_cost(),
        );
    }

    /// Charges refcount traffic for copying a value (inc) if refcounted.
    pub fn refcount_on_copy(&self, v: &PhpValue) {
        if v.is_refcounted() {
            self.refcount.inc(&self.profiler);
        }
    }

    /// Charges refcount traffic for destroying a value (dec) if refcounted.
    pub fn refcount_on_drop(&self, v: &PhpValue) {
        if v.is_refcounted() {
            self.refcount.dec(&self.profiler);
        }
    }

    /// Like [`RuntimeContext::refcount_on_copy`], but when `elide` is set the
    /// increment was statically proven removable (non-escaping temporary):
    /// nothing is charged and the avoided op is counted instead.
    pub fn refcount_on_copy_elidable(&self, v: &PhpValue, elide: bool) {
        if !v.is_refcounted() {
            return;
        }
        if elide {
            self.profiler.note_rc_inc_avoided();
        } else {
            self.refcount.inc(&self.profiler);
        }
    }

    /// Like [`RuntimeContext::refcount_on_drop`], with static elision.
    pub fn refcount_on_drop_elidable(&self, v: &PhpValue, elide: bool) {
        if !v.is_refcounted() {
            return;
        }
        if elide {
            self.profiler.note_rc_dec_avoided();
        } else {
            self.refcount.dec(&self.profiler);
        }
    }

    /// Charges a dynamic type check unless static analysis proved the value's
    /// type (`skip`), in which case the avoided check is counted.
    pub fn type_check_elidable(&self, v: &PhpValue, skip: bool) {
        if skip {
            self.profiler.note_type_check_avoided();
        } else {
            self.type_check(v);
        }
    }

    // -- metered hash-map operations -----------------------------------------

    /// Enables recording of hash events for accelerator replay.
    pub fn set_record_hash_events(&self, on: bool) {
        self.record_hash_events.set(on);
    }

    /// Drains the recorded hash events.
    pub fn take_hash_events(&self) -> Vec<HashEvent> {
        std::mem::take(&mut *self.hash_events.borrow_mut())
    }

    fn log_hash(&self, op: HashOp, base: u64, key: Option<&ArrayKey>, wc: Option<&WalkCost>) {
        match op {
            HashOp::Get => self.get_count.set(self.get_count.get() + 1),
            HashOp::Set => self.set_count.set(self.set_count.get() + 1),
            _ => {}
        }
        if self.record_hash_events.get() {
            self.hash_events.borrow_mut().push(HashEvent {
                op,
                base_addr: base,
                key: key.cloned(),
                sw_uops: wc.map(|w| w.cost.uops).unwrap_or(0),
            });
        }
    }

    /// GET/SET counts so far — `(gets, sets)`; the paper reports SET shares
    /// of 15–25 % for these applications.
    pub fn hash_op_counts(&self) -> (u64, u64) {
        (self.get_count.get(), self.set_count.get())
    }

    /// Metered hash GET: charges the software walk (≈ 90.66 µops average),
    /// a type check on the fetched value, and refcount traffic for the copy.
    pub fn array_get(&self, arr: &PhpArray, key: &ArrayKey) -> Option<PhpValue> {
        self.array_get_static(arr, key, AccessStatic::default())
    }

    /// [`RuntimeContext::array_get`] with static-analysis facts: the walk is
    /// still charged, but proven-unnecessary type checks and refcount
    /// increments are skipped (and counted as avoided).
    pub fn array_get_static(
        &self,
        arr: &PhpArray,
        key: &ArrayKey,
        facts: AccessStatic,
    ) -> Option<PhpValue> {
        if arr.index_stale() {
            // §4.2: stale index must be rebuilt before software access.
            // Caller-side mutation isn't possible through &PhpArray; the
            // metered path charges the rebuild cost and proceeds on the
            // ordered table (still correct, linear).
            self.profiler.record(
                "zend_hash_rebuild",
                Category::HashMap,
                OpCost::mixed(20 + 30 * arr.len() as u64),
            );
        }
        let (found, wc) = arr.get_with_cost(key);
        self.profiler
            .record("zend_hash_find", Category::HashMap, wc.cost);
        self.log_hash(HashOp::Get, arr.base_addr(), Some(key), Some(&wc));
        let out = found.cloned();
        if let Some(v) = &out {
            self.type_check_elidable(v, facts.skip_type_check);
            self.refcount_on_copy_elidable(v, facts.elide_rc);
        }
        out
    }

    /// Metered hash SET.
    pub fn array_set(&self, arr: &mut PhpArray, key: ArrayKey, value: PhpValue) {
        self.array_set_static(arr, key, value, AccessStatic::default());
    }

    /// [`RuntimeContext::array_set`] with static-analysis facts: proven
    /// refcount traffic (inc of the stored value, dec of the overwritten one)
    /// is skipped and counted as avoided.
    pub fn array_set_static(
        &self,
        arr: &mut PhpArray,
        key: ArrayKey,
        value: PhpValue,
        facts: AccessStatic,
    ) {
        self.refcount_on_copy_elidable(&value, facts.elide_rc);
        let logged_key = key.clone();
        let (old, wc) = arr.insert_with_cost(key, value);
        self.profiler
            .record("zend_hash_update", Category::HashMap, wc.cost);
        self.log_hash(HashOp::Set, arr.base_addr(), Some(&logged_key), Some(&wc));
        if let Some(old) = old {
            self.refcount_on_drop_elidable(&old, facts.elide_rc);
        }
    }

    /// Metered hash unset.
    pub fn array_remove(&self, arr: &mut PhpArray, key: &ArrayKey) -> Option<PhpValue> {
        let (old, wc) = arr.remove_with_cost(key);
        self.profiler
            .record("zend_hash_del", Category::HashMap, wc.cost);
        self.log_hash(HashOp::Unset, arr.base_addr(), Some(key), Some(&wc));
        if let Some(v) = &old {
            self.refcount_on_drop(v);
        }
        old
    }

    /// Metered whole-map free (hash maps are freed when their request scope
    /// or function scope ends).
    pub fn array_free(&self, arr: &PhpArray) {
        self.profiler.record(
            "zend_hash_destroy",
            Category::HashMap,
            OpCost::mixed(16 + 6 * arr.len() as u64),
        );
        self.log_hash(HashOp::Free, arr.base_addr(), None, None);
    }

    /// Charges a metered ordered iteration (`foreach`).
    pub fn charge_foreach(&self, arr: &PhpArray) {
        self.profiler
            .record("zend_hash_foreach", Category::HashMap, arr.foreach_cost());
        self.log_hash(HashOp::Foreach, arr.base_addr(), None, None);
    }

    /// Charges interpreter/JIT "compiled code" work not belonging to any
    /// library category.
    pub fn charge_jit(&self, uops: u64) {
        self.profiler
            .record("jit_compiled_code", Category::JitCode, OpCost::mixed(uops));
    }

    /// Charges miscellaneous VM work under the given leaf-function name.
    pub fn charge_other(&self, name: &str, uops: u64) {
        self.profiler
            .record(name, Category::Other, OpCost::mixed(uops));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_ops_charge_hash_category() {
        let ctx = RuntimeContext::new();
        let mut a = ctx.new_array();
        ctx.array_set(&mut a, ArrayKey::from("k"), PhpValue::from("v"));
        let v = ctx.array_get(&a, &ArrayKey::from("k")).unwrap();
        assert!(v.loose_eq(&PhpValue::from("v")));
        let breakdown = ctx.profiler().category_breakdown();
        assert!(breakdown[&Category::HashMap] > 0);
        assert!(breakdown[&Category::RefCount] > 0);
        assert!(breakdown[&Category::TypeCheck] > 0);
        let (gets, sets) = ctx.hash_op_counts();
        assert_eq!((gets, sets), (1, 1));
    }

    #[test]
    fn hash_events_recorded_when_enabled() {
        let ctx = RuntimeContext::new();
        ctx.set_record_hash_events(true);
        let mut a = ctx.new_array();
        ctx.array_set(&mut a, ArrayKey::from("x"), PhpValue::from(1i64));
        ctx.array_get(&a, &ArrayKey::from("x"));
        ctx.array_free(&a);
        let ev = ctx.take_hash_events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].op, HashOp::Set);
        assert_eq!(ev[1].op, HashOp::Get);
        assert_eq!(ev[2].op, HashOp::Free);
        assert_eq!(ev[0].base_addr, a.base_addr());
        assert!(ev[1].sw_uops > 0);
        assert!(ctx.take_hash_events().is_empty(), "drained");
    }

    #[test]
    fn request_scope_frees_blocks() {
        let ctx = RuntimeContext::new();
        ctx.alloc_scoped(32);
        ctx.alloc_scoped(64);
        let live = ctx.with_allocator(|a| a.live_block_count());
        assert_eq!(live, 2);
        ctx.end_request();
        let live = ctx.with_allocator(|a| a.live_block_count());
        assert_eq!(live, 0);
    }

    #[test]
    fn arena_scoped_blocks_reclaimed_at_end_request() {
        let ctx = RuntimeContext::new();
        ctx.set_arena_enabled(true);
        ctx.alloc_scoped_static(32, true); // arena
        ctx.alloc_scoped_static(64, false); // free list
        assert_eq!(ctx.with_allocator(|a| a.live_block_count()), 2);
        assert_eq!(ctx.with_allocator(|a| a.arena_block_count()), 1);
        ctx.end_request();
        assert_eq!(ctx.with_allocator(|a| a.live_block_count()), 0);
        let s = ctx.profiler().static_savings();
        assert_eq!(s.arena_bytes_reclaimed, 32);
    }

    #[test]
    fn arena_safe_verdict_is_inert_with_arena_off() {
        // Verdicts flow unconditionally from call sites; with arena mode
        // off they must change nothing versus the plain scoped path.
        let ctx = RuntimeContext::new();
        ctx.alloc_scoped_static(32, true);
        let _ = ctx.make_transient_str_static("abcdef", true);
        assert_eq!(ctx.with_allocator(|a| a.arena_block_count()), 0);
        ctx.end_request();
        assert_eq!(ctx.with_allocator(|a| a.live_block_count()), 0);
        assert_eq!(ctx.profiler().static_savings().arena_bytes_reclaimed, 0);
    }

    #[test]
    fn transient_str_charges_malloc_and_free() {
        let ctx = RuntimeContext::new();
        let v = ctx.make_transient_str("hello world");
        assert!(v.loose_eq(&PhpValue::from("hello world")));
        let stats = ctx.with_allocator(|a| a.stats().clone());
        assert_eq!(stats.mallocs, 1);
        assert_eq!(stats.frees, 1);
    }

    #[test]
    fn new_array_has_base_addr() {
        let ctx = RuntimeContext::new();
        let a = ctx.new_array();
        let b = ctx.new_array();
        assert_ne!(a.base_addr(), 0);
        assert_ne!(a.base_addr(), b.base_addr());
    }

    #[test]
    fn fuel_budget_exhausts() {
        let ctx = RuntimeContext::new();
        assert!(ctx.consume_fuel(1_000_000), "unmetered by default");
        ctx.set_fuel(Some(3));
        assert!(ctx.consume_fuel(2));
        assert_eq!(ctx.fuel_remaining(), Some(1));
        assert!(!ctx.consume_fuel(2), "over budget");
        assert_eq!(ctx.fuel_remaining(), Some(0));
        assert!(!ctx.consume_fuel(1), "stays exhausted");
        ctx.set_fuel(None);
        assert!(ctx.consume_fuel(1), "disarmed");
    }

    #[test]
    fn uop_deadline_trips_after_charges() {
        let ctx = RuntimeContext::new();
        ctx.set_uop_deadline(Some(10));
        assert!(ctx.consume_fuel(1));
        ctx.charge_jit(50);
        assert!(!ctx.consume_fuel(1), "deadline passed");
        ctx.set_uop_deadline(None);
        assert!(ctx.consume_fuel(1), "disarmed");
    }

    #[test]
    fn strlib_mode_switch() {
        let ctx = RuntimeContext::new();
        assert_eq!(ctx.strlib().mode(), StrMode::Scalar);
        ctx.set_str_mode(StrMode::Swar);
        assert_eq!(ctx.strlib().mode(), StrMode::Swar);
    }
}
