//! Leaf-function profiler.
//!
//! The paper's analysis rests on `perf`-style leaf-function profiles of the
//! PHP applications (Figures 1, 3, 4, 5). Our substitution is an in-runtime
//! profiler: every runtime library operation attributes its simulated cost
//! (micro-ops, branches, loads, stores) to a named leaf function tagged with
//! one of the paper's activity categories.
//!
//! Costs are *simulated micro-ops*, not wall-clock time; the
//! `uarch-sim` crate converts them to cycles through a core model.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;

/// Activity category of a leaf function.
///
/// The first four are the paper's acceleration targets (§3, Figure 4); the
/// rest cover abstraction overheads with known prior solutions and the
/// remainder of the execution profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Hash map access (GET/SET/free/foreach walks).
    HashMap,
    /// Heap management (malloc/free slab paths).
    Heap,
    /// String manipulation (copy/match/modify library functions).
    String,
    /// Regular expression processing.
    Regex,
    /// Dynamic type checks (addressed by checked-load \[22\]).
    TypeCheck,
    /// Reference counting (addressed by hardware refcounting \[46\]).
    RefCount,
    /// JIT-compiled application code (the interpreter's own work here).
    JitCode,
    /// Everything else (VM plumbing, request handling, ...).
    Other,
}

impl Category {
    /// All categories in presentation order.
    pub const ALL: [Category; 8] = [
        Category::HashMap,
        Category::Heap,
        Category::String,
        Category::Regex,
        Category::TypeCheck,
        Category::RefCount,
        Category::JitCode,
        Category::Other,
    ];

    /// Short label used by the figure harnesses.
    pub fn label(self) -> &'static str {
        match self {
            Category::HashMap => "hash-map",
            Category::Heap => "heap",
            Category::String => "string",
            Category::Regex => "regex",
            Category::TypeCheck => "type-check",
            Category::RefCount => "refcount",
            Category::JitCode => "jit-code",
            Category::Other => "other",
        }
    }

    /// Is this one of the four acceleration targets of §4?
    pub fn is_accel_target(self) -> bool {
        matches!(
            self,
            Category::HashMap | Category::Heap | Category::String | Category::Regex
        )
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cost of one invocation of a leaf function, in simulated micro-ops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCost {
    /// Total micro-ops.
    pub uops: u64,
    /// Conditional/indirect branches among them.
    pub branches: u64,
    /// Data loads among them.
    pub loads: u64,
    /// Data stores among them.
    pub stores: u64,
}

impl OpCost {
    /// A pure-ALU cost.
    pub fn alu(uops: u64) -> Self {
        OpCost {
            uops,
            ..Default::default()
        }
    }

    /// A mixed cost with typical library-routine proportions:
    /// ~22% branches (paper §2), ~30% loads, ~12% stores.
    pub fn mixed(uops: u64) -> Self {
        OpCost {
            uops,
            branches: uops * 22 / 100,
            loads: uops * 30 / 100,
            stores: uops * 12 / 100,
        }
    }

    /// Component-wise sum.
    pub fn plus(self, other: OpCost) -> OpCost {
        OpCost {
            uops: self.uops + other.uops,
            branches: self.branches + other.branches,
            loads: self.loads + other.loads,
            stores: self.stores + other.stores,
        }
    }

    /// Scale every component by an integer factor.
    pub fn scaled(self, k: u64) -> OpCost {
        OpCost {
            uops: self.uops * k,
            branches: self.branches * k,
            loads: self.loads * k,
            stores: self.stores * k,
        }
    }
}

/// Accumulated statistics for one leaf function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncStats {
    /// Category tag.
    pub category: Option<Category>,
    /// Invocation count.
    pub calls: u64,
    /// Total cost across calls.
    pub cost: OpCost,
}

/// A snapshot row of the profile, sorted hottest-first by [`Profiler::leaf_profile`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Leaf function name.
    pub name: String,
    /// Category.
    pub category: Category,
    /// Invocations.
    pub calls: u64,
    /// Total micro-ops.
    pub uops: u64,
    /// Fraction of total profile micro-ops, in \[0, 1\].
    pub share: f64,
}

/// Work proven unnecessary by static analysis (the `php-analysis` crate) and
/// skipped at run time. These are *avoided* costs: nothing is charged to the
/// profile for them; the counters exist so experiments can report how much
/// dynamic-type-check and refcount traffic specialization removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticSavings {
    /// Dynamic type checks skipped because operand types were proven.
    pub type_checks_avoided: u64,
    /// Refcount increments skipped on proven-non-escaping temporaries.
    pub rc_incs_avoided: u64,
    /// Refcount decrements skipped on proven-non-escaping temporaries.
    pub rc_decs_avoided: u64,
    /// User-call boundaries crossed with an interprocedural summary in hand
    /// (facts survived instead of dropping to ⊤).
    pub summaries_applied: u64,
    /// `preg_*` compiles skipped because the analysis compiled the constant
    /// pattern ahead of time.
    pub regex_compiles_avoided: u64,
    /// Hardware heap size classes whose free lists were pre-seeded from
    /// statically known allocation sizes.
    pub heap_classes_preseeded: u64,
    /// Tainted-sink lints the attached analysis raised for the program.
    pub taint_lints_flagged: u64,
    /// Allocation sites the region analysis proved arena-safe (die at
    /// request end; served by the bump arena instead of free lists).
    pub arena_safe_sites: u64,
    /// Bytes reclaimed wholesale by O(1) arena epoch resets instead of
    /// per-block free-list teardown.
    pub arena_bytes_reclaimed: u64,
    /// µops the per-block end-of-request teardown would have cost, saved by
    /// arena epoch resets.
    pub teardown_uops_saved: u64,
    /// Opcodes executed by the compiled-bytecode VM (zero under the
    /// tree-walking engine).
    pub vm_ops_executed: u64,
    /// Fused superinstructions among the executed opcodes.
    pub vm_fused_ops: u64,
    /// Transient string allocations elided by fused opcodes (concat
    /// intermediates, echo-of-string materializations).
    pub vm_transients_elided: u64,
    /// Cross-request memo-cache hits: a memoizable call site answered from
    /// the shared tier instead of re-executing the callee.
    pub memo_hits: u64,
    /// Memoizable sites that executed because no entry (or a stale entry)
    /// was cached under their dependency key.
    pub memo_misses: u64,
    /// Results stored into the shared memo tier after a miss.
    pub memo_stores: u64,
    /// Memo entries invalidated by writes to variables in their read-sets.
    pub memo_invalidations: u64,
}

impl StaticSavings {
    /// Total avoided operations.
    pub fn total(&self) -> u64 {
        self.type_checks_avoided + self.rc_incs_avoided + self.rc_decs_avoided
    }

    /// Adds another tally into this one, counter by counter. Server pools
    /// use this to fold per-worker savings into a lossless total.
    pub fn accumulate(&mut self, other: &StaticSavings) {
        self.type_checks_avoided += other.type_checks_avoided;
        self.rc_incs_avoided += other.rc_incs_avoided;
        self.rc_decs_avoided += other.rc_decs_avoided;
        self.summaries_applied += other.summaries_applied;
        self.regex_compiles_avoided += other.regex_compiles_avoided;
        self.heap_classes_preseeded += other.heap_classes_preseeded;
        self.taint_lints_flagged += other.taint_lints_flagged;
        self.arena_safe_sites += other.arena_safe_sites;
        self.arena_bytes_reclaimed += other.arena_bytes_reclaimed;
        self.teardown_uops_saved += other.teardown_uops_saved;
        self.vm_ops_executed += other.vm_ops_executed;
        self.vm_fused_ops += other.vm_fused_ops;
        self.vm_transients_elided += other.vm_transients_elided;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.memo_stores += other.memo_stores;
        self.memo_invalidations += other.memo_invalidations;
    }
}

/// The profiler. Interior-mutable so that runtime operations can record
/// through a shared reference (`&RuntimeContext`).
#[derive(Debug, Default)]
pub struct Profiler {
    inner: RefCell<ProfilerInner>,
}

#[derive(Debug, Default)]
struct ProfilerInner {
    funcs: HashMap<String, FuncStats>,
    total: OpCost,
    enabled_depth: u32,
    savings: StaticSavings,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one invocation of leaf function `name` in `category` with `cost`.
    pub fn record(&self, name: &str, category: Category, cost: OpCost) {
        let mut inner = self.inner.borrow_mut();
        if inner.enabled_depth > 0 {
            return;
        }
        inner.total = inner.total.plus(cost);
        let entry = inner.funcs.entry(name.to_owned()).or_default();
        entry.category.get_or_insert(category);
        entry.calls += 1;
        entry.cost = entry.cost.plus(cost);
    }

    /// Temporarily disables recording (e.g. while replaying a trace).
    /// Must be balanced with [`Profiler::resume`].
    pub fn pause(&self) {
        self.inner.borrow_mut().enabled_depth += 1;
    }

    /// Re-enables recording after a [`Profiler::pause`].
    ///
    /// # Panics
    ///
    /// Panics if called without a matching `pause`.
    pub fn resume(&self) {
        let mut inner = self.inner.borrow_mut();
        assert!(inner.enabled_depth > 0, "resume without pause");
        inner.enabled_depth -= 1;
    }

    /// Total micro-ops recorded so far.
    pub fn total_uops(&self) -> u64 {
        self.inner.borrow().total.uops
    }

    /// Total cost recorded so far.
    pub fn total_cost(&self) -> OpCost {
        self.inner.borrow().total
    }

    /// Number of distinct leaf functions observed.
    pub fn function_count(&self) -> usize {
        self.inner.borrow().funcs.len()
    }

    /// Stats for one function, if it was ever recorded.
    pub fn function(&self, name: &str) -> Option<FuncStats> {
        self.inner.borrow().funcs.get(name).cloned()
    }

    /// Aggregated micro-ops per category.
    pub fn category_breakdown(&self) -> HashMap<Category, u64> {
        let inner = self.inner.borrow();
        let mut out = HashMap::new();
        for stats in inner.funcs.values() {
            if let Some(cat) = stats.category {
                *out.entry(cat).or_insert(0) += stats.cost.uops;
            }
        }
        out
    }

    /// The leaf-function profile, hottest first (Figure 1 / Figure 3 input).
    pub fn leaf_profile(&self) -> Vec<ProfileRow> {
        let inner = self.inner.borrow();
        let total = inner.total.uops.max(1) as f64;
        let mut rows: Vec<ProfileRow> = inner
            .funcs
            .iter()
            .map(|(name, s)| ProfileRow {
                name: name.clone(),
                category: s.category.unwrap_or(Category::Other),
                calls: s.calls,
                uops: s.cost.uops,
                share: s.cost.uops as f64 / total,
            })
            .collect();
        rows.sort_by(|a, b| b.uops.cmp(&a.uops).then_with(|| a.name.cmp(&b.name)));
        rows
    }

    /// Cumulative share covered by the hottest `n` functions (Figure 1's
    /// "about 100 functions account for about 65% of cycles").
    pub fn cumulative_share(&self, n: usize) -> f64 {
        self.leaf_profile().iter().take(n).map(|r| r.share).sum()
    }

    /// Clears all recorded data.
    pub fn reset(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.funcs.clear();
        inner.total = OpCost::default();
        inner.savings = StaticSavings::default();
    }

    // -- statically avoided work ---------------------------------------------

    /// Notes a dynamic type check proven unnecessary and skipped.
    pub fn note_type_check_avoided(&self) {
        self.inner.borrow_mut().savings.type_checks_avoided += 1;
    }

    /// Notes a refcount increment proven unnecessary and skipped.
    pub fn note_rc_inc_avoided(&self) {
        self.inner.borrow_mut().savings.rc_incs_avoided += 1;
    }

    /// Notes a refcount decrement proven unnecessary and skipped.
    pub fn note_rc_dec_avoided(&self) {
        self.inner.borrow_mut().savings.rc_decs_avoided += 1;
    }

    /// Notes a call evaluated with an interprocedural summary attached.
    pub fn note_summary_applied(&self) {
        self.inner.borrow_mut().savings.summaries_applied += 1;
    }

    /// Notes a regex compile skipped thanks to analysis-time compilation.
    pub fn note_regex_compile_avoided(&self) {
        self.inner.borrow_mut().savings.regex_compiles_avoided += 1;
    }

    /// Notes `n` heap size classes pre-seeded from static allocation sizes.
    pub fn note_heap_classes_preseeded(&self, n: u64) {
        self.inner.borrow_mut().savings.heap_classes_preseeded += n;
    }

    /// Notes `n` tainted-sink lints flagged by the attached analysis.
    pub fn note_taint_lints(&self, n: u64) {
        self.inner.borrow_mut().savings.taint_lints_flagged += n;
    }

    /// Notes `n` allocation sites the region analysis proved arena-safe.
    pub fn note_arena_safe_sites(&self, n: u64) {
        self.inner.borrow_mut().savings.arena_safe_sites += n;
    }

    /// Notes one arena epoch reset: `bytes` reclaimed in O(1) and the
    /// `uops_saved` a per-block free-list teardown would have cost instead.
    pub fn note_arena_reset(&self, bytes: u64, uops_saved: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.savings.arena_bytes_reclaimed += bytes;
        inner.savings.teardown_uops_saved += uops_saved;
    }

    /// Notes one compiled-VM run: opcodes executed, fused superinstructions
    /// among them, and transient allocations those superinstructions elided.
    pub fn note_vm_execution(&self, ops: u64, fused: u64, transients_elided: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.savings.vm_ops_executed += ops;
        inner.savings.vm_fused_ops += fused;
        inner.savings.vm_transients_elided += transients_elided;
    }

    /// Notes one memo-cache hit: the memoized result was replayed and the
    /// callee body skipped.
    pub fn note_memo_hit(&self) {
        self.inner.borrow_mut().savings.memo_hits += 1;
    }

    /// Notes one memo-cache miss (the site executed normally).
    pub fn note_memo_miss(&self) {
        self.inner.borrow_mut().savings.memo_misses += 1;
    }

    /// Notes one result stored into the memo tier.
    pub fn note_memo_store(&self) {
        self.inner.borrow_mut().savings.memo_stores += 1;
    }

    /// Notes `n` memo entries invalidated by a dependency write.
    pub fn note_memo_invalidations(&self, n: u64) {
        self.inner.borrow_mut().savings.memo_invalidations += n;
    }

    /// Work skipped thanks to static analysis so far.
    pub fn static_savings(&self) -> StaticSavings {
        self.inner.borrow().savings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_function() {
        let p = Profiler::new();
        p.record("zend_hash_find", Category::HashMap, OpCost::mixed(90));
        p.record("zend_hash_find", Category::HashMap, OpCost::mixed(90));
        p.record("php_trim", Category::String, OpCost::alu(30));
        let f = p.function("zend_hash_find").unwrap();
        assert_eq!(f.calls, 2);
        assert_eq!(f.cost.uops, 180);
        assert_eq!(p.total_uops(), 210);
        assert_eq!(p.function_count(), 2);
    }

    #[test]
    fn leaf_profile_is_sorted_hottest_first() {
        let p = Profiler::new();
        p.record("cold", Category::Other, OpCost::alu(1));
        p.record("hot", Category::JitCode, OpCost::alu(100));
        p.record("warm", Category::String, OpCost::alu(10));
        let rows = p.leaf_profile();
        assert_eq!(rows[0].name, "hot");
        assert_eq!(rows[1].name, "warm");
        assert_eq!(rows[2].name, "cold");
        assert!((rows[0].share - 100.0 / 111.0).abs() < 1e-12);
    }

    #[test]
    fn cumulative_share_sums_top_n() {
        let p = Profiler::new();
        for i in 0..10 {
            p.record(&format!("f{i}"), Category::Other, OpCost::alu(10));
        }
        assert!((p.cumulative_share(5) - 0.5).abs() < 1e-12);
        assert!((p.cumulative_share(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn category_breakdown_aggregates() {
        let p = Profiler::new();
        p.record("a", Category::Heap, OpCost::alu(69));
        p.record("b", Category::Heap, OpCost::alu(37));
        p.record("c", Category::Regex, OpCost::alu(10));
        let m = p.category_breakdown();
        assert_eq!(m[&Category::Heap], 106);
        assert_eq!(m[&Category::Regex], 10);
        assert!(!m.contains_key(&Category::String));
    }

    #[test]
    fn pause_suppresses_recording() {
        let p = Profiler::new();
        p.pause();
        p.record("x", Category::Other, OpCost::alu(5));
        p.resume();
        assert_eq!(p.total_uops(), 0);
        p.record("x", Category::Other, OpCost::alu(5));
        assert_eq!(p.total_uops(), 5);
    }

    #[test]
    #[should_panic(expected = "resume without pause")]
    fn unbalanced_resume_panics() {
        Profiler::new().resume();
    }

    #[test]
    fn mixed_cost_proportions() {
        let c = OpCost::mixed(100);
        assert_eq!(c.branches, 22);
        assert_eq!(c.loads, 30);
        assert_eq!(c.stores, 12);
    }

    #[test]
    fn reset_clears_everything() {
        let p = Profiler::new();
        p.record("a", Category::Other, OpCost::alu(5));
        p.note_type_check_avoided();
        p.reset();
        assert_eq!(p.total_uops(), 0);
        assert_eq!(p.function_count(), 0);
        assert_eq!(p.static_savings(), StaticSavings::default());
    }

    #[test]
    fn static_savings_accumulate() {
        let p = Profiler::new();
        p.note_type_check_avoided();
        p.note_type_check_avoided();
        p.note_rc_inc_avoided();
        p.note_rc_dec_avoided();
        let s = p.static_savings();
        assert_eq!(s.type_checks_avoided, 2);
        assert_eq!(s.rc_incs_avoided, 1);
        assert_eq!(s.rc_decs_avoided, 1);
        assert_eq!(s.total(), 4);
    }

    #[test]
    fn categories_expose_accel_targets() {
        assert!(Category::HashMap.is_accel_target());
        assert!(Category::Regex.is_accel_target());
        assert!(!Category::RefCount.is_accel_target());
        assert_eq!(Category::ALL.len(), 8);
    }
}
