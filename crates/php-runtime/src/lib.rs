//! # php-runtime
//!
//! The PHP-like runtime substrate for the ISCA 2017 *"Architectural Support
//! for Server-Side PHP Processing"* reproduction.
//!
//! Real PHP applications spend their time in VM library routines, not in
//! JIT-compiled code (paper Figure 1). This crate provides those routines in
//! instrumented form: every operation charges a simulated micro-op cost to a
//! leaf-function [`profile::Profiler`], tagged with the paper's activity
//! categories (hash map, heap, string, regex, type checks, refcounting).
//!
//! ## Quick example
//!
//! ```
//! use php_runtime::context::RuntimeContext;
//! use php_runtime::array::ArrayKey;
//! use php_runtime::value::PhpValue;
//!
//! let ctx = RuntimeContext::new();
//! let mut post = ctx.new_array();
//! ctx.array_set(&mut post, ArrayKey::from("title"), PhpValue::from("Hello"));
//! let title = ctx.array_get(&post, &ArrayKey::from("title")).unwrap();
//! assert!(title.loose_eq(&PhpValue::from("Hello")));
//! assert!(ctx.profiler().total_uops() > 0); // costs were metered
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod array;
pub mod context;
pub mod profile;
pub mod refcount;
pub mod strfuncs;
pub mod string;
pub mod symtab;
pub mod value;

pub use array::{ArrayKey, PhpArray};
pub use context::{AccessStatic, RuntimeContext};
pub use profile::{Category, OpCost, Profiler, StaticSavings};
pub use string::PhpStr;
pub use value::PhpValue;
