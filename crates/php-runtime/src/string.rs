//! PHP string representation.
//!
//! PHP strings are counted byte strings (not NUL-terminated) — §4.4 notes
//! this makes accelerator coherence logic straightforward. `PhpStr` is the
//! runtime's string object; values hold it behind `Rc` so copies are
//! refcount bumps like in HHVM.

use std::fmt;
use std::rc::Rc;

/// A counted byte string, the PHP `string` type.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhpStr {
    bytes: Vec<u8>,
}

impl PhpStr {
    /// Creates an empty string.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a string from raw bytes.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        PhpStr {
            bytes: bytes.into(),
        }
    }

    /// Byte length.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the string is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable access to the raw bytes.
    pub fn as_bytes_mut(&mut self) -> &mut Vec<u8> {
        &mut self.bytes
    }

    /// Lossy UTF-8 view for display/debugging.
    pub fn to_string_lossy(&self) -> String {
        String::from_utf8_lossy(&self.bytes).into_owned()
    }

    /// Appends raw bytes.
    pub fn push_bytes(&mut self, more: &[u8]) {
        self.bytes.extend_from_slice(more);
    }

    /// Simulated heap footprint of this string (header + payload), used when
    /// charging the allocator.
    pub fn heap_size(&self) -> usize {
        // 16-byte zend_string-style header (refcount, len, hash) + payload.
        16 + self.bytes.len()
    }
}

impl From<&str> for PhpStr {
    fn from(s: &str) -> Self {
        PhpStr::from_bytes(s.as_bytes().to_vec())
    }
}

impl From<String> for PhpStr {
    fn from(s: String) -> Self {
        PhpStr::from_bytes(s.into_bytes())
    }
}

impl From<&[u8]> for PhpStr {
    fn from(b: &[u8]) -> Self {
        PhpStr::from_bytes(b.to_vec())
    }
}

impl fmt::Debug for PhpStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhpStr({:?})", self.to_string_lossy())
    }
}

impl fmt::Display for PhpStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_lossy())
    }
}

/// Shared string handle used inside [`crate::value::PhpValue`].
pub type RcStr = Rc<PhpStr>;

/// Convenience constructor for a shared string.
pub fn rcstr(s: impl Into<PhpStr>) -> RcStr {
    Rc::new(s.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        let s = PhpStr::from("héllo");
        assert_eq!(s.len(), 6); // bytes, not chars
        assert!(!s.is_empty());
        assert_eq!(PhpStr::new().len(), 0);
    }

    #[test]
    fn binary_safe() {
        let s = PhpStr::from_bytes(vec![0u8, 1, 2, 0, 255]);
        assert_eq!(s.len(), 5);
        assert_eq!(s.as_bytes()[3], 0);
    }

    #[test]
    fn heap_size_includes_header() {
        let s = PhpStr::from("abcd");
        assert_eq!(s.heap_size(), 20);
    }

    #[test]
    fn push_and_display() {
        let mut s = PhpStr::from("ab");
        s.push_bytes(b"cd");
        assert_eq!(s.to_string_lossy(), "abcd");
        assert_eq!(format!("{s}"), "abcd");
        assert_eq!(format!("{s:?}"), "PhpStr(\"abcd\")");
    }
}
