//! Reference-counting cost model.
//!
//! "Reference counting constitutes a major source of overhead in these PHP
//! applications as it is spread across compiled code and many library
//! functions" (§3). Rust's `Rc` does the actual memory management; this
//! module *meters* the refcount traffic so the abstraction-overhead analysis
//! (Figure 3) and the hardware-refcounting prior optimization \[46\] have real
//! numbers to work from.

use crate::profile::{Category, OpCost, Profiler};
use std::cell::Cell;

/// Micro-ops charged per software refcount increment (load, add, store).
pub const INC_UOPS: u64 = 3;
/// Micro-ops charged per software refcount decrement (load, sub, branch to
/// zero-check, store).
pub const DEC_UOPS: u64 = 5;

/// Counts refcount operations and charges their software cost.
#[derive(Debug, Default)]
pub struct RefcountMeter {
    incs: Cell<u64>,
    decs: Cell<u64>,
}

impl RefcountMeter {
    /// New meter with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a refcount increment (value copied / aliased).
    pub fn inc(&self, prof: &Profiler) {
        self.incs.set(self.incs.get() + 1);
        prof.record(
            "zval_refcount_inc",
            Category::RefCount,
            OpCost {
                uops: INC_UOPS,
                branches: 0,
                loads: 1,
                stores: 1,
            },
        );
    }

    /// Records a refcount decrement (value destroyed / overwritten).
    pub fn dec(&self, prof: &Profiler) {
        self.decs.set(self.decs.get() + 1);
        prof.record(
            "zval_refcount_dec",
            Category::RefCount,
            OpCost {
                uops: DEC_UOPS,
                branches: 1,
                loads: 1,
                stores: 1,
            },
        );
    }

    /// Records `n` increments at once (bulk copies, array dup).
    pub fn inc_n(&self, n: u64, prof: &Profiler) {
        self.incs.set(self.incs.get() + n);
        prof.record(
            "zval_refcount_inc",
            Category::RefCount,
            OpCost {
                uops: INC_UOPS,
                branches: 0,
                loads: 1,
                stores: 1,
            }
            .scaled(n),
        );
    }

    /// Total increments observed.
    pub fn incs(&self) -> u64 {
        self.incs.get()
    }

    /// Total decrements observed.
    pub fn decs(&self) -> u64 {
        self.decs.get()
    }

    /// Total refcount operations.
    pub fn total(&self) -> u64 {
        self.incs.get() + self.decs.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_charges() {
        let m = RefcountMeter::new();
        let p = Profiler::new();
        m.inc(&p);
        m.inc(&p);
        m.dec(&p);
        assert_eq!(m.incs(), 2);
        assert_eq!(m.decs(), 1);
        assert_eq!(m.total(), 3);
        assert_eq!(p.total_uops(), 2 * INC_UOPS + DEC_UOPS);
        let f = p.function("zval_refcount_dec").unwrap();
        assert_eq!(f.category, Some(Category::RefCount));
    }

    #[test]
    fn bulk_inc() {
        let m = RefcountMeter::new();
        let p = Profiler::new();
        m.inc_n(10, &p);
        assert_eq!(m.incs(), 10);
        assert_eq!(p.total_uops(), 10 * INC_UOPS);
    }
}
