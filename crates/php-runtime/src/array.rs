//! `PhpArray` — PHP's insertion-ordered hash map (zend-array equivalent).
//!
//! This is the software hash map the paper's hardware hash table accelerates
//! (§4.2). Layout follows PHP 7's design: an insertion-ordered bucket vector
//! plus a power-of-two hash index with per-bucket collision chains. The
//! paper's coherence discussion relies on exactly this split: "The software
//! hash map stores each key/value pair in a table ordered based on insertion,
//! and also stores a pointer to that table in a hash table for fast lookup."
//!
//! Every lookup/insert reports its *walk cost* (hash computation + probe
//! chain) so the runtime can charge the §5.2 figure of ~90.66 µops per
//! software hash map walk.

use crate::profile::OpCost;
use crate::string::PhpStr;
use crate::value::PhpValue;
use std::fmt;

/// An array key: PHP arrays accept integer and string keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArrayKey {
    /// Integer key.
    Int(i64),
    /// String key.
    Str(PhpStr),
}

impl ArrayKey {
    /// DJB2-style hash, the "simplified hash function" spirit of §4.2.
    pub fn hash(&self) -> u64 {
        match self {
            ArrayKey::Int(i) => {
                // Fibonacci scrambling of the integer key.
                (*i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            }
            ArrayKey::Str(s) => hash_bytes(s.as_bytes()),
        }
    }

    /// Byte length of the key when stored (0 for int keys).
    pub fn byte_len(&self) -> usize {
        match self {
            ArrayKey::Int(_) => 0,
            ArrayKey::Str(s) => s.len(),
        }
    }

    /// µop cost of hashing this key in software (per-byte loop for strings).
    pub fn hash_cost(&self) -> u64 {
        match self {
            ArrayKey::Int(_) => 4,
            ArrayKey::Str(s) => 12 + 2 * s.len() as u64,
        }
    }
}

/// DJB2 hash over bytes.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 5381;
    for &b in bytes {
        h = h.wrapping_mul(33) ^ b as u64;
    }
    h
}

impl From<i64> for ArrayKey {
    fn from(i: i64) -> Self {
        ArrayKey::Int(i)
    }
}

impl From<&str> for ArrayKey {
    fn from(s: &str) -> Self {
        ArrayKey::Str(PhpStr::from(s))
    }
}

impl From<String> for ArrayKey {
    fn from(s: String) -> Self {
        ArrayKey::Str(PhpStr::from(s))
    }
}

impl From<PhpStr> for ArrayKey {
    fn from(s: PhpStr) -> Self {
        ArrayKey::Str(s)
    }
}

impl fmt::Display for ArrayKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayKey::Int(i) => write!(f, "{i}"),
            ArrayKey::Str(s) => write!(f, "{s}"),
        }
    }
}

#[derive(Debug, Clone)]
struct Bucket {
    key: ArrayKey,
    hash: u64,
    value: PhpValue,
    /// Next bucket index in this hash chain, or `EMPTY`.
    next: i32,
}

const EMPTY: i32 = -1;
/// µops per probe step of a software walk (bucket load, hash compare, key
/// compare, branch).
const PROBE_UOPS: u64 = 22;
/// Fixed µops around a walk (index load, masking, result handling,
/// type-check glue in the VM).
const WALK_FIXED_UOPS: u64 = 38;

/// Result of a software walk: whether it hit, and what it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkCost {
    /// Probe-chain length traversed (≥1 when the index slot was occupied).
    pub probes: u32,
    /// Total micro-op cost of the walk.
    pub cost: OpCost,
}

fn walk_cost(key: &ArrayKey, probes: u32) -> WalkCost {
    let uops = WALK_FIXED_UOPS + key.hash_cost() + PROBE_UOPS * probes as u64;
    WalkCost {
        probes,
        cost: OpCost {
            uops,
            branches: 3 + probes as u64,
            loads: 4 + 2 * probes as u64,
            stores: 1,
        },
    }
}

/// PHP's insertion-ordered hash array.
#[derive(Clone, Default)]
pub struct PhpArray {
    buckets: Vec<Option<Bucket>>,
    index: Vec<i32>,
    mask: u64,
    len: usize,
    next_int_key: i64,
    /// Simulated base address of this map in the heap (used by the hardware
    /// hash table, which keys on `(base_addr, key)`).
    base_addr: u64,
    /// Set by the hardware hash table when entries were flushed out and the
    /// software index must be treated as stale (§4.2 "Ensure coherence").
    stale_index: bool,
}

impl PhpArray {
    /// Creates an empty array.
    pub fn new() -> Self {
        Self::with_capacity(8)
    }

    /// Creates an empty array with space for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        let index_size = cap.next_power_of_two().max(8);
        PhpArray {
            buckets: Vec::with_capacity(cap),
            index: vec![EMPTY; index_size],
            mask: index_size as u64 - 1,
            len: 0,
            next_int_key: 0,
            base_addr: 0,
            stale_index: false,
        }
    }

    /// Builds an array from key/value pairs.
    pub fn from_pairs<K: Into<ArrayKey>>(pairs: impl IntoIterator<Item = (K, PhpValue)>) -> Self {
        let mut a = PhpArray::new();
        for (k, v) in pairs {
            a.insert(k.into(), v);
        }
        a
    }

    /// Builds a list-like array (sequential int keys).
    pub fn from_values(values: impl IntoIterator<Item = PhpValue>) -> Self {
        let mut a = PhpArray::new();
        for v in values {
            a.push(v);
        }
        a
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets the simulated base heap address (done by the runtime when the
    /// array is allocated).
    pub fn set_base_addr(&mut self, addr: u64) {
        self.base_addr = addr;
    }

    /// Simulated base heap address.
    pub fn base_addr(&self) -> u64 {
        self.base_addr
    }

    /// Marks the software hash index stale (hardware hash table flushed
    /// dirty entries without rebuilding the index).
    pub fn mark_index_stale(&mut self) {
        self.stale_index = true;
    }

    /// Whether the software index is stale.
    pub fn index_stale(&self) -> bool {
        self.stale_index
    }

    /// Rebuilds the hash index (the "reconstruction mechanism [...] necessary
    /// only for correctness" of §4.2). Returns the µop cost of the rebuild.
    pub fn rebuild_index(&mut self) -> OpCost {
        let n = self.buckets.len().max(1) as u64;
        self.rehash(self.index.len());
        self.stale_index = false;
        OpCost::mixed(20 + 30 * n)
    }

    fn find(&self, key: &ArrayKey) -> (Option<usize>, u32) {
        let h = key.hash();
        let mut idx = self.index[(h & self.mask) as usize];
        let mut probes = 0;
        while idx != EMPTY {
            probes += 1;
            let b = self.buckets[idx as usize]
                .as_ref()
                .expect("chain points at tombstone");
            if b.hash == h && b.key == *key {
                return (Some(idx as usize), probes);
            }
            idx = b.next;
        }
        (None, probes.max(1))
    }

    /// Looks up `key`. Unmetered (for plumbing and tests).
    pub fn get(&self, key: &ArrayKey) -> Option<&PhpValue> {
        let (slot, _) = self.find(key);
        slot.map(|i| &self.buckets[i].as_ref().unwrap().value)
    }

    /// Looks up `key`, also reporting the software walk cost (the paper's
    /// ~90.66-µop hash map walk).
    pub fn get_with_cost(&self, key: &ArrayKey) -> (Option<&PhpValue>, WalkCost) {
        let (slot, probes) = self.find(key);
        let wc = walk_cost(key, probes);
        (slot.map(|i| &self.buckets[i].as_ref().unwrap().value), wc)
    }

    /// Whether `key` exists.
    pub fn contains_key(&self, key: &ArrayKey) -> bool {
        self.find(key).0.is_some()
    }

    /// Inserts or overwrites `key`. Returns the previous value. Unmetered.
    pub fn insert(&mut self, key: ArrayKey, value: PhpValue) -> Option<PhpValue> {
        self.insert_with_cost(key, value).0
    }

    /// Inserts or overwrites `key`, reporting the walk cost (a SET walks the
    /// chain too before appending).
    pub fn insert_with_cost(
        &mut self,
        key: ArrayKey,
        value: PhpValue,
    ) -> (Option<PhpValue>, WalkCost) {
        if let ArrayKey::Int(i) = key {
            self.next_int_key = self.next_int_key.max(i + 1);
        }
        let (slot, probes) = self.find(&key);
        let mut wc = walk_cost(&key, probes);
        // A SET that inserts pays for the append + index update.
        match slot {
            Some(i) => {
                let old = std::mem::replace(&mut self.buckets[i].as_mut().unwrap().value, value);
                (Some(old), wc)
            }
            None => {
                wc.cost = wc.cost.plus(OpCost {
                    uops: 14,
                    branches: 1,
                    loads: 1,
                    stores: 3,
                });
                self.append(key, value);
                (None, wc)
            }
        }
    }

    fn append(&mut self, key: ArrayKey, value: PhpValue) {
        if self.len + 1 > self.index.len() * 3 / 4 || self.buckets.len() >= self.index.len() {
            self.rehash(self.index.len() * 2);
        }
        let h = key.hash();
        let slot = (h & self.mask) as usize;
        let bucket = Bucket {
            key,
            hash: h,
            value,
            next: self.index[slot],
        };
        self.index[slot] = self.buckets.len() as i32;
        self.buckets.push(Some(bucket));
        self.len += 1;
    }

    fn rehash(&mut self, new_size: usize) {
        let new_size = new_size.next_power_of_two().max(8);
        // Compact tombstones while rebuilding.
        let old: Vec<Bucket> = std::mem::take(&mut self.buckets)
            .into_iter()
            .flatten()
            .collect();
        self.index = vec![EMPTY; new_size];
        self.mask = new_size as u64 - 1;
        self.buckets = Vec::with_capacity(old.len());
        for mut b in old {
            let slot = (b.hash & self.mask) as usize;
            b.next = self.index[slot];
            self.index[slot] = self.buckets.len() as i32;
            self.buckets.push(Some(b));
        }
    }

    /// Appends with the next integer key (PHP `$a[] = v`).
    pub fn push(&mut self, value: PhpValue) -> ArrayKey {
        let key = ArrayKey::Int(self.next_int_key);
        self.next_int_key += 1;
        self.append(key.clone(), value);
        key
    }

    /// Removes `key`, returning its value. Leaves a tombstone (insertion
    /// order of the rest is preserved, like PHP).
    pub fn remove(&mut self, key: &ArrayKey) -> Option<PhpValue> {
        self.remove_with_cost(key).0
    }

    /// Removes `key`, reporting the walk cost.
    pub fn remove_with_cost(&mut self, key: &ArrayKey) -> (Option<PhpValue>, WalkCost) {
        let h = key.hash();
        let slot = (h & self.mask) as usize;
        let mut idx = self.index[slot];
        let mut prev: i32 = EMPTY;
        let mut probes = 0;
        while idx != EMPTY {
            probes += 1;
            let b = self.buckets[idx as usize].as_ref().unwrap();
            if b.hash == h && b.key == *key {
                let next = b.next;
                if prev == EMPTY {
                    self.index[slot] = next;
                } else {
                    self.buckets[prev as usize].as_mut().unwrap().next = next;
                }
                let removed = self.buckets[idx as usize].take().unwrap();
                self.len -= 1;
                let mut wc = walk_cost(key, probes);
                wc.cost = wc.cost.plus(OpCost {
                    uops: 10,
                    branches: 1,
                    loads: 1,
                    stores: 2,
                });
                return (Some(removed.value), wc);
            }
            prev = idx;
            idx = b.next;
        }
        (None, walk_cost(key, probes.max(1)))
    }

    /// Iterates `(key, value)` in insertion order (PHP `foreach` semantics —
    /// the property the hardware RTT must preserve, §4.2).
    pub fn iter(&self) -> impl Iterator<Item = (&ArrayKey, &PhpValue)> {
        self.buckets.iter().flatten().map(|b| (&b.key, &b.value))
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &ArrayKey> {
        self.iter().map(|(k, _)| k)
    }

    /// Values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &PhpValue> {
        self.iter().map(|(_, v)| v)
    }

    /// µop cost of a full software `foreach` over this array.
    pub fn foreach_cost(&self) -> OpCost {
        OpCost::mixed(12 + 9 * self.len as u64)
    }

    /// Simulated heap footprint: header + bucket storage + index.
    pub fn heap_size(&self) -> usize {
        56 + self.buckets.capacity() * 32 + self.index.len() * 4
    }
}

impl FromIterator<(ArrayKey, PhpValue)> for PhpArray {
    fn from_iter<T: IntoIterator<Item = (ArrayKey, PhpValue)>>(iter: T) -> Self {
        PhpArray::from_pairs(iter)
    }
}

impl Extend<(ArrayKey, PhpValue)> for PhpArray {
    fn extend<T: IntoIterator<Item = (ArrayKey, PhpValue)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

impl fmt::Debug for PhpArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.iter().map(|(k, v)| (k.to_string(), v)))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> ArrayKey {
        ArrayKey::from(s)
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut a = PhpArray::new();
        a.insert(k("name"), PhpValue::from("alice"));
        a.insert(ArrayKey::Int(3), PhpValue::from(42i64));
        assert_eq!(a.len(), 2);
        assert!(a
            .get(&k("name"))
            .unwrap()
            .loose_eq(&PhpValue::from("alice")));
        assert!(a
            .get(&ArrayKey::Int(3))
            .unwrap()
            .loose_eq(&PhpValue::from(42i64)));
        assert!(a.get(&k("missing")).is_none());
    }

    #[test]
    fn overwrite_returns_previous() {
        let mut a = PhpArray::new();
        a.insert(k("x"), PhpValue::from(1i64));
        let old = a.insert(k("x"), PhpValue::from(2i64)).unwrap();
        assert!(old.loose_eq(&PhpValue::from(1i64)));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn insertion_order_preserved_across_growth() {
        let mut a = PhpArray::new();
        for i in 0..100 {
            a.insert(k(&format!("key{i}")), PhpValue::from(i as i64));
        }
        let keys: Vec<String> = a.keys().map(|x| x.to_string()).collect();
        let expected: Vec<String> = (0..100).map(|i| format!("key{i}")).collect();
        assert_eq!(keys, expected);
    }

    #[test]
    fn push_uses_next_int_key() {
        let mut a = PhpArray::new();
        a.push(PhpValue::from(10i64));
        a.insert(ArrayKey::Int(7), PhpValue::Null);
        let key = a.push(PhpValue::from(11i64));
        assert_eq!(key, ArrayKey::Int(8), "next int key follows the max");
    }

    #[test]
    fn remove_preserves_order_of_rest() {
        let mut a = PhpArray::from_pairs([
            ("a", PhpValue::from(1i64)),
            ("b", PhpValue::from(2i64)),
            ("c", PhpValue::from(3i64)),
        ]);
        assert!(a.remove(&k("b")).is_some());
        assert!(a.remove(&k("b")).is_none());
        let keys: Vec<String> = a.keys().map(|x| x.to_string()).collect();
        assert_eq!(keys, ["a", "c"]);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn removed_key_reinserted_goes_to_end() {
        let mut a =
            PhpArray::from_pairs([("a", PhpValue::from(1i64)), ("b", PhpValue::from(2i64))]);
        a.remove(&k("a"));
        a.insert(k("a"), PhpValue::from(9i64));
        let keys: Vec<String> = a.keys().map(|x| x.to_string()).collect();
        assert_eq!(keys, ["b", "a"]);
    }

    #[test]
    fn walk_cost_in_paper_range() {
        // With realistic dynamic keys the average software walk should land
        // near the paper's 90.66 µops.
        let mut a = PhpArray::new();
        for i in 0..200 {
            a.insert(k(&format!("post_meta_{i}")), PhpValue::from(i as i64));
        }
        let mut total = 0u64;
        for i in 0..200 {
            let (_, wc) = a.get_with_cost(&k(&format!("post_meta_{i}")));
            total += wc.cost.uops;
        }
        let avg = total as f64 / 200.0;
        assert!((60.0..130.0).contains(&avg), "avg walk µops {avg}");
    }

    #[test]
    fn collision_chains_resolve() {
        // Force collisions through a tiny index: all keys still retrievable.
        let mut a = PhpArray::with_capacity(8);
        for i in 0..64 {
            a.insert(ArrayKey::Int(i * 1024), PhpValue::from(i));
        }
        for i in 0..64 {
            assert!(a
                .get(&ArrayKey::Int(i * 1024))
                .unwrap()
                .loose_eq(&PhpValue::from(i)));
        }
    }

    #[test]
    fn stale_index_rebuild() {
        let mut a = PhpArray::from_pairs([("x", PhpValue::from(1i64))]);
        a.mark_index_stale();
        assert!(a.index_stale());
        let cost = a.rebuild_index();
        assert!(!a.index_stale());
        assert!(cost.uops > 0);
        assert!(a.get(&k("x")).is_some());
    }

    #[test]
    fn tombstones_compacted_on_rehash() {
        let mut a = PhpArray::new();
        for i in 0..50 {
            a.insert(ArrayKey::Int(i), PhpValue::from(i));
        }
        for i in 0..25 {
            a.remove(&ArrayKey::Int(i * 2));
        }
        // Trigger growth → compaction.
        for i in 100..200 {
            a.insert(ArrayKey::Int(i), PhpValue::from(i));
        }
        assert_eq!(a.len(), 125);
        assert!(a.get(&ArrayKey::Int(1)).is_some());
        assert!(a.get(&ArrayKey::Int(0)).is_none());
    }

    #[test]
    fn foreach_cost_scales_with_len() {
        let a = PhpArray::from_values((0..10).map(PhpValue::from));
        let b = PhpArray::from_values((0..100).map(PhpValue::from));
        assert!(b.foreach_cost().uops > a.foreach_cost().uops);
    }
}
