//! The PHP value model (`zval` equivalent).
//!
//! Dynamically-typed values with the PHP coercion rules the workloads need.
//! Type *checks* on these values are what the checked-load prior optimization
//! \[22\] removes; the [`crate::context::RuntimeContext`] charges those costs
//! explicitly via [`PhpValue::type_check_cost`].

use crate::array::PhpArray;
use crate::profile::OpCost;
use crate::string::{PhpStr, RcStr};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Shared array handle.
pub type RcArray = Rc<RefCell<PhpArray>>;

/// A PHP value.
#[derive(Clone, Default)]
pub enum PhpValue {
    /// PHP `null`.
    #[default]
    Null,
    /// PHP `bool`.
    Bool(bool),
    /// PHP `int` (64-bit).
    Int(i64),
    /// PHP `float`.
    Float(f64),
    /// PHP `string` (shared, counted bytes).
    Str(RcStr),
    /// PHP `array` (shared, insertion-ordered hash).
    Array(RcArray),
}

impl PhpValue {
    /// Constructs a string value.
    pub fn str(s: impl Into<PhpStr>) -> Self {
        PhpValue::Str(Rc::new(s.into()))
    }

    /// Constructs an array value.
    pub fn array(a: PhpArray) -> Self {
        PhpValue::Array(Rc::new(RefCell::new(a)))
    }

    /// PHP type name, as `gettype()` would report.
    pub fn type_name(&self) -> &'static str {
        match self {
            PhpValue::Null => "NULL",
            PhpValue::Bool(_) => "boolean",
            PhpValue::Int(_) => "integer",
            PhpValue::Float(_) => "double",
            PhpValue::Str(_) => "string",
            PhpValue::Array(_) => "array",
        }
    }

    /// The µop cost of one dynamic type check on this value (tag load +
    /// compare + branch). Charged by the context around specialized code.
    pub fn type_check_cost() -> OpCost {
        OpCost {
            uops: 3,
            branches: 1,
            loads: 1,
            stores: 0,
        }
    }

    /// PHP truthiness.
    pub fn to_bool(&self) -> bool {
        match self {
            PhpValue::Null => false,
            PhpValue::Bool(b) => *b,
            PhpValue::Int(i) => *i != 0,
            PhpValue::Float(f) => *f != 0.0,
            PhpValue::Str(s) => !s.is_empty() && s.as_bytes() != b"0",
            PhpValue::Array(a) => !a.borrow().is_empty(),
        }
    }

    /// PHP integer coercion.
    pub fn to_int(&self) -> i64 {
        match self {
            PhpValue::Null => 0,
            PhpValue::Bool(b) => *b as i64,
            PhpValue::Int(i) => *i,
            PhpValue::Float(f) => *f as i64,
            PhpValue::Str(s) => parse_numeric_prefix(s.as_bytes()).0,
            PhpValue::Array(a) => (!a.borrow().is_empty()) as i64,
        }
    }

    /// PHP float coercion.
    pub fn to_float(&self) -> f64 {
        match self {
            PhpValue::Float(f) => *f,
            PhpValue::Str(s) => parse_numeric_prefix(s.as_bytes()).1,
            other => other.to_int() as f64,
        }
    }

    /// PHP string coercion.
    pub fn to_php_string(&self) -> PhpStr {
        match self {
            PhpValue::Null => PhpStr::new(),
            PhpValue::Bool(true) => PhpStr::from("1"),
            PhpValue::Bool(false) => PhpStr::new(),
            PhpValue::Int(i) => PhpStr::from(i.to_string()),
            PhpValue::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    PhpStr::from(format!("{}", *f as i64))
                } else {
                    PhpStr::from(format!("{f}"))
                }
            }
            PhpValue::Str(s) => (**s).clone(),
            PhpValue::Array(_) => PhpStr::from("Array"),
        }
    }

    /// Loose equality (`==`), the comparisons our workloads exercise.
    pub fn loose_eq(&self, other: &PhpValue) -> bool {
        use PhpValue::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (Int(a), Float(b)) | (Float(b), Int(a)) => *a as f64 == *b,
            (Str(a), Str(b)) => a == b,
            (Str(_), Int(_)) | (Int(_), Str(_)) => self.to_float() == other.to_float(),
            (Str(_), Float(_)) | (Float(_), Str(_)) => self.to_float() == other.to_float(),
            (Null, other2) | (other2, Null) => !other2.to_bool(),
            (Bool(a), b2) | (b2, Bool(a)) => *a == b2.to_bool(),
            (Array(a), Array(b)) => {
                if Rc::ptr_eq(a, b) {
                    return true;
                }
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|((ka, va), (kb, vb))| ka == kb && va.loose_eq(vb))
            }
            (Array(_), _) | (_, Array(_)) => false,
        }
    }

    /// Whether this value's representation is refcounted (string or array) —
    /// copies of those incur refcount traffic.
    pub fn is_refcounted(&self) -> bool {
        matches!(self, PhpValue::Str(_) | PhpValue::Array(_))
    }

    /// Simulated heap footprint of the value payload (0 for immediates).
    pub fn heap_size(&self) -> usize {
        match self {
            PhpValue::Str(s) => s.heap_size(),
            PhpValue::Array(a) => a.borrow().heap_size(),
            _ => 0,
        }
    }
}

/// Parses the leading numeric portion of a PHP string (PHP's lax numeric
/// string semantics). Returns `(int_value, float_value)`.
fn parse_numeric_prefix(b: &[u8]) -> (i64, f64) {
    let s = std::str::from_utf8(b).unwrap_or("");
    let t = s.trim_start();
    let mut end = 0;
    let bytes = t.as_bytes();
    if end < bytes.len() && (bytes[end] == b'+' || bytes[end] == b'-') {
        end += 1;
    }
    let mut seen_dot = false;
    while end < bytes.len() {
        match bytes[end] {
            b'0'..=b'9' => end += 1,
            b'.' if !seen_dot => {
                seen_dot = true;
                end += 1;
            }
            _ => break,
        }
    }
    let prefix = &t[..end];
    let f: f64 = prefix.parse().unwrap_or(0.0);
    let i: i64 = if seen_dot {
        f as i64
    } else {
        prefix.parse().unwrap_or(f as i64)
    };
    (i, f)
}

impl fmt::Debug for PhpValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhpValue::Null => write!(f, "null"),
            PhpValue::Bool(b) => write!(f, "{b}"),
            PhpValue::Int(i) => write!(f, "{i}"),
            PhpValue::Float(x) => write!(f, "{x}"),
            PhpValue::Str(s) => write!(f, "{:?}", s.to_string_lossy()),
            PhpValue::Array(a) => write!(f, "array({})", a.borrow().len()),
        }
    }
}

impl From<i64> for PhpValue {
    fn from(i: i64) -> Self {
        PhpValue::Int(i)
    }
}

impl From<f64> for PhpValue {
    fn from(f: f64) -> Self {
        PhpValue::Float(f)
    }
}

impl From<bool> for PhpValue {
    fn from(b: bool) -> Self {
        PhpValue::Bool(b)
    }
}

impl From<&str> for PhpValue {
    fn from(s: &str) -> Self {
        PhpValue::str(s)
    }
}

impl From<String> for PhpValue {
    fn from(s: String) -> Self {
        PhpValue::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_matches_php() {
        assert!(!PhpValue::Null.to_bool());
        assert!(!PhpValue::from("").to_bool());
        assert!(!PhpValue::from("0").to_bool());
        assert!(PhpValue::from("00").to_bool()); // PHP quirk: "00" is truthy
        assert!(PhpValue::from(1i64).to_bool());
        assert!(!PhpValue::from(0.0).to_bool());
    }

    #[test]
    fn numeric_string_coercion() {
        assert_eq!(PhpValue::from("42abc").to_int(), 42);
        assert_eq!(PhpValue::from("  -7").to_int(), -7);
        assert_eq!(PhpValue::from("3.5x").to_float(), 3.5);
        assert_eq!(PhpValue::from("abc").to_int(), 0);
    }

    #[test]
    fn string_coercion() {
        assert_eq!(
            PhpValue::from(42i64).to_php_string().to_string_lossy(),
            "42"
        );
        assert_eq!(PhpValue::Bool(true).to_php_string().to_string_lossy(), "1");
        assert_eq!(PhpValue::Bool(false).to_php_string().len(), 0);
        assert_eq!(PhpValue::from(2.0).to_php_string().to_string_lossy(), "2");
        assert_eq!(PhpValue::from(2.5).to_php_string().to_string_lossy(), "2.5");
    }

    #[test]
    fn loose_equality() {
        assert!(PhpValue::from("42").loose_eq(&PhpValue::from(42i64)));
        assert!(PhpValue::Null.loose_eq(&PhpValue::Bool(false)));
        assert!(PhpValue::from(1i64).loose_eq(&PhpValue::Bool(true)));
        assert!(!PhpValue::from("a").loose_eq(&PhpValue::from("b")));
    }

    #[test]
    fn type_names() {
        assert_eq!(PhpValue::Null.type_name(), "NULL");
        assert_eq!(PhpValue::from(1i64).type_name(), "integer");
        assert_eq!(PhpValue::from("x").type_name(), "string");
    }

    #[test]
    fn refcounted_detection() {
        assert!(PhpValue::from("s").is_refcounted());
        assert!(!PhpValue::from(3i64).is_refcounted());
    }
}
