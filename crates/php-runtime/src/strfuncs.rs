//! Software string library — the baselines the string accelerator (§4.4)
//! competes against.
//!
//! "These PHP applications exercise a variety of string copying, matching,
//! and modifying functions to turn large volumes of unstructured textual
//! data into appropriate HTML format."
//!
//! Two software variants are provided per scan-heavy function:
//!
//! * **Scalar** — straightforward byte-at-a-time code (the interpreter/VM
//!   library baseline);
//! * **SWAR** — SIMD-within-a-register (u64) implementations standing in for
//!   the paper's "currently optimal software with SSE extensions".
//!
//! Every call charges its simulated µop cost to the profiler under a
//! `php_*` leaf-function name in [`Category::String`].

use crate::profile::{Category, OpCost, Profiler};
use crate::string::PhpStr;

/// Which software implementation family to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrMode {
    /// Byte-at-a-time loops.
    #[default]
    Scalar,
    /// SIMD-within-a-register (8 bytes per step) — the "SSE" baseline.
    Swar,
}

/// Per-byte µop cost of scalar scanning loops (load, compare, branch, inc).
const SCALAR_BYTE_UOPS: f64 = 1.25;
/// Per-8-byte-word µop cost of SWAR loops.
const SWAR_WORD_UOPS: f64 = 4.0;
/// Fixed per-call overhead (arg marshalling, refcounting glue, allocation of
/// the result handled separately by the allocator).
const CALL_FIXED_UOPS: u64 = 18;

/// The string library. Borrowys the profiler; construct one per operation
/// region or hold it alongside the runtime context.
#[derive(Debug, Clone, Copy)]
pub struct StrLib<'p> {
    prof: &'p Profiler,
    mode: StrMode,
}

fn scan_cost(name: &'static str, bytes: usize, mode: StrMode, prof: &Profiler) {
    let uops = match mode {
        StrMode::Scalar => CALL_FIXED_UOPS + (bytes as f64 * SCALAR_BYTE_UOPS) as u64,
        StrMode::Swar => CALL_FIXED_UOPS + (bytes.div_ceil(8) as f64 * SWAR_WORD_UOPS) as u64,
    };
    prof.record(name, Category::String, OpCost::mixed(uops));
}

fn copy_cost(name: &'static str, bytes: usize, prof: &Profiler) {
    // Copies move 8B per µop plus loop overhead regardless of mode.
    let uops = CALL_FIXED_UOPS + bytes.div_ceil(8) as u64 * 2;
    prof.record(name, Category::String, OpCost::mixed(uops));
}

impl<'p> StrLib<'p> {
    /// Creates a library handle.
    pub fn new(prof: &'p Profiler, mode: StrMode) -> Self {
        StrLib { prof, mode }
    }

    /// The active implementation family.
    pub fn mode(&self) -> StrMode {
        self.mode
    }

    /// `strlen` — O(1) for counted strings.
    pub fn strlen(&self, s: &PhpStr) -> usize {
        self.prof
            .record("php_strlen", Category::String, OpCost::alu(2));
        s.len()
    }

    /// `strpos` — byte offset of the first occurrence of `needle` at or
    /// after `offset`, or `None`.
    pub fn strpos(&self, haystack: &PhpStr, needle: &[u8], offset: usize) -> Option<usize> {
        let h = haystack.as_bytes();
        if needle.is_empty() || offset > h.len() {
            scan_cost("php_strpos", 0, self.mode, self.prof);
            return None;
        }
        let result = match self.mode {
            StrMode::Scalar => scalar_find(&h[offset..], needle),
            StrMode::Swar => swar_find(&h[offset..], needle),
        };
        let scanned = result.map(|r| r + needle.len()).unwrap_or(h.len() - offset);
        scan_cost("php_strpos", scanned, self.mode, self.prof);
        result.map(|r| r + offset)
    }

    /// `strcmp` — byte-wise comparison result as in C.
    pub fn strcmp(&self, a: &PhpStr, b: &PhpStr) -> std::cmp::Ordering {
        let n = a.len().min(b.len());
        scan_cost("php_strcmp", n, self.mode, self.prof);
        a.as_bytes().cmp(b.as_bytes())
    }

    /// `substr` with PHP semantics for negative `start`/`len`.
    pub fn substr(&self, s: &PhpStr, start: i64, len: Option<i64>) -> PhpStr {
        let n = s.len() as i64;
        let start = if start < 0 {
            (n + start).max(0)
        } else {
            start.min(n)
        };
        let end = match len {
            None => n,
            Some(l) if l < 0 => (n + l).max(start),
            Some(l) => (start + l).min(n),
        };
        let out = PhpStr::from_bytes(s.as_bytes()[start as usize..end as usize].to_vec());
        copy_cost("php_substr", out.len(), self.prof);
        out
    }

    /// `trim` — strips the given byte set (default whitespace) from both ends.
    pub fn trim(&self, s: &PhpStr, set: &[u8]) -> PhpStr {
        let b = s.as_bytes();
        let start = b.iter().position(|c| !set.contains(c)).unwrap_or(b.len());
        let end = b
            .iter()
            .rposition(|c| !set.contains(c))
            .map(|i| i + 1)
            .unwrap_or(start);
        let trimmed = (b.len() - (end - start)).max(1);
        scan_cost("php_trim", trimmed + 2, self.mode, self.prof);
        PhpStr::from_bytes(b[start..end].to_vec())
    }

    /// Default trim set: PHP's `" \t\n\r\0\x0B"`.
    pub const WHITESPACE: &'static [u8] = b" \t\n\r\0\x0b";

    /// `strtolower` — ASCII lowercase.
    pub fn strtolower(&self, s: &PhpStr) -> PhpStr {
        scan_cost("php_strtolower", s.len(), self.mode, self.prof);
        PhpStr::from_bytes(
            s.as_bytes()
                .iter()
                .map(|b| b.to_ascii_lowercase())
                .collect::<Vec<_>>(),
        )
    }

    /// `strtoupper` — ASCII uppercase.
    pub fn strtoupper(&self, s: &PhpStr) -> PhpStr {
        scan_cost("php_strtoupper", s.len(), self.mode, self.prof);
        PhpStr::from_bytes(
            s.as_bytes()
                .iter()
                .map(|b| b.to_ascii_uppercase())
                .collect::<Vec<_>>(),
        )
    }

    /// `ucfirst`.
    pub fn ucfirst(&self, s: &PhpStr) -> PhpStr {
        self.prof.record(
            "php_ucfirst",
            Category::String,
            OpCost::alu(CALL_FIXED_UOPS),
        );
        let mut out = s.as_bytes().to_vec();
        if let Some(first) = out.first_mut() {
            *first = first.to_ascii_uppercase();
        }
        PhpStr::from_bytes(out)
    }

    /// `ucwords` — uppercase the first letter of each word.
    pub fn ucwords(&self, s: &PhpStr) -> PhpStr {
        scan_cost("php_ucwords", s.len(), self.mode, self.prof);
        let mut out = s.as_bytes().to_vec();
        let mut at_word_start = true;
        for b in out.iter_mut() {
            if at_word_start {
                *b = b.to_ascii_uppercase();
            }
            at_word_start = matches!(*b, b' ' | b'\t' | b'\n' | b'\r');
        }
        PhpStr::from_bytes(out)
    }

    /// `str_replace` — replaces all occurrences; returns `(result, count)`.
    pub fn str_replace(&self, search: &[u8], replace: &[u8], subject: &PhpStr) -> (PhpStr, usize) {
        let hay = subject.as_bytes();
        if search.is_empty() {
            scan_cost("php_str_replace", 0, self.mode, self.prof);
            return (subject.clone(), 0);
        }
        let mut out = Vec::with_capacity(hay.len());
        let mut count = 0;
        let mut i = 0;
        while i < hay.len() {
            let found = match self.mode {
                StrMode::Scalar => scalar_find(&hay[i..], search),
                StrMode::Swar => swar_find(&hay[i..], search),
            };
            match found {
                Some(rel) => {
                    out.extend_from_slice(&hay[i..i + rel]);
                    out.extend_from_slice(replace);
                    i += rel + search.len();
                    count += 1;
                }
                None => {
                    out.extend_from_slice(&hay[i..]);
                    break;
                }
            }
        }
        scan_cost("php_str_replace", hay.len(), self.mode, self.prof);
        copy_cost("php_str_replace", out.len(), self.prof);
        (PhpStr::from_bytes(out), count)
    }

    /// `str_repeat`.
    pub fn str_repeat(&self, s: &PhpStr, times: usize) -> PhpStr {
        let mut out = Vec::with_capacity(s.len() * times);
        for _ in 0..times {
            out.extend_from_slice(s.as_bytes());
        }
        copy_cost("php_str_repeat", out.len(), self.prof);
        PhpStr::from_bytes(out)
    }

    /// `implode` — joins byte-string pieces with `glue`.
    pub fn implode(&self, glue: &[u8], pieces: &[PhpStr]) -> PhpStr {
        let mut out = Vec::new();
        for (i, p) in pieces.iter().enumerate() {
            if i > 0 {
                out.extend_from_slice(glue);
            }
            out.extend_from_slice(p.as_bytes());
        }
        copy_cost("php_implode", out.len(), self.prof);
        PhpStr::from_bytes(out)
    }

    /// `explode` — splits on `sep` (non-empty).
    pub fn explode(&self, sep: &[u8], s: &PhpStr) -> Vec<PhpStr> {
        assert!(!sep.is_empty(), "explode with empty separator");
        let b = s.as_bytes();
        let mut parts = Vec::new();
        let mut i = 0;
        loop {
            let found = match self.mode {
                StrMode::Scalar => scalar_find(&b[i..], sep),
                StrMode::Swar => swar_find(&b[i..], sep),
            };
            match found {
                Some(rel) => {
                    parts.push(PhpStr::from_bytes(b[i..i + rel].to_vec()));
                    i += rel + sep.len();
                }
                None => {
                    parts.push(PhpStr::from_bytes(b[i..].to_vec()));
                    break;
                }
            }
        }
        scan_cost("php_explode", b.len(), self.mode, self.prof);
        parts
    }

    /// `htmlspecialchars` — encodes `& < > " '`.
    pub fn htmlspecialchars(&self, s: &PhpStr) -> PhpStr {
        scan_cost("php_htmlspecialchars", s.len(), self.mode, self.prof);
        let mut out = Vec::with_capacity(s.len());
        for &b in s.as_bytes() {
            match b {
                b'&' => out.extend_from_slice(b"&amp;"),
                b'<' => out.extend_from_slice(b"&lt;"),
                b'>' => out.extend_from_slice(b"&gt;"),
                b'"' => out.extend_from_slice(b"&quot;"),
                b'\'' => out.extend_from_slice(b"&#039;"),
                other => out.push(other),
            }
        }
        copy_cost("php_htmlspecialchars", out.len(), self.prof);
        PhpStr::from_bytes(out)
    }

    /// `nl2br` — inserts `<br />` before newlines.
    pub fn nl2br(&self, s: &PhpStr) -> PhpStr {
        scan_cost("php_nl2br", s.len(), self.mode, self.prof);
        let mut out = Vec::with_capacity(s.len());
        let b = s.as_bytes();
        let mut i = 0;
        while i < b.len() {
            match b[i] {
                b'\n' => {
                    out.extend_from_slice(b"<br />\n");
                    i += 1;
                }
                b'\r' => {
                    out.extend_from_slice(b"<br />\r");
                    if i + 1 < b.len() && b[i + 1] == b'\n' {
                        out.push(b'\n');
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                other => {
                    out.push(other);
                    i += 1;
                }
            }
        }
        PhpStr::from_bytes(out)
    }

    /// `addslashes` — backslash-escapes `' " \` and NUL.
    pub fn addslashes(&self, s: &PhpStr) -> PhpStr {
        scan_cost("php_addslashes", s.len(), self.mode, self.prof);
        let mut out = Vec::with_capacity(s.len());
        for &b in s.as_bytes() {
            match b {
                b'\'' | b'"' | b'\\' => {
                    out.push(b'\\');
                    out.push(b);
                }
                0 => out.extend_from_slice(b"\\0"),
                other => out.push(other),
            }
        }
        PhpStr::from_bytes(out)
    }

    /// `str_pad` (right padding only, the common case).
    pub fn str_pad(&self, s: &PhpStr, len: usize, pad: &[u8]) -> PhpStr {
        let mut out = s.as_bytes().to_vec();
        if pad.is_empty() {
            copy_cost("php_str_pad", out.len(), self.prof);
            return PhpStr::from_bytes(out);
        }
        while out.len() < len {
            let take = pad.len().min(len - out.len());
            out.extend_from_slice(&pad[..take]);
        }
        copy_cost("php_str_pad", out.len(), self.prof);
        PhpStr::from_bytes(out)
    }

    /// `strrev`.
    pub fn strrev(&self, s: &PhpStr) -> PhpStr {
        copy_cost("php_strrev", s.len(), self.prof);
        let mut out = s.as_bytes().to_vec();
        out.reverse();
        PhpStr::from_bytes(out)
    }

    /// `wordwrap` at `width` with `\n` breaks (break long words disabled,
    /// like PHP's default).
    pub fn wordwrap(&self, s: &PhpStr, width: usize) -> PhpStr {
        scan_cost("php_wordwrap", s.len(), self.mode, self.prof);
        let mut out = Vec::with_capacity(s.len());
        let mut line_len = 0usize;
        for word in s.as_bytes().split(|&b| b == b' ') {
            if line_len > 0 {
                if line_len + 1 + word.len() > width {
                    out.push(b'\n');
                    line_len = 0;
                } else {
                    out.push(b' ');
                    line_len += 1;
                }
            }
            out.extend_from_slice(word);
            line_len += word.len();
        }
        PhpStr::from_bytes(out)
    }

    /// Minimal `sprintf`: `%s %d %f %%` only — what the workloads use.
    ///
    /// # Panics
    ///
    /// Panics on a conversion specifier other than `s`, `d`, `f`, `%`, or if
    /// too few arguments are supplied.
    pub fn sprintf(&self, format: &PhpStr, args: &[crate::value::PhpValue]) -> PhpStr {
        scan_cost("php_sprintf", format.len(), self.mode, self.prof);
        let f = format.as_bytes();
        let mut out = Vec::with_capacity(f.len() * 2);
        let mut ai = 0;
        let mut i = 0;
        while i < f.len() {
            if f[i] == b'%' && i + 1 < f.len() {
                match f[i + 1] {
                    b'%' => out.push(b'%'),
                    b's' => {
                        out.extend_from_slice(args[ai].to_php_string().as_bytes());
                        ai += 1;
                    }
                    b'd' => {
                        out.extend_from_slice(args[ai].to_int().to_string().as_bytes());
                        ai += 1;
                    }
                    b'f' => {
                        out.extend_from_slice(format!("{:.6}", args[ai].to_float()).as_bytes());
                        ai += 1;
                    }
                    other => panic!("sprintf: unsupported specifier %{}", other as char),
                }
                i += 2;
            } else {
                out.push(f[i]);
                i += 1;
            }
        }
        copy_cost("php_sprintf", out.len(), self.prof);
        PhpStr::from_bytes(out)
    }

    /// `strip_tags` — removes `<...>` spans (no attribute parsing, like
    /// PHP's fast path; unterminated tags are stripped to the end).
    pub fn strip_tags(&self, s: &PhpStr) -> PhpStr {
        scan_cost("php_strip_tags", s.len(), self.mode, self.prof);
        let b = s.as_bytes();
        let mut out = Vec::with_capacity(b.len());
        let mut in_tag = false;
        for &c in b {
            match c {
                b'<' => in_tag = true,
                b'>' if in_tag => in_tag = false,
                _ if !in_tag => out.push(c),
                _ => {}
            }
        }
        copy_cost("php_strip_tags", out.len(), self.prof);
        PhpStr::from_bytes(out)
    }

    /// `lcfirst`.
    pub fn lcfirst(&self, s: &PhpStr) -> PhpStr {
        self.prof.record(
            "php_lcfirst",
            Category::String,
            OpCost::alu(CALL_FIXED_UOPS),
        );
        let mut out = s.as_bytes().to_vec();
        if let Some(first) = out.first_mut() {
            *first = first.to_ascii_lowercase();
        }
        PhpStr::from_bytes(out)
    }

    /// `str_word_count` — counts alphabetic word runs.
    pub fn str_word_count(&self, s: &PhpStr) -> usize {
        scan_cost("php_str_word_count", s.len(), self.mode, self.prof);
        let mut count = 0;
        let mut in_word = false;
        for &b in s.as_bytes() {
            let is_word = b.is_ascii_alphabetic() || b == b'\'' || b == b'-';
            if is_word && !in_word {
                count += 1;
            }
            in_word = is_word;
        }
        count
    }

    /// `ctype`-style span: length of the prefix whose bytes all satisfy the
    /// class predicate (used by sanitizers).
    pub fn span_class(&self, s: &PhpStr, class: CharClass) -> usize {
        let n = s
            .as_bytes()
            .iter()
            .take_while(|&&b| class.matches(b))
            .count();
        scan_cost("php_ctype_span", n + 1, self.mode, self.prof);
        n
    }
}

/// Character classes used by span/scan functions and by the string
/// accelerator's inequality rows (§4.4: "detecting lower case, upper case,
/// alphanumeric, etc.").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CharClass {
    /// `[a-z]`
    Lower,
    /// `[A-Z]`
    Upper,
    /// `[0-9]`
    Digit,
    /// `[A-Za-z]`
    Alpha,
    /// `[A-Za-z0-9]`
    Alnum,
    /// ASCII whitespace.
    Space,
    /// The paper's *regular characters*: `[A-Za-z0-9_.,-]` plus space.
    Regular,
}

impl CharClass {
    /// Predicate for a single byte.
    pub fn matches(self, b: u8) -> bool {
        match self {
            CharClass::Lower => b.is_ascii_lowercase(),
            CharClass::Upper => b.is_ascii_uppercase(),
            CharClass::Digit => b.is_ascii_digit(),
            CharClass::Alpha => b.is_ascii_alphabetic(),
            CharClass::Alnum => b.is_ascii_alphanumeric(),
            CharClass::Space => b.is_ascii_whitespace(),
            CharClass::Regular => {
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b',' | b'-' | b' ')
            }
        }
    }
}

/// Is `b` a *special character* in the paper's Content-Sifting sense
/// (anything outside `[A-Za-z0-9_.,-]` and space)?
pub fn is_special_char(b: u8) -> bool {
    !CharClass::Regular.matches(b)
}

// ---------------------------------------------------------------------------
// Search kernels
// ---------------------------------------------------------------------------

/// Naive scalar substring search.
pub fn scalar_find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || needle.len() > haystack.len() {
        return None;
    }
    let first = needle[0];
    for i in 0..=(haystack.len() - needle.len()) {
        if haystack[i] == first && &haystack[i..i + needle.len()] == needle {
            return Some(i);
        }
    }
    None
}

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// SWAR "byte == x" detector: returns a word with the high bit set in every
/// byte lane equal to `x`.
#[inline]
fn swar_eq_mask(word: u64, x: u8) -> u64 {
    let v = word ^ (LO.wrapping_mul(x as u64));
    v.wrapping_sub(LO) & !v & HI
}

/// SWAR substring search: scans 8-byte words for first-byte candidates, then
/// verifies. This is the "SSE baseline" stand-in.
pub fn swar_find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || needle.len() > haystack.len() {
        return None;
    }
    let first = needle[0];
    let limit = haystack.len() - needle.len();
    let mut i = 0;
    while i + 8 <= haystack.len() {
        let word = u64::from_le_bytes(haystack[i..i + 8].try_into().unwrap());
        let mut mask = swar_eq_mask(word, first);
        while mask != 0 {
            let lane = (mask.trailing_zeros() / 8) as usize;
            let pos = i + lane;
            if pos <= limit && &haystack[pos..pos + needle.len()] == needle {
                return Some(pos);
            }
            mask &= mask - 1;
        }
        i += 8;
    }
    while i <= limit {
        if haystack[i] == first && &haystack[i..i + needle.len()] == needle {
            return Some(i);
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::PhpValue;

    fn lib(prof: &Profiler) -> StrLib<'_> {
        StrLib::new(prof, StrMode::Scalar)
    }

    #[test]
    fn strpos_both_modes_agree() {
        let p = Profiler::new();
        let hay = PhpStr::from("the quick brown fox jumps over the lazy dog");
        for mode in [StrMode::Scalar, StrMode::Swar] {
            let l = StrLib::new(&p, mode);
            assert_eq!(l.strpos(&hay, b"quick", 0), Some(4));
            assert_eq!(l.strpos(&hay, b"the", 1), Some(31));
            assert_eq!(l.strpos(&hay, b"zebra", 0), None);
            assert_eq!(l.strpos(&hay, b"dog", 0), Some(40));
        }
    }

    #[test]
    fn swar_cheaper_than_scalar() {
        let p1 = Profiler::new();
        let p2 = Profiler::new();
        let hay = PhpStr::from("x".repeat(4096));
        StrLib::new(&p1, StrMode::Scalar).strpos(&hay, b"yy", 0);
        StrLib::new(&p2, StrMode::Swar).strpos(&hay, b"yy", 0);
        assert!(
            p2.total_uops() < p1.total_uops() / 2,
            "SWAR should cut scan cost"
        );
    }

    #[test]
    fn substr_negative_indices() {
        let p = Profiler::new();
        let l = lib(&p);
        let s = PhpStr::from("abcdef");
        assert_eq!(l.substr(&s, -3, None).to_string_lossy(), "def");
        assert_eq!(l.substr(&s, 1, Some(3)).to_string_lossy(), "bcd");
        assert_eq!(l.substr(&s, 0, Some(-2)).to_string_lossy(), "abcd");
        assert_eq!(l.substr(&s, 10, None).len(), 0);
    }

    #[test]
    fn trim_strips_both_ends() {
        let p = Profiler::new();
        let l = lib(&p);
        let s = PhpStr::from("  \thello \n");
        assert_eq!(l.trim(&s, StrLib::WHITESPACE).to_string_lossy(), "hello");
        let all = PhpStr::from("   ");
        assert_eq!(l.trim(&all, StrLib::WHITESPACE).len(), 0);
    }

    #[test]
    fn case_functions() {
        let p = Profiler::new();
        let l = lib(&p);
        assert_eq!(
            l.strtolower(&PhpStr::from("AbC9!")).to_string_lossy(),
            "abc9!"
        );
        assert_eq!(
            l.strtoupper(&PhpStr::from("AbC9!")).to_string_lossy(),
            "ABC9!"
        );
        assert_eq!(
            l.ucfirst(&PhpStr::from("hello world")).to_string_lossy(),
            "Hello world"
        );
        assert_eq!(
            l.ucwords(&PhpStr::from("hello my world")).to_string_lossy(),
            "Hello My World"
        );
    }

    #[test]
    fn str_replace_counts() {
        let p = Profiler::new();
        let l = lib(&p);
        let (out, n) = l.str_replace(b"o", b"0", &PhpStr::from("foo bool"));
        assert_eq!(out.to_string_lossy(), "f00 b00l");
        assert_eq!(n, 4);
        let (out, n) = l.str_replace(b"xyz", b"-", &PhpStr::from("no match"));
        assert_eq!(out.to_string_lossy(), "no match");
        assert_eq!(n, 0);
    }

    #[test]
    fn replace_with_longer_and_shorter() {
        let p = Profiler::new();
        let l = lib(&p);
        let (out, _) = l.str_replace(b"a", b"xyz", &PhpStr::from("aba"));
        assert_eq!(out.to_string_lossy(), "xyzbxyz");
        let (out, _) = l.str_replace(b"ab", b"", &PhpStr::from("abab!"));
        assert_eq!(out.to_string_lossy(), "!");
    }

    #[test]
    fn implode_explode_roundtrip() {
        let p = Profiler::new();
        let l = lib(&p);
        let parts = l.explode(b",", &PhpStr::from("a,b,,c"));
        let strs: Vec<String> = parts.iter().map(|s| s.to_string_lossy()).collect();
        assert_eq!(strs, ["a", "b", "", "c"]);
        assert_eq!(l.implode(b",", &parts).to_string_lossy(), "a,b,,c");
    }

    #[test]
    fn htmlspecialchars_encodes() {
        let p = Profiler::new();
        let l = lib(&p);
        let out = l.htmlspecialchars(&PhpStr::from(r#"<a href="x">&'b'</a>"#));
        assert_eq!(
            out.to_string_lossy(),
            "&lt;a href=&quot;x&quot;&gt;&amp;&#039;b&#039;&lt;/a&gt;"
        );
    }

    #[test]
    fn nl2br_variants() {
        let p = Profiler::new();
        let l = lib(&p);
        assert_eq!(
            l.nl2br(&PhpStr::from("a\nb")).to_string_lossy(),
            "a<br />\nb"
        );
        assert_eq!(
            l.nl2br(&PhpStr::from("a\r\nb")).to_string_lossy(),
            "a<br />\r\nb"
        );
    }

    #[test]
    fn sprintf_basic() {
        let p = Profiler::new();
        let l = lib(&p);
        let out = l.sprintf(
            &PhpStr::from("%s has %d items (%f%%)"),
            &[
                PhpValue::from("cart"),
                PhpValue::from(3i64),
                PhpValue::from(1.5),
            ],
        );
        assert_eq!(out.to_string_lossy(), "cart has 3 items (1.500000%)");
    }

    #[test]
    fn wordwrap_wraps() {
        let p = Profiler::new();
        let l = lib(&p);
        let out = l.wordwrap(&PhpStr::from("aa bb cc dd"), 5);
        assert_eq!(out.to_string_lossy(), "aa bb\ncc dd");
    }

    #[test]
    fn pad_repeat_rev() {
        let p = Profiler::new();
        let l = lib(&p);
        assert_eq!(
            l.str_pad(&PhpStr::from("ab"), 5, b"-=").to_string_lossy(),
            "ab-=-"
        );
        assert_eq!(
            l.str_repeat(&PhpStr::from("ab"), 3).to_string_lossy(),
            "ababab"
        );
        assert_eq!(l.strrev(&PhpStr::from("abc")).to_string_lossy(), "cba");
    }

    #[test]
    fn char_classes_and_special() {
        assert!(CharClass::Regular.matches(b'a'));
        assert!(CharClass::Regular.matches(b'.'));
        assert!(CharClass::Regular.matches(b' '));
        assert!(is_special_char(b'<'));
        assert!(is_special_char(b'\''));
        assert!(is_special_char(b'\n'));
        assert!(!is_special_char(b'Z'));
        let p = Profiler::new();
        let l = lib(&p);
        assert_eq!(l.span_class(&PhpStr::from("abc12!x"), CharClass::Alnum), 5);
    }

    #[test]
    fn swar_find_matches_scalar_on_random_inputs() {
        // Deterministic pseudo-random cross-check of the two kernels.
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as u8 % 4 + b'a'
        };
        for trial in 0..200 {
            let hay: Vec<u8> = (0..64 + trial % 64).map(|_| next()).collect();
            let nlen = 1 + trial % 4;
            let needle: Vec<u8> = (0..nlen).map(|_| next()).collect();
            assert_eq!(
                scalar_find(&hay, &needle),
                swar_find(&hay, &needle),
                "hay={:?} needle={:?}",
                String::from_utf8_lossy(&hay),
                String::from_utf8_lossy(&needle)
            );
        }
    }
}
