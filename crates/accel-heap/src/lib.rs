//! # accel-heap
//!
//! Model of the ISCA 2017 paper's **hardware heap manager** (§4.3,
//! Figure 9): a comparator bounding requests to 128 bytes, a size-class
//! table of 8 slabs, 32-entry hardware free lists with head/tail pointers,
//! and a pointer-chasing prefetcher that refills them from the software
//! slab allocator. Memory's heap structures are updated **lazily** — only
//! on overflow or context switch (`hmflush`) — in contrast to eager
//! Mallacc-style designs (exposed as an ablation via
//! [`UpdatePolicy::Eager`]).
//!
//! ```
//! use accel_heap::{HwHeapManager, MallocOutcome};
//! use php_runtime::{alloc::SlabAllocator, Profiler};
//!
//! let mut hm = HwHeapManager::default();
//! let mut alloc = SlabAllocator::new();
//! let prof = Profiler::new();
//! let block = hm.hmmalloc(48, &mut alloc, &prof);
//! let addr = block.addr().expect("served");
//! hm.hmfree(addr, 48, &mut alloc, &prof);
//! assert!(matches!(hm.hmmalloc(48, &mut alloc, &prof), MallocOutcome::Hit { .. }));
//! ```

#![warn(missing_docs)]

pub mod freelist;
pub mod manager;
pub mod prefetch;
pub mod size_class;

pub use freelist::HwFreeList;
pub use manager::{FreeOutcome, HeapConfig, HeapStats, HwHeapManager, MallocOutcome, UpdatePolicy};
pub use prefetch::{PrefetchConfig, Prefetcher};
pub use size_class::{SizeClassTable, HW_CLASS_COUNT, MAX_HW_REQUEST};
