//! Comparator and size-class table (Figure 9, left side).
//!
//! §4.3: "The comparator limits the maximum size of a memory allocation
//! request that the hardware heap manager can satisfy. The size class table
//! chooses an appropriate free list for an incoming request depending on its
//! request size." The hardware serves requests of at most 128 bytes through
//! 8 slabs — "resulting in a very small, power-efficient hardware heap
//! manager."

/// Largest request the hardware heap manager serves (bytes).
pub const MAX_HW_REQUEST: usize = 128;
/// Number of hardware size classes.
pub const HW_CLASS_COUNT: usize = 8;
/// Byte granularity of the hardware size classes.
pub const HW_CLASS_GRANULARITY: usize = MAX_HW_REQUEST / HW_CLASS_COUNT;

/// The comparator + size-class table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeClassTable;

impl SizeClassTable {
    /// Classifies a request: `Some(class)` when the hardware can serve it,
    /// `None` when the comparator rejects it (zero flag → software).
    pub fn classify(size: usize) -> Option<usize> {
        if size == 0 || size > MAX_HW_REQUEST {
            return None;
        }
        Some((size - 1) / HW_CLASS_GRANULARITY)
    }

    /// Segment size of a class in bytes.
    pub fn class_bytes(class: usize) -> usize {
        assert!(class < HW_CLASS_COUNT, "class out of range");
        (class + 1) * HW_CLASS_GRANULARITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_boundaries() {
        assert_eq!(SizeClassTable::classify(0), None);
        assert_eq!(SizeClassTable::classify(1), Some(0));
        assert_eq!(SizeClassTable::classify(16), Some(0));
        assert_eq!(SizeClassTable::classify(17), Some(1));
        assert_eq!(SizeClassTable::classify(128), Some(7));
        assert_eq!(SizeClassTable::classify(129), None);
    }

    #[test]
    fn class_sizes_cover_paper_slabs() {
        assert_eq!(SizeClassTable::class_bytes(0), 16);
        assert_eq!(SizeClassTable::class_bytes(7), 128);
        // Figure 8 groups these into 0-32, 32-64, 64-96, 96-128 bands:
        // classes {0,1}, {2,3}, {4,5}, {6,7}.
        for c in 0..HW_CLASS_COUNT {
            assert!(SizeClassTable::class_bytes(c) <= MAX_HW_REQUEST);
        }
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn bad_class_panics() {
        SizeClassTable::class_bytes(8);
    }
}
