//! Hardware free list (Figure 9, right side).
//!
//! §4.3: "The free list for each size class has head and tail pointers to
//! orchestrate allocation and deallocation of memory blocks. The core uses
//! the head pointer for push and pop requests, and the prefetcher pushes to
//! the location of the tail pointer." So the structure is a bounded deque:
//! core traffic is LIFO at the head (reuse locality), prefetched blocks
//! queue FIFO at the tail.

/// A fixed-capacity circular free list of block addresses.
#[derive(Debug, Clone)]
pub struct HwFreeList {
    slots: Vec<u64>,
    head: usize,
    len: usize,
    capacity: usize,
}

impl HwFreeList {
    /// Creates a free list with `capacity` entries (paper default: 32).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        HwFreeList {
            slots: vec![0; capacity],
            head: 0,
            len: 0,
            capacity,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty (malloc must fall back).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the list is full (free must fall back / spill).
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Core pop from the head (hmmalloc hit).
    pub fn pop_head(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        self.head = (self.head + self.capacity - 1) % self.capacity;
        self.len -= 1;
        Some(self.slots[self.head])
    }

    /// Core push at the head (hmfree hit). Returns `false` when full.
    #[must_use]
    pub fn push_head(&mut self, addr: u64) -> bool {
        if self.is_full() {
            return false;
        }
        self.slots[self.head] = addr;
        self.head = (self.head + 1) % self.capacity;
        self.len += 1;
        true
    }

    /// Prefetcher push at the tail. Returns `false` when full.
    #[must_use]
    pub fn push_tail(&mut self, addr: u64) -> bool {
        if self.is_full() {
            return false;
        }
        // Entries occupy slots `head-len .. head-1` (mod capacity); a tail
        // push extends the deque backwards from the head.
        let tail = (self.head + self.capacity - self.len - 1) % self.capacity;
        self.slots[tail] = addr;
        self.len += 1;
        true
    }

    /// Snapshot of the resident entries, newest (head) first — used by the
    /// fault-injection hooks to pick a victim node deterministically.
    pub fn snapshot(&self) -> Vec<u64> {
        (0..self.len)
            .map(|i| self.slots[(self.head + self.capacity - 1 - i) % self.capacity])
            .collect()
    }

    /// Drains all entries (hmflush) oldest-first.
    pub fn drain_all(&mut self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(a) = self.pop_head() {
            out.push(a);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_at_head() {
        let mut fl = HwFreeList::new(4);
        assert!(fl.push_head(1));
        assert!(fl.push_head(2));
        assert_eq!(fl.pop_head(), Some(2));
        assert_eq!(fl.pop_head(), Some(1));
        assert_eq!(fl.pop_head(), None);
    }

    #[test]
    fn fifo_at_tail() {
        let mut fl = HwFreeList::new(4);
        assert!(fl.push_tail(10));
        assert!(fl.push_tail(11));
        // Head pops should see the *first* prefetched block last:
        // core LIFO sits on top of prefetch FIFO.
        assert!(fl.push_head(99));
        assert_eq!(fl.pop_head(), Some(99));
        assert_eq!(fl.pop_head(), Some(10));
        assert_eq!(fl.pop_head(), Some(11));
    }

    #[test]
    fn capacity_respected() {
        let mut fl = HwFreeList::new(2);
        assert!(fl.push_head(1));
        assert!(fl.push_head(2));
        assert!(fl.is_full());
        assert!(!fl.push_head(3));
        assert!(!fl.push_tail(3));
        assert_eq!(fl.len(), 2);
    }

    #[test]
    fn drain_empties() {
        let mut fl = HwFreeList::new(8);
        for i in 0..5 {
            assert!(fl.push_head(i));
        }
        let drained = fl.drain_all();
        assert_eq!(drained.len(), 5);
        assert!(fl.is_empty());
    }

    #[test]
    fn wraparound_many_cycles() {
        let mut fl = HwFreeList::new(3);
        for round in 0..50u64 {
            assert!(fl.push_head(round));
            assert!(fl.push_tail(1000 + round));
            assert_eq!(fl.pop_head(), Some(round));
            assert_eq!(fl.pop_head(), Some(1000 + round));
            assert!(fl.is_empty());
        }
    }
}
