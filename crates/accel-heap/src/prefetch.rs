//! Pointer-based free-list prefetcher.
//!
//! §4.3: "A prefetcher ensures that the free lists stay populated with
//! available memory blocks so that a request for memory allocation can hide
//! the latency of software involvement whenever possible. We use a
//! pointer-based prefetcher to prefetch the next available memory blocks
//! from the software heap manager structure."
//!
//! The model: when a hardware free list drops below its low watermark, the
//! prefetcher walks the software free list (pointer chasing, off the
//! critical path) and queues blocks for the hardware tail. Each prefetch
//! completes after a fixed latency measured in manager operations — if the
//! core allocates faster than the prefetcher can chase pointers, misses
//! still happen, which is what makes the 32-entry list depth meaningful.

use crate::size_class::HW_CLASS_COUNT;
use php_runtime::alloc::SlabAllocator;

/// An in-flight prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Inflight {
    class: usize,
    addr: u64,
    completes_at: u64,
}

/// Prefetcher configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Refill when a list has fewer than this many entries.
    pub low_watermark: usize,
    /// Target fill level after refilling.
    pub high_watermark: usize,
    /// Completion latency in manager operations (memory round-trip).
    pub latency_ops: u64,
    /// Maximum outstanding prefetches (MSHR-like bound).
    pub max_inflight: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            low_watermark: 8,
            high_watermark: 24,
            latency_ops: 4,
            max_inflight: 16,
        }
    }
}

/// The prefetcher.
#[derive(Debug)]
pub struct Prefetcher {
    cfg: PrefetchConfig,
    inflight: Vec<Inflight>,
    /// Completed prefetches per class, ready to land in hardware tails.
    issued: u64,
    landed: u64,
    /// No software block was available to steal when asked.
    dry_misses: u64,
    enabled: bool,
}

impl Prefetcher {
    /// Creates a prefetcher.
    pub fn new(cfg: PrefetchConfig) -> Self {
        Prefetcher {
            cfg,
            inflight: Vec::new(),
            issued: 0,
            landed: 0,
            dry_misses: 0,
            enabled: true,
        }
    }

    /// Enables/disables prefetching (ablation hook).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether prefetching is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// `(issued, landed, dry_misses)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.issued, self.landed, self.dry_misses)
    }

    /// Considers issuing prefetches for `class` given its current hardware
    /// free-list length. Steals block addresses from the software allocator's
    /// free list (no core cost — pointer chasing happens off critical path).
    pub fn maybe_issue(
        &mut self,
        class: usize,
        hw_len: usize,
        now: u64,
        alloc: &mut SlabAllocator,
    ) {
        assert!(class < HW_CLASS_COUNT);
        if !self.enabled || hw_len >= self.cfg.low_watermark {
            return;
        }
        let inflight_for_class = self.inflight.iter().filter(|p| p.class == class).count();
        let want = self
            .cfg
            .high_watermark
            .saturating_sub(hw_len + inflight_for_class)
            .min(self.cfg.max_inflight.saturating_sub(self.inflight.len()));
        for _ in 0..want {
            // The software allocator's slab classes are finer (16B) than a
            // direct 1:1 map would suggest; the runtime wires hardware class
            // i to software class of the same segment size (2*(i+1)*8 bytes
            // = software class index 2i+1 with 16B granularity... the
            // manager passes the right software class in `sw_class`).
            match alloc.steal_free_segment(sw_class_for(class)) {
                Some(addr) => {
                    self.issued += 1;
                    self.inflight.push(Inflight {
                        class,
                        addr,
                        completes_at: now + self.cfg.latency_ops,
                    });
                }
                None => {
                    self.dry_misses += 1;
                    break;
                }
            }
        }
    }

    /// Drains prefetches that have completed by `now`; the manager pushes
    /// them at the hardware tails. Returns `(class, addr)` pairs; any that
    /// no longer fit must be returned to software by the caller.
    pub fn drain_completed(&mut self, now: u64) -> Vec<(usize, u64)> {
        let mut done = Vec::new();
        self.inflight.retain(|p| {
            if p.completes_at <= now {
                done.push((p.class, p.addr));
                false
            } else {
                true
            }
        });
        self.landed += done.len() as u64;
        done
    }

    /// Outstanding prefetch count.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }
}

/// Maps a hardware size class (16B granularity, 8 classes) to the software
/// slab class of identical segment size in [`php_runtime::alloc::CLASS_SIZES`].
pub fn sw_class_for(hw_class: usize) -> usize {
    // CLASS_SIZES = [16,32,48,64,80,96,112,128, ...]; identical layout for
    // the first 8 entries, so the mapping is the identity.
    hw_class
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_runtime::Profiler;

    #[test]
    fn issues_only_below_watermark() {
        let mut pf = Prefetcher::new(PrefetchConfig::default());
        let mut alloc = SlabAllocator::new();
        pf.maybe_issue(0, 20, 0, &mut alloc); // above low watermark
        assert_eq!(pf.inflight_len(), 0);
        pf.maybe_issue(0, 2, 0, &mut alloc); // below, but software list empty
        assert_eq!(pf.inflight_len(), 0);
        let (_, _, dry) = pf.counters();
        assert!(dry > 0);
    }

    #[test]
    fn steals_from_software_free_list() {
        let mut pf = Prefetcher::new(PrefetchConfig {
            latency_ops: 2,
            ..Default::default()
        });
        let mut alloc = SlabAllocator::new();
        let prof = Profiler::new();
        // Populate the software free list for 16B class.
        let blocks: Vec<_> = (0..10).map(|_| alloc.malloc(16, &prof)).collect();
        for b in blocks {
            alloc.free(b, &prof);
        }
        pf.maybe_issue(0, 0, 0, &mut alloc);
        assert!(pf.inflight_len() > 0);
        assert!(pf.drain_completed(1).is_empty(), "latency not elapsed");
        let done = pf.drain_completed(2);
        assert_eq!(done.len(), pf.counters().1 as usize);
        assert!(done.iter().all(|&(c, _)| c == 0));
    }

    #[test]
    fn disabled_prefetcher_is_inert() {
        let mut pf = Prefetcher::new(PrefetchConfig::default());
        pf.set_enabled(false);
        let mut alloc = SlabAllocator::new();
        let prof = Profiler::new();
        let b = alloc.malloc(16, &prof);
        alloc.free(b, &prof);
        pf.maybe_issue(0, 0, 0, &mut alloc);
        assert_eq!(pf.inflight_len(), 0);
    }

    #[test]
    fn inflight_bounded() {
        let mut pf = Prefetcher::new(PrefetchConfig {
            max_inflight: 4,
            ..Default::default()
        });
        let mut alloc = SlabAllocator::new();
        let prof = Profiler::new();
        let blocks: Vec<_> = (0..50).map(|_| alloc.malloc(16, &prof)).collect();
        for b in blocks {
            alloc.free(b, &prof);
        }
        pf.maybe_issue(0, 0, 0, &mut alloc);
        assert!(pf.inflight_len() <= 4);
    }

    #[test]
    fn sw_class_mapping_sizes_agree() {
        use crate::size_class::SizeClassTable;
        for c in 0..HW_CLASS_COUNT {
            assert_eq!(
                php_runtime::alloc::CLASS_SIZES[sw_class_for(c)],
                SizeClassTable::class_bytes(c)
            );
        }
    }
}
