//! The hardware heap manager (§4.3, Figure 9) and its ISA-visible
//! semantics (`hmmalloc`, `hmfree`, `hmflush` — §4.6).

use crate::freelist::HwFreeList;
use crate::prefetch::{sw_class_for, PrefetchConfig, Prefetcher};
use crate::size_class::{SizeClassTable, HW_CLASS_COUNT};
use php_runtime::alloc::SlabAllocator;
use php_runtime::profile::{Category, OpCost};
use php_runtime::Profiler;
use std::collections::HashSet;

/// Memory-update policy (design consideration vs. Mallacc \[48\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdatePolicy {
    /// Paper's choice: "we instead lazily update the memory's heap manager
    /// data structure only on overflow or during context switches."
    #[default]
    Lazy,
    /// Mallacc-style: "eagerly updates the memory's head pointer and linked
    /// list on all malloc and free requests" — ablation baseline.
    Eager,
}

/// µops a software handler spends on an eager memory update per request.
const EAGER_UPDATE_UOPS: u64 = 6;
/// µops of the software handler on an hmfree overflow: "updates the content
/// of the second-to-last block [...] (which can be done using a single str
/// instruction)".
const OVERFLOW_STORE_UOPS: u64 = 8;

/// Configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeapConfig {
    /// Entries per hardware free list (paper: 32 — "enough flexibility to
    /// the prefetcher in hiding the prefetch latency").
    pub freelist_entries: usize,
    /// Prefetcher settings.
    pub prefetch: PrefetchConfig,
    /// Memory update policy.
    pub update_policy: UpdatePolicy,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            freelist_entries: 32,
            prefetch: PrefetchConfig::default(),
            update_policy: UpdatePolicy::Lazy,
        }
    }
}

/// Result of an `hmmalloc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MallocOutcome {
    /// Served from a hardware free list in 1 cycle.
    Hit {
        /// The block address.
        addr: u64,
    },
    /// Hardware class empty — zero flag set; the software handler supplied
    /// the block (cost already charged).
    SoftwareRefill {
        /// The block address.
        addr: u64,
    },
    /// Request too large for the comparator — plain software malloc path
    /// (caller goes through [`SlabAllocator`] directly).
    TooLarge,
}

impl MallocOutcome {
    /// The address, when the request was served.
    pub fn addr(&self) -> Option<u64> {
        match self {
            MallocOutcome::Hit { addr } | MallocOutcome::SoftwareRefill { addr } => Some(*addr),
            MallocOutcome::TooLarge => None,
        }
    }
}

/// Result of an `hmfree`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreeOutcome {
    /// Pushed onto the hardware free list in 1 cycle.
    Hit,
    /// Free list full — zero flag set; software spilled the block to the
    /// software free list (single-store handler).
    Spilled,
    /// Block class unknown to hardware — software free path.
    TooLarge,
}

/// Statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// hmmalloc requests within hardware range.
    pub mallocs: u64,
    /// hmmalloc hardware hits.
    pub malloc_hits: u64,
    /// hmmalloc software refills (zero flag).
    pub malloc_misses: u64,
    /// hmfree requests within range.
    pub frees: u64,
    /// hmfree hardware hits.
    pub free_hits: u64,
    /// hmfree spills (zero flag).
    pub free_spills: u64,
    /// Requests above 128 B (went fully software).
    pub too_large: u64,
    /// Context-switch flushes.
    pub flushes: u64,
    /// Blocks written back by flushes.
    pub flushed_blocks: u64,
    /// Accelerator cycles.
    pub accel_cycles: u64,
    /// Free-list nodes poisoned by the fault-injection hook.
    pub faults_injected: u64,
    /// Poisoned nodes caught by the parity check on pop/flush.
    pub faults_detected: u64,
}

impl HeapStats {
    /// Hardware hit rate over in-range requests.
    pub fn hit_rate(&self) -> f64 {
        let total = self.mallocs + self.frees;
        if total == 0 {
            return 0.0;
        }
        (self.malloc_hits + self.free_hits) as f64 / total as f64
    }
}

/// The hardware heap manager.
#[derive(Debug)]
pub struct HwHeapManager {
    cfg: HeapConfig,
    lists: Vec<HwFreeList>,
    prefetcher: Prefetcher,
    stats: HeapStats,
    now: u64,
    /// Free-list nodes whose stored metadata no longer passes parity
    /// (injected faults); caught when the node is next popped or flushed.
    poisoned: HashSet<u64>,
}

impl Default for HwHeapManager {
    fn default() -> Self {
        Self::new(HeapConfig::default())
    }
}

impl HwHeapManager {
    /// Builds the manager.
    pub fn new(cfg: HeapConfig) -> Self {
        HwHeapManager {
            cfg,
            lists: (0..HW_CLASS_COUNT)
                .map(|_| HwFreeList::new(cfg.freelist_entries))
                .collect(),
            prefetcher: Prefetcher::new(cfg.prefetch),
            stats: HeapStats::default(),
            now: 0,
            poisoned: HashSet::new(),
        }
    }

    /// Statistics.
    pub fn stats(&self) -> &HeapStats {
        &self.stats
    }

    /// Configuration.
    pub fn config(&self) -> &HeapConfig {
        &self.cfg
    }

    /// Prefetcher counters `(issued, landed, dry)`.
    pub fn prefetch_counters(&self) -> (u64, u64, u64) {
        self.prefetcher.counters()
    }

    /// Enables/disables the prefetcher (ablation).
    pub fn set_prefetch_enabled(&mut self, on: bool) {
        self.prefetcher.set_enabled(on);
    }

    fn step(&mut self, alloc: &mut SlabAllocator) {
        self.now += 1;
        for (class, addr) in self.prefetcher.drain_completed(self.now) {
            if !self.lists[class].push_tail(addr) {
                // List filled up meanwhile: hand the block back to software.
                alloc.return_segment(sw_class_for(class), addr);
            }
        }
    }

    fn charge_eager_update(&self, prof: &Profiler) {
        if self.cfg.update_policy == UpdatePolicy::Eager {
            prof.record(
                "hm_eager_memory_update",
                Category::Heap,
                OpCost {
                    uops: EAGER_UPDATE_UOPS,
                    branches: 1,
                    loads: 1,
                    stores: 2,
                },
            );
        }
    }

    /// Pre-seeds the hardware free lists from statically known allocation
    /// sizes: static analysis reports the byte sizes of allocation sites it
    /// proved constant, and this carves matching blocks from the software
    /// allocator *before* the first request so the first `hmmalloc` of each
    /// predicted class hits in hardware instead of missing to the software
    /// refill path. Seeded blocks enter the free-list inventory exactly like
    /// prefetched ones — they are not live allocations and are handed back
    /// by `hmflush` like any other node. Classes that already hold inventory
    /// are skipped, so re-attaching the same facts on every request is a
    /// no-op after the first call. Returns the number of distinct size
    /// classes seeded.
    pub fn preseed(&mut self, sizes: &[usize], alloc: &mut SlabAllocator, prof: &Profiler) -> u64 {
        let mut want = [0usize; HW_CLASS_COUNT];
        for &size in sizes {
            if let Some(class) = SizeClassTable::classify(size) {
                want[class] += 1;
            }
        }
        let mut classes = 0u64;
        for (class, &n) in want.iter().enumerate() {
            if n == 0 || !self.lists[class].is_empty() {
                continue;
            }
            let mut pushed = false;
            for _ in 0..n.min(self.lists[class].capacity()) {
                let addr = alloc.carve_for_hardware(sw_class_for(class), prof);
                if self.lists[class].push_tail(addr) {
                    pushed = true;
                } else {
                    alloc.return_segment(sw_class_for(class), addr);
                    break;
                }
            }
            if pushed {
                classes += 1;
            }
        }
        classes
    }

    /// `hmmalloc size` — returns a block of at most 128 bytes, or signals
    /// the software path.
    pub fn hmmalloc(
        &mut self,
        size: usize,
        alloc: &mut SlabAllocator,
        prof: &Profiler,
    ) -> MallocOutcome {
        self.step(alloc);
        let Some(class) = SizeClassTable::classify(size) else {
            self.stats.too_large += 1;
            return MallocOutcome::TooLarge;
        };
        self.stats.mallocs += 1;
        self.stats.accel_cycles += 1; // §5.1: 1 cycle per hardware request
        let outcome = match self.lists[class].pop_head() {
            Some(addr) if self.poisoned.remove(&addr) => {
                // Parity caught a poisoned node: quarantine the block back
                // to the software free list and let the software handler
                // serve the request from a fresh carve.
                self.stats.faults_detected += 1;
                alloc.return_segment(sw_class_for(class), addr);
                self.stats.malloc_misses += 1;
                let fresh = alloc.carve_for_hardware(sw_class_for(class), prof);
                alloc.note_hardware_alloc(sw_class_for(class), fresh, size);
                MallocOutcome::SoftwareRefill { addr: fresh }
            }
            Some(addr) => {
                self.stats.malloc_hits += 1;
                alloc.note_hardware_alloc(sw_class_for(class), addr, size);
                self.charge_eager_update(prof);
                MallocOutcome::Hit { addr }
            }
            None => {
                // Zero flag → software handler retrieves a block at software
                // cost and returns it to the core.
                self.stats.malloc_misses += 1;
                let addr = alloc.carve_for_hardware(sw_class_for(class), prof);
                alloc.note_hardware_alloc(sw_class_for(class), addr, size);
                MallocOutcome::SoftwareRefill { addr }
            }
        };
        let len = self.lists[class].len();
        self.prefetcher.maybe_issue(class, len, self.now, alloc);
        outcome
    }

    /// `hmfree addr, size`.
    pub fn hmfree(
        &mut self,
        addr: u64,
        size: usize,
        alloc: &mut SlabAllocator,
        prof: &Profiler,
    ) -> FreeOutcome {
        self.step(alloc);
        let Some(class) = SizeClassTable::classify(size) else {
            self.stats.too_large += 1;
            return FreeOutcome::TooLarge;
        };
        self.stats.frees += 1;
        self.stats.accel_cycles += 1;
        alloc.note_hardware_free(addr);
        if self.lists[class].push_head(addr) {
            self.stats.free_hits += 1;
            self.charge_eager_update(prof);
            FreeOutcome::Hit
        } else {
            // Zero flag → software handler links the block into the software
            // free list with a single store.
            self.stats.free_spills += 1;
            prof.record(
                "hm_overflow_spill",
                Category::Heap,
                OpCost {
                    uops: OVERFLOW_STORE_UOPS,
                    branches: 1,
                    loads: 1,
                    stores: 1,
                },
            );
            alloc.return_segment(sw_class_for(class), addr);
            FreeOutcome::Spilled
        }
    }

    /// `hmflush` — context switch: "the hardware heap manager must flush its
    /// entries to the memory's heap manager data structure." Resumable; here
    /// modeled as one call returning the number of blocks flushed.
    pub fn hmflush(&mut self, alloc: &mut SlabAllocator, prof: &Profiler) -> usize {
        self.stats.flushes += 1;
        let mut flushed = 0;
        for class in 0..HW_CLASS_COUNT {
            for addr in self.lists[class].drain_all() {
                if self.poisoned.remove(&addr) {
                    // Parity caught the node on the way out; the segment is
                    // still reclaimed by software, so nothing leaks.
                    self.stats.faults_detected += 1;
                }
                alloc.return_segment(sw_class_for(class), addr);
                flushed += 1;
            }
        }
        self.stats.flushed_blocks += flushed as u64;
        prof.record(
            "hmflush",
            Category::Heap,
            OpCost::mixed(10 + 3 * flushed as u64),
        );
        flushed
    }

    /// Fault-injection hook: poisons the `nth` resident free-list node
    /// (across all classes, newest first). The parity check catches it when
    /// the node is next popped or flushed. Returns `false` when every
    /// hardware free list is empty.
    pub fn inject_freelist_fault(&mut self, nth: usize) -> bool {
        let mut nodes = Vec::new();
        for list in &self.lists {
            nodes.extend(list.snapshot());
        }
        if nodes.is_empty() {
            return false;
        }
        self.poisoned.insert(nodes[nth % nodes.len()]);
        self.stats.faults_injected += 1;
        true
    }

    /// Resets statistics counters (contents and free lists stay).
    pub fn reset_stats(&mut self) {
        self.stats = HeapStats::default();
    }

    /// Current hardware free-list occupancy per class.
    pub fn occupancy(&self) -> Vec<usize> {
        self.lists.iter().map(|l| l.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Send-audit: per-core accelerator state must be movable into a worker
    /// thread (it stays worker-private, so `Sync` is not required).
    #[test]
    fn hw_heap_manager_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<HwHeapManager>();
    }

    fn setup() -> (HwHeapManager, SlabAllocator, Profiler) {
        (
            HwHeapManager::default(),
            SlabAllocator::new(),
            Profiler::new(),
        )
    }

    #[test]
    fn first_malloc_misses_then_reuse_hits() {
        let (mut hm, mut alloc, prof) = setup();
        let m1 = hm.hmmalloc(48, &mut alloc, &prof);
        assert!(matches!(m1, MallocOutcome::SoftwareRefill { .. }));
        let addr = m1.addr().unwrap();
        assert_eq!(hm.hmfree(addr, 48, &mut alloc, &prof), FreeOutcome::Hit);
        let m2 = hm.hmmalloc(48, &mut alloc, &prof);
        assert_eq!(m2, MallocOutcome::Hit { addr });
        assert_eq!(hm.stats().malloc_hits, 1);
        assert_eq!(hm.stats().malloc_misses, 1);
    }

    #[test]
    fn too_large_goes_software() {
        let (mut hm, mut alloc, prof) = setup();
        assert_eq!(hm.hmmalloc(129, &mut alloc, &prof), MallocOutcome::TooLarge);
        assert_eq!(
            hm.hmfree(0x1000, 4096, &mut alloc, &prof),
            FreeOutcome::TooLarge
        );
        assert_eq!(hm.stats().too_large, 2);
    }

    #[test]
    fn strong_reuse_gives_high_hit_rate() {
        // The paper's claim: strong memory reuse ⇒ "in the common case it
        // satisfies the requests from the hardware free list".
        let (mut hm, mut alloc, prof) = setup();
        for _ in 0..2000 {
            let a = hm.hmmalloc(32, &mut alloc, &prof).addr().unwrap();
            let b = hm.hmmalloc(64, &mut alloc, &prof).addr().unwrap();
            hm.hmfree(a, 32, &mut alloc, &prof);
            hm.hmfree(b, 64, &mut alloc, &prof);
        }
        assert!(
            hm.stats().hit_rate() > 0.95,
            "hit rate {}",
            hm.stats().hit_rate()
        );
    }

    #[test]
    fn free_list_overflow_spills_to_software() {
        let (mut hm, mut alloc, prof) = setup();
        // Free 40 blocks of one class without allocating: 32 fit, rest spill.
        let blocks: Vec<u64> = (0..40)
            .map(|_| alloc.carve_for_hardware(0, &prof))
            .collect();
        for &addr in &blocks {
            alloc.note_hardware_alloc(0, addr, 16);
        }
        let mut spills = 0;
        for addr in blocks {
            if hm.hmfree(addr, 16, &mut alloc, &prof) == FreeOutcome::Spilled {
                spills += 1;
            }
        }
        assert_eq!(spills, 8);
        assert_eq!(hm.occupancy()[0], 32);
    }

    #[test]
    fn hmflush_returns_blocks_to_software() {
        let (mut hm, mut alloc, prof) = setup();
        let a = hm.hmmalloc(16, &mut alloc, &prof).addr().unwrap();
        let b = hm.hmmalloc(16, &mut alloc, &prof).addr().unwrap();
        hm.hmfree(a, 16, &mut alloc, &prof);
        hm.hmfree(b, 16, &mut alloc, &prof);
        let flushed = hm.hmflush(&mut alloc, &prof);
        assert_eq!(flushed, 2);
        assert!(hm.occupancy().iter().all(|&n| n == 0));
        // After a flush the blocks are reachable through software again.
        let m = alloc.malloc(16, &prof);
        assert!(m.addr == a || m.addr == b);
    }

    #[test]
    fn prefetcher_refills_from_software_free_list() {
        let (mut hm, mut alloc, prof) = setup();
        // Build up a software free list by allocating+freeing in software.
        let blocks: Vec<_> = (0..64).map(|_| alloc.malloc(16, &prof)).collect();
        for b in blocks {
            alloc.free(b, &prof);
        }
        // First hardware malloc misses, but triggers prefetching.
        let _ = hm.hmmalloc(16, &mut alloc, &prof);
        // Subsequent operations land the prefetches; hit rate recovers.
        let mut hits = 0;
        for _ in 0..20 {
            if matches!(
                hm.hmmalloc(16, &mut alloc, &prof),
                MallocOutcome::Hit { .. }
            ) {
                hits += 1;
            }
        }
        assert!(
            hits > 10,
            "prefetcher should convert misses to hits, got {hits}"
        );
        let (issued, landed, _) = hm.prefetch_counters();
        assert!(issued > 0 && landed > 0);
    }

    #[test]
    fn eager_policy_charges_update_cost() {
        let lazy_cfg = HeapConfig {
            update_policy: UpdatePolicy::Lazy,
            ..HeapConfig::default()
        };
        let eager_cfg = HeapConfig {
            update_policy: UpdatePolicy::Eager,
            ..HeapConfig::default()
        };

        let run = |cfg: HeapConfig| {
            let mut hm = HwHeapManager::new(cfg);
            let mut alloc = SlabAllocator::new();
            let prof = Profiler::new();
            for _ in 0..100 {
                let a = hm.hmmalloc(32, &mut alloc, &prof).addr().unwrap();
                hm.hmfree(a, 32, &mut alloc, &prof);
            }
            prof.total_uops()
        };
        assert!(
            run(eager_cfg) > run(lazy_cfg),
            "eager updates must cost more"
        );
    }

    #[test]
    fn poisoned_node_detected_on_pop_and_quarantined() {
        let (mut hm, mut alloc, prof) = setup();
        let a = hm.hmmalloc(32, &mut alloc, &prof).addr().unwrap();
        hm.hmfree(a, 32, &mut alloc, &prof);
        assert!(hm.inject_freelist_fault(0));
        assert_eq!(hm.stats().faults_injected, 1);
        // Pop hits the poisoned node: detected, software refill serves it.
        let m = hm.hmmalloc(32, &mut alloc, &prof);
        assert!(matches!(m, MallocOutcome::SoftwareRefill { .. }));
        assert_eq!(hm.stats().faults_detected, 1);
        // Accounting stays balanced: the quarantined segment was returned.
        hm.hmfree(m.addr().unwrap(), 32, &mut alloc, &prof);
        let _ = hm.hmflush(&mut alloc, &prof);
        assert_eq!(alloc.live_block_count(), 0);
    }

    #[test]
    fn poisoned_node_detected_on_flush() {
        let (mut hm, mut alloc, prof) = setup();
        let a = hm.hmmalloc(16, &mut alloc, &prof).addr().unwrap();
        hm.hmfree(a, 16, &mut alloc, &prof);
        assert!(hm.inject_freelist_fault(0));
        let flushed = hm.hmflush(&mut alloc, &prof);
        assert_eq!(flushed, 1);
        assert_eq!(hm.stats().faults_detected, 1);
        // The block is reachable through software again.
        let m = alloc.malloc(16, &prof);
        assert_eq!(m.addr, a);
    }

    #[test]
    fn inject_with_empty_lists_reports_nothing_to_poison() {
        let (mut hm, _, _) = setup();
        assert!(!hm.inject_freelist_fault(0));
        assert_eq!(hm.stats().faults_injected, 0);
    }

    #[test]
    fn accounting_stays_balanced() {
        let (mut hm, mut alloc, prof) = setup();
        let mut live = Vec::new();
        for i in 0..100 {
            live.push((
                hm.hmmalloc(16 + i % 112, &mut alloc, &prof).addr().unwrap(),
                16 + i % 112,
            ));
        }
        for (addr, size) in live {
            hm.hmfree(addr, size, &mut alloc, &prof);
        }
        assert_eq!(alloc.live_block_count(), 0);
    }
}
