//! # uarch-sim
//!
//! Trace-driven microarchitecture models standing in for the paper's gem5
//! setup (§2, §5.1): set-associative caches with next-line prefetchers, a
//! sweepable BTB, a working TAGE branch predictor, analytic in-order/OoO
//! core models (2-wide in-order through 8-wide OoO), and a CACTI/McPAT-like
//! energy and area model.
//!
//! ```
//! use uarch_sim::core_model::{simulate, CoreKind, Machine};
//! use uarch_sim::trace::{synthesize, TraceProfile};
//!
//! let trace = synthesize(&TraceProfile::php_app(1), 50_000);
//! let mut machine = Machine::server(CoreKind::OoO4);
//! let result = simulate(&trace, &mut machine);
//! assert!(result.cycles > 0);
//! assert!(result.branch_mpki() > 5.0); // PHP apps mispredict heavily (§2)
//! ```

#![warn(missing_docs)]

pub mod btb;
pub mod cache;
pub mod core_model;
pub mod energy;
pub mod tage;
pub mod trace;

pub use btb::{Btb, BtbConfig, BtbStats};
pub use cache::{Cache, CacheConfig, CacheStats, Hierarchy, Latencies};
pub use core_model::{simulate, CoreKind, Machine, SimResult};
pub use energy::{AccelActivity, AreaBudget, EnergyModel, EnergyParams};
pub use tage::{Bimodal, PredStats, Tage, TageConfig};
pub use trace::{count, synthesize, TraceCounts, TraceProfile, Uop};
