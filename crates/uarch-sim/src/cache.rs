//! Set-associative caches with LRU replacement and an optional next-line
//! prefetcher; a three-level hierarchy (L1I / L1D / shared L2).
//!
//! §2's cache analysis: "we simulate an aggressive memory system with
//! prefetchers at every cache level"; the finding is that L1 behaviour is
//! SPEC-like and the L2 has very low MPKI.

/// Cache line size in bytes.
pub const LINE_BYTES: u64 = 64;

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity.
    pub ways: usize,
    /// Enable next-line prefetch on miss.
    pub next_line_prefetch: bool,
}

impl CacheConfig {
    /// 32 KB, 8-way — typical L1.
    pub fn l1_32k() -> Self {
        CacheConfig {
            capacity: 32 << 10,
            ways: 8,
            next_line_prefetch: true,
        }
    }

    /// 1 MB, 16-way — typical private L2 slice.
    pub fn l2_1m() -> Self {
        CacheConfig {
            capacity: 1 << 20,
            ways: 16,
            next_line_prefetch: true,
        }
    }
}

/// Access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses.
    pub accesses: u64,
    /// Demand misses.
    pub misses: u64,
    /// Prefetch issues.
    pub prefetches: u64,
    /// Misses covered by an earlier prefetch.
    pub prefetch_hits: u64,
}

impl CacheStats {
    /// Miss rate over demand accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Misses per kilo-instruction given an instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }
}

/// A set-associative cache.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    /// tags[set] = (tag, lru_stamp, from_prefetch)
    tags: Vec<Vec<(u64, u64, bool)>>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache.
    ///
    /// # Panics
    ///
    /// Panics when geometry is inconsistent (capacity not divisible into
    /// power-of-two sets).
    pub fn new(cfg: CacheConfig) -> Self {
        let lines = cfg.capacity / LINE_BYTES as usize;
        assert!(
            lines >= cfg.ways && lines.is_multiple_of(cfg.ways),
            "bad geometry"
        );
        let sets = lines / cfg.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            cfg,
            sets,
            tags: vec![Vec::new(); sets],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / LINE_BYTES) as usize) & (self.sets - 1)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / LINE_BYTES / self.sets as u64
    }

    /// Demand access; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let hit = self.touch(addr, false);
        if !hit {
            self.stats.misses += 1;
            if self.cfg.next_line_prefetch {
                self.stats.prefetches += 1;
                self.install(addr + LINE_BYTES, true);
            }
        }
        hit
    }

    /// Prefetch-only install (no demand statistics).
    pub fn prefetch(&mut self, addr: u64) {
        self.stats.prefetches += 1;
        self.install(addr, true);
    }

    fn touch(&mut self, addr: u64, _from_pf: bool) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let clock = self.clock;
        if let Some(entry) = self.tags[set].iter_mut().find(|(t, _, _)| *t == tag) {
            if entry.2 {
                self.stats.prefetch_hits += 1;
                entry.2 = false;
            }
            entry.1 = clock;
            return true;
        }
        self.install(addr, false);
        false
    }

    fn install(&mut self, addr: u64, from_pf: bool) {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let clock = self.clock;
        if let Some(entry) = self.tags[set].iter_mut().find(|(t, _, _)| *t == tag) {
            entry.1 = clock;
            return;
        }
        if self.tags[set].len() >= self.cfg.ways {
            // Evict LRU.
            let lru = self.tags[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp, _))| *stamp)
                .map(|(i, _)| i)
                .expect("nonempty set");
            self.tags[set].swap_remove(lru);
        }
        self.tags[set].push((tag, clock, from_pf));
    }

    /// Statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }
}

/// A two-level hierarchy: split L1 I/D over a unified L2.
#[derive(Debug)]
pub struct Hierarchy {
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified second level.
    pub l2: Cache,
}

/// Latencies used by the core model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// L2 hit latency (cycles) charged on an L1 miss.
    pub l2_hit: u64,
    /// Memory latency (cycles) charged on an L2 miss.
    pub memory: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            l2_hit: 12,
            memory: 200,
        }
    }
}

impl Hierarchy {
    /// Builds a hierarchy.
    pub fn new(l1i: CacheConfig, l1d: CacheConfig, l2: CacheConfig) -> Self {
        Hierarchy {
            l1i: Cache::new(l1i),
            l1d: Cache::new(l1d),
            l2: Cache::new(l2),
        }
    }

    /// Default server-class hierarchy (32 KB L1s, 1 MB L2).
    pub fn server() -> Self {
        Self::new(
            CacheConfig::l1_32k(),
            CacheConfig::l1_32k(),
            CacheConfig::l2_1m(),
        )
    }

    /// Instruction fetch of `addr`: returns the added latency in cycles
    /// beyond an L1 hit.
    pub fn fetch(&mut self, addr: u64, lat: Latencies) -> u64 {
        if self.l1i.access(addr) {
            return 0;
        }
        if self.l2.access(addr) {
            lat.l2_hit
        } else {
            lat.memory
        }
    }

    /// Data access of `addr`: returns the added latency beyond an L1 hit.
    pub fn data(&mut self, addr: u64, lat: Latencies) -> u64 {
        if self.l1d.access(addr) {
            return 0;
        }
        if self.l2.access(addr) {
            lat.l2_hit
        } else {
            lat.memory
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(CacheConfig::l1_32k());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004), "same line");
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn capacity_eviction() {
        let mut c = Cache::new(CacheConfig {
            capacity: 1024,
            ways: 2,
            next_line_prefetch: false,
        });
        // 16 lines, 8 sets, 2 ways. Touch 3 lines mapping to the same set.
        let set_stride = 8 * 64;
        c.access(0);
        c.access(set_stride);
        c.access(2 * set_stride); // evicts line 0 (LRU)
        assert!(!c.access(0), "line 0 was evicted");
        assert!(c.access(2 * set_stride));
    }

    #[test]
    fn lru_order_respected() {
        let mut c = Cache::new(CacheConfig {
            capacity: 1024,
            ways: 2,
            next_line_prefetch: false,
        });
        let s = 8 * 64;
        c.access(0);
        c.access(s);
        c.access(0); // 0 is MRU now
        c.access(2 * s); // evicts s
        assert!(c.access(0));
        assert!(!c.access(s));
    }

    #[test]
    fn next_line_prefetch_helps_streams() {
        let mut with = Cache::new(CacheConfig {
            capacity: 32 << 10,
            ways: 8,
            next_line_prefetch: true,
        });
        let mut without = Cache::new(CacheConfig {
            capacity: 32 << 10,
            ways: 8,
            next_line_prefetch: false,
        });
        for i in 0..512u64 {
            with.access(i * 64);
            without.access(i * 64);
        }
        assert!(with.stats().misses < without.stats().misses / 2 + 10);
    }

    #[test]
    fn mpki_computation() {
        let s = CacheStats {
            accesses: 1000,
            misses: 25,
            ..Default::default()
        };
        assert!((s.mpki(10_000) - 2.5).abs() < 1e-12);
        assert!((s.miss_rate() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn hierarchy_l2_filters() {
        let mut h = Hierarchy::server();
        let lat = Latencies::default();
        let first = h.fetch(0x40_0000, lat);
        assert_eq!(first, lat.memory);
        let again = h.fetch(0x40_0000, lat);
        assert_eq!(again, 0);
        // Evicted from a tiny L1 but present in L2 → l2_hit latency.
        let mut h2 = Hierarchy::new(
            CacheConfig {
                capacity: 1024,
                ways: 2,
                next_line_prefetch: false,
            },
            CacheConfig::l1_32k(),
            CacheConfig::l2_1m(),
        );
        h2.fetch(0, lat);
        for i in 1..64u64 {
            h2.fetch(i * 512, lat);
        }
        assert_eq!(h2.fetch(0, lat), lat.l2_hit);
    }

    #[test]
    #[should_panic(expected = "bad geometry")]
    fn bad_geometry_panics() {
        Cache::new(CacheConfig {
            capacity: 100,
            ways: 3,
            next_line_prefetch: false,
        });
    }
}
