//! Energy and area model (CACTI/McPAT stand-in).
//!
//! §5.1/§5.2: the paper estimates accelerator latency/energy/area with
//! CACTI 6.5+ and Verilog synthesis (TSMC 45 nm @ 2 GHz), core power with
//! McPAT, and uses *dynamic instruction reduction as a simple proxy for CPU
//! energy savings*. "The combined area overhead of the specialized hardware
//! accelerators is 0.22 mm²  [...] merely 0.89% of the core area" of a
//! 24.7 mm² Nehalem-class core.

/// Per-structure access energies in picojoules (45 nm-class estimates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Average core energy per µop (fetch/decode/rename/issue/commit
    /// amortized), pJ.
    pub core_uop_pj: f64,
    /// L1 cache access, pJ.
    pub l1_access_pj: f64,
    /// L2 cache access, pJ.
    pub l2_access_pj: f64,
    /// Hash-table accelerator lookup (4 parallel entries + hash), pJ.
    pub htable_access_pj: f64,
    /// RTT access, pJ.
    pub rtt_access_pj: f64,
    /// Heap-manager free-list access, pJ.
    pub heap_access_pj: f64,
    /// String-accelerator 64-byte block (clock-gating applied via active
    /// cells elsewhere), pJ.
    pub string_block_pj: f64,
    /// Content-reuse table lookup, pJ.
    pub reuse_access_pj: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            core_uop_pj: 85.0,
            l1_access_pj: 20.0,
            l2_access_pj: 120.0,
            htable_access_pj: 11.0,
            rtt_access_pj: 3.5,
            heap_access_pj: 3.0,
            string_block_pj: 24.0,
            reuse_access_pj: 5.0,
        }
    }
}

/// Accelerator activity counters for an energy estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccelActivity {
    /// Hash-table accesses (GET+SET+fill).
    pub htable_accesses: u64,
    /// RTT accesses (inserts, frees, foreach replays).
    pub rtt_accesses: u64,
    /// Heap-manager requests served in hardware.
    pub heap_accesses: u64,
    /// String-accelerator blocks processed.
    pub string_blocks: u64,
    /// Content-reuse table lookups+sets.
    pub reuse_accesses: u64,
}

/// Area inventory in mm² (45 nm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBudget {
    /// 512-entry hash table with 24-byte inline keys.
    pub htable_mm2: f64,
    /// Reverse translation table.
    pub rtt_mm2: f64,
    /// Heap manager (size-class table + 8×32 free lists + prefetcher).
    pub heap_mm2: f64,
    /// String accelerator (matching matrix + encoders + shifters).
    pub string_mm2: f64,
    /// Content-reuse table (32 entries × ~40 B).
    pub reuse_mm2: f64,
    /// Control/glue.
    pub glue_mm2: f64,
    /// Reference core area (Nehalem-class, incl. private L1/L2).
    pub core_mm2: f64,
}

impl Default for AreaBudget {
    fn default() -> Self {
        AreaBudget {
            htable_mm2: 0.112,
            rtt_mm2: 0.024,
            heap_mm2: 0.013,
            string_mm2: 0.046,
            reuse_mm2: 0.016,
            glue_mm2: 0.009,
            core_mm2: 24.7,
        }
    }
}

impl AreaBudget {
    /// Total accelerator area (paper: 0.22 mm²).
    pub fn accel_total_mm2(&self) -> f64 {
        self.htable_mm2
            + self.rtt_mm2
            + self.heap_mm2
            + self.string_mm2
            + self.reuse_mm2
            + self.glue_mm2
    }

    /// Fraction of the reference core (paper: 0.89 %).
    pub fn fraction_of_core(&self) -> f64 {
        self.accel_total_mm2() / self.core_mm2
    }
}

/// The energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyModel {
    /// Energy parameters.
    pub params: EnergyParams,
    /// Area inventory.
    pub area: AreaBudget,
}

impl EnergyModel {
    /// Core energy for `uops` µops, in microjoules.
    pub fn core_energy_uj(&self, uops: u64) -> f64 {
        uops as f64 * self.params.core_uop_pj / 1e6
    }

    /// Accelerator energy for the given activity, in microjoules.
    pub fn accel_energy_uj(&self, a: &AccelActivity) -> f64 {
        (a.htable_accesses as f64 * self.params.htable_access_pj
            + a.rtt_accesses as f64 * self.params.rtt_access_pj
            + a.heap_accesses as f64 * self.params.heap_access_pj
            + a.string_blocks as f64 * self.params.string_block_pj
            + a.reuse_accesses as f64 * self.params.reuse_access_pj)
            / 1e6
    }

    /// Relative energy saving of the specialized machine: baseline µops vs
    /// accelerated µops + accelerator activity. Matches the paper's
    /// instruction-reduction proxy with accelerator energy added back.
    pub fn saving(&self, baseline_uops: u64, accel_uops: u64, activity: &AccelActivity) -> f64 {
        let base = self.core_energy_uj(baseline_uops);
        if base == 0.0 {
            return 0.0;
        }
        let spec = self.core_energy_uj(accel_uops) + self.accel_energy_uj(activity);
        1.0 - spec / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_matches_paper_budget() {
        let a = AreaBudget::default();
        assert!(
            (a.accel_total_mm2() - 0.22).abs() < 0.005,
            "{}",
            a.accel_total_mm2()
        );
        assert!(
            (a.fraction_of_core() - 0.0089).abs() < 0.0005,
            "{}",
            a.fraction_of_core()
        );
    }

    #[test]
    fn saving_monotone_in_uop_reduction() {
        let m = EnergyModel::default();
        let act = AccelActivity {
            htable_accesses: 1000,
            ..Default::default()
        };
        let s1 = m.saving(1_000_000, 900_000, &act);
        let s2 = m.saving(1_000_000, 700_000, &act);
        assert!(s2 > s1);
        assert!(s1 > 0.0 && s2 < 1.0);
    }

    #[test]
    fn accelerator_energy_charged() {
        let m = EnergyModel::default();
        let s_free = m.saving(1_000_000, 800_000, &AccelActivity::default());
        let heavy = AccelActivity {
            string_blocks: 500_000,
            ..Default::default()
        };
        let s_heavy = m.saving(1_000_000, 800_000, &heavy);
        assert!(s_heavy < s_free, "accelerator energy reduces the saving");
    }

    #[test]
    fn core_energy_scales() {
        let m = EnergyModel::default();
        assert_eq!(m.core_energy_uj(0), 0.0);
        assert!((m.core_energy_uj(1_000_000) - 85.0).abs() < 1e-9);
    }
}
