//! Instruction-trace model and synthetic trace synthesis.
//!
//! **Substitution note (DESIGN.md §2):** the paper drives gem5 with real
//! HHVM binaries. We have no gem5 and no HHVM; instead, traces are
//! *synthesized* from workload profiles: a population of leaf functions with
//! code footprints, call frequencies, branch densities, and data-dependent
//! branch shares measured from the paper's characterization (≈22 % branch
//! instructions, flat function profiles, hundreds of leaf functions). The
//! µarch conclusions of Figure 2 are about relative sensitivities, which
//! this level of modelling preserves.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One micro-op of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uop {
    /// Plain ALU work at `pc`.
    Alu {
        /// Instruction address.
        pc: u64,
    },
    /// A data load.
    Load {
        /// Instruction address.
        pc: u64,
        /// Effective address.
        addr: u64,
    },
    /// A data store.
    Store {
        /// Instruction address.
        pc: u64,
        /// Effective address.
        addr: u64,
    },
    /// A conditional or indirect branch.
    Branch {
        /// Instruction address.
        pc: u64,
        /// Outcome.
        taken: bool,
        /// Target address (meaningful when taken).
        target: u64,
    },
}

impl Uop {
    /// The instruction address.
    pub fn pc(&self) -> u64 {
        match *self {
            Uop::Alu { pc }
            | Uop::Load { pc, .. }
            | Uop::Store { pc, .. }
            | Uop::Branch { pc, .. } => pc,
        }
    }
}

/// Parameters describing a workload's trace behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Distinct leaf functions (PHP apps: hundreds; SPECWeb: a handful).
    pub functions: usize,
    /// Code bytes per function (I-side footprint).
    pub code_bytes_per_fn: usize,
    /// Fraction of instructions that are branches (PHP ≈ 0.22, SPEC ≈ 0.12).
    pub branch_fraction: f64,
    /// Among branches, fraction that are *data-dependent* (outcomes driven
    /// by unpredictable data — §2's misprediction culprit).
    pub data_dep_branch_fraction: f64,
    /// Taken probability of data-dependent branches (0.5 = coin flip).
    pub data_dep_taken_prob: f64,
    /// Fraction of instructions that are loads.
    pub load_fraction: f64,
    /// Fraction of instructions that are stores.
    pub store_fraction: f64,
    /// Data working-set size in bytes.
    pub data_working_set: usize,
    /// Zipf-ish locality: probability a memory access re-touches a hot line.
    pub data_locality: f64,
    /// Average dynamic instructions spent per function activation.
    pub fn_activation_len: usize,
    /// Minimum loop trip count of backward-branch sites.
    pub loop_period_min: u32,
    /// Spread added on top of the minimum trip count.
    pub loop_period_spread: u32,
    /// RNG seed (deterministic experiments).
    pub seed: u64,
}

impl TraceProfile {
    /// Profile shaped like the paper's real-world PHP applications.
    pub fn php_app(seed: u64) -> Self {
        TraceProfile {
            functions: 700,
            code_bytes_per_fn: 256,
            branch_fraction: 0.105,
            data_dep_branch_fraction: 0.38,
            data_dep_taken_prob: 0.78,
            load_fraction: 0.28,
            store_fraction: 0.12,
            data_working_set: 256 << 10,
            data_locality: 0.985,
            fn_activation_len: 90,
            loop_period_min: 16,
            loop_period_spread: 48,
            seed,
        }
    }

    /// Profile shaped like SPECWeb2005-style hotspot microbenchmarks.
    pub fn specweb(seed: u64) -> Self {
        TraceProfile {
            functions: 12,
            code_bytes_per_fn: 512,
            branch_fraction: 0.032,
            data_dep_branch_fraction: 0.04,
            data_dep_taken_prob: 0.85,
            load_fraction: 0.25,
            store_fraction: 0.10,
            data_working_set: 64 << 10,
            data_locality: 0.99,
            fn_activation_len: 400,
            loop_period_min: 48,
            loop_period_spread: 96,
            seed,
        }
    }
}

/// Synthesizes a trace of `n` µops from a profile.
///
/// Functions are visited with a flat (uniform) distribution for PHP-like
/// profiles; loop branches inside a function are strongly biased
/// (predictable), data-dependent branches flip with the configured
/// probability (unpredictable by construction).
pub fn synthesize(profile: &TraceProfile, n: usize) -> Vec<Uop> {
    use std::collections::HashMap;
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let mut out = Vec::with_capacity(n);
    let fn_base = |f: usize| 0x40_0000u64 + (f * profile.code_bytes_per_fn) as u64;
    let mut hot_lines: Vec<u64> = (0..64).map(|i| 0x10_0000 + i * 64).collect();

    // Function bodies are *deterministic programs*: the instruction type at
    // a given (function, offset) is a fixed hash of that position, so the
    // global instruction/branch sequence repeats across activations — that
    // is what makes loop branches learnable by history predictors while
    // data-dependent branches stay noisy (§2).
    let mix = |f: usize, off: usize, salt: u64| -> u64 {
        let mut x = (f as u64) ^ ((off as u64) << 20) ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 31;
        x
    };
    let seed_salt = profile.seed ^ 0xABCD_EF01;

    // Per-site loop counters and per-call-site memoized callees.
    let mut loop_counters: HashMap<(usize, usize), u32> = HashMap::new();
    let mut call_sites: HashMap<(usize, u64), usize> = HashMap::new();

    let mut cur_fn = 0usize;
    let mut pc_off = 0usize;
    let mut remaining_in_fn = profile.fn_activation_len;

    while out.len() < n {
        if remaining_in_fn == 0 {
            // Call/return: an unconditional taken branch from a fixed site.
            // Function popularity is zipf-like: a hot head keeps the
            // instruction footprint cacheable while the tail keeps the
            // profile flat and the BTB pressured.
            // Callers have several call sites; most are monomorphic (the
            // same callee nearly every time — direct calls), a minority are
            // megamorphic indirect dispatch.
            let site = rng.gen_range(0..4u64);
            let next_fn = match call_sites.get(&(cur_fn, site)) {
                Some(&callee) if rng.gen_bool(0.9) => callee,
                _ => {
                    let callee = zipf_pick(&mut rng, profile.functions);
                    call_sites.insert((cur_fn, site), callee);
                    callee
                }
            };
            let pc = fn_base(cur_fn) + (profile.code_bytes_per_fn - 8) as u64 - 16 * site;
            out.push(Uop::Branch {
                pc,
                taken: true,
                target: fn_base(next_fn),
            });
            cur_fn = next_fn;
            pc_off = 0;
            remaining_in_fn = (profile.fn_activation_len / 2).max(4)
                + rng.gen_range(0..profile.fn_activation_len.max(1));
            continue;
        }
        let off = pc_off % profile.code_bytes_per_fn;
        let pc = fn_base(cur_fn) + off as u64;
        pc_off += 4;
        remaining_in_fn -= 1;

        let h = mix(cur_fn, off, seed_salt);
        let r = (h & 0xFFFF) as f64 / 65536.0;
        if r < profile.branch_fraction {
            let data_dep = ((h >> 16) & 0xFFFF) as f64 / 65536.0 < profile.data_dep_branch_fraction;
            if data_dep {
                // Forward data-dependent branch: outcome driven by data.
                let taken = rng.gen_bool(profile.data_dep_taken_prob);
                let target = pc + 16;
                if taken {
                    pc_off = off + 16;
                }
                out.push(Uop::Branch { pc, taken, target });
            } else {
                // Backward loop branch with a fixed trip count: taken
                // (period-1) of period times — learnable.
                let period =
                    profile.loop_period_min + ((h >> 32) as u32 % profile.loop_period_spread);
                let body = 16 + ((h >> 40) as usize % 4) * 16; // 4-16 instrs
                let target_off = off.saturating_sub(body);
                let counter = loop_counters.entry((cur_fn, off)).or_insert(0);
                *counter = (*counter + 1) % period;
                let taken = *counter != 0;
                let target = fn_base(cur_fn) + target_off as u64;
                if taken {
                    pc_off = target_off;
                }
                out.push(Uop::Branch { pc, taken, target });
            }
        } else if r < profile.branch_fraction + profile.load_fraction {
            out.push(Uop::Load {
                pc,
                addr: data_addr(&mut rng, profile, &mut hot_lines),
            });
        } else if r < profile.branch_fraction + profile.load_fraction + profile.store_fraction {
            out.push(Uop::Store {
                pc,
                addr: data_addr(&mut rng, profile, &mut hot_lines),
            });
        } else {
            out.push(Uop::Alu { pc });
        }
    }
    out
}

/// Zipf-like pick over `n` items using the inverse-CDF of 1/(k+4).
fn zipf_pick(rng: &mut StdRng, n: usize) -> usize {
    let total: f64 = (0..n).map(|k| 1.0 / (k as f64 + 4.0)).sum();
    let mut x = rng.gen::<f64>() * total;
    for k in 0..n {
        let w = 1.0 / (k as f64 + 4.0);
        if x < w {
            return k;
        }
        x -= w;
    }
    n - 1
}

fn data_addr(rng: &mut StdRng, profile: &TraceProfile, hot: &mut [u64]) -> u64 {
    if rng.gen_bool(profile.data_locality) {
        let i = rng.gen_range(0..hot.len());
        hot[i]
    } else {
        let addr = 0x10_0000 + rng.gen_range(0..profile.data_working_set as u64 / 64) * 64;
        let i = rng.gen_range(0..hot.len());
        hot[i] = addr; // working set slowly rotates
        addr
    }
}

/// Summary counts of a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounts {
    /// Total µops.
    pub uops: u64,
    /// Branches.
    pub branches: u64,
    /// Taken branches.
    pub taken: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
}

/// Counts a trace's composition.
pub fn count(trace: &[Uop]) -> TraceCounts {
    let mut c = TraceCounts {
        uops: trace.len() as u64,
        ..Default::default()
    };
    for u in trace {
        match u {
            Uop::Branch { taken, .. } => {
                c.branches += 1;
                if *taken {
                    c.taken += 1;
                }
            }
            Uop::Load { .. } => c.loads += 1,
            Uop::Store { .. } => c.stores += 1,
            Uop::Alu { .. } => {}
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic() {
        let p = TraceProfile::php_app(42);
        let a = synthesize(&p, 5000);
        let b = synthesize(&p, 5000);
        assert_eq!(a, b);
    }

    #[test]
    fn branch_fraction_respected() {
        let p = TraceProfile::php_app(1);
        let t = synthesize(&p, 200_000);
        let c = count(&t);
        let frac = c.branches as f64 / c.uops as f64;
        assert!((0.19..0.27).contains(&frac), "php branch fraction {frac}");

        let s = TraceProfile::specweb(1);
        let t2 = synthesize(&s, 200_000);
        let c2 = count(&t2);
        let frac2 = c2.branches as f64 / c2.uops as f64;
        assert!(
            (0.09..0.19).contains(&frac2),
            "spec branch fraction {frac2}"
        );
    }

    #[test]
    fn php_touches_many_functions() {
        let p = TraceProfile::php_app(7);
        let t = synthesize(&p, 300_000);
        let mut fns = std::collections::HashSet::new();
        for u in &t {
            fns.insert(u.pc() / p.code_bytes_per_fn as u64);
        }
        assert!(
            fns.len() > 300,
            "flat profile must touch most functions, got {}",
            fns.len()
        );
    }

    #[test]
    fn loads_and_stores_present() {
        let t = synthesize(&TraceProfile::php_app(3), 50_000);
        let c = count(&t);
        assert!(c.loads > 0 && c.stores > 0);
        assert!(c.loads > c.stores);
    }
}
