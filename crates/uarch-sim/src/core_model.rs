//! Core pipeline models and the trace-driven simulation driver.
//!
//! Figure 2(c) compares 2-wide in-order, 2/4/8-wide out-of-order cores. The
//! model here is analytic-over-trace: structural events (mispredictions,
//! BTB misses, cache misses) are simulated exactly by the component models;
//! their latency contributions are combined with width- and
//! window-dependent overlap factors.

use crate::btb::{Btb, BtbConfig};
use crate::cache::{Hierarchy, Latencies, LINE_BYTES};
use crate::tage::{Tage, TageConfig};
use crate::trace::Uop;

/// The simulated core flavours of Figure 2(c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// 2-wide in-order.
    InOrder2,
    /// 2-wide out-of-order.
    OoO2,
    /// 4-wide out-of-order (the Xeon-like baseline, §5.1).
    OoO4,
    /// 8-wide out-of-order.
    OoO8,
}

impl CoreKind {
    /// All kinds, narrow to wide.
    pub const ALL: [CoreKind; 4] = [
        CoreKind::InOrder2,
        CoreKind::OoO2,
        CoreKind::OoO4,
        CoreKind::OoO8,
    ];

    /// Issue width.
    pub fn width(self) -> u64 {
        match self {
            CoreKind::InOrder2 | CoreKind::OoO2 => 2,
            CoreKind::OoO4 => 4,
            CoreKind::OoO8 => 8,
        }
    }

    /// Sustainable fraction of peak width on these workloads. In-order
    /// cores stall on every RAW hazard; wider OoO cores run out of ILP —
    /// §2: "increasing to an 8-wide OoO machine shows very little (< 3%)
    /// performance increase".
    #[allow(clippy::approx_constant)] // 0.318 is a utilization figure, not 1/pi
    pub fn utilization(self) -> f64 {
        match self {
            CoreKind::InOrder2 => 0.52,
            CoreKind::OoO2 => 0.88,
            CoreKind::OoO4 => 0.62,
            CoreKind::OoO8 => 0.318,
        }
    }

    /// Branch misprediction penalty (pipeline refill), cycles.
    pub fn mispredict_penalty(self) -> u64 {
        match self {
            CoreKind::InOrder2 => 8,
            _ => 14,
        }
    }

    /// Memory-level parallelism: how many outstanding misses overlap.
    pub fn mlp(self) -> f64 {
        match self {
            CoreKind::InOrder2 => 1.0,
            CoreKind::OoO2 => 2.0,
            CoreKind::OoO4 => 4.0,
            CoreKind::OoO8 => 4.6,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            CoreKind::InOrder2 => "2-wide in-order",
            CoreKind::OoO2 => "2-wide OoO",
            CoreKind::OoO4 => "4-wide OoO",
            CoreKind::OoO8 => "8-wide OoO",
        }
    }
}

/// Machine configuration for a simulation run.
#[derive(Debug)]
pub struct Machine {
    /// Core flavour.
    pub core: CoreKind,
    /// Cache hierarchy.
    pub hierarchy: Hierarchy,
    /// Branch target buffer.
    pub btb: Btb,
    /// Branch predictor.
    pub tage: Tage,
    /// Latency set.
    pub latencies: Latencies,
}

impl Machine {
    /// A Xeon-like server machine (§5.1 baseline).
    pub fn server(core: CoreKind) -> Self {
        Machine {
            core,
            hierarchy: Hierarchy::server(),
            btb: Btb::new(BtbConfig::default()),
            tage: Tage::new(TageConfig::default()),
            latencies: Latencies::default(),
        }
    }
}

/// Cycle breakdown of a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimResult {
    /// µops executed.
    pub uops: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Issue-limited base cycles.
    pub base_cycles: u64,
    /// Branch-misprediction penalty cycles.
    pub bp_cycles: u64,
    /// BTB-miss fetch-bubble cycles.
    pub btb_cycles: u64,
    /// Instruction-fetch miss cycles.
    pub icache_cycles: u64,
    /// Data-miss cycles (after MLP overlap).
    pub dcache_cycles: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// BTB misses (taken branches), both capacity and stale-target.
    pub btb_misses: u64,
    /// The capacity/conflict component of BTB misses (size-sensitive).
    pub btb_capacity_misses: u64,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.uops as f64 / self.cycles as f64
        }
    }

    /// Branch MPKI.
    pub fn branch_mpki(&self) -> f64 {
        if self.uops == 0 {
            0.0
        } else {
            self.mispredicts as f64 * 1000.0 / self.uops as f64
        }
    }
}

/// Fetch bubble on a BTB miss, cycles.
const BTB_MISS_BUBBLE: u64 = 3;

/// Runs a trace through a machine.
pub fn simulate(trace: &[Uop], m: &mut Machine) -> SimResult {
    let mut r = SimResult {
        uops: trace.len() as u64,
        ..Default::default()
    };
    let mut icache_lat = 0u64;
    let mut dcache_lat = 0u64;
    let mut last_line = u64::MAX;

    for u in trace {
        let pc = u.pc();
        let line = pc / LINE_BYTES;
        if line != last_line {
            icache_lat += m.hierarchy.fetch(pc, m.latencies);
            last_line = line;
        }
        match *u {
            Uop::Branch { pc, taken, target } => {
                let correct = m.tage.observe(pc, taken);
                if !correct {
                    r.mispredicts += 1;
                }
                if taken {
                    if !m.btb.lookup_update(pc, target) {
                        r.btb_misses += 1;
                    }
                    last_line = u64::MAX; // redirect refetches the line
                }
            }
            Uop::Load { addr, .. } | Uop::Store { addr, .. } => {
                dcache_lat += m.hierarchy.data(addr, m.latencies);
            }
            Uop::Alu { .. } => {}
        }
    }

    let width_eff = m.core.width() as f64 * m.core.utilization();
    r.base_cycles = (r.uops as f64 / width_eff).ceil() as u64;
    r.bp_cycles = r.mispredicts * m.core.mispredict_penalty();
    r.btb_cycles = r.btb_misses * BTB_MISS_BUBBLE;
    // Fetch-miss latency is partially hidden by the fetch queue/prefetch.
    r.icache_cycles = icache_lat / 2;
    r.dcache_cycles = (dcache_lat as f64 / m.core.mlp()) as u64;
    r.btb_capacity_misses = m.btb.stats().capacity_misses;
    r.cycles = r.base_cycles + r.bp_cycles + r.btb_cycles + r.icache_cycles + r.dcache_cycles;
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{synthesize, TraceProfile};

    fn run(kind: CoreKind, profile: &TraceProfile, n: usize) -> SimResult {
        let trace = synthesize(profile, n);
        let mut m = Machine::server(kind);
        simulate(&trace, &mut m)
    }

    #[test]
    fn php_mpki_far_above_spec() {
        let php = run(CoreKind::OoO4, &TraceProfile::php_app(11), 400_000);
        let spec = run(CoreKind::OoO4, &TraceProfile::specweb(11), 400_000);
        assert!(php.branch_mpki() > 10.0, "php mpki {}", php.branch_mpki());
        assert!(spec.branch_mpki() < 5.0, "spec mpki {}", spec.branch_mpki());
    }

    #[test]
    fn figure_2c_width_ordering() {
        let p = TraceProfile::php_app(21);
        let io2 = run(CoreKind::InOrder2, &p, 300_000).cycles;
        let ooo2 = run(CoreKind::OoO2, &p, 300_000).cycles;
        let ooo4 = run(CoreKind::OoO4, &p, 300_000).cycles;
        let ooo8 = run(CoreKind::OoO8, &p, 300_000).cycles;
        assert!(io2 > ooo2, "in-order slower than OoO2");
        assert!(
            ooo2 as f64 > ooo4 as f64 * 1.1,
            "4-wide clearly beats 2-wide"
        );
        let gain8 = 1.0 - ooo8 as f64 / ooo4 as f64;
        assert!(gain8 < 0.06, "8-wide gains little: {gain8}");
        assert!(ooo8 <= ooo4, "8-wide not slower");
    }

    #[test]
    fn btb_pressure_from_flat_php_profiles() {
        let p = TraceProfile::php_app(31);
        let trace = synthesize(&p, 300_000);
        let mut small = Machine::server(CoreKind::OoO4);
        small.btb = Btb::new(BtbConfig {
            entries: 512,
            ways: 2,
        });
        let r_small = simulate(&trace, &mut small);
        let mut big = Machine::server(CoreKind::OoO4);
        big.btb = Btb::new(BtbConfig {
            entries: 65536,
            ways: 2,
        });
        let r_big = simulate(&trace, &mut big);
        assert!(
            r_small.btb_capacity_misses > r_big.btb_capacity_misses * 2,
            "small {} vs big {}",
            r_small.btb_capacity_misses,
            r_big.btb_capacity_misses
        );
        assert!(r_small.cycles > r_big.cycles);
    }

    #[test]
    fn ipc_sane() {
        let r = run(CoreKind::OoO4, &TraceProfile::php_app(41), 200_000);
        let ipc = r.ipc();
        assert!((0.2..2.5).contains(&ipc), "ipc {ipc}");
    }
}
