//! Branch target buffer.
//!
//! §2: "We simulate a BTB that resembles the BTB found in modern Intel
//! server cores with 4K entries and 2-way set associativity. [...] even with
//! 64K entries, the PHP application obtains a modest BTB hit rate of
//! 95.85%." Figure 2(a) sweeps 4K → 64K entries.

/// BTB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Total entries (power of two).
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl Default for BtbConfig {
    fn default() -> Self {
        BtbConfig {
            entries: 4096,
            ways: 2,
        }
    }
}

/// BTB statistics (taken branches only — not-taken branches don't need a
/// target).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtbStats {
    /// Taken-branch lookups.
    pub lookups: u64,
    /// Lookups that found the correct target.
    pub hits: u64,
    /// Lookups whose entry was absent (capacity/conflict misses — the
    /// component that shrinks with BTB size, Figure 2a).
    pub capacity_misses: u64,
    /// Lookups whose entry was present but held a stale target (indirect
    /// branches; size-independent).
    pub target_changes: u64,
}

impl BtbStats {
    /// Hit rate.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// The branch target buffer.
#[derive(Debug)]
pub struct Btb {
    cfg: BtbConfig,
    sets: usize,
    /// ways[set] = (tag, target, stamp)
    entries: Vec<Vec<(u64, u64, u64)>>,
    clock: u64,
    stats: BtbStats,
}

impl Btb {
    /// Builds a BTB.
    ///
    /// # Panics
    ///
    /// Panics when `entries` is not a power of two or not divisible by `ways`.
    pub fn new(cfg: BtbConfig) -> Self {
        assert!(
            cfg.entries.is_power_of_two(),
            "entries must be a power of two"
        );
        assert!(cfg.ways >= 1 && cfg.entries.is_multiple_of(cfg.ways));
        let sets = cfg.entries / cfg.ways;
        Btb {
            cfg,
            sets,
            entries: vec![Vec::new(); sets],
            clock: 0,
            stats: BtbStats::default(),
        }
    }

    /// Geometry.
    pub fn config(&self) -> &BtbConfig {
        &self.cfg
    }

    /// Statistics.
    pub fn stats(&self) -> &BtbStats {
        &self.stats
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    /// Processes a *taken* branch at `pc` jumping to `target`. Returns
    /// `true` when the BTB supplied the right target (no fetch bubble).
    pub fn lookup_update(&mut self, pc: u64, target: u64) -> bool {
        self.clock += 1;
        self.stats.lookups += 1;
        let set = self.set_of(pc);
        let tag = pc >> 2;
        let clock = self.clock;
        if let Some(e) = self.entries[set].iter_mut().find(|(t, _, _)| *t == tag) {
            e.2 = clock;
            if e.1 == target {
                self.stats.hits += 1;
                return true;
            }
            e.1 = target; // target changed (indirect): update, count as miss
            self.stats.target_changes += 1;
            return false;
        }
        self.stats.capacity_misses += 1;
        if self.entries[set].len() >= self.cfg.ways {
            let lru = self.entries[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, s))| *s)
                .map(|(i, _)| i)
                .expect("nonempty");
            self.entries[set].swap_remove(lru);
        }
        self.entries[set].push((tag, target, clock));
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_targets() {
        let mut b = Btb::new(BtbConfig::default());
        assert!(!b.lookup_update(0x100, 0x200));
        assert!(b.lookup_update(0x100, 0x200));
        assert!((b.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn target_change_misses_once() {
        let mut b = Btb::new(BtbConfig::default());
        b.lookup_update(0x100, 0x200);
        assert!(!b.lookup_update(0x100, 0x300), "indirect target changed");
        assert!(b.lookup_update(0x100, 0x300));
    }

    #[test]
    fn small_btb_thrashes_with_many_branch_sites() {
        let small = BtbConfig {
            entries: 64,
            ways: 2,
        };
        let mut b = Btb::new(small);
        // 1000 distinct branch PCs round-robin: no reuse fits in 64 entries.
        for round in 0..3 {
            for i in 0..1000u64 {
                let _ = b.lookup_update(0x1000 + i * 8, 0x9000 + i);
            }
            let _ = round;
        }
        assert!(
            b.stats().hit_rate() < 0.1,
            "hit rate {}",
            b.stats().hit_rate()
        );
        // A big BTB captures the same stream fine.
        let mut big = Btb::new(BtbConfig {
            entries: 4096,
            ways: 2,
        });
        for _ in 0..3 {
            for i in 0..1000u64 {
                let _ = big.lookup_update(0x1000 + i * 8, 0x9000 + i);
            }
        }
        assert!(
            big.stats().hit_rate() > 0.6,
            "hit rate {}",
            big.stats().hit_rate()
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_config_panics() {
        Btb::new(BtbConfig {
            entries: 1000,
            ways: 2,
        });
    }
}
