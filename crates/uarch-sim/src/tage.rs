//! TAGE branch predictor (Seznec \[63\]) plus a bimodal reference predictor.
//!
//! §2: "We experimented with the state-of-the-art TAGE branch predictor with
//! 32KB storage budget. The branch mispredictions per kilo-instructions
//! (MPKI) for the three PHP applications considered in this work are 17.26,
//! 14.48, and 15.14," versus ≈2.9 for SPEC CPU2006. The gap comes from
//! data-dependent branches whose outcomes no history predicts.
//!
//! This is a working TAGE: a bimodal base table plus tagged tables indexed
//! by geometrically increasing global-history lengths, with provider/altpred
//! selection, useful counters, allocation on misprediction, and periodic
//! usefulness reset.

/// Configuration (defaults approximate a 32 KB budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TageConfig {
    /// log2 of bimodal entries (14 → 16K 2-bit counters = 4 KB).
    pub bimodal_bits: usize,
    /// log2 of each tagged table's entries.
    pub tagged_bits: usize,
    /// Number of tagged tables.
    pub tables: usize,
    /// Shortest history length; table *i* uses `min_hist * 2^i`.
    pub min_hist: usize,
    /// Tag width in bits.
    pub tag_bits: usize,
}

impl Default for TageConfig {
    fn default() -> Self {
        TageConfig {
            bimodal_bits: 14,
            tagged_bits: 10,
            tables: 6,
            min_hist: 4,
            tag_bits: 11,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TaggedEntry {
    tag: u16,
    /// 3-bit signed counter, -4..=3; ≥0 predicts taken.
    ctr: i8,
    /// 2-bit usefulness.
    useful: u8,
}

/// Prediction bookkeeping carried from predict to update.
#[derive(Debug, Clone, Copy)]
pub struct Lookup {
    pred: bool,
    alt_pred: bool,
    provider: Option<(usize, usize)>, // (table, index)
    alt_provider: Option<(usize, usize)>,
    bimodal_index: usize,
    indices: [usize; 16],
    tags: [u16; 16],
}

impl Lookup {
    /// Which tagged table provided the prediction, if any (diagnostics).
    pub fn provider_table(&self) -> Option<usize> {
        self.provider.map(|(t, _)| t)
    }
}

/// Predictor statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredStats {
    /// Conditional branches predicted.
    pub predictions: u64,
    /// Mispredictions.
    pub mispredicts: u64,
}

impl PredStats {
    /// Mispredicts per kilo-instruction.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.mispredicts as f64 * 1000.0 / instructions as f64
        }
    }

    /// Prediction accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            1.0 - self.mispredicts as f64 / self.predictions as f64
        }
    }
}

/// The TAGE predictor.
#[derive(Debug)]
pub struct Tage {
    cfg: TageConfig,
    bimodal: Vec<u8>, // 2-bit counters
    tagged: Vec<Vec<TaggedEntry>>,
    hist: u128,
    /// Path history (lower bits of recent PCs) folded into the index.
    path: u64,
    tick: u64,
    stats: PredStats,
}

impl Default for Tage {
    fn default() -> Self {
        Self::new(TageConfig::default())
    }
}

impl Tage {
    /// Builds the predictor.
    ///
    /// # Panics
    ///
    /// Panics when more than 16 tagged tables are configured.
    pub fn new(cfg: TageConfig) -> Self {
        assert!(cfg.tables <= 16, "at most 16 tagged tables");
        Tage {
            cfg,
            bimodal: vec![2; 1 << cfg.bimodal_bits], // weakly taken
            tagged: vec![vec![TaggedEntry::default(); 1 << cfg.tagged_bits]; cfg.tables],
            hist: 0,
            path: 0,
            tick: 0,
            stats: PredStats::default(),
        }
    }

    /// Statistics.
    pub fn stats(&self) -> &PredStats {
        &self.stats
    }

    fn hist_len(&self, table: usize) -> usize {
        (self.cfg.min_hist << table).min(128)
    }

    fn fold(&self, pc: u64, table: usize, width: usize) -> u64 {
        // Hash pc, truncated global history, and path history. Not the exact
        // folded-CSR circuit, but a faithful function of the same inputs.
        let hl = self.hist_len(table);
        let h = if hl >= 128 {
            self.hist
        } else {
            self.hist & ((1u128 << hl) - 1)
        };
        let mut x = pc ^ (pc >> 7) ^ self.path.rotate_left(table as u32);
        x ^= (h as u64) ^ ((h >> 64) as u64).rotate_left(31);
        x ^= (table as u64).wrapping_mul(0x517c_c1b7);
        // splitmix64 finalizer: full avalanche so every history bit reaches
        // every index/tag bit.
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x & ((1 << width) - 1)
    }

    /// Predicts the branch at `pc`; the returned [`Lookup`] must be passed
    /// to [`Tage::update`] with the real outcome.
    pub fn predict(&self, pc: u64) -> (bool, Lookup) {
        let bimodal_index = (pc >> 2) as usize & ((1 << self.cfg.bimodal_bits) - 1);
        let mut lk = Lookup {
            pred: self.bimodal[bimodal_index] >= 2,
            alt_pred: self.bimodal[bimodal_index] >= 2,
            provider: None,
            alt_provider: None,
            bimodal_index,
            indices: [0; 16],
            tags: [0; 16],
        };
        for t in 0..self.cfg.tables {
            let idx = self.fold(pc, t, self.cfg.tagged_bits) as usize;
            let tag = self.fold(pc.rotate_left(9), t, self.cfg.tag_bits) as u16 | 1;
            lk.indices[t] = idx;
            lk.tags[t] = tag;
            if self.tagged[t][idx].tag == tag {
                lk.alt_provider = lk.provider;
                lk.alt_pred = lk.pred;
                lk.provider = Some((t, idx));
                lk.pred = self.tagged[t][idx].ctr >= 0;
            }
        }
        (lk.pred, lk)
    }

    /// Updates predictor state with the real outcome; returns whether the
    /// prediction was correct and records statistics.
    pub fn update(&mut self, pc: u64, taken: bool, lk: Lookup) -> bool {
        let correct = lk.pred == taken;
        self.stats.predictions += 1;
        if !correct {
            self.stats.mispredicts += 1;
        }

        // Provider update.
        match lk.provider {
            Some((t, i)) => {
                let e = &mut self.tagged[t][i];
                e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
                if lk.pred != lk.alt_pred {
                    if correct {
                        e.useful = (e.useful + 1).min(3);
                    } else {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
            }
            None => {
                let c = &mut self.bimodal[lk.bimodal_index];
                *c = if taken {
                    (*c + 1).min(3)
                } else {
                    c.saturating_sub(1)
                };
            }
        }

        // Allocation on misprediction in a longer-history table.
        if !correct {
            let start = lk.provider.map(|(t, _)| t + 1).unwrap_or(0);
            let mut allocated = false;
            for t in start..self.cfg.tables {
                let i = lk.indices[t];
                if self.tagged[t][i].useful == 0 {
                    self.tagged[t][i] = TaggedEntry {
                        tag: lk.tags[t],
                        ctr: if taken { 0 } else { -1 },
                        useful: 0,
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                for t in start..self.cfg.tables {
                    let i = lk.indices[t];
                    self.tagged[t][i].useful = self.tagged[t][i].useful.saturating_sub(1);
                }
            }
        }

        // Periodic graceful usefulness reset.
        self.tick += 1;
        if self.tick.is_multiple_of(1 << 18) {
            for table in &mut self.tagged {
                for e in table.iter_mut() {
                    e.useful >>= 1;
                }
            }
        }

        // History update (path history bounded to 16 bits, as in hardware).
        self.hist = (self.hist << 1) | taken as u128;
        self.path = ((self.path << 1) ^ (pc >> 2)) & 0xFFFF;
        correct
    }

    /// Convenience: predict + update in one call; returns correctness.
    pub fn observe(&mut self, pc: u64, taken: bool) -> bool {
        let (_, lk) = self.predict(pc);
        self.update(pc, taken, lk)
    }
}

/// A plain bimodal predictor (reference point).
#[derive(Debug)]
pub struct Bimodal {
    table: Vec<u8>,
    mask: usize,
    stats: PredStats,
}

impl Bimodal {
    /// Builds a bimodal predictor with `1 << bits` 2-bit counters.
    pub fn new(bits: usize) -> Self {
        Bimodal {
            table: vec![2; 1 << bits],
            mask: (1 << bits) - 1,
            stats: PredStats::default(),
        }
    }

    /// Predict + update; returns correctness.
    pub fn observe(&mut self, pc: u64, taken: bool) -> bool {
        let i = (pc >> 2) as usize & self.mask;
        let pred = self.table[i] >= 2;
        let correct = pred == taken;
        self.stats.predictions += 1;
        if !correct {
            self.stats.mispredicts += 1;
        }
        self.table[i] = if taken {
            (self.table[i] + 1).min(3)
        } else {
            self.table[i].saturating_sub(1)
        };
        correct
    }

    /// Statistics.
    pub fn stats(&self) -> &PredStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn learns_biased_branches() {
        let mut t = Tage::default();
        for _ in 0..2000 {
            t.observe(0x400, true);
        }
        assert!(
            t.stats().accuracy() > 0.98,
            "accuracy {}",
            t.stats().accuracy()
        );
    }

    #[test]
    fn learns_patterned_history() {
        // Period-4 pattern T T N T — bimodal cannot learn this, TAGE can.
        let pattern = [true, true, false, true];
        let mut tage = Tage::default();
        let mut bim = Bimodal::new(14);
        for i in 0..40_000 {
            let taken = pattern[i % 4];
            tage.observe(0x800, taken);
            bim.observe(0x800, taken);
        }
        assert!(
            tage.stats().accuracy() > 0.95,
            "tage should learn the pattern, accuracy {}",
            tage.stats().accuracy()
        );
        assert!(
            tage.stats().accuracy() > bim.stats().accuracy() + 0.1,
            "tage {} vs bimodal {}",
            tage.stats().accuracy(),
            bim.stats().accuracy()
        );
    }

    #[test]
    fn correlated_branches_exploit_history() {
        // Branch B repeats the outcome of branch A (global correlation).
        let mut t = Tage::default();
        let mut rng = StdRng::seed_from_u64(5);
        let mut correct_b = 0;
        let n = 30_000;
        for i in 0..n {
            let a: bool = rng.gen();
            t.observe(0x100, a);
            let ok = t.observe(0x200, a);
            if i > n / 2 && ok {
                correct_b += 1;
            }
        }
        let acc_b = correct_b as f64 / (n / 2 - 1) as f64;
        assert!(acc_b > 0.9, "correlated branch accuracy {acc_b}");
    }

    #[test]
    fn random_branches_stay_unpredictable() {
        let mut t = Tage::default();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50_000 {
            t.observe(0x300, rng.gen());
        }
        let acc = t.stats().accuracy();
        assert!((0.4..0.6).contains(&acc), "random branch accuracy {acc}");
    }

    #[test]
    fn mpki_metric() {
        let s = PredStats {
            predictions: 1000,
            mispredicts: 30,
        };
        assert!((s.mpki(10_000) - 3.0).abs() < 1e-12);
    }
}
