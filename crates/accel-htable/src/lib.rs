//! # accel-htable
//!
//! Model of the ISCA 2017 paper's **hardware hash table** (§4.2, Figure 6):
//! a 512-entry table probed 4-consecutive-entries-at-a-time, serving both
//! GET and SET requests fully in hardware, with a **reverse translation
//! table** (RTT) of circular back-pointer buffers that implements map
//! `Free` and insertion-ordered `foreach`, and write-back coherence with
//! the software [`php_runtime::PhpArray`].
//!
//! ```
//! use accel_htable::{HwHashTable, GetOutcome};
//! let mut ht = HwHashTable::default();
//! ht.set(0x1000, b"author", 0xBEEF);                 // SET never misses
//! assert_eq!(ht.get(0x1000, b"author"), GetOutcome::Hit { value_ptr: 0xBEEF });
//! assert_eq!(ht.get(0x1000, b"missing"), GetOutcome::Miss); // zero flag → software
//! ```

#![warn(missing_docs)]

pub mod entry;
pub mod rtt;
pub mod stats;
pub mod table;

pub use entry::{Entry, SmallKey, MAX_KEY_BYTES};
pub use rtt::{OrderReplay, Rtt};
pub use stats::HtStats;
pub use table::{
    Eviction, ForeachOutcome, GetOutcome, HtConfig, HwHashTable, KeyShapeHint, SetOutcome,
};
