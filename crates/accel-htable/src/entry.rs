//! Hash-table entry and inline key storage.
//!
//! §4.2: "the majority (about 95%) of the hash map keys accessed in these
//! PHP applications are at most 24 bytes in length. As a result, we store
//! the keys in the hash table itself [...] Storing the keys directly in the
//! hash table eases the traversal of the hash table in hardware."

use std::fmt;

/// Maximum key bytes stored inline in a hardware entry.
pub const MAX_KEY_BYTES: usize = 24;

/// A key stored inline in a hardware hash-table entry.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SmallKey {
    bytes: [u8; MAX_KEY_BYTES],
    len: u8,
}

impl SmallKey {
    /// Builds an inline key; `None` when the key exceeds
    /// [`MAX_KEY_BYTES`] (such accesses stay in software).
    pub fn new(key: &[u8]) -> Option<SmallKey> {
        if key.len() > MAX_KEY_BYTES {
            return None;
        }
        let mut bytes = [0u8; MAX_KEY_BYTES];
        bytes[..key.len()].copy_from_slice(key);
        Some(SmallKey {
            bytes,
            len: key.len() as u8,
        })
    }

    /// The key bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Key length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the key is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl fmt::Debug for SmallKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SmallKey({:?})",
            String::from_utf8_lossy(self.as_bytes())
        )
    }
}

/// One hardware hash-table entry (Figure 6): inline key, hash-map base
/// address, value pointer, dirty/valid bits, LRU timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Inline key.
    pub key: SmallKey,
    /// Base address of the hash-map structure in memory this pair belongs to.
    pub base_addr: u64,
    /// Pointer to the value's memory location.
    pub value_ptr: u64,
    /// Entry holds data not yet written back to the software map.
    pub dirty: bool,
    /// Entry is live.
    pub valid: bool,
    /// Last-access timestamp (for LRU replacement).
    pub last_access: u64,
}

impl Entry {
    /// An invalid (empty) entry.
    pub fn invalid() -> Entry {
        Entry {
            key: SmallKey::new(b"").unwrap(),
            base_addr: 0,
            value_ptr: 0,
            dirty: false,
            valid: false,
            last_access: 0,
        }
    }

    /// Does this live entry match `(base, key)`?
    pub fn matches(&self, base: u64, key: &SmallKey) -> bool {
        self.valid && self.base_addr == base && self.key == *key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_key_limits() {
        assert!(SmallKey::new(&[0u8; 24]).is_some());
        assert!(SmallKey::new(&[0u8; 25]).is_none());
        let k = SmallKey::new(b"post_title").unwrap();
        assert_eq!(k.as_bytes(), b"post_title");
        assert_eq!(k.len(), 10);
        assert!(!k.is_empty());
    }

    #[test]
    fn keys_compare_by_content() {
        let a = SmallKey::new(b"abc").unwrap();
        let b = SmallKey::new(b"abc").unwrap();
        let c = SmallKey::new(b"abd").unwrap();
        let d = SmallKey::new(b"ab").unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn entry_match_requires_valid_base_and_key() {
        let key = SmallKey::new(b"k").unwrap();
        let mut e = Entry::invalid();
        assert!(!e.matches(0, &key));
        e.valid = true;
        e.base_addr = 0x100;
        e.key = key;
        assert!(e.matches(0x100, &key));
        assert!(!e.matches(0x200, &key));
        let other = SmallKey::new(b"j").unwrap();
        assert!(!e.matches(0x100, &other));
    }
}
