//! Counters and the accelerator cycle model for the hardware hash table.

/// Cycles to compute the simplified hardware hash (§4.2: the HHVM hash "is
/// overly complex to map into an efficient hardware module"; ours is
/// pipelined in 2 cycles).
pub const HASH_CYCLES: u64 = 2;
/// Cycles for the parallel probe of the consecutive entries (§5.1: "This
/// restricts the hash table access latency to a constant 1 cycle after
/// performing the initial hash computation").
pub const PROBE_CYCLES: u64 = 1;

/// Aggregate statistics of the hardware hash table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HtStats {
    /// GET requests issued.
    pub gets: u64,
    /// GET requests that hit.
    pub get_hits: u64,
    /// SET requests issued.
    pub sets: u64,
    /// SETs that updated an existing entry.
    pub set_hits: u64,
    /// SETs that inserted a new entry.
    pub set_inserts: u64,
    /// SETs/GET-fills rejected because the key exceeded the inline limit.
    pub key_too_long: u64,
    /// Software fills after GET misses.
    pub fills: u64,
    /// Replacements that found an invalid entry.
    pub evict_invalid: u64,
    /// Replacements of a clean entry (silent, no software).
    pub evict_clean: u64,
    /// Replacements that had to write back a dirty entry (software cost).
    pub evict_dirty: u64,
    /// Free (map-deallocation) requests.
    pub frees: u64,
    /// Entries invalidated by frees.
    pub freed_entries: u64,
    /// foreach requests served.
    pub foreachs: u64,
    /// Dirty entries written back by foreach/coherence flushes.
    pub writebacks: u64,
    /// Coherence flush events (remote requests / L2 evictions).
    pub coherence_flushes: u64,
    /// Accelerator cycles consumed.
    pub accel_cycles: u64,
    /// Accesses that skipped the hash stage (constant key, hash precomputed
    /// at specialization time).
    pub hinted_hash_skips: u64,
    /// SETs that skipped the existence probe (integer-append key, proven
    /// fresh by static analysis).
    pub hinted_append_inserts: u64,
    /// Faults injected into entries or the RTT (testing hook).
    pub faults_injected: u64,
    /// Faults caught by the parity/consistency check on access.
    pub faults_detected: u64,
}

impl HtStats {
    /// Overall hit rate as plotted in Figure 7: GET hits plus all SETs
    /// ("Since SET operations never miss in our design") over all requests.
    pub fn hit_rate(&self) -> f64 {
        let total = self.gets + self.sets;
        if total == 0 {
            return 0.0;
        }
        (self.get_hits + self.sets - self.key_too_long.min(self.sets)) as f64 / total as f64
    }

    /// GET-only hit rate.
    pub fn get_hit_rate(&self) -> f64 {
        if self.gets == 0 {
            0.0
        } else {
            self.get_hits as f64 / self.gets as f64
        }
    }

    /// Fraction of requests that are SETs (paper: 15–25 % in PHP apps).
    pub fn set_share(&self) -> f64 {
        let total = self.gets + self.sets;
        if total == 0 {
            0.0
        } else {
            self.sets as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_counts_sets_as_hits() {
        let s = HtStats {
            gets: 80,
            get_hits: 60,
            sets: 20,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.8).abs() < 1e-12);
        assert!((s.get_hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.set_share() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = HtStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.get_hit_rate(), 0.0);
    }
}
