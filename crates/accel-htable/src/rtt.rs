//! Reverse translation table (RTT).
//!
//! §4.2: the RTT is "indexed by the base address of a requested hash map.
//! Each RTT entry stores back pointers to the set of hash table entries
//! containing key-value pairs of a hash map. Each RTT entry also has a write
//! pointer [...] Consequently, each entry in the RTT is implemented using a
//! circular buffer." It serves two purposes:
//!
//! * `Free`: invalidate every hash-table entry of a dying map without a
//!   full-table scan;
//! * `foreach`: replay key-value pairs in insertion order.

use std::collections::HashMap;

/// One slot of an RTT circular buffer: a back pointer into the hash table,
/// or invalidated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Points at hash-table entry `idx`; `seq` is the insertion sequence
    /// number (monotonic per map) used to replay order.
    Live { idx: u32, seq: u64 },
    /// Entry was evicted from the hash table; the pair now lives only in
    /// memory. The sequence number is retained so order replay stays exact.
    Evicted { seq: u64 },
    /// Unused.
    Empty,
}

/// A single RTT entry: circular back-pointer buffer + write pointer.
#[derive(Debug, Clone)]
struct RttEntry {
    slots: Vec<Slot>,
    write_ptr: usize,
    next_seq: u64,
    /// The circular buffer wrapped over live history — insertion order can
    /// no longer be replayed fully from hardware.
    order_lost: bool,
}

impl RttEntry {
    fn new(capacity: usize) -> Self {
        RttEntry {
            slots: vec![Slot::Empty; capacity],
            write_ptr: 0,
            next_seq: 0,
            order_lost: false,
        }
    }
}

/// What `foreach` can replay from hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderReplay {
    /// Hash-table entry indices in insertion order (live entries only).
    pub live_in_order: Vec<u32>,
    /// Number of pairs whose entries were evicted (must be fetched from the
    /// software map, but their *positions* in the order are known).
    pub evicted: usize,
    /// Insertion sequence numbers for the live entries (parallel to
    /// `live_in_order`).
    pub live_seqs: Vec<u64>,
    /// `true` when the circular buffer wrapped and hardware can no longer
    /// guarantee the order — software must iterate the memory map instead.
    pub order_lost: bool,
}

/// The reverse translation table.
#[derive(Debug)]
pub struct Rtt {
    entries: HashMap<u64, RttEntry>,
    /// Circular-buffer capacity per map.
    slots_per_entry: usize,
    /// Maximum number of maps tracked concurrently.
    capacity: usize,
}

impl Rtt {
    /// Creates an RTT tracking up to `capacity` maps with `slots_per_entry`
    /// back pointers each.
    pub fn new(capacity: usize, slots_per_entry: usize) -> Self {
        assert!(capacity > 0 && slots_per_entry > 0);
        Rtt {
            entries: HashMap::new(),
            slots_per_entry,
            capacity,
        }
    }

    /// Whether a map is currently tracked.
    pub fn tracks(&self, base: u64) -> bool {
        self.entries.contains_key(&base)
    }

    /// Number of maps tracked.
    pub fn tracked_maps(&self) -> usize {
        self.entries.len()
    }

    /// Base addresses of all tracked maps, sorted (deterministic order for
    /// fault-injection targeting).
    pub fn tracked_bases(&self) -> Vec<u64> {
        let mut bases: Vec<u64> = self.entries.keys().copied().collect();
        bases.sort_unstable();
        bases
    }

    /// Records an insertion of hash-table entry `idx` for map `base`.
    /// Returns the map that had to be dropped to make room, if any (its
    /// hash-table entries must then be flushed by the caller).
    #[must_use]
    pub fn record_insert(&mut self, base: u64, idx: u32) -> Option<u64> {
        let mut displaced = None;
        if !self.entries.contains_key(&base) && self.entries.len() >= self.capacity {
            // Capacity eviction: drop the map with the oldest latest-seq
            // (approximate LRU over maps).
            let victim = *self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.next_seq)
                .map(|(b, _)| b)
                .expect("nonempty");
            self.entries.remove(&victim);
            displaced = Some(victim);
        }
        let slots = self.slots_per_entry;
        let e = self
            .entries
            .entry(base)
            .or_insert_with(|| RttEntry::new(slots));
        let seq = e.next_seq;
        e.next_seq += 1;
        let pos = e.write_ptr;
        if !matches!(e.slots[pos], Slot::Empty) {
            // Wrapping over history: order replay is no longer complete.
            e.order_lost = true;
        }
        e.slots[pos] = Slot::Live { idx, seq };
        e.write_ptr = (pos + 1) % e.slots.len();
        displaced
    }

    /// Marks the back pointer at hash-table entry `idx` of `base` as
    /// evicted (§4.2: "When an entry is evicted from the hash table, its
    /// back pointer in the RTT is invalidated").
    pub fn invalidate_backpointer(&mut self, base: u64, idx: u32) {
        if let Some(e) = self.entries.get_mut(&base) {
            for slot in e.slots.iter_mut() {
                if let Slot::Live { idx: i, seq } = *slot {
                    if i == idx {
                        *slot = Slot::Evicted { seq };
                        return;
                    }
                }
            }
        }
    }

    /// Handles a `Free` of map `base`: returns the hash-table entry indices
    /// to invalidate and drops the RTT entry.
    pub fn free_map(&mut self, base: u64) -> Vec<u32> {
        match self.entries.remove(&base) {
            None => Vec::new(),
            Some(e) => e
                .slots
                .into_iter()
                .filter_map(|s| match s {
                    Slot::Live { idx, .. } => Some(idx),
                    _ => None,
                })
                .collect(),
        }
    }

    /// Replays insertion order for a `foreach` of map `base`.
    pub fn replay_order(&self, base: u64) -> OrderReplay {
        match self.entries.get(&base) {
            None => OrderReplay {
                live_in_order: Vec::new(),
                evicted: 0,
                live_seqs: Vec::new(),
                order_lost: false,
            },
            Some(e) => {
                let mut live: Vec<(u64, u32)> = Vec::new();
                let mut evicted = 0;
                for slot in &e.slots {
                    match *slot {
                        Slot::Live { idx, seq } => live.push((seq, idx)),
                        Slot::Evicted { .. } => evicted += 1,
                        Slot::Empty => {}
                    }
                }
                live.sort_unstable();
                OrderReplay {
                    live_in_order: live.iter().map(|&(_, i)| i).collect(),
                    live_seqs: live.iter().map(|&(s, _)| s).collect(),
                    evicted,
                    order_lost: e.order_lost,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_replay_order() {
        let mut rtt = Rtt::new(8, 16);
        assert!(rtt.record_insert(0x10, 5).is_none());
        assert!(rtt.record_insert(0x10, 9).is_none());
        assert!(rtt.record_insert(0x10, 2).is_none());
        let r = rtt.replay_order(0x10);
        assert_eq!(r.live_in_order, vec![5, 9, 2]);
        assert_eq!(r.evicted, 0);
        assert!(!r.order_lost);
    }

    #[test]
    fn eviction_keeps_order_positions() {
        let mut rtt = Rtt::new(8, 16);
        let _ = rtt.record_insert(0x10, 1);
        let _ = rtt.record_insert(0x10, 2);
        let _ = rtt.record_insert(0x10, 3);
        rtt.invalidate_backpointer(0x10, 2);
        let r = rtt.replay_order(0x10);
        assert_eq!(r.live_in_order, vec![1, 3]);
        assert_eq!(r.evicted, 1);
        // Re-insertion after eviction goes to the end of the order —
        // "the RTT can still guarantee the required insertion order
        // invariant" because the pair gets a fresh sequence number.
        let _ = rtt.record_insert(0x10, 7);
        let r = rtt.replay_order(0x10);
        assert_eq!(r.live_in_order, vec![1, 3, 7]);
        assert_eq!(*r.live_seqs.last().unwrap(), 3);
    }

    #[test]
    fn free_returns_live_backpointers_only() {
        let mut rtt = Rtt::new(8, 16);
        let _ = rtt.record_insert(0x20, 4);
        let _ = rtt.record_insert(0x20, 6);
        rtt.invalidate_backpointer(0x20, 4);
        let mut idxs = rtt.free_map(0x20);
        idxs.sort_unstable();
        assert_eq!(idxs, vec![6]);
        assert!(!rtt.tracks(0x20));
        assert!(rtt.free_map(0x20).is_empty());
    }

    #[test]
    fn wrap_marks_order_lost() {
        let mut rtt = Rtt::new(8, 4);
        for i in 0..4 {
            let _ = rtt.record_insert(0x30, i);
        }
        assert!(!rtt.replay_order(0x30).order_lost);
        let _ = rtt.record_insert(0x30, 99);
        assert!(rtt.replay_order(0x30).order_lost);
    }

    #[test]
    fn capacity_eviction_displaces_oldest_map() {
        let mut rtt = Rtt::new(2, 8);
        assert!(rtt.record_insert(0x1, 0).is_none());
        assert!(rtt.record_insert(0x2, 1).is_none());
        let displaced = rtt.record_insert(0x3, 2);
        assert!(displaced.is_some());
        assert_eq!(rtt.tracked_maps(), 2);
        assert!(rtt.tracks(0x3));
    }

    #[test]
    fn separate_maps_do_not_interfere() {
        let mut rtt = Rtt::new(8, 8);
        let _ = rtt.record_insert(0xA, 1);
        let _ = rtt.record_insert(0xB, 2);
        rtt.invalidate_backpointer(0xA, 1);
        assert_eq!(rtt.replay_order(0xB).live_in_order, vec![2]);
        assert_eq!(rtt.replay_order(0xA).evicted, 1);
    }
}
