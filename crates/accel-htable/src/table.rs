//! The hardware hash table (§4.2, Figure 6).
//!
//! "When a key is looked up in the hash table in our design, several
//! consecutive entries are accessed in parallel, starting from the first
//! indexed entry, to find a match." GET and SET are both served in hardware
//! (unlike memcached-style GET-only tables \[55\]); `Free` and `foreach` are
//! supported through the RTT; replacement prefers invalid, then clean, then
//! LRU-dirty entries (dirty replacement needs a software write-back).

use crate::entry::{Entry, SmallKey, MAX_KEY_BYTES};
use crate::rtt::{OrderReplay, Rtt};
use crate::stats::{HtStats, HASH_CYCLES, PROBE_CYCLES};
use std::collections::HashSet;

/// Configuration of the hardware hash table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HtConfig {
    /// Total entries (power of two). Paper default: 512.
    pub entries: usize,
    /// Consecutive entries probed in parallel per access. Paper default: 4.
    pub probe_width: usize,
    /// Maps tracked by the RTT.
    pub rtt_maps: usize,
    /// Back-pointer slots per RTT entry.
    pub rtt_slots: usize,
}

impl Default for HtConfig {
    fn default() -> Self {
        HtConfig {
            entries: 512,
            probe_width: 4,
            rtt_maps: 128,
            rtt_slots: 64,
        }
    }
}

/// Static key-shape hint supplied by ahead-of-time analysis (the
/// `php-analysis` crate). The hint never changes *what* an access returns —
/// only which pipeline stages the hardware can skip.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum KeyShapeHint {
    /// Key is a compile-time string constant: its hash was precomputed at
    /// specialization time, so the hash stage is skipped.
    ConstStr,
    /// Key is the array's next integer key (`$a[] = v` append): provably
    /// fresh, so the existence probe on SET is skipped.
    IntAppend,
    /// No static information; full hash + probe.
    #[default]
    Unknown,
}

/// Result of a GET request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GetOutcome {
    /// Key found; value pointer returned, zero flag clear.
    Hit {
        /// Pointer to the value in memory.
        value_ptr: u64,
    },
    /// Not present: zero flag raised, software handler performs the walk
    /// (and typically calls [`HwHashTable::fill`] afterwards).
    Miss,
    /// Key exceeds the inline limit; hardware not involved.
    Unsupported,
}

/// What replacement had to do to make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// Used an invalid entry: free.
    None,
    /// Replaced a clean entry silently.
    Clean,
    /// Replaced the LRU dirty entry; the returned pair must be written back
    /// to its software map by the handler (the "associated software cost").
    DirtyWriteback {
        /// The evicted dirty entry.
        evicted: Entry,
    },
}

/// Result of a SET request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOutcome {
    /// Existing entry updated in place.
    Updated,
    /// New entry inserted (dirty); `eviction` says what made room.
    Inserted {
        /// Replacement action taken.
        eviction: Eviction,
    },
    /// Key exceeds the inline limit; software handles the SET.
    Unsupported,
}

/// Result of a `foreach` request.
#[derive(Debug, Clone, PartialEq)]
pub struct ForeachOutcome {
    /// `(key bytes, value_ptr)` pairs held in hardware, in insertion order.
    pub live_pairs: Vec<(Vec<u8>, u64)>,
    /// Pairs whose entries were evicted — present in memory, order known.
    pub evicted_pairs: usize,
    /// Dirty pairs written back to memory so software iteration sees them.
    pub written_back: usize,
    /// Order could not be replayed (RTT wrap) — software iterates memory.
    pub order_lost: bool,
}

/// The hardware hash table accelerator.
#[derive(Debug)]
pub struct HwHashTable {
    cfg: HtConfig,
    entries: Vec<Entry>,
    rtt: Rtt,
    clock: u64,
    stats: HtStats,
    /// Entries whose parity no longer checks out (injected faults). The
    /// corruption is caught on the next access; a full overwrite repairs it.
    corrupt_entries: HashSet<usize>,
    /// Maps whose RTT back-pointer buffer is untrusted (injected faults).
    corrupt_rtt: HashSet<u64>,
}

impl Default for HwHashTable {
    fn default() -> Self {
        Self::new(HtConfig::default())
    }
}

impl HwHashTable {
    /// Builds the table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `probe_width` is 0 or
    /// exceeds `entries`.
    pub fn new(cfg: HtConfig) -> Self {
        assert!(
            cfg.entries.is_power_of_two(),
            "entry count must be a power of two"
        );
        assert!(cfg.probe_width >= 1 && cfg.probe_width <= cfg.entries);
        HwHashTable {
            cfg,
            entries: vec![Entry::invalid(); cfg.entries],
            rtt: Rtt::new(cfg.rtt_maps, cfg.rtt_slots),
            clock: 0,
            stats: HtStats::default(),
            corrupt_entries: HashSet::new(),
            corrupt_rtt: HashSet::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HtConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> &HtStats {
        &self.stats
    }

    /// Simplified hardware hash over `(base, key)` (§4.2: hash "on the
    /// combined value of the key and the base address of the requested hash
    /// map").
    fn index_of(&self, base: u64, key: &SmallKey) -> usize {
        let mut h: u64 = base ^ 0x9E37_79B9_7F4A_7C15;
        for &b in key.as_bytes() {
            h = h.wrapping_mul(0x100_0000_01B3) ^ b as u64;
        }
        (h as usize) & (self.cfg.entries - 1)
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn probe(&self, base: u64, key: &SmallKey) -> Option<usize> {
        let start = self.index_of(base, key);
        (0..self.cfg.probe_width)
            .map(|i| (start + i) & (self.cfg.entries - 1))
            .find(|&idx| self.entries[idx].matches(base, key))
    }

    /// GET request (`hashtableget`).
    pub fn get(&mut self, base: u64, key: &[u8]) -> GetOutcome {
        self.get_hinted(base, key, KeyShapeHint::Unknown)
    }

    /// GET with a static key-shape hint: a `ConstStr` key skips the hash
    /// stage (its hash was folded in at specialization time). Results are
    /// identical to [`HwHashTable::get`]; only the cycle charge differs.
    pub fn get_hinted(&mut self, base: u64, key: &[u8], hint: KeyShapeHint) -> GetOutcome {
        if key.len() > MAX_KEY_BYTES {
            self.stats.key_too_long += 1;
            return GetOutcome::Unsupported;
        }
        self.stats.gets += 1;
        if hint == KeyShapeHint::ConstStr {
            self.stats.hinted_hash_skips += 1;
            self.stats.accel_cycles += PROBE_CYCLES;
        } else {
            self.stats.accel_cycles += HASH_CYCLES + PROBE_CYCLES;
        }
        let key = SmallKey::new(key).expect("length checked");
        match self.probe(base, &key) {
            Some(idx) => {
                if self.corrupt_entries.remove(&idx) {
                    // Parity mismatch: drop the entry and report a miss so
                    // the software walk re-fetches the true pair.
                    self.stats.faults_detected += 1;
                    self.rtt.invalidate_backpointer(base, idx as u32);
                    self.entries[idx].valid = false;
                    self.entries[idx].dirty = false;
                    return GetOutcome::Miss;
                }
                self.stats.get_hits += 1;
                let now = self.tick();
                let e = &mut self.entries[idx];
                e.last_access = now;
                GetOutcome::Hit {
                    value_ptr: e.value_ptr,
                }
            }
            None => GetOutcome::Miss,
        }
    }

    /// Software fill after a GET miss: "control transfers to the software to
    /// retrieve the key-value pair from memory and places it into the hash
    /// table." The pair is inserted *clean*.
    pub fn fill(&mut self, base: u64, key: &[u8], value_ptr: u64) -> Eviction {
        if key.len() > MAX_KEY_BYTES {
            self.stats.key_too_long += 1;
            return Eviction::None;
        }
        self.stats.fills += 1;
        let key = SmallKey::new(key).expect("length checked");
        self.insert(base, key, value_ptr, false)
    }

    /// SET request (`hashtableset`). Never misses: an absent key is inserted
    /// dirty; memory is only updated lazily (write-back policy).
    pub fn set(&mut self, base: u64, key: &[u8], value_ptr: u64) -> SetOutcome {
        self.set_hinted(base, key, value_ptr, KeyShapeHint::Unknown)
    }

    /// SET with a static key-shape hint. `ConstStr` skips the hash stage;
    /// `IntAppend` additionally skips the existence probe — the analysis
    /// proved the key fresh, so the entry is inserted directly.
    pub fn set_hinted(
        &mut self,
        base: u64,
        key: &[u8],
        value_ptr: u64,
        hint: KeyShapeHint,
    ) -> SetOutcome {
        if key.len() > MAX_KEY_BYTES {
            self.stats.key_too_long += 1;
            self.stats.sets += 1;
            return SetOutcome::Unsupported;
        }
        self.stats.sets += 1;
        self.stats.accel_cycles += match hint {
            KeyShapeHint::ConstStr => {
                self.stats.hinted_hash_skips += 1;
                PROBE_CYCLES
            }
            KeyShapeHint::IntAppend => {
                self.stats.hinted_append_inserts += 1;
                HASH_CYCLES
            }
            KeyShapeHint::Unknown => HASH_CYCLES + PROBE_CYCLES,
        };
        let key = SmallKey::new(key).expect("length checked");
        if hint != KeyShapeHint::IntAppend {
            if let Some(idx) = self.probe(base, &key) {
                if self.corrupt_entries.remove(&idx) {
                    // Parity mismatch on the probe read; the full overwrite
                    // below repairs the entry in place.
                    self.stats.faults_detected += 1;
                }
                self.stats.set_hits += 1;
                let now = self.tick();
                let e = &mut self.entries[idx];
                e.value_ptr = value_ptr;
                e.dirty = true;
                e.last_access = now;
                return SetOutcome::Updated;
            }
        }
        self.stats.set_inserts += 1;
        let eviction = self.insert(base, key, value_ptr, true);
        SetOutcome::Inserted { eviction }
    }

    fn insert(&mut self, base: u64, key: SmallKey, value_ptr: u64, dirty: bool) -> Eviction {
        let start = self.index_of(base, &key);
        let way = |i: usize| (start + i) & (self.cfg.entries - 1);

        // 1. Invalid entry?
        let slot = (0..self.cfg.probe_width)
            .map(way)
            .find(|&i| !self.entries[i].valid);
        // 2. Otherwise prefer a clean entry (LRU among clean).
        let (slot, eviction) = match slot {
            Some(s) => {
                self.stats.evict_invalid += 1;
                (s, Eviction::None)
            }
            None => {
                let clean = (0..self.cfg.probe_width)
                    .map(way)
                    .filter(|&i| !self.entries[i].dirty)
                    .min_by_key(|&i| self.entries[i].last_access);
                match clean {
                    Some(s) => {
                        self.stats.evict_clean += 1;
                        let old = self.entries[s];
                        self.rtt.invalidate_backpointer(old.base_addr, s as u32);
                        (s, Eviction::Clean)
                    }
                    None => {
                        // 3. LRU dirty entry, with software write-back.
                        let s = (0..self.cfg.probe_width)
                            .map(way)
                            .min_by_key(|&i| self.entries[i].last_access)
                            .expect("probe_width >= 1");
                        self.stats.evict_dirty += 1;
                        let old = self.entries[s];
                        self.rtt.invalidate_backpointer(old.base_addr, s as u32);
                        (s, Eviction::DirtyWriteback { evicted: old })
                    }
                }
            }
        };
        if self.corrupt_entries.remove(&slot) {
            // Replacement read the victim entry; parity flagged it.
            self.stats.faults_detected += 1;
        }
        let now = self.tick();
        self.entries[slot] = Entry {
            key,
            base_addr: base,
            value_ptr,
            dirty,
            valid: true,
            last_access: now,
        };
        if let Some(displaced_map) = self.rtt.record_insert(base, slot as u32) {
            // RTT capacity eviction: flush the displaced map's entries.
            self.flush_map_entries(displaced_map);
        }
        eviction
    }

    /// `Free` request: deallocating map `base`. The RTT invalidates the
    /// map's entries; nothing is written back ("short-lived hash maps mostly
    /// stay in the hash table throughout their lifetime without ever being
    /// written back to the memory").
    pub fn free(&mut self, base: u64) -> usize {
        self.stats.frees += 1;
        self.stats.accel_cycles += PROBE_CYCLES;
        if self.corrupt_rtt.remove(&base) {
            // Back pointers are untrusted: fall back to a full-table scan
            // to invalidate the dying map's entries.
            self.stats.faults_detected += 1;
            let _ = self.rtt.free_map(base);
            let n = self.scan_invalidate(base);
            self.stats.freed_entries += n as u64;
            return n;
        }
        let idxs = self.rtt.free_map(base);
        let n = idxs.len();
        for idx in idxs {
            self.corrupt_entries.remove(&(idx as usize));
            self.entries[idx as usize].valid = false;
            self.entries[idx as usize].dirty = false;
        }
        self.stats.freed_entries += n as u64;
        n
    }

    /// `foreach` request: replays insertion order via the RTT and writes
    /// dirty pairs back so the memory map is consistent for iteration.
    pub fn foreach(&mut self, base: u64) -> ForeachOutcome {
        self.stats.foreachs += 1;
        if self.corrupt_rtt.remove(&base) {
            // The circular buffer is untrusted: invalidate the map's entries
            // by scan and tell software to iterate the memory map instead.
            self.stats.faults_detected += 1;
            let _ = self.rtt.free_map(base);
            self.scan_invalidate(base);
            return ForeachOutcome {
                live_pairs: Vec::new(),
                evicted_pairs: 0,
                written_back: 0,
                order_lost: true,
            };
        }
        let OrderReplay {
            live_in_order,
            evicted,
            mut order_lost,
            ..
        } = self.rtt.replay_order(base);
        let mut live_pairs = Vec::with_capacity(live_in_order.len());
        let mut written_back = 0;
        for idx in live_in_order {
            if self.corrupt_entries.remove(&(idx as usize)) {
                // Parity mismatch mid-replay: drop the entry and force the
                // software iteration path for this foreach.
                self.stats.faults_detected += 1;
                self.rtt.invalidate_backpointer(base, idx);
                self.entries[idx as usize].valid = false;
                self.entries[idx as usize].dirty = false;
                order_lost = true;
                continue;
            }
            let e = &mut self.entries[idx as usize];
            if e.dirty {
                e.dirty = false;
                written_back += 1;
            }
            live_pairs.push((e.key.as_bytes().to_vec(), e.value_ptr));
        }
        self.stats.writebacks += written_back as u64;
        self.stats.accel_cycles += HASH_CYCLES + live_pairs.len() as u64;
        ForeachOutcome {
            live_pairs,
            evicted_pairs: evicted,
            written_back,
            order_lost,
        }
    }

    /// Software-initiated invalidation of one key (a software `unset` of a
    /// key that may be cached in hardware). Returns whether it was present.
    pub fn invalidate_key(&mut self, base: u64, key: &[u8]) -> bool {
        let Some(key) = SmallKey::new(key) else {
            return false;
        };
        match self.probe(base, &key) {
            Some(idx) => {
                self.corrupt_entries.remove(&idx);
                self.rtt.invalidate_backpointer(base, idx as u32);
                self.entries[idx].valid = false;
                self.entries[idx].dirty = false;
                true
            }
            None => false,
        }
    }

    /// Coherence event for map `base` (remote coherence request or L2
    /// eviction enforcing inclusion): flush the map's entries, returning
    /// dirty pairs the handler must write back, after which the software map
    /// must be marked stale.
    pub fn coherence_flush(&mut self, base: u64) -> Vec<Entry> {
        self.stats.coherence_flushes += 1;
        self.flush_map_entries(base)
    }

    fn flush_map_entries(&mut self, base: u64) -> Vec<Entry> {
        let idxs = self.rtt.free_map(base);
        let mut dirty = Vec::new();
        for idx in idxs {
            self.corrupt_entries.remove(&(idx as usize));
            let e = &mut self.entries[idx as usize];
            if e.dirty {
                dirty.push(*e);
                self.stats.writebacks += 1;
            }
            e.valid = false;
            e.dirty = false;
        }
        dirty
    }

    /// Invalidates every entry of `base` by a full-table scan (the recovery
    /// path when the RTT cannot be trusted). Returns entries invalidated.
    fn scan_invalidate(&mut self, base: u64) -> usize {
        let mut n = 0;
        for (idx, e) in self.entries.iter_mut().enumerate() {
            if e.valid && e.base_addr == base {
                self.corrupt_entries.remove(&idx);
                e.valid = false;
                e.dirty = false;
                n += 1;
            }
        }
        n
    }

    /// Fault-injection hook: flips bits in the `nth` valid entry's value
    /// pointer, as a particle strike would. The corruption is caught by the
    /// parity check on the entry's next access. Returns `false` when the
    /// table holds no valid entry to corrupt.
    pub fn inject_entry_fault(&mut self, nth: usize) -> bool {
        let victims: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.valid)
            .map(|(i, _)| i)
            .collect();
        if victims.is_empty() {
            return false;
        }
        let idx = victims[nth % victims.len()];
        self.entries[idx].value_ptr ^= 0xDEAD_BEEF;
        self.corrupt_entries.insert(idx);
        self.stats.faults_injected += 1;
        true
    }

    /// Fault-injection hook: marks the RTT back-pointer buffer of the `nth`
    /// tracked map as corrupt. Detected on the map's next `foreach`/`Free`,
    /// which then falls back to a full-table scan. Returns `false` when the
    /// RTT tracks no map.
    pub fn inject_rtt_fault(&mut self, nth: usize) -> bool {
        let bases = self.rtt.tracked_bases();
        if bases.is_empty() {
            return false;
        }
        self.corrupt_rtt.insert(bases[nth % bases.len()]);
        self.stats.faults_injected += 1;
        true
    }

    /// Full hardware invalidation (the sandbox recovery path): drops every
    /// entry and the whole RTT without write-back — the software maps are
    /// the ground truth, so nothing is lost. Clears any latent corruption.
    /// Returns the number of live entries dropped.
    pub fn invalidate_all(&mut self) -> usize {
        let n = self.occupancy();
        for e in &mut self.entries {
            e.valid = false;
            e.dirty = false;
        }
        self.rtt = Rtt::new(self.cfg.rtt_maps, self.cfg.rtt_slots);
        self.corrupt_entries.clear();
        self.corrupt_rtt.clear();
        n
    }

    /// Number of valid entries (occupancy).
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Resets counters but not contents.
    pub fn reset_stats(&mut self) {
        self.stats = HtStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> HwHashTable {
        HwHashTable::default()
    }

    /// Send-audit: per-core accelerator state must be movable into a worker
    /// thread (it stays worker-private, so `Sync` is not required).
    #[test]
    fn hw_hash_table_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<HwHashTable>();
    }

    #[test]
    fn get_miss_fill_then_hit() {
        let mut t = table();
        assert_eq!(t.get(0x100, b"title"), GetOutcome::Miss);
        t.fill(0x100, b"title", 0xDEAD);
        assert_eq!(
            t.get(0x100, b"title"),
            GetOutcome::Hit { value_ptr: 0xDEAD }
        );
        assert_eq!(t.stats().gets, 2);
        assert_eq!(t.stats().get_hits, 1);
    }

    #[test]
    fn set_never_misses_and_updates() {
        let mut t = table();
        match t.set(0x100, b"k", 1) {
            SetOutcome::Inserted {
                eviction: Eviction::None,
            } => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(t.set(0x100, b"k", 2), SetOutcome::Updated);
        assert_eq!(t.get(0x100, b"k"), GetOutcome::Hit { value_ptr: 2 });
    }

    #[test]
    fn same_key_different_base_are_distinct() {
        let mut t = table();
        t.set(0x100, b"k", 1);
        t.set(0x200, b"k", 2);
        assert_eq!(t.get(0x100, b"k"), GetOutcome::Hit { value_ptr: 1 });
        assert_eq!(t.get(0x200, b"k"), GetOutcome::Hit { value_ptr: 2 });
    }

    #[test]
    fn long_keys_unsupported() {
        let mut t = table();
        let long = [b'x'; 25];
        assert_eq!(t.get(0x1, &long), GetOutcome::Unsupported);
        assert_eq!(t.set(0x1, &long, 9), SetOutcome::Unsupported);
        assert_eq!(t.stats().key_too_long, 2);
    }

    #[test]
    fn free_invalidates_whole_map() {
        let mut t = table();
        for i in 0..10u64 {
            t.set(0x300, format!("key{i}").as_bytes(), i);
        }
        let n = t.free(0x300);
        assert_eq!(n, 10);
        for i in 0..10u64 {
            assert_eq!(t.get(0x300, format!("key{i}").as_bytes()), GetOutcome::Miss);
        }
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn foreach_replays_insertion_order_and_cleans() {
        let mut t = table();
        t.set(0x400, b"first", 1);
        t.set(0x400, b"second", 2);
        t.set(0x400, b"third", 3);
        let out = t.foreach(0x400);
        let keys: Vec<&[u8]> = out.live_pairs.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, [b"first".as_slice(), b"second", b"third"]);
        assert_eq!(out.written_back, 3);
        assert!(!out.order_lost);
        // Second foreach: nothing dirty anymore.
        let out2 = t.foreach(0x400);
        assert_eq!(out2.written_back, 0);
    }

    #[test]
    fn tiny_table_set_causes_dirty_writeback() {
        let mut t = HwHashTable::new(HtConfig {
            entries: 4,
            probe_width: 4,
            rtt_maps: 8,
            rtt_slots: 8,
        });
        // Fill all 4 ways dirty for one base, then one more insert.
        let mut writebacks = 0;
        for i in 0..5u64 {
            if let SetOutcome::Inserted {
                eviction: Eviction::DirtyWriteback { .. },
            } = t.set(0x10, format!("k{i}").as_bytes(), i)
            {
                writebacks += 1;
            }
        }
        assert!(
            writebacks >= 1,
            "fifth dirty insert into 4-entry table must evict dirty"
        );
        assert_eq!(t.stats().evict_dirty as usize, writebacks);
    }

    #[test]
    fn clean_entries_preferred_over_dirty_for_replacement() {
        let mut t = HwHashTable::new(HtConfig {
            entries: 4,
            probe_width: 4,
            rtt_maps: 8,
            rtt_slots: 8,
        });
        t.set(0x10, b"d1", 1); // dirty
        t.fill(0x10, b"c1", 2); // clean
        t.set(0x10, b"d2", 3); // dirty
        t.set(0x10, b"d3", 4); // dirty
                               // Table full (4 entries). Next insert should evict the clean one.
        match t.set(0x10, b"new", 5) {
            SetOutcome::Inserted {
                eviction: Eviction::Clean,
            } => {}
            other => panic!("expected clean eviction, got {other:?}"),
        }
        assert_eq!(t.get(0x10, b"c1"), GetOutcome::Miss);
        assert_eq!(t.get(0x10, b"d1"), GetOutcome::Hit { value_ptr: 1 });
    }

    #[test]
    fn coherence_flush_returns_dirty_pairs() {
        let mut t = table();
        t.set(0x500, b"a", 1);
        t.fill(0x500, b"b", 2);
        let dirty = t.coherence_flush(0x500);
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].value_ptr, 1);
        assert_eq!(t.get(0x500, b"a"), GetOutcome::Miss);
        assert_eq!(t.get(0x500, b"b"), GetOutcome::Miss);
    }

    #[test]
    fn hit_rate_reasonable_for_short_lived_maps() {
        // The paper's Figure 7: even small tables get decent hit rates
        // because short-lived maps are written and read before eviction.
        let mut t = HwHashTable::new(HtConfig {
            entries: 256,
            probe_width: 4,
            rtt_maps: 64,
            rtt_slots: 32,
        });
        for map in 0..200u64 {
            let base = 0x1000 + map * 0x100;
            for k in 0..8u64 {
                t.set(base, format!("var{k}").as_bytes(), k);
            }
            for k in 0..8u64 {
                let _ = t.get(base, format!("var{k}").as_bytes());
            }
            t.free(base);
        }
        let hr = t.stats().hit_rate();
        assert!(hr > 0.8, "hit rate {hr}");
    }

    #[test]
    fn lru_updated_on_get() {
        let mut t = HwHashTable::new(HtConfig {
            entries: 4,
            probe_width: 4,
            rtt_maps: 8,
            rtt_slots: 8,
        });
        t.fill(0x10, b"a", 1);
        t.fill(0x10, b"b", 2);
        t.fill(0x10, b"c", 3);
        t.fill(0x10, b"d", 4);
        // Touch "a" so "b" becomes LRU among clean.
        let _ = t.get(0x10, b"a");
        t.fill(0x10, b"e", 5);
        assert_eq!(t.get(0x10, b"a"), GetOutcome::Hit { value_ptr: 1 });
        assert_eq!(t.get(0x10, b"b"), GetOutcome::Miss);
    }

    #[test]
    fn const_str_hint_skips_hash_cycles() {
        let mut t = table();
        t.set_hinted(0x100, b"title", 1, KeyShapeHint::ConstStr);
        let after_set = t.stats().accel_cycles;
        assert_eq!(after_set, PROBE_CYCLES);
        assert_eq!(
            t.get_hinted(0x100, b"title", KeyShapeHint::ConstStr),
            GetOutcome::Hit { value_ptr: 1 }
        );
        assert_eq!(t.stats().accel_cycles, after_set + PROBE_CYCLES);
        assert_eq!(t.stats().hinted_hash_skips, 2);
    }

    #[test]
    fn append_hint_inserts_without_probe() {
        let mut t = table();
        for i in 0..5u64 {
            let mut kb = vec![0xFF];
            kb.extend_from_slice(&i.to_le_bytes());
            match t.set_hinted(0x200, &kb, i, KeyShapeHint::IntAppend) {
                SetOutcome::Inserted { .. } => {}
                other => panic!("append must insert, got {other:?}"),
            }
        }
        assert_eq!(t.stats().hinted_append_inserts, 5);
        assert_eq!(t.stats().set_hits, 0);
        assert_eq!(t.stats().accel_cycles, 5 * HASH_CYCLES);
        // The inserted entries are real: unhinted GETs find them.
        let mut kb = vec![0xFF];
        kb.extend_from_slice(&3u64.to_le_bytes());
        assert_eq!(t.get(0x200, &kb), GetOutcome::Hit { value_ptr: 3 });
    }

    #[test]
    fn hinted_and_unhinted_sets_agree_on_contents() {
        let (mut a, mut b) = (table(), table());
        a.set(0x1, b"k", 7);
        b.set_hinted(0x1, b"k", 7, KeyShapeHint::ConstStr);
        assert_eq!(a.get(0x1, b"k"), b.get(0x1, b"k"));
        assert!(a.stats().accel_cycles > b.stats().accel_cycles);
    }

    #[test]
    fn injected_entry_fault_detected_on_get() {
        let mut t = table();
        t.set(0x100, b"k", 7);
        assert!(t.inject_entry_fault(0));
        assert_eq!(t.stats().faults_injected, 1);
        // Parity catches the corruption; the access reports a miss so the
        // software walk fetches the true value.
        assert_eq!(t.get(0x100, b"k"), GetOutcome::Miss);
        assert_eq!(t.stats().faults_detected, 1);
        // Refill restores a clean, correct entry.
        t.fill(0x100, b"k", 7);
        assert_eq!(t.get(0x100, b"k"), GetOutcome::Hit { value_ptr: 7 });
    }

    #[test]
    fn injected_entry_fault_repaired_by_set() {
        let mut t = table();
        t.set(0x100, b"k", 7);
        assert!(t.inject_entry_fault(0));
        assert_eq!(t.set(0x100, b"k", 9), SetOutcome::Updated);
        assert_eq!(t.stats().faults_detected, 1);
        assert_eq!(t.get(0x100, b"k"), GetOutcome::Hit { value_ptr: 9 });
    }

    #[test]
    fn injected_rtt_fault_forces_software_iteration() {
        let mut t = table();
        t.set(0x100, b"a", 1);
        t.set(0x100, b"b", 2);
        assert!(t.inject_rtt_fault(0));
        let out = t.foreach(0x100);
        assert!(out.order_lost, "corrupt RTT must force software iteration");
        assert!(out.live_pairs.is_empty());
        assert_eq!(t.stats().faults_detected, 1);
        // The map's entries were scan-invalidated; nothing stale remains.
        assert_eq!(t.get(0x100, b"a"), GetOutcome::Miss);
    }

    #[test]
    fn injected_rtt_fault_detected_on_free() {
        let mut t = table();
        t.set(0x100, b"a", 1);
        t.set(0x100, b"b", 2);
        assert!(t.inject_rtt_fault(0));
        assert_eq!(t.free(0x100), 2, "scan fallback still frees both");
        assert_eq!(t.stats().faults_detected, 1);
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn invalidate_all_clears_contents_and_corruption() {
        let mut t = table();
        t.set(0x100, b"a", 1);
        t.set(0x200, b"b", 2);
        t.inject_entry_fault(0);
        t.inject_rtt_fault(0);
        assert_eq!(t.invalidate_all(), 2);
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.get(0x100, b"a"), GetOutcome::Miss);
        assert_eq!(t.get(0x200, b"b"), GetOutcome::Miss);
        // No latent corruption to detect after the wipe.
        t.set(0x100, b"a", 1);
        assert_eq!(t.get(0x100, b"a"), GetOutcome::Hit { value_ptr: 1 });
        assert_eq!(t.stats().faults_detected, 0);
    }

    #[test]
    fn inject_on_empty_table_reports_nothing_to_corrupt() {
        let mut t = table();
        assert!(!t.inject_entry_fault(0));
        assert!(!t.inject_rtt_fault(0));
        assert_eq!(t.stats().faults_injected, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        HwHashTable::new(HtConfig {
            entries: 500,
            probe_width: 4,
            rtt_maps: 8,
            rtt_slots: 8,
        });
    }
}
