//! The string accelerator engine: block loop, glue logic, configuration
//! registers.
//!
//! §5.1: "At 2GHz, the string accelerator requires a maximum of 3 cycles to
//! process up to 64 character blocks." §4.4: wrap-around between blocks is
//! handled "by buffering previous matching matrix values, and feeding them
//! into the glue-logic sub-block" — modeled here by overlapping consecutive
//! blocks by `pattern_len - 1` bytes, which is observationally equivalent.

use crate::matrix::{
    ascii_compare, diagonal_and, priority_encode, ConfigError, MatrixConfig, RowSpec,
    MAX_BLOCK_WIDTH,
};
use crate::ops::{AccelCost, StrAccelStats, Unsupported};
use std::cmp::Ordering;

/// Hardware geometry of the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrAccelConfig {
    /// Subject bytes per block (matrix columns). Max 64.
    pub block_width: usize,
    /// Matrix rows (max pattern / set size).
    pub max_rows: usize,
    /// Rows capable of inequality compares (§4.4: 6).
    pub inequality_rows: usize,
    /// Cycles per block (§5.1: 3).
    pub cycles_per_block: u64,
}

impl Default for StrAccelConfig {
    fn default() -> Self {
        StrAccelConfig {
            block_width: 64,
            max_rows: 16,
            inequality_rows: 6,
            cycles_per_block: 3,
        }
    }
}

/// The string accelerator.
#[derive(Debug)]
pub struct StringAccel {
    cfg: StrAccelConfig,
    /// Currently loaded matrix configuration (complex ops keep it across
    /// calls; `strreadconfig` reloads it after context switches).
    loaded: Option<MatrixConfig>,
    /// Saved configuration (`strwriteconfig` destination).
    saved: Option<MatrixConfig>,
    /// Configuration registers no longer pass parity (injected fault);
    /// caught by [`StringAccel::config_fault_detected`] before the next op.
    faulted: bool,
    stats: StrAccelStats,
}

impl Default for StringAccel {
    fn default() -> Self {
        Self::new(StrAccelConfig::default())
    }
}

impl StringAccel {
    /// Builds the accelerator.
    ///
    /// # Panics
    ///
    /// Panics if `block_width` exceeds 64 or is zero.
    pub fn new(cfg: StrAccelConfig) -> Self {
        assert!(cfg.block_width > 0 && cfg.block_width <= MAX_BLOCK_WIDTH);
        assert!(cfg.cycles_per_block > 0);
        StringAccel {
            cfg,
            loaded: None,
            saved: None,
            faulted: false,
            stats: StrAccelStats::default(),
        }
    }

    /// Geometry.
    pub fn config(&self) -> &StrAccelConfig {
        &self.cfg
    }

    /// Statistics.
    pub fn stats(&self) -> &StrAccelStats {
        &self.stats
    }

    fn note(&mut self, cost: AccelCost) {
        self.stats.ops += 1;
        self.stats.cycles += cost.cycles;
        self.stats.bytes += cost.bytes;
        self.stats.active_cells += cost.active_cells;
        self.stats.blocks += cost.cycles / self.cfg.cycles_per_block;
    }

    /// Resets statistics counters (configuration registers stay).
    pub fn reset_stats(&mut self) {
        self.stats = StrAccelStats::default();
    }

    /// Records a software fallback (for fair end-to-end accounting).
    pub fn note_fallback(&mut self) {
        self.stats.fallbacks += 1;
    }

    /// Fault-injection hook: flips bits in the matrix configuration
    /// registers. The parity check catches it before the next operation.
    pub fn inject_config_fault(&mut self) {
        self.faulted = true;
        self.stats.faults_injected += 1;
    }

    /// Register parity checkpoint, consulted before dispatching an
    /// operation. On a latent fault this clears the untrusted configuration
    /// registers, counts the detection plus a software fallback, and returns
    /// `true` — the caller must run the software routine for this op.
    pub fn config_fault_detected(&mut self) -> bool {
        if !self.faulted {
            return false;
        }
        self.faulted = false;
        self.loaded = None;
        self.saved = None;
        self.stats.faults_detected += 1;
        self.stats.fallbacks += 1;
        true
    }

    /// Full state reset (the sandbox recovery path): drops both
    /// configuration registers and any latent fault. Statistics stay.
    pub fn reset_state(&mut self) {
        self.loaded = None;
        self.saved = None;
        self.faulted = false;
    }

    fn build_config(&self, rows: Vec<RowSpec>) -> Result<MatrixConfig, Unsupported> {
        MatrixConfig::new(rows, self.cfg.max_rows, self.cfg.inequality_rows).map_err(|e| match e {
            ConfigError::TooManyRows {
                requested,
                available,
            } => Unsupported::PatternTooLong {
                len: requested,
                rows: available,
            },
            ConfigError::TooManyRanges { .. } => Unsupported::TooManyRanges,
        })
    }

    /// `strwriteconfig`: stores the current matrix configuration (before a
    /// context switch). Returns whether anything was stored.
    pub fn strwriteconfig(&mut self) -> bool {
        self.stats.config_saves += 1;
        self.saved = self.loaded.clone();
        self.saved.is_some()
    }

    /// `strreadconfig`: reloads the saved configuration "if it is not
    /// already configured" (§4.6). Returns the cycles spent.
    pub fn strreadconfig(&mut self) -> u64 {
        self.stats.config_loads += 1;
        if self.loaded == self.saved {
            return 1; // already configured: 1 check cycle
        }
        self.loaded = self.saved.clone();
        let rows = self.loaded.as_ref().map(|c| c.rows().len()).unwrap_or(0) as u64;
        1 + rows // one cycle per row loaded from memory
    }

    /// Whether a matrix configuration is loaded (tests/context-switch).
    pub fn configured(&self) -> bool {
        self.loaded.is_some()
    }

    /// Generic block scan: applies `f(block_match, block_len, base_offset)`
    /// per block until it returns `Some(T)`. Overlap supports patterns
    /// spanning block boundaries.
    fn scan_blocks<T>(
        &mut self,
        subject: &[u8],
        config: &MatrixConfig,
        overlap: usize,
        mut f: impl FnMut(&crate::matrix::BlockMatch, usize, usize) -> Option<T>,
    ) -> (Option<T>, AccelCost) {
        let width = self.cfg.block_width;
        assert!(overlap < width, "overlap must be smaller than a block");
        let stride = width - overlap;
        let mut cost = AccelCost::default();
        let mut pos = 0usize;
        while pos < subject.len() || (pos == 0 && subject.is_empty()) {
            let end = (pos + width).min(subject.len());
            let block = &subject[pos..end];
            let bm = ascii_compare(config, block);
            cost.cycles += self.cfg.cycles_per_block;
            cost.bytes += block.len() as u64;
            cost.active_cells += bm.active_cells;
            if let Some(t) = f(&bm, block.len(), pos) {
                self.loaded = Some(config.clone());
                self.note(cost);
                return (Some(t), cost);
            }
            if end == subject.len() {
                break;
            }
            pos += stride;
        }
        self.loaded = Some(config.clone());
        self.note(cost);
        (None, cost)
    }

    /// `stringop[find]`: offset of the first occurrence of `pattern` at or
    /// after `from`.
    ///
    /// # Errors
    ///
    /// [`Unsupported`] when the pattern exceeds the matrix geometry — the
    /// caller must use the software routine.
    pub fn find(
        &mut self,
        subject: &[u8],
        pattern: &[u8],
        from: usize,
    ) -> Result<(Option<usize>, AccelCost), Unsupported> {
        if pattern.is_empty() || pattern.len() >= self.cfg.block_width {
            return Err(Unsupported::PatternTooLong {
                len: pattern.len(),
                rows: self.cfg.max_rows.min(self.cfg.block_width - 1),
            });
        }
        let rows: Vec<RowSpec> = pattern.iter().map(|&b| RowSpec::Equal(b)).collect();
        let config = self.build_config(rows)?;
        let subject = &subject[from.min(subject.len())..];
        let plen = pattern.len();
        let (found, cost) = self.scan_blocks(subject, &config, plen - 1, |bm, blen, base| {
            priority_encode(diagonal_and(bm, blen)).map(|c| base + c)
        });
        Ok((found.map(|p| p + from), cost))
    }

    /// `stringop[findset]`: first byte in `set` (≤ rows) at or after `from`.
    ///
    /// # Errors
    ///
    /// [`Unsupported`] when the set exceeds the matrix rows.
    pub fn find_byte_set(
        &mut self,
        subject: &[u8],
        set: &[u8],
        from: usize,
    ) -> Result<(Option<usize>, AccelCost), Unsupported> {
        if set.len() > self.cfg.max_rows {
            return Err(Unsupported::SetTooLarge {
                len: set.len(),
                rows: self.cfg.max_rows,
            });
        }
        let rows: Vec<RowSpec> = set.iter().map(|&b| RowSpec::Equal(b)).collect();
        let config = self.build_config(rows)?;
        let subject_tail = &subject[from.min(subject.len())..];
        let (found, cost) = self.scan_blocks(subject_tail, &config, 0, |bm, _blen, base| {
            let any = bm.masks.iter().fold(0u64, |a, &m| a | m);
            priority_encode(any).map(|c| base + c)
        });
        Ok((found.map(|p| p + from), cost))
    }

    /// `stringop[compare]`: three-way compare of two strings, 64 B/block.
    pub fn compare(&mut self, a: &[u8], b: &[u8]) -> (Ordering, AccelCost) {
        let n = a.len().min(b.len());
        let width = self.cfg.block_width;
        let mut cost = AccelCost::default();
        let mut pos = 0;
        while pos < n {
            let end = (pos + width).min(n);
            cost.cycles += self.cfg.cycles_per_block;
            cost.bytes += (end - pos) as u64;
            cost.active_cells += (end - pos) as u64;
            if a[pos..end] != b[pos..end] {
                // Priority-encode the first differing byte inside the block.
                let i = (pos..end).find(|&i| a[i] != b[i]).expect("blocks differ");
                self.note(cost);
                return (a[i].cmp(&b[i]), cost);
            }
            pos = end;
        }
        self.note(cost);
        (a.len().cmp(&b.len()), cost)
    }

    /// `stringop[translate]` for case conversion: maps `[lo..=hi]` by XOR
    /// 0x20 (the ASCII case bit) through the output logic. Used for
    /// `strtoupper`/`strtolower`.
    pub fn translate_case(&mut self, subject: &[u8], to_upper: bool) -> (Vec<u8>, AccelCost) {
        let (lo, hi) = if to_upper { (b'a', b'z') } else { (b'A', b'Z') };
        let config = self
            .build_config(vec![RowSpec::Range { lo, hi }])
            .expect("single range row always fits");
        let mut out = subject.to_vec();
        let (_, cost) = self.scan_blocks(subject, &config, 0, |bm, blen, base| {
            let mut mask = bm.masks[0];
            while mask != 0 {
                let c = mask.trailing_zeros() as usize;
                if c < blen {
                    out[base + c] ^= 0x20;
                }
                mask &= mask - 1;
            }
            None::<()>
        });
        (out, cost)
    }

    /// `stringop[replace]`: substitutes every `from` byte with `to`.
    /// Returns `(result, replacements, cost)`.
    pub fn replace_byte(
        &mut self,
        subject: &[u8],
        from: u8,
        to: u8,
    ) -> (Vec<u8>, usize, AccelCost) {
        let config = self
            .build_config(vec![RowSpec::Equal(from)])
            .expect("single row always fits");
        let mut out = subject.to_vec();
        let mut count = 0usize;
        let (_, cost) = self.scan_blocks(subject, &config, 0, |bm, blen, base| {
            let mut mask = bm.masks[0];
            while mask != 0 {
                let c = mask.trailing_zeros() as usize;
                if c < blen {
                    out[base + c] = to;
                    count += 1;
                }
                mask &= mask - 1;
            }
            None::<()>
        });
        (out, count, cost)
    }

    /// `stringop[trim]`: returns the `(start, end)` byte range of the
    /// subject with `set` bytes stripped from both ends.
    ///
    /// # Errors
    ///
    /// [`Unsupported`] when the trim set exceeds the matrix rows.
    pub fn trim_range(
        &mut self,
        subject: &[u8],
        set: &[u8],
    ) -> Result<((usize, usize), AccelCost), Unsupported> {
        if set.len() > self.cfg.max_rows {
            return Err(Unsupported::SetTooLarge {
                len: set.len(),
                rows: self.cfg.max_rows,
            });
        }
        let rows: Vec<RowSpec> = set.iter().map(|&b| RowSpec::Equal(b)).collect();
        let config = self.build_config(rows)?;
        // Leading scan: first byte NOT in the set.
        let (lead, c1) = self.scan_blocks(subject, &config, 0, |bm, blen, base| {
            let any = bm.masks.iter().fold(0u64, |a, &m| a | m);
            let not = !any & mask_of(blen);
            priority_encode(not).map(|c| base + c)
        });
        let start = lead.unwrap_or(subject.len());
        // Trailing scan in software order but hardware blocks (the shifter
        // aligns reversed reads in real hardware).
        let mut end = subject.len();
        let mut c2 = AccelCost::default();
        while end > start {
            let blk_start = end.saturating_sub(self.cfg.block_width).max(start);
            let block = &subject[blk_start..end];
            let bm = ascii_compare(&config, block);
            c2.cycles += self.cfg.cycles_per_block;
            c2.bytes += block.len() as u64;
            c2.active_cells += bm.active_cells;
            let any = bm.masks.iter().fold(0u64, |a, &m| a | m);
            let not = !any & mask_of(block.len());
            if not != 0 {
                let last = 63 - not.leading_zeros() as usize;
                end = blk_start + last + 1;
                break;
            }
            end = blk_start;
        }
        self.note(c2);
        Ok(((start, end.max(start)), c1.plus(c2)))
    }

    /// `stringop[span]`: length of the prefix whose bytes all fall in the
    /// given ranges (ctype-style scans).
    ///
    /// # Errors
    ///
    /// [`Unsupported`] when more ranges than inequality rows are requested.
    pub fn span_ranges(
        &mut self,
        subject: &[u8],
        ranges: &[(u8, u8)],
    ) -> Result<(usize, AccelCost), Unsupported> {
        let rows: Vec<RowSpec> = ranges
            .iter()
            .map(|&(lo, hi)| RowSpec::Range { lo, hi })
            .collect();
        let config = self.build_config(rows)?;
        let (stop, cost) = self.scan_blocks(subject, &config, 0, |bm, blen, base| {
            let any = bm.masks.iter().fold(0u64, |a, &m| a | m);
            let not = !any & mask_of(blen);
            priority_encode(not).map(|c| base + c)
        });
        Ok((stop.unwrap_or(subject.len()), cost))
    }

    /// The matrix configuration the hint-vector sift runs with. Regular
    /// characters: 3 ranges + 5 equality rows = 8 rows, well within 16
    /// rows / 6 inequality rows.
    fn sift_config(&self) -> MatrixConfig {
        self.build_config(vec![
            RowSpec::Range { lo: b'A', hi: b'Z' },
            RowSpec::Range { lo: b'a', hi: b'z' },
            RowSpec::Range { lo: b'0', hi: b'9' },
            RowSpec::Equal(b'_'),
            RowSpec::Equal(b'.'),
            RowSpec::Equal(b','),
            RowSpec::Equal(b'-'),
            RowSpec::Equal(b' '),
        ])
        .expect("sift config fits")
    }

    /// Pre-loads (and saves) the sift matrix configuration ahead of the
    /// first request. Static analysis calls this when it proved the
    /// workload runs regexps: the hint-vector sieve then finds its config
    /// already resident instead of paying the load on the first subject,
    /// and the first post-context-switch `strreadconfig` is a no-op.
    pub fn preload_sift_config(&mut self) {
        let config = self.sift_config();
        self.loaded = Some(config.clone());
        self.saved = Some(config);
    }

    /// Hint-vector sift (§4.5 support): marks each `segment_size`-byte
    /// segment that contains at least one *special* character (outside
    /// `[A-Za-z0-9_.,-]` + space). This is the sieve's extra work.
    pub fn sift_special(&mut self, subject: &[u8], segment_size: usize) -> (Vec<bool>, AccelCost) {
        assert!(segment_size > 0);
        let config = self.sift_config();
        let nseg = subject.len().div_ceil(segment_size);
        let mut hints = vec![false; nseg];
        let (_, cost) = self.scan_blocks(subject, &config, 0, |bm, blen, base| {
            let regular = bm.masks.iter().fold(0u64, |a, &m| a | m);
            let mut special = !regular & mask_of(blen);
            while special != 0 {
                let c = special.trailing_zeros() as usize;
                hints[(base + c) / segment_size] = true;
                special &= special - 1;
            }
            None::<()>
        });
        (hints, cost)
    }
}

fn mask_of(n: usize) -> u64 {
    if n >= 64 {
        !0
    } else {
        (1u64 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accel() -> StringAccel {
        StringAccel::default()
    }

    /// Send-audit: per-core accelerator state must be movable into a worker
    /// thread (it stays worker-private, so `Sync` is not required).
    #[test]
    fn string_accel_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<StringAccel>();
    }

    #[test]
    fn config_fault_detected_once_then_clean() {
        let mut a = accel();
        let _ = a.find(b"subject text", b"tex", 0).unwrap();
        assert!(a.configured());
        a.inject_config_fault();
        assert_eq!(a.stats().faults_injected, 1);
        // The parity checkpoint catches the fault exactly once and drops
        // the untrusted registers.
        assert!(a.config_fault_detected());
        assert!(!a.configured());
        assert_eq!(a.stats().faults_detected, 1);
        assert_eq!(a.stats().fallbacks, 1);
        assert!(!a.config_fault_detected());
        // Subsequent ops run clean and correct.
        let (pos, _) = a.find(b"subject text", b"tex", 0).unwrap();
        assert_eq!(pos, Some(8));
    }

    #[test]
    fn reset_state_clears_registers_and_fault() {
        let mut a = accel();
        let _ = a.find(b"abc", b"b", 0).unwrap();
        a.strwriteconfig();
        a.inject_config_fault();
        a.reset_state();
        assert!(!a.configured());
        assert!(!a.config_fault_detected());
    }

    #[test]
    fn find_matches_software_semantics() {
        let mut a = accel();
        let subject = b"the quick brown fox jumps over the lazy dog";
        let (pos, _) = a.find(subject, b"fox", 0).unwrap();
        assert_eq!(pos, Some(16));
        let (pos, _) = a.find(subject, b"the", 1).unwrap();
        assert_eq!(pos, Some(31));
        let (pos, _) = a.find(subject, b"cat", 0).unwrap();
        assert_eq!(pos, None);
    }

    #[test]
    fn find_across_block_boundary() {
        let mut a = accel();
        // Place the pattern straddling the 64-byte boundary.
        let mut subject = vec![b'x'; 62];
        subject.extend_from_slice(b"needle");
        subject.extend_from_slice(&[b'y'; 30]);
        let (pos, cost) = a.find(&subject, b"needle", 0).unwrap();
        assert_eq!(pos, Some(62));
        assert!(cost.cycles >= 6, "needs at least two blocks");
    }

    #[test]
    fn find_rejects_long_patterns() {
        let mut a = accel();
        let long = vec![b'p'; 17];
        assert!(a.find(b"subject", &long, 0).is_err());
        assert!(a.find(b"subject", b"", 0).is_err());
    }

    #[test]
    fn cost_reflects_three_cycles_per_block() {
        let mut a = accel();
        let subject = vec![b'a'; 256];
        let (_, cost) = a.find(&subject, b"zz", 0).unwrap();
        // 256 bytes, stride 63 → 5 blocks → 15 cycles.
        assert_eq!(cost.cycles / 3, cost.cycles.div_ceil(3), "multiple of 3");
        assert!(cost.bytes >= 256);
        assert!(cost.cycles <= 18);
    }

    #[test]
    fn throughput_beats_byte_at_a_time() {
        let mut a = accel();
        let subject = vec![b'a'; 4096];
        let _ = a.find(&subject, b"qq", 0).unwrap();
        assert!(
            a.stats().bytes_per_cycle() > 8.0,
            "{}",
            a.stats().bytes_per_cycle()
        );
    }

    #[test]
    fn find_byte_set_first_of_any() {
        let mut a = accel();
        let (pos, _) = a.find_byte_set(b"hello <b>world", b"<>&\"'", 0).unwrap();
        assert_eq!(pos, Some(6));
        let (pos, _) = a.find_byte_set(b"plain text only", b"<>&", 0).unwrap();
        assert_eq!(pos, None);
    }

    #[test]
    fn compare_three_way() {
        let mut a = accel();
        assert_eq!(a.compare(b"abc", b"abc").0, Ordering::Equal);
        assert_eq!(a.compare(b"abc", b"abd").0, Ordering::Less);
        assert_eq!(a.compare(b"abcd", b"abc").0, Ordering::Greater);
        let big_a = vec![b'x'; 200];
        let mut big_b = big_a.clone();
        big_b[150] = b'y';
        assert_eq!(a.compare(&big_a, &big_b).0, Ordering::Less);
    }

    #[test]
    fn case_translation() {
        let mut a = accel();
        let (up, _) = a.translate_case(b"Hello, World! 123", true);
        assert_eq!(up, b"HELLO, WORLD! 123");
        let (low, _) = a.translate_case(b"Hello, World! 123", false);
        assert_eq!(low, b"hello, world! 123");
    }

    #[test]
    fn replace_byte_counts() {
        let mut a = accel();
        let (out, n, _) = a.replace_byte(b"a-b-c-d", b'-', b'_');
        assert_eq!(out, b"a_b_c_d");
        assert_eq!(n, 3);
    }

    #[test]
    fn trim_range_strips_both_ends() {
        let mut a = accel();
        let ((s, e), _) = a.trim_range(b"  hello  ", b" \t\n\r").unwrap();
        assert_eq!(&b"  hello  "[s..e], b"hello");
        let ((s, e), _) = a.trim_range(b"     ", b" ").unwrap();
        assert_eq!(s, e, "all-whitespace trims to empty");
        let ((s, e), _) = a.trim_range(b"abc", b" ").unwrap();
        assert_eq!((s, e), (0, 3));
    }

    #[test]
    fn trim_longer_than_block() {
        let mut a = accel();
        let mut subject = vec![b' '; 100];
        subject.extend_from_slice(b"core");
        subject.extend(vec![b' '; 100]);
        let ((s, e), _) = a.trim_range(&subject, b" ").unwrap();
        assert_eq!(&subject[s..e], b"core");
    }

    #[test]
    fn span_ranges_prefix() {
        let mut a = accel();
        let (n, _) = a
            .span_ranges(b"abc123!rest", &[(b'a', b'z'), (b'0', b'9')])
            .unwrap();
        assert_eq!(n, 6);
        let (n, _) = a.span_ranges(b"!!!", &[(b'a', b'z')]).unwrap();
        assert_eq!(n, 0);
        // 7 ranges exceed the 6 inequality rows.
        let too_many = [(0u8, 1u8); 7];
        assert!(a.span_ranges(b"x", &too_many).is_err());
    }

    #[test]
    fn sift_special_marks_segments() {
        let mut a = accel();
        //            seg0: clean       seg1: has '<'      seg2: clean
        let subject = b"abcdefgh12345678<tag>bcdefghijklmn abcdefghijklm";
        let (hints, _) = a.sift_special(subject, 16);
        assert_eq!(hints.len(), 3);
        assert!(!hints[0]);
        assert!(hints[1]);
        assert!(!hints[2]);
    }

    #[test]
    fn config_save_restore_cycle() {
        let mut a = accel();
        let _ = a.sift_special(b"some content here", 16);
        assert!(a.configured());
        assert!(a.strwriteconfig());
        // Context switch wipes the matrix...
        let _ = a.translate_case(b"ABC", false); // different config now loaded
        let cycles = a.strreadconfig();
        assert!(cycles > 1, "restore should reload rows");
        let cycles2 = a.strreadconfig();
        assert_eq!(cycles2, 1, "already configured");
        assert_eq!(a.stats().config_loads, 2);
        assert_eq!(a.stats().config_saves, 1);
    }

    #[test]
    fn empty_subject_is_cheap_and_correct() {
        let mut a = accel();
        let (pos, _) = a.find(b"", b"x", 0).unwrap();
        assert_eq!(pos, None);
        let (hints, _) = a.sift_special(b"", 16);
        assert!(hints.is_empty());
    }
}

impl StringAccel {
    /// UTF-8 aware find (§4.4: "Multi-byte character sets (Unicode) can be
    /// handled by grouping the single-byte characters comparisons"): the
    /// pattern's UTF-8 bytes occupy consecutive matrix rows — exactly the
    /// machinery of [`StringAccel::find`] — and the returned offset is
    /// additionally reported as a character index.
    ///
    /// Returns `Ok(Some((byte_offset, char_index)))` on a match.
    ///
    /// # Errors
    ///
    /// [`Unsupported`] when the pattern's UTF-8 encoding exceeds the matrix
    /// rows.
    pub fn find_utf8(
        &mut self,
        subject: &str,
        pattern: &str,
        from_byte: usize,
    ) -> Result<(Option<(usize, usize)>, AccelCost), Unsupported> {
        let (pos, cost) = self.find(subject.as_bytes(), pattern.as_bytes(), from_byte)?;
        // UTF-8's self-synchronizing property guarantees a byte-level match
        // of a valid pattern begins on a character boundary.
        let out = pos.map(|byte_offset| {
            let char_index = subject[..byte_offset].chars().count();
            (byte_offset, char_index)
        });
        Ok((out, cost))
    }
}

#[cfg(test)]
mod utf8_tests {
    use super::*;

    #[test]
    fn multibyte_pattern_found_with_char_index() {
        let mut a = StringAccel::default();
        let subject = "naïve café résumé";
        let (found, _) = a.find_utf8(subject, "café", 0).unwrap();
        let (byte_off, char_idx) = found.unwrap();
        assert_eq!(&subject[byte_off..byte_off + "café".len()], "café");
        assert_eq!(char_idx, 6);
    }

    #[test]
    fn multibyte_no_false_positive_on_continuation_bytes() {
        let mut a = StringAccel::default();
        // 'é' = C3 A9; 'é'+'©' share C3/A9-adjacent bytes — search for a
        // sequence that appears only as a character, never as a byte slice.
        let subject = "ééé©©©";
        let (found, _) = a.find_utf8(subject, "é©", 0).unwrap();
        let (byte_off, char_idx) = found.unwrap();
        assert_eq!(char_idx, 2);
        assert_eq!(&subject[byte_off..byte_off + "é©".len()], "é©");
        let (none, _) = a.find_utf8(subject, "©é", 0).unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn four_byte_emoji_grouping() {
        let mut a = StringAccel::default();
        let subject = "plain text 🚀 more text";
        let (found, _) = a.find_utf8(subject, "🚀", 0).unwrap();
        let (byte_off, char_idx) = found.unwrap();
        assert_eq!(char_idx, 11);
        assert_eq!(&subject[byte_off..byte_off + 4], "🚀");
    }

    #[test]
    fn long_multibyte_pattern_unsupported() {
        let mut a = StringAccel::default();
        // 5 emoji = 20 bytes > 16 matrix rows → software fallback.
        assert!(a.find_utf8("xxx", "🚀🚀🚀🚀🚀", 0).is_err());
    }
}
