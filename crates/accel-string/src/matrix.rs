//! The matching matrix: ASCII compare rows over a multi-byte subject block.
//!
//! §4.4: "ASCII compare uses combinational logic to find the presence of
//! pattern characters within the subject string to populate a matching
//! matrix. This operation is done in parallel [...] we allow 6 of our
//! matching matrix rows to also support inequality comparisons [...] Entries
//! within the ASCII compare matrix that are unused during a given operation
//! can be clock-gated."
//!
//! A block is at most 64 bytes, so one row's compare results pack into a
//! `u64` column bitmask (bit *c* = subject byte *c* satisfied the row).

/// Maximum subject-block width (columns).
pub const MAX_BLOCK_WIDTH: usize = 64;

/// What one matrix row compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowSpec {
    /// Equality with one byte (any row supports this).
    Equal(u8),
    /// Inclusive range `[lo, hi]` — needs one of the 6 inequality rows.
    Range {
        /// Low bound.
        lo: u8,
        /// High bound.
        hi: u8,
    },
    /// Row unused (clock-gated).
    Disabled,
}

impl RowSpec {
    /// Does byte `b` satisfy this row?
    pub fn matches(&self, b: u8) -> bool {
        match *self {
            RowSpec::Equal(x) => b == x,
            RowSpec::Range { lo, hi } => lo <= b && b <= hi,
            RowSpec::Disabled => false,
        }
    }

    /// Whether the row needs inequality comparators.
    pub fn needs_inequality(&self) -> bool {
        matches!(self, RowSpec::Range { .. })
    }
}

/// Error building a matrix configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// More rows requested than the matrix has.
    TooManyRows {
        /// Rows requested.
        requested: usize,
        /// Rows available.
        available: usize,
    },
    /// More range rows than the hardware's inequality rows.
    TooManyRanges {
        /// Range rows requested.
        requested: usize,
        /// Inequality rows available.
        available: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::TooManyRows {
                requested,
                available,
            } => {
                write!(f, "pattern needs {requested} rows, matrix has {available}")
            }
            ConfigError::TooManyRanges {
                requested,
                available,
            } => {
                write!(
                    f,
                    "pattern needs {requested} range rows, hardware has {available}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A loaded matrix configuration (the state `strwriteconfig` saves and
/// `strreadconfig` restores, §4.6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixConfig {
    rows: Vec<RowSpec>,
}

impl MatrixConfig {
    /// Builds a configuration, validating against the hardware limits.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when the rows don't fit the matrix geometry.
    pub fn new(
        rows: Vec<RowSpec>,
        max_rows: usize,
        inequality_rows: usize,
    ) -> Result<MatrixConfig, ConfigError> {
        if rows.len() > max_rows {
            return Err(ConfigError::TooManyRows {
                requested: rows.len(),
                available: max_rows,
            });
        }
        let ranges = rows.iter().filter(|r| r.needs_inequality()).count();
        if ranges > inequality_rows {
            return Err(ConfigError::TooManyRanges {
                requested: ranges,
                available: inequality_rows,
            });
        }
        Ok(MatrixConfig { rows })
    }

    /// The row specs.
    pub fn rows(&self) -> &[RowSpec] {
        &self.rows
    }

    /// Active (non-disabled) row count — drives the clock-gating energy model.
    pub fn active_rows(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| !matches!(r, RowSpec::Disabled))
            .count()
    }
}

/// Result of comparing one block: per-row column bitmasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMatch {
    /// `masks[r]` bit `c` set ⇔ `block[c]` satisfies row `r`.
    pub masks: Vec<u64>,
    /// Number of matrix cells that toggled (energy accounting).
    pub active_cells: u64,
}

/// Populates the matching matrix for `block` under `config` — the ASCII
/// compare stage. All columns evaluate in parallel in hardware; here we
/// also count active cells for the energy model.
pub fn ascii_compare(config: &MatrixConfig, block: &[u8]) -> BlockMatch {
    assert!(block.len() <= MAX_BLOCK_WIDTH, "block wider than matrix");
    let mut masks = Vec::with_capacity(config.rows.len());
    let mut active_cells = 0u64;
    for row in &config.rows {
        let mut mask = 0u64;
        if !matches!(row, RowSpec::Disabled) {
            active_cells += block.len() as u64;
            for (c, &b) in block.iter().enumerate() {
                if row.matches(b) {
                    mask |= 1 << c;
                }
            }
        }
        masks.push(mask);
    }
    BlockMatch {
        masks,
        active_cells,
    }
}

/// Diagonal AND over the matrix (§4.4: "Operations that require matching of
/// multiple characters use AND gates of diagonal entries within the matching
/// matrix to find the position of consecutive character matches").
///
/// Returns a bitmask of *start* columns `c` such that for every row `r`,
/// `block[c + r]` satisfied row `r`. Start positions whose pattern would run
/// past the block are excluded (the engine's carry buffer handles
/// wrap-around).
pub fn diagonal_and(matches: &BlockMatch, block_len: usize) -> u64 {
    let rows = matches.masks.len();
    if rows == 0 || block_len == 0 || rows > block_len {
        return 0;
    }
    let mut acc = !0u64;
    for (r, &mask) in matches.masks.iter().enumerate() {
        acc &= mask >> r;
    }
    // Mask off start positions that would overflow the block.
    let valid = block_len - rows + 1;
    acc & valid_mask(valid)
}

fn valid_mask(n: usize) -> u64 {
    if n >= 64 {
        !0
    } else {
        (1u64 << n) - 1
    }
}

/// Priority encoder: index of the first valid match (§4.4: "use a priority
/// encoder to find the first instance of a valid match").
pub fn priority_encode(mask: u64) -> Option<usize> {
    if mask == 0 {
        None
    } else {
        Some(mask.trailing_zeros() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rows: Vec<RowSpec>) -> MatrixConfig {
        MatrixConfig::new(rows, 16, 6).unwrap()
    }

    #[test]
    fn equality_rows_populate_masks() {
        let c = cfg(vec![RowSpec::Equal(b'a'), RowSpec::Equal(b'b')]);
        let m = ascii_compare(&c, b"abab");
        assert_eq!(m.masks[0], 0b0101);
        assert_eq!(m.masks[1], 0b1010);
        assert_eq!(m.active_cells, 8);
    }

    #[test]
    fn range_rows_match_spans() {
        let c = cfg(vec![RowSpec::Range { lo: b'a', hi: b'z' }]);
        let m = ascii_compare(&c, b"aZ9z");
        assert_eq!(m.masks[0], 0b1001);
    }

    #[test]
    fn disabled_rows_are_clock_gated() {
        let c = cfg(vec![RowSpec::Equal(b'x'), RowSpec::Disabled]);
        let m = ascii_compare(&c, b"xxxx");
        assert_eq!(
            m.active_cells, 4,
            "disabled row contributes no active cells"
        );
        assert_eq!(m.masks[1], 0);
    }

    #[test]
    fn diagonal_and_finds_consecutive_match() {
        // Figure 10's example: subject "babc", pattern "abc".
        let c = cfg(vec![
            RowSpec::Equal(b'a'),
            RowSpec::Equal(b'b'),
            RowSpec::Equal(b'c'),
        ]);
        let m = ascii_compare(&c, b"babc");
        let d = diagonal_and(&m, 4);
        assert_eq!(priority_encode(d), Some(1));
    }

    #[test]
    fn diagonal_and_excludes_overflow_starts() {
        let c = cfg(vec![RowSpec::Equal(b'a'), RowSpec::Equal(b'b')]);
        let m = ascii_compare(&c, b"xxxa"); // 'a' at the last column
        assert_eq!(diagonal_and(&m, 4), 0, "match would run past the block");
    }

    #[test]
    fn priority_encoder_first_bit() {
        assert_eq!(priority_encode(0), None);
        assert_eq!(priority_encode(0b1000), Some(3));
        assert_eq!(priority_encode(0b1010), Some(1));
    }

    #[test]
    fn config_limits_enforced() {
        let rows: Vec<RowSpec> = (0..17).map(|_| RowSpec::Equal(b'x')).collect();
        assert!(matches!(
            MatrixConfig::new(rows, 16, 6),
            Err(ConfigError::TooManyRows { .. })
        ));
        let ranges: Vec<RowSpec> = (0..7).map(|_| RowSpec::Range { lo: 0, hi: 1 }).collect();
        assert!(matches!(
            MatrixConfig::new(ranges, 16, 6),
            Err(ConfigError::TooManyRanges { .. })
        ));
    }

    #[test]
    fn pattern_longer_than_block_matches_nothing() {
        let c = cfg(vec![RowSpec::Equal(b'a'); 5]);
        let m = ascii_compare(&c, b"aaaa");
        assert_eq!(diagonal_and(&m, 4), 0);
    }
}
