//! Operation descriptors and cost accounting for the string accelerator.

/// The six-bit opcode space of `stringop[op]` (§4.6). Each variant is one of
/// the string functions the shared datapath supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrOpKind {
    /// Substring find (`strpos`-class).
    Find,
    /// First occurrence of any byte from a set (`strpbrk`/trim scans).
    FindSet,
    /// Block-wise compare (`strcmp`-class).
    Compare,
    /// Case conversion and other ranged translations.
    Translate,
    /// Strip a byte set from both ends.
    Trim,
    /// Prefix span of a character class (`ctype` scans).
    Span,
    /// Single-byte substitution (`str_replace` of one char).
    ReplaceByte,
    /// Special-character sift producing a hint vector (§4.5 support).
    SiftSpecial,
}

/// Cost of one accelerator invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccelCost {
    /// Accelerator cycles (3 per up-to-64-byte block at 2 GHz, §5.1).
    pub cycles: u64,
    /// Subject bytes streamed through the matrix.
    pub bytes: u64,
    /// Matrix cells active (clock-gating-aware energy proxy).
    pub active_cells: u64,
}

impl AccelCost {
    /// Component-wise sum.
    pub fn plus(self, o: AccelCost) -> AccelCost {
        AccelCost {
            cycles: self.cycles + o.cycles,
            bytes: self.bytes + o.bytes,
            active_cells: self.active_cells + o.active_cells,
        }
    }
}

/// Why an operation could not run on the accelerator (software fallback).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unsupported {
    /// Pattern longer than the matrix has rows.
    PatternTooLong {
        /// Pattern length.
        len: usize,
        /// Matrix rows.
        rows: usize,
    },
    /// Needed more inequality rows than the hardware provides.
    TooManyRanges,
    /// Set larger than the matrix has rows.
    SetTooLarge {
        /// Set size.
        len: usize,
        /// Matrix rows.
        rows: usize,
    },
}

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unsupported::PatternTooLong { len, rows } => {
                write!(f, "pattern of {len} bytes exceeds {rows} matrix rows")
            }
            Unsupported::TooManyRanges => write!(f, "too many range comparisons"),
            Unsupported::SetTooLarge { len, rows } => {
                write!(f, "byte set of {len} exceeds {rows} matrix rows")
            }
        }
    }
}

impl std::error::Error for Unsupported {}

/// Aggregate statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrAccelStats {
    /// Operations served by the accelerator.
    pub ops: u64,
    /// Blocks processed.
    pub blocks: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Total subject bytes.
    pub bytes: u64,
    /// Total active matrix cells.
    pub active_cells: u64,
    /// Operations that fell back to software.
    pub fallbacks: u64,
    /// Configuration loads (`strreadconfig`).
    pub config_loads: u64,
    /// Configuration saves (`strwriteconfig`).
    pub config_saves: u64,
    /// Configuration-register faults injected (testing hook).
    pub faults_injected: u64,
    /// Faults caught by the register parity check before an operation.
    pub faults_detected: u64,
}

impl StrAccelStats {
    /// Mean bytes per cycle achieved (the concurrency headline of §4.4).
    pub fn bytes_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.bytes as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_sums() {
        let a = AccelCost {
            cycles: 3,
            bytes: 64,
            active_cells: 128,
        };
        let b = AccelCost {
            cycles: 3,
            bytes: 10,
            active_cells: 20,
        };
        let c = a.plus(b);
        assert_eq!(c.cycles, 6);
        assert_eq!(c.bytes, 74);
        assert_eq!(c.active_cells, 148);
    }

    #[test]
    fn throughput_metric() {
        let s = StrAccelStats {
            cycles: 30,
            bytes: 640,
            ..Default::default()
        };
        assert!((s.bytes_per_cycle() - 21.333).abs() < 0.01);
        assert_eq!(StrAccelStats::default().bytes_per_cycle(), 0.0);
    }
}
