//! # accel-string
//!
//! Model of the ISCA 2017 paper's **generalized string accelerator** (§4.4,
//! Figure 10). One shared datapath — ASCII-compare matching matrix,
//! diagonal AND, priority encoder, output/substitution logic, shifter —
//! serves many PHP string functions (find, compare, translate, trim, spans,
//! byte substitution) and generates the hint vectors the regexp accelerator
//! consumes. It processes up to 64 subject bytes per 3-cycle block,
//! exploiting concurrency single-byte designs leave untapped.
//!
//! ```
//! use accel_string::StringAccel;
//! let mut accel = StringAccel::default();
//! let (pos, cost) = accel.find(b"hello world", b"world", 0).unwrap();
//! assert_eq!(pos, Some(6));
//! assert!(cost.cycles <= 3); // one block
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod matrix;
pub mod ops;

pub use engine::{StrAccelConfig, StringAccel};
pub use matrix::{ConfigError, MatrixConfig, RowSpec, MAX_BLOCK_WIDTH};
pub use ops::{AccelCost, StrAccelStats, StrOpKind, Unsupported};
