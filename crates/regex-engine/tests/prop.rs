//! Property tests for the regex engine against a naive reference matcher.

use proptest::prelude::*;
use regex_engine::Regex;

/// Naive reference: does `pattern` (a literal with optional single `[ab]`
/// classes encoded as '?') match starting at `pos`? We generate patterns
/// from a tiny constrained family so a trivially-correct oracle exists.
fn oracle_find(hay: &[u8], lit: &[u8]) -> Option<usize> {
    if lit.is_empty() || lit.len() > hay.len() {
        return None;
    }
    hay.windows(lit.len()).position(|w| w == lit)
}

proptest! {
    #[test]
    fn literal_find_matches_oracle(
        hay in prop::collection::vec(97u8..100, 0..120),
        lit in prop::collection::vec(97u8..100, 1..4),
    ) {
        let pattern: String = lit.iter().map(|&b| b as char).collect();
        let re = Regex::new(&pattern).unwrap();
        let hay_bytes = hay.clone();
        let (m, _) = re.find_at(&hay_bytes, 0);
        prop_assert_eq!(m.map(|m| m.start), oracle_find(&hay_bytes, &lit));
    }

    #[test]
    fn find_all_invariants(
        hay in prop::collection::vec(prop::sample::select(b"ab'\"x".to_vec()), 0..200),
    ) {
        for pat in ["'", "a+", "'x?", "\"[ab]*\"", "(a|b)x"] {
            let re = Regex::new(pat).unwrap();
            let (ms, _) = re.find_all(&hay);
            // In bounds, ordered, non-overlapping.
            let mut prev_end = 0usize;
            for m in &ms {
                prop_assert!(m.start <= m.end);
                prop_assert!(m.end <= hay.len());
                prop_assert!(m.start >= prev_end || (m.is_empty() && m.start + 1 > prev_end));
                prev_end = m.end.max(prev_end);
                // Every reported non-empty match re-verifies via match_at.
                if !m.is_empty() {
                    let (again, _) = re.match_at(&hay, m.start);
                    prop_assert!(again.is_some(), "match at {} must re-verify", m.start);
                }
            }
        }
    }

    #[test]
    fn replace_all_removes_all_matches(
        hay in prop::collection::vec(prop::sample::select(b"abc'".to_vec()), 0..150),
    ) {
        let re = Regex::new("'").unwrap();
        let (out, n, _) = re.replace_all(&hay, b"_");
        prop_assert_eq!(n, hay.iter().filter(|&&b| b == b'\'').count());
        prop_assert!(!out.contains(&b'\''));
        prop_assert_eq!(out.len(), hay.len());
    }

    #[test]
    fn is_match_consistent_with_find(
        hay in prop::collection::vec(32u8..127, 0..150),
    ) {
        for pat in ["[0-9]+", "<[a-z]+>", "a.c"] {
            let re = Regex::new(pat).unwrap();
            let (b, _) = re.is_match(&hay);
            let (m, _) = re.find_at(&hay, 0);
            prop_assert_eq!(b, m.is_some(), "pattern {}", pat);
        }
    }
}
