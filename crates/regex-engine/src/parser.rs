//! PCRE-subset pattern parser.
//!
//! Supports the constructs the paper's PHP workloads exercise: literals,
//! `.`, character classes (`[a-z0-9_]`, negation), escapes (`\d \w \s \D \W
//! \S` and control escapes), quantifiers (`* + ? {m} {m,} {m,n}`, greedy),
//! alternation, groups (capturing and `(?:...)` treated alike), and the
//! anchors `^` / `$`.

use std::fmt;

/// A set of byte ranges (inclusive), e.g. `[a-z0-9_]`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClassSet {
    ranges: Vec<(u8, u8)>,
}

impl ClassSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an inclusive range.
    pub fn push_range(&mut self, lo: u8, hi: u8) {
        assert!(lo <= hi, "invalid class range");
        self.ranges.push((lo, hi));
    }

    /// Adds a single byte.
    pub fn push_byte(&mut self, b: u8) {
        self.ranges.push((b, b));
    }

    /// Membership test.
    pub fn contains(&self, b: u8) -> bool {
        self.ranges.iter().any(|&(lo, hi)| lo <= b && b <= hi)
    }

    /// The complement set over all bytes.
    pub fn negated(&self) -> ClassSet {
        let mut out = ClassSet::new();
        let mut covered = [false; 256];
        for &(lo, hi) in &self.ranges {
            for b in lo..=hi {
                covered[b as usize] = true;
            }
        }
        let mut b = 0usize;
        while b < 256 {
            if !covered[b] {
                let start = b as u8;
                while b < 256 && !covered[b] {
                    b += 1;
                }
                out.push_range(start, (b - 1) as u8);
            } else {
                b += 1;
            }
        }
        out
    }

    /// The normalized ranges.
    pub fn ranges(&self) -> &[(u8, u8)] {
        &self.ranges
    }

    /// Iterates all member bytes.
    pub fn bytes(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..256)
            .map(|b| b as u8)
            .filter(move |&b| self.contains(b))
    }

    /// `\d`
    pub fn digit() -> Self {
        let mut c = Self::new();
        c.push_range(b'0', b'9');
        c
    }

    /// `\w`
    pub fn word() -> Self {
        let mut c = Self::new();
        c.push_range(b'a', b'z');
        c.push_range(b'A', b'Z');
        c.push_range(b'0', b'9');
        c.push_byte(b'_');
        c
    }

    /// `\s`
    pub fn space() -> Self {
        let mut c = Self::new();
        for b in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
            c.push_byte(b);
        }
        c
    }

    /// `.` (any byte except newline, PCRE default).
    pub fn dot() -> Self {
        let mut c = Self::new();
        c.push_byte(b'\n');
        c.negated()
    }
}

/// Parsed pattern AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single literal byte.
    Literal(u8),
    /// A byte class.
    Class(ClassSet),
    /// Concatenation.
    Concat(Vec<Ast>),
    /// Alternation.
    Alt(Vec<Ast>),
    /// Repetition `{min, max}` (max `None` = unbounded), greedy.
    Repeat {
        /// Repeated node.
        node: Box<Ast>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions, or unbounded.
        max: Option<u32>,
    },
    /// Group (capture index ignored — the engine reports whole-match spans).
    Group(Box<Ast>),
    /// `^` start-of-subject anchor.
    AnchorStart,
    /// `$` end-of-subject anchor.
    AnchorEnd,
}

/// Parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the pattern.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    pat: &'a [u8],
    pos: usize,
}

/// Parses a pattern into an [`Ast`].
///
/// # Errors
///
/// Returns [`ParseError`] on malformed patterns (unbalanced parens, bad
/// quantifiers, dangling escapes, empty groups with quantifiers, ...).
pub fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let mut p = Parser {
        pat: pattern.as_bytes(),
        pos: 0,
    };
    let ast = p.alternation()?;
    if p.pos != p.pat.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(ast)
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.pat.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alternation(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.concat()?];
        while self.eat(b'|') {
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Ast::Alt(branches)
        })
    }

    fn concat(&mut self) -> Result<Ast, ParseError> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().unwrap(),
            _ => Ast::Concat(parts),
        })
    }

    fn repeat(&mut self) -> Result<Ast, ParseError> {
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some(b'*') => {
                self.bump();
                (0, None)
            }
            Some(b'+') => {
                self.bump();
                (1, None)
            }
            Some(b'?') => {
                self.bump();
                (0, Some(1))
            }
            Some(b'{') => {
                let save = self.pos;
                match self.counted_repeat() {
                    Some(r) => r,
                    None => {
                        self.pos = save;
                        return Ok(atom);
                    }
                }
            }
            _ => return Ok(atom),
        };
        // Lazy modifier `?` after a quantifier: accepted, same DFA language.
        self.eat(b'?');
        if matches!(atom, Ast::AnchorStart | Ast::AnchorEnd) {
            return Err(self.err("quantifier on anchor"));
        }
        if let Some(m) = max {
            if m < min {
                return Err(self.err("repeat max < min"));
            }
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    fn counted_repeat(&mut self) -> Option<(u32, Option<u32>)> {
        // at '{'
        self.bump();
        let min = self.number()?;
        if self.eat(b'}') {
            return Some((min, Some(min)));
        }
        if !self.eat(b',') {
            return None;
        }
        if self.eat(b'}') {
            return Some((min, None));
        }
        let max = self.number()?;
        if !self.eat(b'}') {
            return None;
        }
        Some((min, Some(max)))
    }

    fn number(&mut self) -> Option<u32> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.pat[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    fn atom(&mut self) -> Result<Ast, ParseError> {
        match self
            .bump()
            .ok_or_else(|| self.err("unexpected end of pattern"))?
        {
            b'(' => {
                // Treat (?:...) and (?i)-less groups alike; reject lookaround
                // explicitly so callers know it is unsupported.
                if self.peek() == Some(b'?') {
                    let save = self.pos;
                    self.bump();
                    match self.peek() {
                        Some(b':') => {
                            self.bump();
                        }
                        Some(b'=') | Some(b'!') | Some(b'<') => {
                            return Err(self.err("lookaround is not supported"));
                        }
                        _ => self.pos = save,
                    }
                }
                let inner = self.alternation()?;
                if !self.eat(b')') {
                    return Err(self.err("missing closing paren"));
                }
                Ok(Ast::Group(Box::new(inner)))
            }
            b'[' => self.class(),
            b'.' => Ok(Ast::Class(ClassSet::dot())),
            b'^' => Ok(Ast::AnchorStart),
            b'$' => Ok(Ast::AnchorEnd),
            b'\\' => self.escape(),
            b'*' | b'+' | b'?' => Err(self.err("quantifier with nothing to repeat")),
            b')' => Err(self.err("unmatched closing paren")),
            lit => Ok(Ast::Literal(lit)),
        }
    }

    fn escape(&mut self) -> Result<Ast, ParseError> {
        let b = self.bump().ok_or_else(|| self.err("dangling escape"))?;
        Ok(match b {
            b'd' => Ast::Class(ClassSet::digit()),
            b'D' => Ast::Class(ClassSet::digit().negated()),
            b'w' => Ast::Class(ClassSet::word()),
            b'W' => Ast::Class(ClassSet::word().negated()),
            b's' => Ast::Class(ClassSet::space()),
            b'S' => Ast::Class(ClassSet::space().negated()),
            b'n' => Ast::Literal(b'\n'),
            b'r' => Ast::Literal(b'\r'),
            b't' => Ast::Literal(b'\t'),
            b'0' => Ast::Literal(0),
            b'x' => {
                let hi = self.hex_digit()?;
                let lo = self.hex_digit()?;
                Ast::Literal(hi * 16 + lo)
            }
            other => Ast::Literal(other),
        })
    }

    fn hex_digit(&mut self) -> Result<u8, ParseError> {
        let b = self
            .bump()
            .ok_or_else(|| self.err("truncated \\x escape"))?;
        (b as char)
            .to_digit(16)
            .map(|d| d as u8)
            .ok_or_else(|| self.err("bad hex digit"))
    }

    fn class(&mut self) -> Result<Ast, ParseError> {
        let negate = self.eat(b'^');
        let mut set = ClassSet::new();
        let mut first = true;
        loop {
            let b = self
                .bump()
                .ok_or_else(|| self.err("unterminated character class"))?;
            match b {
                b']' if !first => break,
                b'\\' => {
                    let e = self
                        .bump()
                        .ok_or_else(|| self.err("dangling escape in class"))?;
                    match e {
                        b'd' => set.ranges.extend_from_slice(ClassSet::digit().ranges()),
                        b'w' => set.ranges.extend_from_slice(ClassSet::word().ranges()),
                        b's' => set.ranges.extend_from_slice(ClassSet::space().ranges()),
                        b'n' => self.class_atom(&mut set, b'\n')?,
                        b'r' => self.class_atom(&mut set, b'\r')?,
                        b't' => self.class_atom(&mut set, b'\t')?,
                        other => self.class_atom(&mut set, other)?,
                    }
                }
                b => self.class_atom(&mut set, b)?,
            }
            first = false;
        }
        Ok(Ast::Class(if negate { set.negated() } else { set }))
    }

    /// Adds `lo` or the range `lo-hi` if a dash follows.
    fn class_atom(&mut self, set: &mut ClassSet, lo: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b'-') && self.pat.get(self.pos + 1).is_some_and(|&b| b != b']') {
            self.bump(); // '-'
            let hi = self.bump().ok_or_else(|| self.err("unterminated range"))?;
            let hi = if hi == b'\\' {
                self.bump()
                    .ok_or_else(|| self.err("dangling escape in range"))?
            } else {
                hi
            };
            if hi < lo {
                return Err(self.err("inverted class range"));
            }
            set.push_range(lo, hi);
        } else {
            set.push_byte(lo);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literals_and_concat() {
        let ast = parse("abc").unwrap();
        assert_eq!(
            ast,
            Ast::Concat(vec![
                Ast::Literal(b'a'),
                Ast::Literal(b'b'),
                Ast::Literal(b'c')
            ])
        );
    }

    #[test]
    fn parses_alternation_precedence() {
        let ast = parse("a|bc").unwrap();
        match ast {
            Ast::Alt(branches) => {
                assert_eq!(branches.len(), 2);
                assert_eq!(branches[0], Ast::Literal(b'a'));
            }
            other => panic!("expected Alt, got {other:?}"),
        }
    }

    #[test]
    fn parses_quantifiers() {
        assert!(matches!(
            parse("a*").unwrap(),
            Ast::Repeat {
                min: 0,
                max: None,
                ..
            }
        ));
        assert!(matches!(
            parse("a+").unwrap(),
            Ast::Repeat {
                min: 1,
                max: None,
                ..
            }
        ));
        assert!(matches!(
            parse("a?").unwrap(),
            Ast::Repeat {
                min: 0,
                max: Some(1),
                ..
            }
        ));
        assert!(matches!(
            parse("a{2,5}").unwrap(),
            Ast::Repeat {
                min: 2,
                max: Some(5),
                ..
            }
        ));
        assert!(matches!(
            parse("a{3}").unwrap(),
            Ast::Repeat {
                min: 3,
                max: Some(3),
                ..
            }
        ));
        assert!(matches!(
            parse("a{2,}").unwrap(),
            Ast::Repeat {
                min: 2,
                max: None,
                ..
            }
        ));
    }

    #[test]
    fn lazy_quantifier_accepted() {
        assert!(matches!(parse("a*?").unwrap(), Ast::Repeat { .. }));
    }

    #[test]
    fn brace_not_quantifier_is_literal() {
        // `{x}` is a literal sequence in PCRE when not a valid quantifier.
        let ast = parse("a{x}").unwrap();
        assert!(matches!(ast, Ast::Concat(_)));
    }

    #[test]
    fn parses_classes() {
        let ast = parse("[a-c0\\d]").unwrap();
        match ast {
            Ast::Class(set) => {
                assert!(set.contains(b'a'));
                assert!(set.contains(b'c'));
                assert!(set.contains(b'0'));
                assert!(set.contains(b'7'));
                assert!(!set.contains(b'd'));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negated_class() {
        let ast = parse("[^a]").unwrap();
        match ast {
            Ast::Class(set) => {
                assert!(!set.contains(b'a'));
                assert!(set.contains(b'b'));
                assert!(set.contains(0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn class_with_leading_bracket_and_dash() {
        let ast = parse("[]a-]").unwrap();
        match ast {
            Ast::Class(set) => {
                assert!(set.contains(b']'));
                assert!(set.contains(b'a'));
                assert!(set.contains(b'-'));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn anchors_and_groups() {
        let ast = parse("^(ab|c)$").unwrap();
        match ast {
            Ast::Concat(parts) => {
                assert_eq!(parts[0], Ast::AnchorStart);
                assert!(matches!(parts[1], Ast::Group(_)));
                assert_eq!(parts[2], Ast::AnchorEnd);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_capturing_group() {
        assert!(parse("(?:ab)+").is_ok());
    }

    #[test]
    fn lookaround_rejected() {
        assert!(parse("(?=a)").is_err());
        assert!(parse("(?<=a)b").is_err());
    }

    #[test]
    fn errors_reported() {
        assert!(parse("(ab").is_err());
        assert!(parse("ab)").is_err());
        assert!(parse("*a").is_err());
        assert!(parse("[a").is_err());
        assert!(parse("a{5,2}").is_err());
        assert!(parse("^*").is_err());
        assert!(parse("\\x1").is_err());
    }

    #[test]
    fn hex_escape() {
        assert_eq!(parse("\\x41").unwrap(), Ast::Literal(b'A'));
    }

    #[test]
    fn negated_negation_roundtrip() {
        let d = ClassSet::digit();
        let nn = d.negated().negated();
        for b in 0..=255u8 {
            assert_eq!(d.contains(b), nn.contains(b), "byte {b}");
        }
    }
}
