//! # regex-engine
//!
//! A from-scratch PCRE-subset regular-expression engine built for the
//! ISCA 2017 PHP-acceleration reproduction.
//!
//! The paper replaces PCRE library calls with `regexp_sieve` /
//! `regexp_shadow` APIs and a content-reuse table that stores *FSM states*
//! (§4.5, §4.6). That dictates the architecture here: patterns compile
//! through a Thompson NFA into a **lazy DFA with an explicit, resumable FSM
//! table** — execution is a pure function of `(state, remaining bytes)`, so
//! a stored state can be jumped into at any time.
//!
//! ```
//! use regex_engine::Regex;
//! let re = Regex::new("<[a-z]+>")?;
//! let (found, stats) = re.is_match(b"hello <em>world</em>");
//! assert!(found);
//! assert!(stats.bytes_scanned > 0);
//! # Ok::<(), regex_engine::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod dfa;
pub mod exec;
pub mod nfa;
pub mod parser;

pub use dfa::{DfaStateId, LazyDfa, RunOutcome};
pub use exec::{Match, Regex, ScanStats, SW_UOPS_PER_BYTE, SW_UOPS_PER_CALL};
pub use parser::{Ast, ClassSet, ParseError};
