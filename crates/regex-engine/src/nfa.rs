//! Thompson NFA construction.
//!
//! The NFA is the intermediate between the parsed [`crate::parser::Ast`]
//! and the lazy DFA whose FSM table the content-reuse accelerator jumps into.

use crate::parser::{Ast, ClassSet};

/// NFA state id.
pub type StateId = u32;

/// An NFA state.
#[derive(Debug, Clone, PartialEq)]
pub enum NfaState {
    /// Epsilon split to two successors.
    Split(StateId, StateId),
    /// Byte-class transition.
    Bytes {
        /// Accepted byte set.
        class: ClassSet,
        /// Successor.
        next: StateId,
    },
    /// End-of-input assertion (`$`): traversed only on the EOI symbol.
    AssertEnd(StateId),
    /// Accepting state.
    Match,
}

/// A compiled NFA.
#[derive(Debug, Clone)]
pub struct Nfa {
    states: Vec<NfaState>,
    start: StateId,
    /// Whether the pattern is anchored at the subject start (`^...`).
    anchored_start: bool,
}

/// Bound on repeat expansion to keep counted repeats from exploding.
const MAX_REPEAT: u32 = 256;

impl Nfa {
    /// Compiles an AST into an NFA.
    ///
    /// # Panics
    ///
    /// Panics if a counted repeat exceeds 256 iterations (a guard against
    /// pathological patterns; the workloads stay far below).
    pub fn compile(ast: &Ast) -> Nfa {
        let mut b = Builder { states: Vec::new() };
        let anchored_start = starts_with_anchor(ast);
        let frag = b.build(ast);
        let m = b.push(NfaState::Match);
        b.patch(frag.outs, m);
        Nfa {
            states: b.states,
            start: frag.start,
            anchored_start,
        }
    }

    /// The states.
    pub fn states(&self) -> &[NfaState] {
        &self.states
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Whether the pattern is `^`-anchored.
    pub fn anchored_start(&self) -> bool {
        self.anchored_start
    }

    /// Number of states (accelerator sizing / FSM table dimension input).
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the NFA is empty (never: there is always a Match state).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

fn starts_with_anchor(ast: &Ast) -> bool {
    match ast {
        Ast::AnchorStart => true,
        Ast::Concat(parts) => parts.first().is_some_and(starts_with_anchor),
        Ast::Group(inner) => starts_with_anchor(inner),
        Ast::Alt(branches) => branches.iter().all(starts_with_anchor),
        _ => false,
    }
}

/// A fragment: entry state + dangling out-edges to patch.
struct Frag {
    start: StateId,
    /// (state, which-slot) pairs whose successor is unfilled.
    outs: Vec<(StateId, u8)>,
}

struct Builder {
    states: Vec<NfaState>,
}

impl Builder {
    fn push(&mut self, s: NfaState) -> StateId {
        self.states.push(s);
        (self.states.len() - 1) as StateId
    }

    fn patch(&mut self, outs: Vec<(StateId, u8)>, target: StateId) {
        for (id, slot) in outs {
            match &mut self.states[id as usize] {
                NfaState::Split(a, b) => {
                    if slot == 0 {
                        *a = target;
                    } else {
                        *b = target;
                    }
                }
                NfaState::Bytes { next, .. } => *next = target,
                NfaState::AssertEnd(next) => *next = target,
                NfaState::Match => unreachable!("patching a match state"),
            }
        }
    }

    const DANGLING: StateId = u32::MAX;

    fn build(&mut self, ast: &Ast) -> Frag {
        match ast {
            Ast::Empty | Ast::AnchorStart => {
                // Anchor-start is handled by the DFA driver (anchored flag);
                // inside the graph it is an epsilon.
                let id = self.push(NfaState::Split(Self::DANGLING, Self::DANGLING));
                // Make it a straight-through epsilon: both slots same target.
                Frag {
                    start: id,
                    outs: vec![(id, 0), (id, 1)],
                }
            }
            Ast::AnchorEnd => {
                let id = self.push(NfaState::AssertEnd(Self::DANGLING));
                Frag {
                    start: id,
                    outs: vec![(id, 0)],
                }
            }
            Ast::Literal(b) => {
                let mut class = ClassSet::new();
                class.push_byte(*b);
                let id = self.push(NfaState::Bytes {
                    class,
                    next: Self::DANGLING,
                });
                Frag {
                    start: id,
                    outs: vec![(id, 0)],
                }
            }
            Ast::Class(set) => {
                let id = self.push(NfaState::Bytes {
                    class: set.clone(),
                    next: Self::DANGLING,
                });
                Frag {
                    start: id,
                    outs: vec![(id, 0)],
                }
            }
            Ast::Group(inner) => self.build(inner),
            Ast::Concat(parts) => {
                let mut iter = parts.iter();
                let mut frag = self.build(iter.next().expect("nonempty concat"));
                for part in iter {
                    let next = self.build(part);
                    self.patch(frag.outs, next.start);
                    frag.outs = next.outs;
                }
                frag
            }
            Ast::Alt(branches) => {
                let mut outs = Vec::new();
                let mut starts = Vec::new();
                for branch in branches {
                    let f = self.build(branch);
                    starts.push(f.start);
                    outs.extend(f.outs);
                }
                // Chain of splits fanning out to every branch start.
                let mut entry = *starts.last().unwrap();
                for &s in starts.iter().rev().skip(1) {
                    entry = self.push(NfaState::Split(s, entry));
                }
                Frag { start: entry, outs }
            }
            Ast::Repeat { node, min, max } => self.build_repeat(node, *min, *max),
        }
    }

    fn build_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>) -> Frag {
        assert!(
            min <= MAX_REPEAT && max.unwrap_or(0) <= MAX_REPEAT,
            "counted repeat too large (> {MAX_REPEAT})"
        );
        match (min, max) {
            (0, None) => {
                // star: split -> (node -> back to split) | out
                let split = self.push(NfaState::Split(Self::DANGLING, Self::DANGLING));
                let f = self.build(node);
                match &mut self.states[split as usize] {
                    NfaState::Split(a, _) => *a = f.start,
                    _ => unreachable!(),
                }
                self.patch(f.outs, split);
                Frag {
                    start: split,
                    outs: vec![(split, 1)],
                }
            }
            (min, None) => {
                // min copies then a star.
                let mut frag = self.build(node);
                for _ in 1..min {
                    let next = self.build(node);
                    self.patch(frag.outs, next.start);
                    frag.outs = next.outs;
                }
                let star = self.build_repeat(node, 0, None);
                self.patch(frag.outs, star.start);
                Frag {
                    start: frag.start,
                    outs: star.outs,
                }
            }
            (0, Some(0)) => self.build(&Ast::Empty),
            (min, Some(max)) => {
                // min mandatory copies + (max-min) optional copies.
                let mut start = None;
                let mut outs: Vec<(StateId, u8)> = Vec::new();
                for _ in 0..min {
                    let f = self.build(node);
                    if let Some(_s) = start {
                        self.patch(std::mem::take(&mut outs), f.start);
                    } else {
                        start = Some(f.start);
                    }
                    outs = f.outs;
                }
                for _ in min..max {
                    let split = self.push(NfaState::Split(Self::DANGLING, Self::DANGLING));
                    let f = self.build(node);
                    match &mut self.states[split as usize] {
                        NfaState::Split(a, _) => *a = f.start,
                        _ => unreachable!(),
                    }
                    if start.is_some() {
                        self.patch(std::mem::take(&mut outs), split);
                    } else {
                        start = Some(split);
                    }
                    outs = f.outs;
                    outs.push((split, 1));
                }
                Frag {
                    start: start.expect("repeat with max=0 handled above"),
                    outs,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn nfa(pat: &str) -> Nfa {
        Nfa::compile(&parse(pat).unwrap())
    }

    #[test]
    fn literal_chain_size() {
        let n = nfa("abc");
        // 3 byte states + 1 match.
        assert_eq!(n.len(), 4);
        assert!(!n.anchored_start());
    }

    #[test]
    fn anchored_detection() {
        assert!(nfa("^abc").anchored_start());
        assert!(nfa("^a|^b").anchored_start());
        assert!(!nfa("a|^b").anchored_start());
        assert!(!nfa("abc$").anchored_start());
    }

    #[test]
    fn star_structure() {
        let n = nfa("a*");
        // split + byte + match
        assert_eq!(n.len(), 3);
        assert!(matches!(
            n.states()[n.start() as usize],
            NfaState::Split(..)
        ));
    }

    #[test]
    fn counted_repeat_expands() {
        let n3 = nfa("a{3}");
        let n5 = nfa("a{5}");
        assert!(n5.len() > n3.len());
        let opt = nfa("a{1,3}");
        assert!(opt.len() > n3.len() - 1);
    }

    #[test]
    #[should_panic(expected = "counted repeat too large")]
    fn huge_repeat_panics() {
        nfa("a{999}");
    }

    #[test]
    fn assert_end_state_present() {
        let n = nfa("a$");
        assert!(n
            .states()
            .iter()
            .any(|s| matches!(s, NfaState::AssertEnd(_))));
    }
}
