//! Lazy-DFA (subset construction) with an explicit, resumable FSM table.
//!
//! The content-reuse accelerator (§4.5) stores "the state in the FSM table
//! that the regexp can advance to if the incoming content finds a match" and
//! later *jumps* to that state. That requires an engine whose execution is a
//! pure function of `(fsm_state, remaining input)` — which is exactly a DFA
//! over an FSM table. States are materialized lazily, like PCRE's and RE2's
//! hybrid engines.
//!
//! The alphabet has 257 symbols: 256 bytes plus an end-of-input (EOI) symbol
//! that drives `$` assertions.

use crate::nfa::{Nfa, NfaState, StateId};
use std::collections::HashMap;

/// DFA state id (index into the FSM table).
pub type DfaStateId = u32;

/// The EOI symbol index in the transition table.
pub const EOI: usize = 256;

/// Transition value: not yet computed.
const UNCOMPUTED: i32 = -2;
/// Transition value: dead (no NFA states survive).
const DEAD: i32 = -1;

/// Outcome of running the FSM over a byte slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Byte offset just past the last match seen (longest-match), if any.
    /// Offsets are relative to the start of the supplied slice.
    pub last_match_end: Option<usize>,
    /// State after consuming the whole slice (`None` if the run died).
    pub end_state: Option<DfaStateId>,
    /// Bytes actually consumed before dying or finishing.
    pub bytes_consumed: usize,
}

/// A lazily-built DFA.
#[derive(Debug, Clone)]
pub struct LazyDfa {
    nfa: Nfa,
    /// If true, the start-state closure is re-injected on every step,
    /// giving unanchored ("search") semantics.
    unanchored: bool,
    /// One row of 257 transitions per materialized state.
    table: Vec<[i32; 257]>,
    /// Match flag per materialized state.
    matches: Vec<bool>,
    /// NFA state set per materialized state (sorted).
    sets: Vec<Vec<StateId>>,
    /// Dedup map from NFA set to DFA id.
    ids: HashMap<Vec<StateId>, DfaStateId>,
    start: DfaStateId,
}

impl LazyDfa {
    /// Builds the (empty) DFA shell for `nfa`.
    ///
    /// `unanchored = true` gives search semantics (an implicit leading
    /// `.*?`); `false` gives anchored-at-position semantics, the mode whose
    /// state ids the content-reuse table stores.
    pub fn new(nfa: Nfa, unanchored: bool) -> Self {
        let mut dfa = LazyDfa {
            nfa,
            unanchored,
            table: Vec::new(),
            matches: Vec::new(),
            sets: Vec::new(),
            ids: HashMap::new(),
            start: 0,
        };
        let mut set = Vec::new();
        dfa.closure_into(dfa.nfa.start(), &mut set);
        set.sort_unstable();
        set.dedup();
        dfa.start = dfa.intern(set);
        dfa
    }

    /// Epsilon closure of `s` accumulated into `out` (unsorted, may dup).
    fn closure_into(&self, s: StateId, out: &mut Vec<StateId>) {
        // Iterative DFS over Split edges.
        let mut stack = vec![s];
        while let Some(id) = stack.pop() {
            if out.contains(&id) {
                continue;
            }
            out.push(id);
            if let NfaState::Split(a, b) = &self.nfa.states()[id as usize] {
                stack.push(*a);
                stack.push(*b);
            }
        }
    }

    fn intern(&mut self, set: Vec<StateId>) -> DfaStateId {
        if let Some(&id) = self.ids.get(&set) {
            return id;
        }
        let id = self.table.len() as DfaStateId;
        let is_match = set
            .iter()
            .any(|&s| matches!(self.nfa.states()[s as usize], NfaState::Match));
        self.table.push([UNCOMPUTED; 257]);
        self.matches.push(is_match);
        self.ids.insert(set.clone(), id);
        self.sets.push(set);
        id
    }

    /// The start state.
    pub fn start_state(&self) -> DfaStateId {
        self.start
    }

    /// Whether `state` is accepting.
    pub fn is_match(&self, state: DfaStateId) -> bool {
        self.matches[state as usize]
    }

    /// Number of states materialized so far (FSM table height).
    pub fn materialized_states(&self) -> usize {
        self.table.len()
    }

    /// Computes (or fetches) the transition `state --symbol--> next`.
    /// `symbol` is a byte value or [`EOI`]. Returns `None` for dead.
    pub fn transition(&mut self, state: DfaStateId, symbol: usize) -> Option<DfaStateId> {
        debug_assert!(symbol <= EOI);
        let cached = self.table[state as usize][symbol];
        if cached >= 0 {
            return Some(cached as DfaStateId);
        }
        if cached == DEAD {
            return None;
        }
        // Materialize.
        let mut next_set = Vec::new();
        let src = self.sets[state as usize].clone();
        for s in src {
            match &self.nfa.states()[s as usize] {
                NfaState::Bytes { class, next } if symbol < 256 && class.contains(symbol as u8) => {
                    self.closure_into(*next, &mut next_set);
                }
                NfaState::AssertEnd(next) if symbol == EOI => {
                    self.closure_into(*next, &mut next_set);
                }
                _ => {}
            }
        }
        if self.unanchored && symbol < 256 {
            // Re-inject the start closure: search semantics.
            let start_set = self.sets[self.start as usize].clone();
            next_set.extend(start_set);
        }
        if next_set.is_empty() {
            self.table[state as usize][symbol] = DEAD;
            return None;
        }
        next_set.sort_unstable();
        next_set.dedup();
        let id = self.intern(next_set);
        self.table[state as usize][symbol] = id as i32;
        Some(id)
    }

    /// Runs the FSM from `state` over `input`, tracking the longest match.
    ///
    /// `at_subject_end` says whether `input` ends the subject (so `$` can
    /// fire via EOI).
    pub fn run_from(
        &mut self,
        state: DfaStateId,
        input: &[u8],
        at_subject_end: bool,
    ) -> RunOutcome {
        let mut cur = state;
        let mut last_match_end = if self.is_match(cur) { Some(0) } else { None };
        for (i, &b) in input.iter().enumerate() {
            match self.transition(cur, b as usize) {
                Some(next) => {
                    cur = next;
                    if self.is_match(cur) {
                        last_match_end = Some(i + 1);
                    }
                }
                None => {
                    return RunOutcome {
                        last_match_end,
                        end_state: None,
                        bytes_consumed: i,
                    };
                }
            }
        }
        if at_subject_end {
            if let Some(next) = self.transition(cur, EOI) {
                if self.is_match(next) {
                    last_match_end = Some(input.len());
                }
            }
        }
        RunOutcome {
            last_match_end,
            end_state: Some(cur),
            bytes_consumed: input.len(),
        }
    }

    /// State reached after consuming `prefix` from the start (the value the
    /// content-reuse table stores in its *Next FSM State* field), or `None`
    /// if the FSM dies on the prefix.
    pub fn state_after(&mut self, prefix: &[u8]) -> Option<DfaStateId> {
        self.run_from(self.start, prefix, false).end_state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::parser::parse;

    fn dfa(pat: &str, unanchored: bool) -> LazyDfa {
        LazyDfa::new(Nfa::compile(&parse(pat).unwrap()), unanchored)
    }

    fn matches(pat: &str, input: &str) -> bool {
        let mut d = dfa(pat, true);
        let start = d.start_state();
        d.run_from(start, input.as_bytes(), true)
            .last_match_end
            .is_some()
    }

    #[test]
    fn literal_search() {
        assert!(matches("abc", "xxabcxx"));
        assert!(!matches("abc", "xxabxcx"));
    }

    #[test]
    fn classes_and_quantifiers() {
        assert!(matches("[0-9]+", "order 42"));
        assert!(!matches("[0-9]+", "no digits"));
        assert!(matches("a?b", "b"));
        assert!(matches("(ab)+", "xabab"));
        assert!(matches("a{2,3}", "caaad"));
        assert!(!matches("a{4}", "aaa"));
    }

    #[test]
    fn alternation() {
        assert!(matches("cat|dog", "hotdog"));
        assert!(matches("cat|dog", "catfish"));
        assert!(!matches("cat|dog", "bird"));
    }

    #[test]
    fn end_anchor_via_eoi() {
        assert!(matches("abc$", "xyzabc"));
        assert!(!matches("abc$", "abcxyz"));
        assert!(matches("^$", ""));
    }

    #[test]
    fn anchored_run_longest_match() {
        let mut d = dfa("a+", false);
        let start = d.start_state();
        let out = d.run_from(start, b"aaab", true);
        assert_eq!(out.last_match_end, Some(3));
        assert_eq!(out.end_state, None, "dies on 'b'");
        assert_eq!(out.bytes_consumed, 3);
    }

    #[test]
    fn resumable_state_after() {
        let mut d = dfa("https://[a-z]+/fi", false);
        let s = d.state_after(b"https://loc").unwrap();
        let out = d.run_from(s, b"alhost/fi", true);
        assert_eq!(out.last_match_end, Some(9));
        // Jumping to the stored state must equal running from scratch.
        let start = d.start_state();
        let full = d.run_from(start, b"https://localhost/fi", true);
        assert_eq!(full.last_match_end, Some(20));
    }

    #[test]
    fn dead_prefix_reports_none() {
        let mut d = dfa("abc", false);
        assert!(d.state_after(b"zz").is_none());
        assert!(d.state_after(b"ab").is_some());
    }

    #[test]
    fn lazy_materialization_grows_on_demand() {
        let mut d = dfa("[a-z]+[0-9]{2}", true);
        let before = d.materialized_states();
        let start = d.start_state();
        d.run_from(start, b"hello42 world99", true);
        assert!(d.materialized_states() > before);
    }

    #[test]
    fn unanchored_restarts_after_mismatch() {
        // "aab" then a fresh "ab..." occurrence later.
        assert!(matches("ab+c", "aab abx abbbc"));
    }
}
