//! Pattern analysis for the content-filtering accelerators.
//!
//! Content Sifting (§4.5) only helps shadow regexps that "look for special
//! characters" — if a pattern can match purely regular text, skipping
//! special-character-free segments would be unsound. [`requires_special`]
//! decides eligibility conservatively. [`literal_prefix`] extracts the
//! mandatory literal prefix used by the Content Reuse example (the
//! `https://localhost/?author=` prefix of Figure 13).

use crate::parser::{Ast, ClassSet};

/// The paper's regular-character set: `[A-Za-z0-9_.,-]` plus space. Every
/// other byte is *special*.
pub fn is_special_byte(b: u8) -> bool {
    !(b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b',' | b'-' | b' '))
}

/// Does every string matched by the pattern necessarily contain at least one
/// special character? (Sound skip condition for content sifting.)
///
/// Conservative: `false` means "cannot prove it", not "definitely no".
pub fn requires_special(ast: &Ast) -> bool {
    match ast {
        Ast::Empty | Ast::AnchorStart | Ast::AnchorEnd => false,
        Ast::Literal(b) => is_special_byte(*b),
        Ast::Class(set) => class_all_special(set),
        Ast::Group(inner) => requires_special(inner),
        Ast::Concat(parts) => parts.iter().any(requires_special),
        Ast::Alt(branches) => branches.iter().all(requires_special),
        Ast::Repeat { node, min, .. } => *min >= 1 && requires_special(node),
    }
}

fn class_all_special(set: &ClassSet) -> bool {
    let mut any = false;
    for b in set.bytes() {
        any = true;
        if !is_special_byte(b) {
            return false;
        }
    }
    any
}

/// The special characters a pattern *seeks*: special bytes that appear in a
/// mandatory position. Used for reporting (Figure 11 highlights them) and by
/// the sieve to build per-segment hints.
pub fn sought_special_chars(ast: &Ast) -> Vec<u8> {
    let mut out = Vec::new();
    collect_sought(ast, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

fn collect_sought(ast: &Ast, out: &mut Vec<u8>) {
    match ast {
        Ast::Literal(b) if is_special_byte(*b) => out.push(*b),
        Ast::Class(set) if class_all_special(set) => {
            out.extend(set.bytes());
        }
        Ast::Group(inner) => collect_sought(inner, out),
        Ast::Concat(parts) => {
            for p in parts {
                collect_sought(p, out);
            }
        }
        Ast::Alt(branches) => {
            for b in branches {
                collect_sought(b, out);
            }
        }
        Ast::Repeat { node, min, .. } if *min >= 1 => collect_sought(node, out),
        _ => {}
    }
}

/// Upper bound on the byte length of any match, or `None` when unbounded
/// (`*`/`+`/`{m,}`). The shadow scanner widens dirty-segment windows by
/// `max_match_len - 1` bytes so no boundary-spanning match is missed.
pub fn max_match_len(ast: &Ast) -> Option<usize> {
    match ast {
        Ast::Empty | Ast::AnchorStart | Ast::AnchorEnd => Some(0),
        Ast::Literal(_) | Ast::Class(_) => Some(1),
        Ast::Group(inner) => max_match_len(inner),
        Ast::Concat(parts) => {
            let mut total = 0usize;
            for p in parts {
                total = total.checked_add(max_match_len(p)?)?;
            }
            Some(total)
        }
        Ast::Alt(branches) => {
            let mut best = 0usize;
            for b in branches {
                best = best.max(max_match_len(b)?);
            }
            Some(best)
        }
        Ast::Repeat { node, max, .. } => {
            let m = (*max)? as usize;
            max_match_len(node)?.checked_mul(m)
        }
    }
}

/// The longest literal byte prefix every match must begin with (after an
/// optional `^`). Empty when the pattern starts with a class/alternation.
pub fn literal_prefix(ast: &Ast) -> Vec<u8> {
    let mut out = Vec::new();
    prefix_of(ast, &mut out);
    out
}

/// Appends to `out`; returns `true` if the node is "exact" (every match of
/// the node is exactly the appended literal, so scanning may continue).
fn prefix_of(ast: &Ast, out: &mut Vec<u8>) -> bool {
    match ast {
        Ast::Empty | Ast::AnchorStart => true,
        Ast::Literal(b) => {
            out.push(*b);
            true
        }
        Ast::Class(set) => {
            // Single-byte class behaves like a literal.
            let mut bytes = set.bytes();
            match (bytes.next(), bytes.next()) {
                (Some(b), None) => {
                    out.push(b);
                    true
                }
                _ => false,
            }
        }
        Ast::Group(inner) => prefix_of(inner, out),
        Ast::Concat(parts) => {
            for p in parts {
                if !prefix_of(p, out) {
                    return false;
                }
            }
            true
        }
        Ast::Repeat { node, min, max } => {
            if *min == 0 {
                return false;
            }
            let mut one = Vec::new();
            if !prefix_of(node, &mut one) {
                return false;
            }
            for _ in 0..*min {
                out.extend_from_slice(&one);
            }
            *max == Some(*min)
        }
        Ast::Alt(_) | Ast::AnchorEnd => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn req(p: &str) -> bool {
        requires_special(&parse(p).unwrap())
    }

    #[test]
    fn special_byte_class_matches_paper() {
        for b in b"ABZaz09_.,- ".iter() {
            assert!(!is_special_byte(*b), "{} should be regular", *b as char);
        }
        for b in b"'\"<>\n&;:/?!".iter() {
            assert!(is_special_byte(*b), "{} should be special", *b as char);
        }
    }

    #[test]
    fn figure11_style_patterns_require_special() {
        assert!(req("'")); // apostrophe seeker
        assert!(req("\"[^\"]*\"")); // double-quote pair
        assert!(req("\\n")); // newline
        assert!(req("<[a-z]+>")); // opening angle bracket
        assert!(req("'(s|t|ll)")); // contraction
    }

    #[test]
    fn plain_word_patterns_do_not() {
        assert!(!req("[a-z]+"));
        assert!(!req("abc"));
        assert!(!req("cat|dog"));
        assert!(!req("a'?b")); // apostrophe optional ⇒ not required
    }

    #[test]
    fn alternation_requires_all_branches() {
        assert!(req("'|\"")); // both special
        assert!(!req("'|a")); // one branch regular
    }

    #[test]
    fn concat_requires_any_part() {
        assert!(req("abc<def")); // '<' mandatory in the middle
        assert!(req("[a-z]+='")); // '=' and '\'' both special
    }

    #[test]
    fn sought_chars_reported() {
        let chars = sought_special_chars(&parse("'|\"|\\n|<").unwrap());
        assert_eq!(chars, vec![b'\n', b'"', b'\'', b'<']);
    }

    #[test]
    fn max_len_bounds() {
        let len = |p: &str| max_match_len(&parse(p).unwrap());
        assert_eq!(len("abc"), Some(3));
        assert_eq!(len("a|bcd"), Some(3));
        assert_eq!(len("a{2,5}"), Some(5));
        assert_eq!(len("a+"), None);
        assert_eq!(len("x*y"), None);
        assert_eq!(len("'(s|ll)?"), Some(3));
        assert_eq!(len("^a$"), Some(1));
    }

    #[test]
    fn literal_prefix_extraction() {
        assert_eq!(
            literal_prefix(&parse("https://localhost/\\?author=[a-z]+").unwrap()),
            b"https://localhost/?author=".to_vec()
        );
        assert_eq!(literal_prefix(&parse("^abc.*").unwrap()), b"abc".to_vec());
        assert_eq!(literal_prefix(&parse("[ab]x").unwrap()), b"".to_vec());
        assert_eq!(literal_prefix(&parse("a{3}b").unwrap()), b"aaab".to_vec());
        assert_eq!(literal_prefix(&parse("a+b").unwrap()), b"a".to_vec());
    }
}
