//! Match/search/replace drivers with byte-level cost accounting.
//!
//! Software regexp processing is "built around a character-at-a-time
//! sequential processing model that introduces high microarchitectural
//! costs" (§4.5). Every driver here reports how many bytes it actually
//! processed so the accelerator layer can quantify skipped work.

use crate::dfa::{DfaStateId, LazyDfa, RunOutcome};
use crate::nfa::Nfa;
use crate::parser::{parse, Ast, ParseError};
use std::sync::{Mutex, OnceLock};

/// µops charged per byte stepped through the software FSM (table load,
/// index arithmetic, branch).
pub const SW_UOPS_PER_BYTE: u64 = 6;
/// Fixed µop overhead per regexp call (PCRE setup, arg marshalling).
pub const SW_UOPS_PER_CALL: u64 = 45;

/// A match span (byte offsets into the subject).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Start offset (inclusive).
    pub start: usize,
    /// End offset (exclusive).
    pub end: usize,
}

impl Match {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the match is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Scan-cost report attached to every driver result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Bytes the FSM actually stepped through.
    pub bytes_scanned: u64,
    /// Simulated software µops ( [`SW_UOPS_PER_CALL`] + bytes × [`SW_UOPS_PER_BYTE`] ).
    pub uops: u64,
}

impl ScanStats {
    fn from_bytes(bytes: u64) -> Self {
        ScanStats {
            bytes_scanned: bytes,
            uops: SW_UOPS_PER_CALL + bytes * SW_UOPS_PER_BYTE,
        }
    }

    /// Component-wise sum.
    pub fn plus(self, other: ScanStats) -> ScanStats {
        ScanStats {
            bytes_scanned: self.bytes_scanned + other.bytes_scanned,
            uops: self.uops + other.uops,
        }
    }
}

/// A compiled regular expression.
///
/// Interior caches (the lazily materialized DFA and the first-byte
/// prefilter) sit behind a `Mutex`/`OnceLock`, so a compiled handle is
/// `Send + Sync` and can be shared across worker threads — analysis-time
/// precompiled patterns live in an `Arc`'d facts table that every worker
/// reads.
#[derive(Debug)]
pub struct Regex {
    pattern: String,
    ast: Ast,
    /// Anchored-at-position DFA (its state ids are the FSM-table states the
    /// content-reuse accelerator stores).
    anchored: Mutex<LazyDfa>,
    /// Whether the pattern began with `^`.
    anchored_start: bool,
    /// Lazily computed set of viable first bytes (prefilter).
    first_bytes: OnceLock<Box<[bool; 256]>>,
}

impl Clone for Regex {
    fn clone(&self) -> Regex {
        let cloned_first = OnceLock::new();
        if let Some(table) = self.first_bytes.get() {
            let _ = cloned_first.set(table.clone());
        }
        Regex {
            pattern: self.pattern.clone(),
            ast: self.ast.clone(),
            anchored: Mutex::new(self.dfa().clone()),
            anchored_start: self.anchored_start,
            first_bytes: cloned_first,
        }
    }
}

impl Regex {
    /// Compiles `pattern`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] for unsupported or malformed syntax.
    pub fn new(pattern: &str) -> Result<Regex, ParseError> {
        let ast = parse(pattern)?;
        let nfa = Nfa::compile(&ast);
        let anchored_start = nfa.anchored_start();
        Ok(Regex {
            pattern: pattern.to_owned(),
            ast,
            anchored: Mutex::new(LazyDfa::new(nfa, false)),
            anchored_start,
            first_bytes: OnceLock::new(),
        })
    }

    /// Locks the DFA cache (poisoning is tolerated: the cache is always in a
    /// consistent state between public calls, so a panicking thread cannot
    /// leave it half-written in a way later matches would observe).
    fn dfa(&self) -> std::sync::MutexGuard<'_, LazyDfa> {
        self.anchored.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// The parsed AST (used by [`crate::analysis`]).
    pub fn ast(&self) -> &Ast {
        &self.ast
    }

    /// Whether the pattern is `^`-anchored.
    pub fn anchored_start(&self) -> bool {
        self.anchored_start
    }

    fn first_byte_ok(&self, b: u8) -> bool {
        let table = self.first_bytes.get_or_init(|| {
            let mut table = Box::new([false; 256]);
            let mut dfa = self.dfa();
            let start = dfa.start_state();
            let start_is_match = dfa.is_match(start);
            for byte in 0..256usize {
                table[byte] = start_is_match || dfa.transition(start, byte).is_some();
            }
            table
        });
        table[b as usize]
    }

    /// The set of bytes that can begin a match (false ⇒ no match can start
    /// on that byte). Used by prefilters and by the shadow scanner's
    /// eligibility analysis.
    pub fn viable_first_bytes(&self) -> [bool; 256] {
        let mut out = [false; 256];
        for (b, slot) in out.iter_mut().enumerate() {
            *slot = self.first_byte_ok(b as u8);
        }
        out
    }

    /// Longest match starting exactly at `pos`. Also reports bytes scanned.
    pub fn match_at(&self, subject: &[u8], pos: usize) -> (Option<Match>, u64) {
        let mut dfa = self.dfa();
        let start = dfa.start_state();
        let out = dfa.run_from(start, &subject[pos..], true);
        let m = out.last_match_end.map(|end| Match {
            start: pos,
            end: pos + end,
        });
        (m, out.bytes_consumed as u64 + 1)
    }

    /// Leftmost-longest search starting at `from`.
    pub fn find_at(&self, subject: &[u8], from: usize) -> (Option<Match>, ScanStats) {
        let mut scanned = 0u64;
        if self.anchored_start {
            if from == 0 {
                let (m, b) = self.match_at(subject, 0);
                return (m, ScanStats::from_bytes(b));
            }
            return (None, ScanStats::from_bytes(0));
        }
        let mut pos = from;
        while pos <= subject.len() {
            // Prefilter: skip bytes that cannot start a match (cheap compare,
            // counted as a quarter of an FSM step).
            if pos < subject.len() && !self.first_byte_ok(subject[pos]) {
                scanned += 1;
                pos += 1;
                continue;
            }
            let (m, b) = self.match_at(subject, pos);
            scanned += b;
            if let Some(m) = m {
                return (Some(m), ScanStats::from_bytes(scanned));
            }
            pos += 1;
        }
        (None, ScanStats::from_bytes(scanned))
    }

    /// `preg_match`-style boolean search.
    pub fn is_match(&self, subject: &[u8]) -> (bool, ScanStats) {
        let (m, s) = self.find_at(subject, 0);
        (m.is_some(), s)
    }

    /// All non-overlapping matches.
    pub fn find_all(&self, subject: &[u8]) -> (Vec<Match>, ScanStats) {
        let mut out = Vec::new();
        let mut stats = ScanStats::default();
        let mut pos = 0;
        while pos <= subject.len() {
            let (m, s) = self.find_at(subject, pos);
            stats = stats.plus(s);
            match m {
                Some(m) => {
                    pos = if m.is_empty() { m.end + 1 } else { m.end };
                    out.push(m);
                    if self.anchored_start {
                        break;
                    }
                }
                None => break,
            }
        }
        (out, stats)
    }

    /// `preg_replace` with a literal replacement. Returns
    /// `(result, replacements, stats)`.
    pub fn replace_all(&self, subject: &[u8], replacement: &[u8]) -> (Vec<u8>, usize, ScanStats) {
        let (matches, stats) = self.find_all(subject);
        let mut out = Vec::with_capacity(subject.len());
        let mut last = 0;
        for m in &matches {
            out.extend_from_slice(&subject[last..m.start]);
            out.extend_from_slice(replacement);
            last = m.end;
        }
        out.extend_from_slice(&subject[last..]);
        (out, matches.len(), stats)
    }

    // -- FSM-table interface (content reuse, §4.5) ---------------------------

    /// The anchored FSM's start state.
    pub fn fsm_start(&self) -> DfaStateId {
        self.dfa().start_state()
    }

    /// FSM state after consuming `prefix` from the start (`None` if dead) —
    /// the value `regexset` stores in the reuse table.
    pub fn fsm_state_after(&self, prefix: &[u8]) -> Option<DfaStateId> {
        self.dfa().state_after(prefix)
    }

    /// Resumes the anchored FSM from a stored state over `rest`.
    pub fn fsm_run_from(&self, state: DfaStateId, rest: &[u8], at_end: bool) -> RunOutcome {
        self.dfa().run_from(state, rest, at_end)
    }

    /// Number of FSM states materialized (table footprint).
    pub fn fsm_states(&self) -> usize {
        self.dfa().materialized_states()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap()
    }

    #[test]
    fn find_leftmost_longest() {
        let r = re("a+");
        let (m, _) = r.find_at(b"xxaaayaa", 0);
        let m = m.unwrap();
        assert_eq!((m.start, m.end), (2, 5));
    }

    #[test]
    fn find_at_offset() {
        let r = re("ab");
        let (m, _) = r.find_at(b"ab ab", 1);
        assert_eq!(m.unwrap().start, 3);
    }

    #[test]
    fn anchored_start_only_matches_at_zero() {
        let r = re("^ab");
        assert!(r.find_at(b"abxx", 0).0.is_some());
        assert!(r.find_at(b"xxab", 0).0.is_none());
        assert!(r.find_at(b"ab", 1).0.is_none());
    }

    #[test]
    fn find_all_nonoverlapping() {
        let r = re("aa");
        let (ms, _) = r.find_all(b"aaaa");
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0], Match { start: 0, end: 2 });
        assert_eq!(ms[1], Match { start: 2, end: 4 });
    }

    #[test]
    fn replace_all_literal() {
        let r = re("'");
        let (out, n, _) = r.replace_all(b"it's bob's", b"&#8217;");
        assert_eq!(out, b"it&#8217;s bob&#8217;s");
        assert_eq!(n, 2);
    }

    #[test]
    fn replace_with_class_pattern() {
        let r = re("[0-9]+");
        let (out, n, _) = r.replace_all(b"a1b22c333", b"#");
        assert_eq!(out, b"a#b#c#");
        assert_eq!(n, 3);
    }

    #[test]
    fn empty_match_advances() {
        let r = re("x*");
        let (ms, _) = r.find_all(b"ab");
        assert!(!ms.is_empty()); // matches empty at positions; must terminate
    }

    #[test]
    fn scan_stats_scale_with_subject() {
        let r = re("zebra");
        let (_, small) = r.is_match(b"no match here");
        let big_subject = vec![b'a'; 10_000];
        let (_, big) = r.is_match(&big_subject);
        assert!(big.bytes_scanned > small.bytes_scanned * 10);
        assert!(big.uops > big.bytes_scanned); // per-call overhead included
    }

    #[test]
    fn prefilter_does_not_change_semantics() {
        let r = re("needle");
        let mut subject = vec![b'.'; 1000];
        subject.extend_from_slice(b"needle");
        let (m, _) = r.find_at(&subject, 0);
        assert_eq!(m.unwrap().start, 1000);
    }

    #[test]
    fn fsm_resume_equals_fresh_run() {
        let r = re("https://[a-z]+/\\?author=[a-z]+");
        let url = b"https://localhost/?author=abc";
        let split = 26; // "https://localhost/?author="
        let state = r.fsm_state_after(&url[..split]).unwrap();
        let resumed = r.fsm_run_from(state, &url[split..], true);
        let (full, _) = r.match_at(url, 0);
        assert_eq!(
            resumed.last_match_end.map(|e| e + split),
            full.map(|m| m.end)
        );
    }

    #[test]
    fn dollar_anchor_end() {
        let r = re("\\.php$");
        assert!(r.is_match(b"index.php").0);
        assert!(!r.is_match(b"index.php.bak").0);
    }

    #[test]
    fn regex_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Regex>();
    }

    #[test]
    fn shared_handle_matches_identically_across_threads() {
        let r = std::sync::Arc::new(re("wor[a-z]+"));
        let (expect, _) = r.find_at(b"hello world", 0);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || r.find_at(b"hello world", 0).0)
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expect);
        }
    }

    #[test]
    fn clone_preserves_materialized_caches() {
        let r = re("ab+c");
        assert!(r.is_match(b"xxabbc").0); // materialize DFA + prefilter
        let c = r.clone();
        assert_eq!(c.fsm_states(), r.fsm_states());
        assert!(c.is_match(b"xxabbc").0);
        assert_eq!(c.viable_first_bytes(), r.viable_first_bytes());
    }

    #[test]
    fn wordpress_texturize_style_patterns() {
        // The paper's Figure 11 patterns seek apostrophes, quotes, newlines,
        // and '<' — check representative simplified forms.
        let r = re("'(?:s|t|ll)");
        assert!(r.is_match(b"it's fine").0);
        let quotes = re("\"[^\"]*\"");
        let (m, _) = quotes.find_at(br#"say "hello" now"#, 0);
        assert_eq!(m.unwrap().len(), 7);
        let tag = re("<[a-z]+>");
        assert!(tag.is_match(b"a <b> c").0);
        assert!(!tag.is_match(b"a < b > c").0);
    }
}
