//! Circuit breakers under sustained overload: shedding must not make a
//! tripped breaker flap between open and half-open.
//!
//! Shed arrivals consume global request indices but never reach the
//! server, so they must not consult `allows()`, must not burn half-open
//! trials, and must not feed success/fault signals into any breaker. A
//! breaker tripped just before the overload window therefore waits out its
//! backoff untouched, gets exactly one half-open trial on the next
//! *admitted* request, and closes cleanly: one trip, one recovery, no
//! oscillation — deterministic across runs.

use phpaccel_core::{AccelId, PhpMachine};
use serve::{
    AdmissionConfig, AdmissionController, BreakerConfig, BreakerState, FaultKind, FaultPlan,
    OverloadConfig, OverloadReport, OverloadSim, PlannedFault, SandboxConfig, Server,
};
use workloads::{ArrivalConfig, ArrivalShape};

/// A handler that exercises the string accelerator every request, so an
/// injected `StringConfig` fault is detected by the request it lands on.
fn handler() -> impl FnMut(&mut PhpMachine, u64) -> Vec<u8> {
    |m: &mut PhpMachine, req: u64| {
        let s = m.transient_str(format!("  Breaker Probe {req} <b> "));
        let s = match s {
            php_runtime::PhpValue::Str(s) => s,
            _ => unreachable!(),
        };
        let t = m.trim(&s);
        let lower = m.strtolower(&t);
        let out = m.htmlspecialchars(&lower).as_bytes().to_vec();
        m.end_request();
        out
    }
}

/// Mean steady-state service µops of [`handler`] (warm requests only).
fn calibrate() -> u64 {
    let mut server = Server::new(
        PhpMachine::specialized(),
        BreakerConfig::default(),
        SandboxConfig::unlimited(),
    );
    let mut h = handler();
    let mut total = 0u64;
    let warm = 8u64;
    for i in 0..=warm {
        let before = server.machine().ctx().profiler().total_uops();
        server.serve(&mut h);
        let after = server.machine().ctx().profiler().total_uops();
        if i > 0 {
            total += after - before;
        }
        server.recover_between_requests();
    }
    total / warm
}

fn run_once(service: u64) -> OverloadReport {
    // Two string-config faults on consecutive early requests trip the Str
    // breaker (threshold 2) right as the 2× overload builds its queue.
    let plan = FaultPlan::new(vec![
        PlannedFault {
            at_request: 6,
            kind: FaultKind::StringConfig,
        },
        PlannedFault {
            at_request: 7,
            kind: FaultKind::StringConfig,
        },
    ]);
    let breaker_cfg = BreakerConfig {
        fault_threshold: 2,
        window: 50,
        base_backoff: 12,
        max_backoff: 48,
    };
    let server = Server::new(
        PhpMachine::specialized(),
        breaker_cfg,
        SandboxConfig::unlimited(),
    )
    .with_fault_plan(plan)
    .with_reference(PhpMachine::baseline());
    let controller = AdmissionController::new(AdmissionConfig {
        budget_uops: 6 * service,
        queue_capacity: 4,
        release_ratio: 0.5,
        service_prior_uops: 2 * service,
    });
    let mut sim = OverloadSim::new(OverloadConfig::default(), server, controller)
        .expect("valid overload config");
    // 2× offered load for the whole run: sustained overload, so shedding
    // stays engaged (with hysteresis cycles) while the breaker is open.
    let schedule = ArrivalConfig {
        shape: ArrivalShape::Steady,
        requests: 160,
        mean_gap_uops: service / 2,
        seed: 41,
    }
    .times();
    let mut h = handler();
    let report = sim.run(&schedule, &mut h);
    let b = sim.server().breaker(AccelId::Str);
    assert_eq!(b.trips, 1, "breaker must trip exactly once, not flap");
    assert_eq!(b.recoveries, 1, "one clean half-open trial, one recovery");
    assert_eq!(
        b.state(),
        BreakerState::Closed,
        "breaker must end closed despite sustained shedding"
    );
    report
}

#[test]
fn tripped_breaker_does_not_flap_while_shedding_is_active() {
    let service = calibrate();
    let report = run_once(service);

    assert!(
        report.stats.shed > 0,
        "the scenario must actually shed (2x offered load)"
    );
    assert!(
        report.admission.engages >= 1,
        "hysteresis shedding must have engaged"
    );
    // Shed arrivals never touched the machine or breakers: every admitted
    // request still served fine (the two fault requests degrade to the
    // software path and stay byte-identical, they do not fail).
    assert_eq!(report.stats.availability(), 1.0);
    assert_eq!(report.stats.mismatches, 0);
    assert!(report.stats.outcomes_partition_requests());
    // Degradation window: some requests ran with the Str domain degraded
    // while the breaker was open, and it was bounded (no endless backoff
    // doubling, which is what flapping would cause).
    let degraded = report.stats.degraded_requests[AccelId::Str.index()];
    assert!(degraded >= 1, "open window must degrade some requests");
    assert!(
        degraded < report.stats.requests - report.stats.shed,
        "degradation must end once the trial closes the breaker"
    );
}

#[test]
fn breaker_overload_interaction_is_deterministic() {
    let service = calibrate();
    let a = run_once(service);
    let b = run_once(service);
    assert_eq!(a.records, b.records, "same seed must replay identically");
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.admission, b.admission);
}
