//! Pool determinism: the same corpus and fault seed must produce the same
//! results at any worker count.
//!
//! Every worker executes scripts out of one shared, `Arc`-held
//! [`CorpusCache`] (parse + analyze once — the shared compile cache), on its
//! own private machine, with the global fault plan partitioned so each fault
//! fires on the worker that serves its request. In the pool's deterministic
//! mode (machines restored to a pristine request boundary between requests)
//! every request's result depends only on its global index, so sharding the
//! stream across 1, 2, 4, or 8 workers must change nothing observable:
//! byte-identical per-request responses, identical merged `StaticSavings`
//! and fault counters, and zero reference-replay mismatches.

use phpaccel_core::{AccelId, PhpMachine};
use serve::{FaultPlan, PoolConfig, PoolReport, WorkerPool};
use std::sync::Arc;
use workloads::php_corpus::CorpusCache;

const REQUESTS: u64 = 40;
const SEED: u64 = 20_170_613;

fn run_pool(cache: &Arc<CorpusCache>, workers: usize) -> PoolReport {
    let mut cfg = PoolConfig::deterministic(workers, REQUESTS);
    // Two faults per domain: enough to exercise detection on every shard
    // layout, few enough that no breaker reaches its trip threshold (which
    // would make degradation flags depend on the sharding).
    cfg.plan = FaultPlan::seeded(SEED, 2, 4, 36);
    let pool = WorkerPool::new(cfg);
    let cache = Arc::clone(cache);
    pool.run(
        |_| PhpMachine::specialized(),
        move |_w| {
            let cache = Arc::clone(&cache);
            move |m: &mut PhpMachine, req: u64| cache.script_for_request(req).run(m, true)
        },
    )
}

#[test]
fn pool_results_are_identical_at_any_worker_count() {
    let cache = Arc::new(CorpusCache::build());
    let reference = run_pool(&cache, 1);

    assert_eq!(reference.stats.requests, REQUESTS);
    assert_eq!(reference.stats.ok, REQUESTS);
    assert_eq!(reference.stats.mismatches, 0);
    assert!(reference.records.iter().all(|r| !r.response.is_empty()));
    assert!(
        reference.detected[AccelId::Str.index()] > 0,
        "the seeded plan must actually exercise fault detection"
    );
    assert!(reference.savings.total() > 0, "facts must be applied");

    for workers in [2usize, 4, 8] {
        let got = run_pool(&cache, workers);
        assert_eq!(got.stats, reference.stats, "{workers} workers: stats");
        assert_eq!(
            got.savings, reference.savings,
            "{workers} workers: merged StaticSavings"
        );
        assert_eq!(
            got.injected, reference.injected,
            "{workers} workers: injected faults"
        );
        assert_eq!(
            got.detected, reference.detected,
            "{workers} workers: detected faults"
        );
        assert_eq!(got.stats.mismatches, 0, "{workers} workers: replay");
        // Record-for-record equality covers response bytes, outcomes,
        // degradation flags, and per-request fault deltas at once.
        assert_eq!(
            got.records, reference.records,
            "{workers} workers: per-request records"
        );
    }
}
