//! Pool determinism: the same corpus and fault seed must produce the same
//! results at any worker count.
//!
//! Every worker executes scripts out of one shared, `Arc`-held
//! [`CorpusCache`] (parse + analyze once — the shared compile cache), on its
//! own private machine, with the global fault plan partitioned so each fault
//! fires on the worker that serves its request. In the pool's deterministic
//! mode (machines restored to a pristine request boundary between requests)
//! every request's result depends only on its global index, so sharding the
//! stream across 1, 2, 4, or 8 workers must change nothing observable:
//! byte-identical per-request responses, identical merged `StaticSavings`
//! and fault counters, and zero reference-replay mismatches.

use php_interp::MemoTier;
use phpaccel_core::{AccelId, Engine, PhpMachine};
use serve::{FaultPlan, MemoCache, PoolConfig, PoolReport, WorkerPool};
use std::sync::Arc;
use workloads::php_corpus::CorpusCache;

const REQUESTS: u64 = 40;
// Chosen so the seeded plan's string-config faults land on requests whose
// scripts actually drive the string accelerator (the corpus round-robin
// changed when the memo entries were added, which retired the old seed).
const SEED: u64 = 3;

fn run_pool_with(
    cache: &Arc<CorpusCache>,
    workers: usize,
    engine: Engine,
    arena: bool,
) -> PoolReport {
    let mut cfg = PoolConfig::deterministic(workers, REQUESTS).with_arena(arena);
    // Two faults per domain: enough to exercise detection on every shard
    // layout, few enough that no breaker reaches its trip threshold (which
    // would make degradation flags depend on the sharding).
    cfg.plan = FaultPlan::seeded(SEED, 2, 4, 36);
    let pool = WorkerPool::new(cfg);
    let cache = Arc::clone(cache);
    pool.run(
        move |_| {
            let mut m = PhpMachine::specialized();
            m.set_engine(engine);
            m
        },
        move |_w| {
            let cache = Arc::clone(&cache);
            move |m: &mut PhpMachine, req: u64| cache.script_for_request(req).run(m, true)
        },
    )
}

fn run_pool(cache: &Arc<CorpusCache>, workers: usize) -> PoolReport {
    run_pool_with(cache, workers, Engine::TreeWalk, false)
}

#[test]
fn pool_results_are_identical_at_any_worker_count() {
    let cache = Arc::new(CorpusCache::build());
    let reference = run_pool(&cache, 1);

    assert_eq!(reference.stats.requests, REQUESTS);
    assert_eq!(reference.stats.ok, REQUESTS);
    assert_eq!(reference.stats.mismatches, 0);
    assert!(reference.records.iter().all(|r| !r.response.is_empty()));
    assert!(
        reference.detected[AccelId::Str.index()] > 0,
        "the seeded plan must actually exercise fault detection"
    );
    assert!(reference.savings.total() > 0, "facts must be applied");

    for workers in [2usize, 4, 8] {
        let got = run_pool(&cache, workers);
        assert_eq!(got.stats, reference.stats, "{workers} workers: stats");
        assert_eq!(
            got.savings, reference.savings,
            "{workers} workers: merged StaticSavings"
        );
        assert_eq!(
            got.injected, reference.injected,
            "{workers} workers: injected faults"
        );
        assert_eq!(
            got.detected, reference.detected,
            "{workers} workers: detected faults"
        );
        assert_eq!(got.stats.mismatches, 0, "{workers} workers: replay");
        // Record-for-record equality covers response bytes, outcomes,
        // degradation flags, and per-request fault deltas at once.
        assert_eq!(
            got.records, reference.records,
            "{workers} workers: per-request records"
        );
    }
}

/// The same determinism guarantee on the compiled-VM engine, with arena
/// allocation on and the seeded fault plan live: sharding across 1/2/4/8
/// workers changes nothing, and every successful response replays
/// byte-identically on the all-software tree-walk reference machine (the
/// pool's reference machines stay on the default engine, so the replay
/// check here is *also* a cross-engine differential under fault injection).
#[test]
fn vm_pool_results_are_identical_at_any_worker_count() {
    let cache = Arc::new(CorpusCache::build());
    let reference = run_pool_with(&cache, 1, Engine::Vm, true);

    assert_eq!(reference.stats.requests, REQUESTS);
    assert_eq!(reference.stats.ok, REQUESTS);
    assert_eq!(
        reference.stats.mismatches, 0,
        "vm responses must replay byte-identically on the tree-walk reference"
    );
    assert!(reference.records.iter().all(|r| !r.response.is_empty()));
    assert!(
        reference.savings.vm_ops_executed > 0,
        "the vm engine must actually have executed opcodes"
    );
    assert!(
        reference.detected[AccelId::Str.index()] > 0,
        "the seeded plan must exercise fault detection under the vm too"
    );

    for workers in [2usize, 4, 8] {
        let got = run_pool_with(&cache, workers, Engine::Vm, true);
        assert_eq!(got.stats, reference.stats, "vm {workers} workers: stats");
        // `heap_classes_preseeded` is the one machine-count-dependent
        // counter: preseeding skips size classes that still hold free-list
        // inventory, and inventory history differs per machine under arena
        // mode (the tree-walk engine drifts identically, so it is excluded
        // here rather than papered over in the engine). Everything else —
        // including the VM's own op/fusion/transient counters — must merge
        // to the same totals at any worker count.
        let mut got_savings = got.savings;
        let mut ref_savings = reference.savings;
        got_savings.heap_classes_preseeded = 0;
        ref_savings.heap_classes_preseeded = 0;
        assert_eq!(
            got_savings, ref_savings,
            "vm {workers} workers: merged StaticSavings"
        );
        assert_eq!(
            got.injected, reference.injected,
            "vm {workers} workers: injected faults"
        );
        assert_eq!(
            got.detected, reference.detected,
            "vm {workers} workers: detected faults"
        );
        assert_eq!(got.stats.mismatches, 0, "vm {workers} workers: replay");
        assert_eq!(
            got.records, reference.records,
            "vm {workers} workers: per-request records"
        );
    }
}

/// Memo-on determinism: with a shared cross-request cache attached, hit/miss
/// splits depend on how workers interleave, but the served *bytes* cannot —
/// the tier stores only values-in-key-proven results, so a hit replays
/// exactly what recomputation would produce. Every memo-on response, at any
/// worker count and on either engine, must equal the memo-off reference
/// byte-for-byte and replay clean against the all-software reference.
#[test]
fn memo_pool_serves_identical_bytes_at_any_worker_count() {
    let cache = Arc::new(CorpusCache::build());
    let reference = run_pool(&cache, 1); // memo-off

    for engine in [Engine::TreeWalk, Engine::Vm] {
        for workers in [1usize, 4, 8] {
            let memo = Arc::new(MemoCache::default());
            let mut cfg = PoolConfig::deterministic(workers, REQUESTS).with_memo(Arc::clone(&memo));
            cfg.plan = FaultPlan::seeded(SEED, 2, 4, 36);
            let pool = WorkerPool::new(cfg);
            let scripts = Arc::clone(&cache);
            let tier: Arc<dyn MemoTier> = memo;
            let got = pool.run(
                move |_| {
                    let mut m = PhpMachine::specialized();
                    m.set_engine(engine);
                    m
                },
                move |_w| {
                    let scripts = Arc::clone(&scripts);
                    let tier = Arc::clone(&tier);
                    move |m: &mut PhpMachine, req: u64| {
                        scripts
                            .script_for_request(req)
                            .run_memo(m, true, Some(Arc::clone(&tier)))
                    }
                },
            );
            let label = format!("{engine:?} x{workers} memo-on");
            assert_eq!(got.stats.mismatches, 0, "{label}: reference replay");
            assert_eq!(got.stats.ok, REQUESTS, "{label}: outcomes");
            assert_eq!(got.records.len(), reference.records.len());
            for (g, r) in got.records.iter().zip(&reference.records) {
                assert_eq!(
                    g.response, r.response,
                    "{label}: request {} bytes diverged from memo-off",
                    r.request
                );
                assert_eq!(g.outcome, r.outcome, "{label}: request {}", r.request);
            }
            // The tier genuinely engaged: proven sites consulted it and the
            // cache-wide snapshot shows resident entries.
            assert!(
                got.stats.memo_hits + got.stats.memo_misses > 0,
                "{label}: no memoizable site executed"
            );
            assert!(got.stats.memo_hits > 0, "{label}: warm tier never replayed");
            let snapshot = got.memo.expect("configured cache is snapshotted");
            assert!(snapshot.stores > 0, "{label}: nothing was cached");
        }
    }
}

/// Engine choice is invisible to clients: a tree-walk pool and a VM pool
/// serving the same seeded stream produce byte-identical responses for
/// every request.
#[test]
fn vm_pool_serves_the_same_bytes_as_the_tree_walk_pool() {
    let cache = Arc::new(CorpusCache::build());
    let tree = run_pool_with(&cache, 4, Engine::TreeWalk, true);
    let vm = run_pool_with(&cache, 4, Engine::Vm, true);
    assert_eq!(tree.records.len(), vm.records.len());
    for (t, v) in tree.records.iter().zip(vm.records.iter()) {
        assert_eq!(
            t.response, v.response,
            "request {}: vm pool served different bytes",
            t.request
        );
        assert_eq!(t.outcome, v.outcome, "request {}: outcome", t.request);
    }
    assert_eq!(vm.live_blocks, 0, "vm pool leaked allocator blocks");
    assert_eq!(tree.live_blocks, 0, "tree pool leaked allocator blocks");
}
