//! Property tests: the HTTP parser never panics and always answers.
//!
//! The front end reads untrusted bytes off a socket, so the parser's
//! contract is total: for *any* input it must return a parsed request or a
//! classified error — and every error except clean EOF / transport failure
//! must carry a 4xx/5xx status the connection loop can answer before
//! closing. No input may panic.

use proptest::prelude::*;
use serve::http::HttpLimits;
use serve::{parse_request, HttpParseError};
use std::io::Cursor;

fn check(bytes: &[u8], limits: &HttpLimits) {
    match parse_request(&mut Cursor::new(bytes), limits) {
        Ok(req) => {
            // A parse that succeeds must have upheld its own invariants.
            assert!(!req.method.is_empty());
            assert!(req.target.starts_with('/'));
            assert!(req.body.len() <= limits.max_body);
        }
        Err(e) => match e.status() {
            // Answerable: must be a client/server error we can send.
            Some(status) => assert!((400..=599).contains(&status), "status {status}"),
            // Unanswerable is only legal for clean EOF or transport I/O.
            None => assert!(matches!(e, HttpParseError::Eof | HttpParseError::Io(_))),
        },
    }
}

proptest! {
    /// Raw byte soup: anything the network can deliver.
    #[test]
    fn never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u8..=255, 0..300),
    ) {
        check(&bytes, &HttpLimits::default());
    }

    /// Structured soup: near-miss request lines and headers, which reach
    /// much deeper into the parser than random bytes do.
    #[test]
    fn never_panics_on_near_miss_requests(
        method in "[A-Za-z0-9 %]{0,8}",
        target in "[/a-z%+?=& ]{0,24}",
        version in prop::sample::select(vec![
            "HTTP/1.1", "HTTP/1.0", "HTTP/2", "http/1.1", "", "HTTP/", "X",
        ]),
        headers in prop::collection::vec(("[a-zA-Z :%-]{0,16}", "[ -~]{0,16}"), 0..6),
        content_length in prop::sample::select(vec![
            None, Some("0"), Some("5"), Some("99999999"), Some("-1"), Some("abc"),
        ]),
        body in prop::collection::vec(0u8..=255, 0..40),
    ) {
        let mut raw = format!("{method} {target} {version}\r\n").into_bytes();
        for (name, value) in &headers {
            raw.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        if let Some(cl) = content_length {
            raw.extend_from_slice(format!("content-length: {cl}\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        raw.extend_from_slice(&body);
        check(&raw, &HttpLimits::default());
    }

    /// Tiny limits shift every boundary; the contract must hold there too.
    #[test]
    fn never_panics_under_tiny_limits(
        bytes in prop::collection::vec(0u8..=255, 0..120),
    ) {
        let limits = HttpLimits {
            max_request_line: 16,
            max_header_line: 12,
            max_headers: 2,
            max_body: 8,
        };
        check(&bytes, &limits);
    }
}
