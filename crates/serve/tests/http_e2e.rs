//! End-to-end loopback tests: HTTP is a transport, not a second path.
//!
//! The load-bearing property: a script served over `GET /run/<name>`
//! returns byte-identical responses to the same script served through a
//! direct [`Server`] with the same fault seeds — on both engines. The
//! front end adds sockets, parsing, middleware, a queue, and worker
//! threads, but the execution seam ([`Server::serve_indexed`]) is shared,
//! so nothing about the bytes may change.

use phpaccel_core::{Engine, PhpMachine};
use serve::http::blocking_get;
use serve::{
    parse_prometheus, BreakerConfig, FaultPlan, HttpConfig, HttpServer, SandboxConfig, Server,
};
use std::sync::Arc;
use workloads::php_corpus::CorpusCache;
use workloads::HttpClient;

/// Requests per run: three full cycles through the corpus.
const N: u64 = 36;
const FAULT_SEED: u64 = 11;

fn corpus() -> Arc<CorpusCache> {
    Arc::new(CorpusCache::build())
}

/// Serves requests `0..N` through a direct `Server` (reference replay +
/// reset between requests), returning `(status, body)` per request plus
/// the final `(ok, mismatches)` counters.
fn direct_run(
    corpus: &CorpusCache,
    engine: Engine,
    plan: FaultPlan,
) -> (Vec<(u16, Vec<u8>)>, u64, u64) {
    let mut machine = PhpMachine::specialized();
    machine.set_engine(engine);
    let mut server = Server::new(
        machine,
        BreakerConfig::default(),
        SandboxConfig::unlimited(),
    )
    .with_fault_plan(plan)
    .with_reference(PhpMachine::baseline());
    let mut out = Vec::new();
    for i in 0..N {
        let script = Arc::clone(corpus.script_for_request(i));
        let record = server.serve_indexed(i, &mut |m, _req| script.run_memo(m, true, None));
        out.push((record.outcome.status_code(), record.response));
        server.recover_between_requests();
    }
    (out, server.stats().ok, server.stats().mismatches)
}

/// Drives `0..N` serial GETs in corpus order (so HTTP's arrival-order
/// request numbering matches the direct run's indices) and compares every
/// response byte for byte.
fn assert_http_matches_direct(engine: Engine, workers: usize, plan: FaultPlan) {
    let corpus = corpus();
    let (expected, direct_ok, direct_mismatches) = direct_run(&corpus, engine, plan.clone());

    let mut cfg = HttpConfig::loopback(workers);
    cfg.engine = engine;
    cfg.plan = plan;
    let server = HttpServer::start(cfg, Arc::clone(&corpus)).expect("bind http front end");
    let addr = server.addr();

    // One keep-alive connection for the whole run.
    let mut client = HttpClient::connect(addr);
    for (i, (want_status, want_body)) in expected.iter().enumerate() {
        let name = corpus.script_for_request(i as u64).entry().name;
        let resp = client
            .get(&format!("/run/{name}"))
            .unwrap_or_else(|e| panic!("request {i} ({name}): {e}"));
        assert_eq!(
            resp.status, *want_status,
            "request {i} ({name}): status diverged from direct serving"
        );
        if *want_status == 200 {
            assert_eq!(
                resp.body, *want_body,
                "request {i} ({name}): body diverged from direct serving"
            );
        }
    }

    // Workers publish their snapshots after replying, so give the last
    // publish a moment before reading the merged metrics.
    let mut parsed = Vec::new();
    for _ in 0..100 {
        let (status, body) = blocking_get(addr, "/metrics").expect("scrape /metrics");
        assert_eq!(status, 200);
        parsed = parse_prometheus(std::str::from_utf8(&body).expect("utf-8 metrics"))
            .expect("well-formed prometheus text");
        let served = sample(&parsed, "phpaccel_requests_total");
        if served >= N as f64 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(sample(&parsed, "phpaccel_requests_total"), N as f64);
    assert_eq!(
        sample(&parsed, "phpaccel_requests_ok_total"),
        direct_ok as f64
    );
    assert_eq!(
        sample(&parsed, "phpaccel_replay_mismatches_total"),
        direct_mismatches as f64
    );
    assert_eq!(sample(&parsed, "phpaccel_shed_total"), 0.0);

    // The shutdown report must reconcile with both the metrics and the
    // direct run.
    let report = server.shutdown();
    assert_eq!(report.stats.requests, N);
    assert_eq!(report.stats.ok, direct_ok);
    assert_eq!(report.stats.mismatches, direct_mismatches);
    assert_eq!(report.front.shed_total(), 0);
    assert_eq!(
        report.access_log.len() as u64,
        N + report.front.metrics_requests
    );
}

/// First sample with the given exact name (no labels).
fn sample(parsed: &[(String, f64)], name: &str) -> f64 {
    parsed
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("{name} missing from /metrics"))
}

/// Single worker + seeded faults: the HTTP worker's `Server` sees the
/// exact request/fault/breaker sequence the direct run does, so every
/// byte — including through fault detection and degraded requests — must
/// match, on both engines.
#[test]
fn http_matches_direct_serving_with_faults_treewalk() {
    assert_http_matches_direct(Engine::TreeWalk, 1, FaultPlan::seeded(FAULT_SEED, 2, 4, N));
}

#[test]
fn http_matches_direct_serving_with_faults_vm() {
    assert_http_matches_direct(Engine::Vm, 1, FaultPlan::seeded(FAULT_SEED, 2, 4, N));
}

/// Two workers, no faults: with reset-between-requests the responses are
/// machine-history-independent, so dynamic worker assignment must not
/// change a single byte either.
#[test]
fn http_matches_direct_serving_two_workers_treewalk() {
    assert_http_matches_direct(Engine::TreeWalk, 2, FaultPlan::default());
}

#[test]
fn http_matches_direct_serving_two_workers_vm() {
    assert_http_matches_direct(Engine::Vm, 2, FaultPlan::default());
}

/// The operational endpoints and error paths around the hot path.
#[test]
fn health_errors_and_rate_limiting() {
    let corpus = corpus();
    let mut cfg = HttpConfig::loopback(1);
    // A two-token bucket that never refills: deterministic 429 on the
    // third request.
    cfg.rate_limit = Some((2, 0.0));
    let server = HttpServer::start(cfg, Arc::clone(&corpus)).expect("bind http front end");
    let addr = server.addr();

    let (status, body) = blocking_get(addr, "/health").expect("GET /health");
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));

    let (status, body) = blocking_get(addr, "/no/such/route").expect("GET 404");
    assert_eq!(status, 404);
    // ErrorPages filled the body.
    assert!(!body.is_empty());

    // Third request: out of tokens.
    let (status, _) = blocking_get(addr, "/health").expect("GET rate-limited");
    assert_eq!(status, 429);

    let report = server.shutdown();
    assert_eq!(report.front.rate_limited, 1);
    assert_eq!(report.front.health_requests, 1);
    assert_eq!(report.front.not_found, 1);

    let server = HttpServer::start(HttpConfig::loopback(1), corpus).expect("bind http front end");
    let addr = server.addr();

    // Method not allowed.
    {
        use std::io::{BufReader, Write};
        let stream = std::net::TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        writer
            .write_all(b"POST /health HTTP/1.1\r\nconnection: close\r\n\r\n")
            .expect("send POST");
        let (status, _) = serve::http::read_response(&mut reader).expect("read 405");
        assert_eq!(status, 405);
    }

    // A malformed request line is answered 400 and the connection closed.
    {
        use std::io::{BufReader, Read, Write};
        let stream = std::net::TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        writer.write_all(b"garbage\r\n\r\n").expect("send garbage");
        let (status, _) = serve::http::read_response(&mut reader).expect("read 400");
        assert_eq!(status, 400);
        // Closed: the next read hits EOF.
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).expect("drain");
        assert!(rest.is_empty());
    }

    let report = server.shutdown();
    assert_eq!(report.front.method_not_allowed, 1);
    assert_eq!(report.front.parse_errors, 1);
}
