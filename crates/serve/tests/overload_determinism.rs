//! Overload determinism: shaped arrivals, admission control, and shedding
//! must preserve the byte-identity replay guarantee — at any worker count,
//! on both engines, with fault injection live.
//!
//! The overload simulator executes admitted requests single-threaded in
//! arrival order, so worker count shifts *timing* (queue waits, shed
//! decisions) but never bytes: every admitted response must replay
//! byte-identically on the all-software tree-walk reference machine, and
//! an identical configuration must reproduce the entire report.

use phpaccel_core::{Engine, PhpMachine};
use serve::{
    AdmissionConfig, AdmissionController, BreakerConfig, FaultPlan, OverloadConfig, OverloadReport,
    OverloadSim, SandboxConfig, Server,
};
use std::sync::Arc;
use workloads::php_corpus::CorpusCache;
use workloads::{ArrivalConfig, ArrivalShape};

const SEED: u64 = 20_170_613;
const REQUESTS: usize = 48;

/// Steady-state mean and max service µops over one full corpus cycle.
fn calibrate(cache: &Arc<CorpusCache>, engine: Engine) -> (u64, u64) {
    let mut server = Server::new(
        machine(engine),
        BreakerConfig::default(),
        SandboxConfig::unlimited(),
    );
    let cache2 = Arc::clone(cache);
    let mut h = move |m: &mut PhpMachine, req: u64| cache2.script_for_request(req).run(m, true);
    let (mut total, mut max, mut n) = (0u64, 0u64, 0u64);
    for i in 0..(cache.len() as u64 + cache.len() as u64) {
        let before = server.machine().ctx().profiler().total_uops();
        server.serve(&mut h);
        let after = server.machine().ctx().profiler().total_uops();
        server.recover_between_requests();
        // Skip the first corpus cycle: cold caches, first-touch costs.
        if i >= cache.len() as u64 {
            let s = after - before;
            total += s;
            max = max.max(s);
            n += 1;
        }
    }
    (total / n.max(1), max)
}

fn machine(engine: Engine) -> PhpMachine {
    let mut m = PhpMachine::specialized();
    m.set_engine(engine);
    m
}

fn run_overload(
    cache: &Arc<CorpusCache>,
    engine: Engine,
    workers: usize,
    mean: u64,
    smax: u64,
) -> OverloadReport {
    let cfg = OverloadConfig {
        workers,
        warmup: 4,
        slo_windows: 10,
        reset_between_requests: true,
    };
    // Faults start after the warmup boundary (burn_in 4) and stay inside
    // the arrival span; two per domain exercises detection everywhere.
    let server = Server::new(
        machine(engine),
        BreakerConfig::default(),
        SandboxConfig::unlimited(),
    )
    .with_fault_plan(FaultPlan::seeded(SEED, 2, 4, REQUESTS as u64))
    .with_reference(PhpMachine::baseline());
    let controller = AdmissionController::new(AdmissionConfig {
        budget_uops: 3 * smax,
        queue_capacity: 4 * workers,
        release_ratio: 0.5,
        service_prior_uops: smax,
    });
    let mut sim = OverloadSim::new(cfg, server, controller).expect("valid overload config");
    // 2× offered load per worker-normalized capacity: gap = mean/(2·workers).
    let schedule = ArrivalConfig {
        shape: ArrivalShape::Burst,
        requests: REQUESTS,
        mean_gap_uops: (mean / (2 * workers as u64)).max(1),
        seed: SEED,
    }
    .times();
    let cache2 = Arc::clone(cache);
    let mut h = move |m: &mut PhpMachine, req: u64| cache2.script_for_request(req).run(m, true);
    sim.run(&schedule, &mut h)
}

#[test]
fn overload_replays_identically_and_byte_checks_at_any_worker_count() {
    let cache = Arc::new(CorpusCache::build());
    let (mean, smax) = calibrate(&cache, Engine::TreeWalk);
    for workers in [1usize, 4, 8] {
        let a = run_overload(&cache, Engine::TreeWalk, workers, mean, smax);
        let b = run_overload(&cache, Engine::TreeWalk, workers, mean, smax);
        assert_eq!(a.records, b.records, "{workers} workers: replay drifted");
        assert_eq!(a.stats, b.stats, "{workers} workers: stats drifted");
        assert_eq!(a.admission, b.admission, "{workers} workers: admission");
        assert_eq!(a.windows, b.windows, "{workers} workers: SLO windows");
        assert_eq!(
            a.stats.mismatches, 0,
            "{workers} workers: admitted responses must replay byte-identically"
        );
        assert!(a.stats.outcomes_partition_requests(), "{workers} workers");
        assert_eq!(a.stats.requests, REQUESTS as u64, "{workers} workers");
    }
}

/// Same guarantee on the compiled-VM engine: the primaries run `Engine::Vm`
/// while the reference machine stays on the tree-walk path, so zero
/// mismatches is also a cross-engine differential under overload, shedding,
/// and fault injection at once.
#[test]
fn vm_overload_replays_identically_and_byte_checks() {
    let cache = Arc::new(CorpusCache::build());
    let (mean, smax) = calibrate(&cache, Engine::Vm);
    for workers in [1usize, 4] {
        let a = run_overload(&cache, Engine::Vm, workers, mean, smax);
        let b = run_overload(&cache, Engine::Vm, workers, mean, smax);
        assert_eq!(a.records, b.records, "vm {workers} workers: replay");
        assert_eq!(a.stats, b.stats, "vm {workers} workers: stats");
        assert_eq!(
            a.stats.mismatches, 0,
            "vm {workers} workers: cross-engine byte identity must hold"
        );
        assert!(
            a.stats.outcomes_partition_requests(),
            "vm {workers} workers"
        );
    }
}

/// Worker count is a pure capacity knob: at the same offered load, more
/// workers shed no more than fewer workers, and at 2× one worker must shed.
#[test]
fn worker_count_scales_shedding_down() {
    let cache = Arc::new(CorpusCache::build());
    let (mean, smax) = calibrate(&cache, Engine::TreeWalk);
    // Fixed absolute load (gap for 1 worker at 2×) with varying capacity.
    let run_fixed = |workers: usize| {
        let server = Server::new(
            machine(Engine::TreeWalk),
            BreakerConfig::default(),
            SandboxConfig::unlimited(),
        )
        .with_reference(PhpMachine::baseline());
        let controller = AdmissionController::new(AdmissionConfig {
            budget_uops: 3 * smax,
            queue_capacity: 4 * workers,
            release_ratio: 0.5,
            service_prior_uops: smax,
        });
        let mut sim = OverloadSim::new(
            OverloadConfig {
                workers,
                ..OverloadConfig::default()
            },
            server,
            controller,
        )
        .expect("valid overload config");
        let schedule = ArrivalConfig {
            shape: ArrivalShape::Steady,
            requests: REQUESTS,
            mean_gap_uops: (mean / 2).max(1),
            seed: SEED,
        }
        .times();
        let cache2 = Arc::clone(&cache);
        let mut h = move |m: &mut PhpMachine, req: u64| cache2.script_for_request(req).run(m, true);
        sim.run(&schedule, &mut h)
    };
    let one = run_fixed(1);
    let eight = run_fixed(8);
    assert!(one.stats.shed > 0, "2x load on one worker must shed");
    assert!(
        eight.stats.shed < one.stats.shed,
        "8 workers must shed less than 1 ({} vs {})",
        eight.stats.shed,
        one.stats.shed
    );
    assert_eq!(one.stats.mismatches + eight.stats.mismatches, 0);
}
