//! Per-request sandbox: execution budgets, a memory ceiling, and panic
//! isolation.
//!
//! The sandbox arms the interpreter's step fuel, a µop deadline measured
//! against the machine profiler, and the slab allocator's memory limit, then
//! runs the handler under `catch_unwind`. Whatever happens, the budgets are
//! disarmed afterwards and — on any abnormal exit — the machine's invariants
//! are restored with [`PhpMachine::recover_request`] before the outcome is
//! reported, so the next request starts from a consistent machine.

use crate::outcome::{classify_panic, panic_message, RequestOutcome};
use phpaccel_core::PhpMachine;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Resource budgets for one request. `None` means unmetered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SandboxConfig {
    /// Interpreter step budget (AST nodes visited).
    pub fuel: Option<u64>,
    /// µop budget, measured as profiler growth during the request.
    pub uop_budget: Option<u64>,
    /// Allocator ceiling in bytes of live heap data.
    pub memory_limit: Option<u64>,
}

impl SandboxConfig {
    /// A sandbox with no limits (panic isolation only).
    pub fn unlimited() -> Self {
        SandboxConfig::default()
    }
}

/// Runs `f` against `machine` inside the sandbox and reports how it ended.
/// On any outcome other than [`RequestOutcome::Ok`] the machine has already
/// been recovered (request-scoped frees, `hmflush`, hash-table invalidate,
/// string/regexp engine reset) and is safe to reuse.
pub fn run_sandboxed(
    machine: &mut PhpMachine,
    cfg: SandboxConfig,
    f: impl FnOnce(&mut PhpMachine),
) -> RequestOutcome {
    machine.ctx().set_fuel(cfg.fuel);
    let deadline = cfg
        .uop_budget
        .map(|b| machine.ctx().profiler().total_uops().saturating_add(b));
    machine.ctx().set_uop_deadline(deadline);
    machine
        .ctx()
        .with_allocator(|a| a.set_memory_limit(cfg.memory_limit));

    let caught = catch_unwind(AssertUnwindSafe(|| f(machine)));

    machine.ctx().set_fuel(None);
    machine.ctx().set_uop_deadline(None);
    machine.ctx().with_allocator(|a| a.set_memory_limit(None));

    match caught {
        Ok(()) => RequestOutcome::Ok,
        Err(payload) => {
            let message = panic_message(payload.as_ref());
            machine.recover_request();
            classify_panic(message)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_interp::Interp;

    /// Runs `src` through the interpreter, panicking (like a workload's
    /// `.expect`) if the template errors — that panic carries the
    /// RuntimeError text the classifier keys on.
    fn run_template(m: &mut PhpMachine, src: &str) {
        let mut interp = Interp::new(m);
        interp.run(src).expect("template run failed");
        m.end_request();
    }

    fn silenced<T>(f: impl FnOnce() -> T) -> T {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn normal_request_is_ok_and_budgets_disarm() {
        let mut m = PhpMachine::specialized();
        let cfg = SandboxConfig {
            fuel: Some(100_000),
            uop_budget: Some(10_000_000),
            memory_limit: Some(64 << 20),
        };
        let out = run_sandboxed(&mut m, cfg, |m| run_template(m, "$x = 1 + 2; echo $x;"));
        assert_eq!(out, RequestOutcome::Ok);
        assert_eq!(m.ctx().fuel_remaining(), None, "fuel must disarm");
        assert_eq!(m.ctx().uop_deadline(), None, "deadline must disarm");
    }

    #[test]
    fn infinite_loop_times_out_cleanly() {
        let mut m = PhpMachine::specialized();
        let cfg = SandboxConfig {
            fuel: Some(500),
            ..SandboxConfig::default()
        };
        let out = silenced(|| {
            run_sandboxed(&mut m, cfg, |m| {
                run_template(m, "$i = 0; while (true) { $i = $i + 1; }")
            })
        });
        assert_eq!(out, RequestOutcome::Timeout);
        assert_eq!(out.status_code(), 504);
        // Machine recovered: serve a normal request right after.
        let out = run_sandboxed(&mut m, SandboxConfig::unlimited(), |m| {
            run_template(m, "echo 'ok';")
        });
        assert_eq!(out, RequestOutcome::Ok);
    }

    #[test]
    fn memory_hog_is_oom_killed() {
        let mut m = PhpMachine::specialized();
        let cfg = SandboxConfig {
            memory_limit: Some(4096),
            ..SandboxConfig::default()
        };
        let out = silenced(|| {
            run_sandboxed(&mut m, cfg, |m| {
                // Each array literal takes a request-scoped heap block, so
                // live bytes climb until the ceiling trips.
                run_template(m, "$i = 0; while ($i < 1000) { $a = []; $i = $i + 1; }")
            })
        });
        assert_eq!(out, RequestOutcome::OomKilled);
        assert_eq!(m.ctx().with_allocator(|a| a.live_block_count()), 0);
    }

    #[test]
    fn arbitrary_panic_is_isolated() {
        let mut m = PhpMachine::specialized();
        let out = silenced(|| {
            run_sandboxed(&mut m, SandboxConfig::unlimited(), |_| {
                panic!("handler bug: index out of bounds");
            })
        });
        match out {
            RequestOutcome::Panicked { message } => {
                assert!(message.contains("index out of bounds"))
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }
}
