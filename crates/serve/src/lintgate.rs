//! Optional static-analysis admission gate for scripts.
//!
//! The robustness layer sandboxes *runtime* misbehavior; the lint gate
//! refuses known-bad scripts before they ever reach the sandbox. A
//! [`LintGate`] parses and analyzes a script source and rejects it when the
//! interprocedural analysis raises a lint of a gated kind — by default the
//! taint lint, i.e. request input reaching an echo/regex/hash sink without
//! passing a sanitizer. An allowlist of substrings mirrors
//! `scripts/taint-allowlist.txt` for intentionally-dirty scripts.

use php_analysis::report::parse_allowlist;
use php_analysis::{analyze, Lint, LintKind};
use php_interp::parse;

/// What the gate rejects and what it forgives.
#[derive(Debug, Clone)]
pub struct LintGateConfig {
    /// Lint kinds that block admission.
    pub reject_kinds: Vec<LintKind>,
    /// Substrings that excuse an otherwise-blocking lint.
    pub allowlist: Vec<String>,
}

impl Default for LintGateConfig {
    fn default() -> Self {
        LintGateConfig {
            reject_kinds: vec![LintKind::TaintedSink],
            allowlist: Vec::new(),
        }
    }
}

impl LintGateConfig {
    /// Builds a config rejecting the kinds named in the lint registry
    /// ([`LintKind::from_name`]); an unknown name is an error rather than a
    /// silently-inert gate.
    pub fn reject_named<'a>(
        names: impl IntoIterator<Item = &'a str>,
    ) -> Result<LintGateConfig, String> {
        let mut reject_kinds = Vec::new();
        for name in names {
            let kind = LintKind::from_name(name)
                .ok_or_else(|| format!("unknown lint kind {name:?} (see LintKind::ALL)"))?;
            reject_kinds.push(kind);
        }
        Ok(LintGateConfig {
            reject_kinds,
            allowlist: Vec::new(),
        })
    }

    /// Loads the allowlist from file text in the `scripts/taint-allowlist.txt`
    /// format, validating `[kind]` prefixes against the registry.
    pub fn with_allowlist_text(mut self, text: &str) -> Result<LintGateConfig, String> {
        self.allowlist = parse_allowlist(text)?;
        Ok(self)
    }
}

/// Why a script was refused.
#[derive(Debug, Clone)]
pub enum GateRejection {
    /// The script does not parse at all.
    Parse(String),
    /// Blocking lints not covered by the allowlist.
    Lints(Vec<Lint>),
}

/// Admission counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateStats {
    /// Scripts checked.
    pub checked: u64,
    /// Scripts admitted.
    pub admitted: u64,
    /// Scripts rejected (parse failure or blocking lints).
    pub rejected: u64,
}

/// The admission gate itself.
#[derive(Debug, Default)]
pub struct LintGate {
    cfg: LintGateConfig,
    stats: GateStats,
}

impl LintGate {
    /// Creates a gate with the given policy.
    pub fn new(cfg: LintGateConfig) -> Self {
        LintGate {
            cfg,
            stats: GateStats::default(),
        }
    }

    /// Checks one script source. `Ok(())` admits it; `Err` explains the
    /// refusal. Analysis facts are discarded — the gate only wants lints,
    /// and real deployments re-analyze against the interpreter's own shared
    /// function instances (see `workloads::php_corpus::prepare`).
    pub fn admit(&mut self, source: &str) -> Result<(), GateRejection> {
        self.stats.checked += 1;
        let prog = match parse(source) {
            Ok(p) => p,
            Err(e) => {
                self.stats.rejected += 1;
                return Err(GateRejection::Parse(format!("{e:?}")));
            }
        };
        let analysis = analyze(&prog);
        let blocking: Vec<Lint> = analysis
            .report
            .lints
            .into_iter()
            .filter(|l| self.cfg.reject_kinds.contains(&l.kind))
            .filter(|l| {
                let line = l.to_string();
                !self.cfg.allowlist.iter().any(|a| line.contains(a.as_str()))
            })
            .collect();
        if blocking.is_empty() {
            self.stats.admitted += 1;
            Ok(())
        } else {
            self.stats.rejected += 1;
            Err(GateRejection::Lints(blocking))
        }
    }

    /// Admission counters so far.
    pub fn stats(&self) -> GateStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::php_corpus;

    fn entry_source(name: &str) -> &'static str {
        php_corpus::ENTRIES
            .iter()
            .find(|e| e.name == name)
            .unwrap()
            .source
    }

    #[test]
    fn tainted_script_is_rejected_and_counted() {
        let mut gate = LintGate::default();
        match gate.admit(entry_source("search-echo")) {
            Err(GateRejection::Lints(lints)) => {
                assert!(lints.iter().all(|l| l.kind == LintKind::TaintedSink));
                assert!(lints[0].to_string().contains("($q)"), "{lints:?}");
            }
            other => panic!("expected taint rejection, got {other:?}"),
        }
        assert_eq!(
            gate.stats(),
            GateStats {
                checked: 1,
                admitted: 0,
                rejected: 1
            }
        );
    }

    #[test]
    fn sanitized_and_computational_scripts_are_admitted() {
        let mut gate = LintGate::default();
        // search-echo's sanitized sibling: everything echoed goes through
        // htmlspecialchars first.
        gate.admit("$q = htmlspecialchars($title); echo $q;")
            .expect("sanitized echo is clean");
        gate.admit(entry_source("price-helpers"))
            .expect("no request input at all");
        assert_eq!(gate.stats().admitted, 2);
    }

    #[test]
    fn allowlist_excuses_intentional_taint() {
        let mut gate = LintGate::new(LintGateConfig {
            allowlist: vec!["($q)".into()],
            ..LintGateConfig::default()
        });
        gate.admit(entry_source("search-echo"))
            .expect("allowlisted taint admits");
    }

    #[test]
    fn registry_names_configure_the_gate() {
        let cfg = LintGateConfig::reject_named(["nondeterministic-cacheable"]).unwrap();
        let mut gate = LintGate::new(cfg);
        match gate.admit("function tok() { return rand(1, 100); }\necho tok();") {
            Err(GateRejection::Lints(lints)) => {
                assert!(lints
                    .iter()
                    .all(|l| l.kind == LintKind::NondeterministicCacheable));
            }
            other => panic!("expected nondet-cacheable rejection, got {other:?}"),
        }
        assert!(
            LintGateConfig::reject_named(["no-such-kind"]).is_err(),
            "unknown names must not build a silently-inert gate"
        );
    }

    #[test]
    fn allowlist_text_goes_through_the_registry_parser() {
        let cfg = LintGateConfig::default()
            .with_allowlist_text("# intentional demo\n($q)\n")
            .unwrap();
        let mut gate = LintGate::new(cfg);
        gate.admit(entry_source("search-echo"))
            .expect("allowlisted taint admits");
        assert!(LintGateConfig::default()
            .with_allowlist_text("[typo-kind] whatever")
            .is_err());
    }

    #[test]
    fn parse_failures_are_rejections_not_panics() {
        let mut gate = LintGate::default();
        assert!(matches!(
            gate.admit("function {{{"),
            Err(GateRejection::Parse(_))
        ));
        assert_eq!(gate.stats().rejected, 1);
    }
}
