//! Fault-tolerant request serving.
//!
//! This crate wraps a [`phpaccel_core::PhpMachine`] in the robustness layer
//! a production server needs around accelerated PHP processing:
//!
//! * **Sandboxing** ([`sandbox`]): per-request step fuel, a µop deadline,
//!   and a memory ceiling; panics are caught, classified
//!   ([`RequestOutcome`]), and followed by full machine recovery.
//! * **Fault injection** ([`fault`]): deterministic, seeded schedules of
//!   the hardware failure modes the accelerators detect — hash-table
//!   entry/RTT corruption (§4.2), heap free-list poisoning (§4.3), string
//!   config-register faults (§4.4), regexp reuse-entry and hint-vector bit
//!   flips (§4.5/§4.6) — plus allocator exhaustion.
//! * **Circuit breakers** ([`breaker`]): per-accelerator trip/backoff/
//!   half-open state machines keyed on the request index, so a faulting
//!   unit degrades to the software path and is retried later.
//! * **The server loop** ([`server`]): ties the above together and can
//!   byte-compare every successful response against an all-software
//!   reference machine, making the degradation guarantee testable.
//! * **The worker pool** ([`pool`]): shards a request stream across N
//!   workers, each with a private machine (per-core accelerator state), its
//!   own fault-plan slice, and its own breakers; pool statistics are the
//!   lossless sum of the workers'.
//! * **The shared memo cache** ([`memo`]): the sharded, bucket-locked
//!   [`php_interp::MemoTier`] pool workers share — call results the effect
//!   analysis proved cross-request memoizable are computed once and replayed
//!   on every worker, APCu-style.
//! * **Admission control** ([`admission`]) and **the overload simulator**
//!   ([`overload`]): a bounded queue in front of the workers whose
//!   controller sheds arrivals ([`RequestOutcome::Shed`], 503) when the
//!   predicted queue wait would blow the latency budget — with hysteresis —
//!   so offered load above capacity degrades gracefully instead of
//!   timeout-storming; [`ServeStats`] carries the queue-depth/wait/latency
//!   histograms ([`hist`]) and shed counters this produces.
//! * **The HTTP front end** ([`http`]): a `std::net` acceptor + HTTP/1.1
//!   parser feeding a composable middleware chain ([`middleware`]), the
//!   admission controller, and a bounded queue drained by worker threads —
//!   each worker a private [`Server`], so HTTP is a transport over the same
//!   execution seam, never a second execution path. `GET /metrics` exports
//!   everything above in Prometheus text format ([`metrics_text`]).

pub mod admission;
pub mod breaker;
pub mod fault;
pub mod hist;
pub mod http;
pub mod lintgate;
pub mod memo;
pub mod metrics_text;
pub mod middleware;
pub mod outcome;
pub mod overload;
pub mod pool;
pub mod sandbox;
pub mod server;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionDecision, AdmissionStats, ShedCause,
};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use fault::{FaultKind, FaultPlan, PlannedFault};
pub use hist::Histogram;
pub use http::{
    parse_request, FrontSnapshot, HttpConfig, HttpLimits, HttpParseError, HttpReport, HttpRequest,
    HttpResponse, HttpServer,
};
pub use lintgate::{GateRejection, GateStats, LintGate, LintGateConfig};
pub use memo::{MemoCache, MemoCacheStats};
pub use metrics_text::{parse_prometheus, render_prometheus, MetricsSnapshot};
pub use middleware::{
    AccessLog, ErrorPages, IdentityEncoding, Middleware, MiddlewareChain, MiddlewareRequest,
    RateLimit,
};
pub use outcome::{classify_panic, RequestOutcome};
pub use overload::{
    OverloadConfig, OverloadConfigError, OverloadRecord, OverloadReport, OverloadSim, SloWindow,
};
pub use pool::{PoolConfig, PoolReport, WorkerFailure, WorkerPool, WorkerReport};
pub use sandbox::{run_sandboxed, SandboxConfig};
pub use server::{RequestRecord, ServeStats, Server};
