//! Fixed-shape log₂ histograms for serving statistics.
//!
//! [`ServeStats`](crate::server::ServeStats) needs distribution summaries
//! (queue depth, queue wait, admitted latency) that stay cheap, mergeable,
//! and `Eq`-comparable — the pool- and overload-determinism tests compare
//! whole stats structs for equality across worker counts and runs. A
//! fixed `[u64; 32]` of power-of-two buckets gives all three: merging is
//! element-wise summation (so pool totals remain the lossless sum of the
//! workers'), and two identical runs produce byte-identical histograms.
//!
//! Bucket `i` counts values `v` with `floor(log2(v)) + 1 == i` (bucket 0 is
//! exactly `v == 0`), i.e. bucket upper bounds are 0, 1, 3, 7, …, 2³¹−1 and
//! the last bucket is open-ended. Quantiles are therefore resolved to a
//! power-of-two upper bound — exact percentiles, where an experiment needs
//! them, come from its per-request records instead.

/// A mergeable log₂-bucket histogram of `u64` samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts (see module docs for the bucket bounds).
    buckets: [u64; 32],
    /// Total samples recorded.
    count: u64,
    /// Sum of all samples (for the mean).
    sum: u64,
    /// Largest sample recorded.
    max: u64,
}

/// Bucket index for a value: 0 for 0, else `min(31, floor(log2(v)) + 1)`.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(31)
    }
}

impl Histogram {
    /// A histogram with no samples.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket sample counts (see module docs for the bucket bounds).
    /// The metrics exporter renders these as cumulative Prometheus buckets.
    pub fn bucket_counts(&self) -> &[u64; 32] {
        &self.buckets
    }

    /// Upper bound of bucket `i`: 0, 1, 3, 7, …, 2³¹−1; the last bucket is
    /// open-ended (rendered as `+Inf`).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << i.min(31)) - 1
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`q` ∈ [0, 1]): the bound of the
    /// first bucket at which the cumulative count reaches `q · count`,
    /// clamped to the observed maximum. Returns 0 when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let bound = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// Element-wise folds `other` into `self`; merged totals equal the
    /// histogram of the concatenated sample streams.
    pub fn merge(&mut self, other: &Histogram) {
        for i in 0..32 {
            self.buckets[i] += other.buckets[i];
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_value_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 31);
    }

    #[test]
    fn mean_max_and_quantiles() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - (1106.0 / 6.0)).abs() < 1e-9);
        // Half the samples are ≤ 3, so the p50 bucket bound is 3.
        assert_eq!(h.quantile_upper_bound(0.5), 3);
        // The top quantile clamps to the observed max, not the bucket bound.
        assert_eq!(h.quantile_upper_bound(1.0), 1000);
        assert_eq!(Histogram::new().quantile_upper_bound(0.99), 0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [5u64, 9, 31] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 7, 4096] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }
}
