//! Per-accelerator circuit breakers.
//!
//! Time is the *request index*, which keeps the whole robustness layer
//! deterministic: a breaker trips after `fault_threshold` detected faults
//! within a `window`-request sliding window, stays open (domain degraded to
//! software) for an exponentially growing backoff, then admits one
//! half-open trial request. A clean trial closes the breaker; a faulty one
//! re-opens it with doubled backoff.

use std::collections::VecDeque;

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Detected faults within `window` that trip the breaker.
    pub fault_threshold: u64,
    /// Sliding-window length in requests.
    pub window: u64,
    /// Requests the breaker stays open after its first trip.
    pub base_backoff: u64,
    /// Backoff ceiling (exponential growth stops here).
    pub max_backoff: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            fault_threshold: 3,
            window: 50,
            base_backoff: 8,
            max_backoff: 128,
        }
    }
}

/// Breaker state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Hardware path in use; faults are being counted.
    Closed,
    /// Domain degraded to software until the given request index.
    Open {
        /// First request index at which a half-open trial is admitted.
        until: u64,
    },
    /// A trial request is running on the hardware path.
    HalfOpen,
}

/// A deterministic, request-indexed circuit breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Request indexes of recently detected faults.
    marks: VecDeque<u64>,
    /// Consecutive trips without an intervening recovery (backoff exponent).
    streak: u32,
    /// Request index of the most recent trip.
    last_trip_at: Option<u64>,
    /// Total trips.
    pub trips: u64,
    /// Total recoveries (half-open trial succeeded).
    pub recoveries: u64,
    /// Request-index latency of the most recent recovery (trip → closed).
    pub last_recovery_latency: Option<u64>,
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            marks: VecDeque::new(),
            streak: 0,
            last_trip_at: None,
            trips: 0,
            recoveries: 0,
            last_recovery_latency: None,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the hardware path is admitted for the request at index
    /// `now`. An open breaker whose backoff has elapsed transitions to
    /// half-open and admits this request as the trial.
    pub fn allows(&mut self, now: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { until } => {
                if now >= until {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records `n` detected faults observed while serving request `now`.
    pub fn record_faults(&mut self, now: u64, n: u64) {
        if n == 0 {
            return;
        }
        match self.state {
            BreakerState::Closed => {
                for _ in 0..n {
                    self.marks.push_back(now);
                }
                while let Some(&front) = self.marks.front() {
                    if front + self.cfg.window <= now {
                        self.marks.pop_front();
                    } else {
                        break;
                    }
                }
                if self.marks.len() as u64 >= self.cfg.fault_threshold {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => {
                // Trial failed: re-open with doubled backoff.
                self.trip(now);
            }
            BreakerState::Open { .. } => {
                // Degraded already; software path faults are impossible,
                // but late counters are ignored rather than double-tripping.
            }
        }
    }

    /// Records a fault-free completion of request `now`. Only meaningful in
    /// half-open state, where it closes the breaker (recovery).
    pub fn record_success(&mut self, now: u64) {
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            self.marks.clear();
            self.streak = 0;
            self.recoveries += 1;
            self.last_recovery_latency = self.last_trip_at.map(|t| now.saturating_sub(t));
        }
    }

    fn trip(&mut self, now: u64) {
        let backoff = self
            .cfg
            .base_backoff
            .saturating_mul(1u64 << self.streak.min(32))
            .min(self.cfg.max_backoff);
        self.state = BreakerState::Open {
            until: now + backoff,
        };
        self.streak = self.streak.saturating_add(1);
        self.trips += 1;
        self.last_trip_at = Some(now);
        self.marks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            fault_threshold: 3,
            window: 10,
            base_backoff: 4,
            max_backoff: 16,
        }
    }

    #[test]
    fn trips_after_threshold_in_window() {
        let mut b = CircuitBreaker::new(cfg());
        assert!(b.allows(0));
        b.record_faults(0, 1);
        b.record_faults(1, 1);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_faults(2, 1);
        assert_eq!(b.state(), BreakerState::Open { until: 6 });
        assert!(!b.allows(3));
        assert_eq!(b.trips, 1);
    }

    #[test]
    fn stale_faults_age_out_of_window() {
        let mut b = CircuitBreaker::new(cfg());
        b.record_faults(0, 2);
        // 10 requests later the two old marks have aged out.
        b.record_faults(10, 1);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_recovery_closes() {
        let mut b = CircuitBreaker::new(cfg());
        b.record_faults(5, 3); // trip at 5, open until 9
        assert!(!b.allows(8));
        assert!(b.allows(9), "half-open trial admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success(9);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.recoveries, 1);
        assert_eq!(b.last_recovery_latency, Some(4));
        // Streak reset: next trip uses base backoff again.
        b.record_faults(20, 3);
        assert_eq!(b.state(), BreakerState::Open { until: 24 });
    }

    #[test]
    fn failed_trial_doubles_backoff_up_to_cap() {
        let mut b = CircuitBreaker::new(cfg());
        b.record_faults(0, 3); // open until 4 (backoff 4)
        assert!(b.allows(4));
        b.record_faults(4, 1); // trial fails: backoff 8
        assert_eq!(b.state(), BreakerState::Open { until: 12 });
        assert!(b.allows(12));
        b.record_faults(12, 1); // backoff 16 (cap)
        assert_eq!(b.state(), BreakerState::Open { until: 28 });
        assert!(b.allows(28));
        b.record_faults(28, 1); // capped at 16
        assert_eq!(b.state(), BreakerState::Open { until: 44 });
        assert_eq!(b.trips, 4);
    }

    #[test]
    fn success_while_closed_is_a_no_op() {
        let mut b = CircuitBreaker::new(cfg());
        b.record_success(3);
        assert_eq!(b.recoveries, 0);
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
