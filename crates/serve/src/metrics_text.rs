//! Prometheus text-format rendering of the serving metrics.
//!
//! `GET /metrics` on the HTTP front end renders a [`MetricsSnapshot`] with
//! [`render_prometheus`]: plain exposition format 0.0.4 (`# HELP`/`# TYPE`
//! comments, one `name{labels} value` sample per line), hand-written since
//! the workspace vendors no client library. The schema (all names
//! `phpaccel_`-prefixed):
//!
//! | metric | type | labels |
//! |---|---|---|
//! | `phpaccel_requests_total`, `_requests_ok_total`, `_timeouts_total`, `_ooms_total`, `_panics_total`, `_shed_total`, `_replay_mismatches_total` | counter | — |
//! | `phpaccel_degraded_requests_total`, `_faults_injected_total`, `_faults_detected_total`, `_breaker_trips_total`, `_breaker_recoveries_total` | counter | `domain` |
//! | `phpaccel_breaker_state` (0 closed / 1 half-open / 2 open) | gauge | `domain`, `worker` |
//! | `phpaccel_worker_uops_total` | counter | `worker` |
//! | `phpaccel_live_blocks` | gauge | — |
//! | `phpaccel_memo_{hits,misses,stores,invalidations}_total`, `phpaccel_memo_entries` | counter / gauge | — |
//! | `phpaccel_static_savings_total` | counter | `kind` |
//! | `phpaccel_queue_depth`, `phpaccel_queue_wait_uops`, `phpaccel_latency_uops` | histogram | `le` |
//! | `phpaccel_http_*` front-door counters | counter | — |
//!
//! Counters reconcile with [`crate::pool::PoolReport`]/[`crate::http::HttpReport`]
//! by construction: both render the same snapshot struct.

use crate::hist::Histogram;
use crate::http::FrontSnapshot;
use crate::memo::MemoCacheStats;
use crate::server::ServeStats;
use php_runtime::StaticSavings;
use phpaccel_core::AccelId;
use std::fmt::Write;

/// Everything `/metrics` exports, merged across workers (see
/// `FrontState::metrics_snapshot` in [`crate::http`]).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Worker count (one breaker-state row set per worker).
    pub workers: usize,
    /// Merged serving statistics, front-door sheds folded in.
    pub stats: ServeStats,
    /// Summed static-analysis savings.
    pub savings: StaticSavings,
    /// Summed injected faults per domain.
    pub injected: [u64; 4],
    /// Summed detected faults per domain.
    pub detected: [u64; 4],
    /// Summed breaker trips per domain.
    pub trips: [u64; 4],
    /// Summed breaker recoveries per domain.
    pub recoveries: [u64; 4],
    /// Per-worker breaker state per domain: 0 closed, 1 half-open, 2 open.
    pub breaker_states: Vec<[u8; 4]>,
    /// Total metered µops per worker.
    pub worker_uops: Vec<u64>,
    /// Live allocator blocks across workers.
    pub live_blocks: usize,
    /// Shared memo-cache counters, when a tier is configured.
    pub memo: Option<MemoCacheStats>,
    /// Front-door counters.
    pub front: FrontSnapshot,
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

fn per_domain(out: &mut String, name: &str, help: &str, kind: &str, values: &[u64; 4]) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    for id in AccelId::ALL {
        let _ = writeln!(
            out,
            "{name}{{domain=\"{}\"}} {}",
            id.name(),
            values[id.index()]
        );
    }
}

/// Renders a histogram as cumulative `_bucket{le=...}` samples plus `_sum`
/// and `_count`, per the Prometheus histogram convention.
fn histogram(out: &mut String, name: &str, help: &str, h: &Histogram) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, n) in h.bucket_counts().iter().enumerate() {
        cumulative += n;
        if i == 31 {
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        } else {
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                Histogram::bucket_upper_bound(i)
            );
        }
    }
    let _ = writeln!(out, "{name}_sum {}", h.sum());
    let _ = writeln!(out, "{name}_count {}", h.count());
}

/// Renders the full exposition document.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(8 * 1024);
    let s = &snap.stats;

    counter(
        &mut out,
        "phpaccel_requests_total",
        "Arrivals (served + shed).",
        s.requests,
    );
    counter(
        &mut out,
        "phpaccel_requests_ok_total",
        "Requests completed normally.",
        s.ok,
    );
    counter(
        &mut out,
        "phpaccel_timeouts_total",
        "Requests killed by the execution budget (504).",
        s.timeouts,
    );
    counter(
        &mut out,
        "phpaccel_ooms_total",
        "Requests killed by the memory ceiling (500).",
        s.ooms,
    );
    counter(
        &mut out,
        "phpaccel_panics_total",
        "Requests that panicked (500).",
        s.panics,
    );
    counter(
        &mut out,
        "phpaccel_shed_total",
        "Arrivals refused by admission control (503).",
        s.shed,
    );
    counter(
        &mut out,
        "phpaccel_replay_mismatches_total",
        "Successful responses that diverged from the all-software reference (must stay 0).",
        s.mismatches,
    );

    per_domain(
        &mut out,
        "phpaccel_degraded_requests_total",
        "Requests served with the domain degraded to software.",
        "counter",
        &s.degraded_requests,
    );
    per_domain(
        &mut out,
        "phpaccel_faults_injected_total",
        "Faults injected per accelerator domain.",
        "counter",
        &snap.injected,
    );
    per_domain(
        &mut out,
        "phpaccel_faults_detected_total",
        "Faults detected per accelerator domain.",
        "counter",
        &snap.detected,
    );
    per_domain(
        &mut out,
        "phpaccel_breaker_trips_total",
        "Circuit-breaker trips per domain.",
        "counter",
        &snap.trips,
    );
    per_domain(
        &mut out,
        "phpaccel_breaker_recoveries_total",
        "Circuit-breaker recoveries per domain.",
        "counter",
        &snap.recoveries,
    );

    let _ = writeln!(
        out,
        "# HELP phpaccel_breaker_state Breaker state: 0 closed, 1 half-open, 2 open."
    );
    let _ = writeln!(out, "# TYPE phpaccel_breaker_state gauge");
    for (w, states) in snap.breaker_states.iter().enumerate() {
        for id in AccelId::ALL {
            let _ = writeln!(
                out,
                "phpaccel_breaker_state{{domain=\"{}\",worker=\"{w}\"}} {}",
                id.name(),
                states[id.index()]
            );
        }
    }

    let _ = writeln!(
        out,
        "# HELP phpaccel_worker_uops_total Metered simulated µops per worker."
    );
    let _ = writeln!(out, "# TYPE phpaccel_worker_uops_total counter");
    for (w, uops) in snap.worker_uops.iter().enumerate() {
        let _ = writeln!(out, "phpaccel_worker_uops_total{{worker=\"{w}\"}} {uops}");
    }
    gauge(
        &mut out,
        "phpaccel_live_blocks",
        "Live allocator blocks across worker machines.",
        snap.live_blocks as u64,
    );

    counter(
        &mut out,
        "phpaccel_memo_hits_total",
        "Memo-tier lookups served from cache.",
        s.memo_hits,
    );
    counter(
        &mut out,
        "phpaccel_memo_misses_total",
        "Memo-tier lookups at proven sites that missed.",
        s.memo_misses,
    );
    counter(
        &mut out,
        "phpaccel_memo_stores_total",
        "Results stored into the memo tier.",
        s.memo_stores,
    );
    counter(
        &mut out,
        "phpaccel_memo_invalidations_total",
        "Memo entries dropped by dependency invalidation.",
        s.memo_invalidations,
    );
    if let Some(memo) = &snap.memo {
        gauge(
            &mut out,
            "phpaccel_memo_entries",
            "Entries resident in the shared memo cache.",
            memo.entries as u64,
        );
    }

    let sv = &snap.savings;
    let kinds: [(&str, u64); 17] = [
        ("type_checks_avoided", sv.type_checks_avoided),
        ("rc_incs_avoided", sv.rc_incs_avoided),
        ("rc_decs_avoided", sv.rc_decs_avoided),
        ("summaries_applied", sv.summaries_applied),
        ("regex_compiles_avoided", sv.regex_compiles_avoided),
        ("heap_classes_preseeded", sv.heap_classes_preseeded),
        ("taint_lints_flagged", sv.taint_lints_flagged),
        ("arena_safe_sites", sv.arena_safe_sites),
        ("arena_bytes_reclaimed", sv.arena_bytes_reclaimed),
        ("teardown_uops_saved", sv.teardown_uops_saved),
        ("vm_ops_executed", sv.vm_ops_executed),
        ("vm_fused_ops", sv.vm_fused_ops),
        ("vm_transients_elided", sv.vm_transients_elided),
        ("memo_hits", sv.memo_hits),
        ("memo_misses", sv.memo_misses),
        ("memo_stores", sv.memo_stores),
        ("memo_invalidations", sv.memo_invalidations),
    ];
    let _ = writeln!(
        out,
        "# HELP phpaccel_static_savings_total Static-analysis savings counters by kind."
    );
    let _ = writeln!(out, "# TYPE phpaccel_static_savings_total counter");
    for (kind, value) in kinds {
        let _ = writeln!(
            out,
            "phpaccel_static_savings_total{{kind=\"{kind}\"}} {value}"
        );
    }

    histogram(
        &mut out,
        "phpaccel_queue_depth",
        "Admission-queue depth observed at each arrival.",
        &s.queue_depth,
    );
    histogram(
        &mut out,
        "phpaccel_queue_wait_uops",
        "Queue wait of admitted requests in simulated µops (populated by the overload simulator).",
        &s.queue_wait,
    );
    histogram(
        &mut out,
        "phpaccel_latency_uops",
        "Service latency of admitted requests in simulated µops.",
        &s.latency,
    );

    let f = &snap.front;
    counter(
        &mut out,
        "phpaccel_http_connections_total",
        "Connections accepted.",
        f.connections,
    );
    counter(
        &mut out,
        "phpaccel_http_connections_refused_total",
        "Connections refused at the concurrency cap.",
        f.connections_refused,
    );
    counter(
        &mut out,
        "phpaccel_http_requests_total",
        "HTTP requests parsed successfully.",
        f.http_requests,
    );
    counter(
        &mut out,
        "phpaccel_http_parse_errors_total",
        "Requests refused by the parser (4xx/5xx + close).",
        f.parse_errors,
    );
    counter(
        &mut out,
        "phpaccel_http_not_found_total",
        "Requests for unknown paths or corpus scripts (404).",
        f.not_found,
    );
    counter(
        &mut out,
        "phpaccel_http_method_not_allowed_total",
        "Non-GET requests refused (405).",
        f.method_not_allowed,
    );
    counter(
        &mut out,
        "phpaccel_http_rate_limited_total",
        "Requests refused by the token bucket (429).",
        f.rate_limited,
    );
    counter(
        &mut out,
        "phpaccel_http_shed_over_budget_total",
        "Arrivals shed for predicted deadline misses (503).",
        f.shed_over_budget,
    );
    counter(
        &mut out,
        "phpaccel_http_shed_queue_full_total",
        "Arrivals shed because the bounded queue was full (503).",
        f.shed_queue_full,
    );
    counter(
        &mut out,
        "phpaccel_http_health_requests_total",
        "GET /health requests served.",
        f.health_requests,
    );
    counter(
        &mut out,
        "phpaccel_http_metrics_requests_total",
        "GET /metrics requests served.",
        f.metrics_requests,
    );
    out
}

/// Parses exposition text back into `(name{labels}, value)` samples —
/// the reconciliation tests use this to assert `/metrics` agrees with the
/// run's report. Comment and blank lines are skipped; every sample line
/// must parse.
pub fn parse_prometheus(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("unparseable sample line: {line:?}"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("bad value in sample line: {line:?}"))?;
        if name.is_empty() {
            return Err(format!("empty metric name: {line:?}"));
        }
        samples.push((name.to_string(), value));
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> MetricsSnapshot {
        let mut stats = ServeStats {
            requests: 12,
            ok: 9,
            timeouts: 1,
            ooms: 0,
            panics: 0,
            shed: 2,
            degraded_requests: [1, 0, 0, 2],
            mismatches: 0,
            memo_hits: 5,
            memo_misses: 3,
            memo_stores: 3,
            memo_invalidations: 1,
            ..ServeStats::default()
        };
        stats.queue_depth.record(0);
        stats.queue_depth.record(7);
        stats.latency.record(1000);
        MetricsSnapshot {
            workers: 2,
            stats,
            savings: StaticSavings::default(),
            injected: [2, 0, 1, 0],
            detected: [2, 0, 1, 0],
            trips: [1, 0, 0, 0],
            recoveries: [1, 0, 0, 0],
            breaker_states: vec![[0, 0, 0, 0], [2, 0, 1, 0]],
            worker_uops: vec![123, 456],
            live_blocks: 0,
            memo: Some(MemoCacheStats {
                hits: 5,
                misses: 3,
                stores: 3,
                invalidations: 1,
                poison_recoveries: 0,
                entries: 2,
            }),
            front: FrontSnapshot {
                connections: 3,
                http_requests: 12,
                parse_errors: 1,
                ..FrontSnapshot::default()
            },
        }
    }

    #[test]
    fn renders_and_round_trips() {
        let text = render_prometheus(&snapshot());
        let samples = parse_prometheus(&text).expect("every sample line parses");
        let get = |name: &str| {
            samples
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(get("phpaccel_requests_total"), 12.0);
        assert_eq!(get("phpaccel_requests_ok_total"), 9.0);
        assert_eq!(get("phpaccel_shed_total"), 2.0);
        assert_eq!(get("phpaccel_replay_mismatches_total"), 0.0);
        assert_eq!(
            get("phpaccel_degraded_requests_total{domain=\"htable\"}"),
            1.0
        );
        assert_eq!(
            get("phpaccel_faults_injected_total{domain=\"string\"}"),
            1.0
        );
        assert_eq!(
            get("phpaccel_breaker_state{domain=\"htable\",worker=\"1\"}"),
            2.0
        );
        assert_eq!(get("phpaccel_worker_uops_total{worker=\"0\"}"), 123.0);
        assert_eq!(get("phpaccel_memo_entries"), 2.0);
        assert_eq!(get("phpaccel_http_parse_errors_total"), 1.0);
        // Histogram: cumulative buckets end at +Inf == count.
        assert_eq!(get("phpaccel_queue_depth_bucket{le=\"+Inf\"}"), 2.0);
        assert_eq!(get("phpaccel_queue_depth_count"), 2.0);
        assert_eq!(get("phpaccel_queue_depth_sum"), 7.0);
        assert_eq!(get("phpaccel_latency_uops_count"), 1.0);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_bounded() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 5, 100] {
            h.record(v);
        }
        let mut out = String::new();
        histogram(&mut out, "t", "test", &h);
        let samples = parse_prometheus(&out).unwrap();
        let buckets: Vec<f64> = samples
            .iter()
            .filter(|(n, _)| n.starts_with("t_bucket"))
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(buckets.len(), 32);
        assert!(
            buckets.windows(2).all(|w| w[0] <= w[1]),
            "must be cumulative"
        );
        assert_eq!(*buckets.last().unwrap(), 5.0, "+Inf bucket equals count");
        // le="0" counts exactly the zero sample; le="1" adds the two ones.
        assert_eq!(buckets[0], 1.0);
        assert_eq!(buckets[1], 3.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_prometheus("name 1.0\n# comment\n").is_ok());
        assert!(parse_prometheus("no_value_here\n").is_err());
        assert!(parse_prometheus("name notanumber\n").is_err());
    }
}
