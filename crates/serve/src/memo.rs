//! The shared cross-request memo cache.
//!
//! [`MemoCache`] is the production [`MemoTier`]: an APCu-style in-memory
//! cache shared by every worker in a [`crate::pool::WorkerPool`], holding
//! results the static effect analysis proved cross-request memoizable
//! (`php_analysis::effects`). Entries are sharded by key hash and each
//! shard takes its own lock, so concurrent workers contend only when their
//! keys collide on a shard — bucket-level locking, the software analogue of
//! the paper's banked hash-table storage.
//!
//! Correctness never depends on invalidation: the memo *key* embeds the
//! current value of every global in the callee's read set, so a stale entry
//! can only be hit by a state that would recompute byte-identical results.
//! Invalidation is a freshness/footprint policy — a write to a fingerprinted
//! global drops the entries keyed on its old value, which would otherwise
//! linger unreachable.

use php_interp::{MemoHit, MemoTier};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Default shard count — comfortably above typical worker counts so two
/// workers rarely queue on the same lock.
pub const DEFAULT_SHARDS: usize = 16;

/// Point-in-time counters for a [`MemoCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoCacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Entries dropped by dependency invalidation.
    pub invalidations: u64,
    /// Shards cleared after a lock-poisoning panic (see
    /// [`MemoCache`]'s poisoning policy; stays 0 in healthy operation).
    pub poison_recoveries: u64,
    /// Entries currently resident across all shards.
    pub entries: usize,
}

#[derive(Default)]
struct Shard {
    /// key → (dependency fingerprint, cached result).
    entries: HashMap<String, (Vec<String>, MemoHit)>,
    /// dep → keys of resident entries fingerprinted on it (same shard as
    /// the entry, so invalidation walks shards without cross-locking).
    by_dep: HashMap<String, HashSet<String>>,
}

/// Sharded, bucket-locked memo tier shared across worker threads.
///
/// **Poisoning policy:** a worker panicking while it holds a shard lock
/// (the sandbox catches handler panics *after* any `MemoTier` call inside
/// the handler unwinds through it) used to leave that shard's mutex
/// poisoned forever — every later `.lock().unwrap()` by every worker then
/// panicked, permanently killing lookups on a sixteenth of the key space.
/// Instead, a poisoned shard is recovered via `into_inner` and **cleared**:
/// the interrupted operation may have half-applied its entry/dep-index
/// updates, and dropping the shard's entries is always safe (a memo cache
/// only ever re-computes), while trusting them is not. Recoveries are
/// counted in [`MemoCacheStats::poison_recoveries`].
pub struct MemoCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    invalidations: AtomicU64,
    poison_recoveries: AtomicU64,
}

impl std::fmt::Debug for MemoCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoCache")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for MemoCache {
    fn default() -> Self {
        Self::new(DEFAULT_SHARDS)
    }
}

/// FNV-1a over the key bytes: stable across runs (unlike `HashMap`'s
/// per-instance seeded hasher), so shard placement — and therefore lock
/// contention — is reproducible.
fn shard_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl MemoCache {
    /// Creates a cache with `shards` independently locked buckets
    /// (minimum 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        MemoCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        &self.shards[(shard_hash(key) % self.shards.len() as u64) as usize]
    }

    /// Locks one shard, recovering from poisoning per the policy in the
    /// type docs: clear the shard (its state may be half-applied), unpoison
    /// the mutex so later locks don't re-clear, and count the recovery.
    fn lock_shard<'a>(&self, shard: &'a Mutex<Shard>) -> MutexGuard<'a, Shard> {
        match shard.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                shard.clear_poison();
                let mut guard = poisoned.into_inner();
                guard.entries.clear();
                guard.by_dep.clear();
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                guard
            }
        }
    }

    /// Counter snapshot plus resident-entry count.
    pub fn stats(&self) -> MemoCacheStats {
        // Sum entries first: visiting the shards may itself recover a
        // poisoned lock, and that recovery belongs in this snapshot.
        let entries = self
            .shards
            .iter()
            .map(|s| self.lock_shard(s).entries.len())
            .sum();
        MemoCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            poison_recoveries: self.poison_recoveries.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Drops every entry and zeroes the counters.
    pub fn clear(&self) {
        for s in &self.shards {
            let mut s = self.lock_shard(s);
            s.entries.clear();
            s.by_dep.clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.stores.store(0, Ordering::Relaxed);
        self.invalidations.store(0, Ordering::Relaxed);
        self.poison_recoveries.store(0, Ordering::Relaxed);
    }
}

impl MemoTier for MemoCache {
    fn lookup(&self, key: &str) -> Option<MemoHit> {
        let hit = self
            .lock_shard(self.shard(key))
            .entries
            .get(key)
            .map(|(_, h)| h.clone());
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn store(&self, key: String, deps: Vec<String>, hit: MemoHit) {
        let mut shard = self.lock_shard(self.shard(&key));
        for dep in &deps {
            shard
                .by_dep
                .entry(dep.clone())
                .or_default()
                .insert(key.clone());
        }
        shard.entries.insert(key, (deps, hit));
        drop(shard);
        self.stores.fetch_add(1, Ordering::Relaxed);
    }

    fn invalidate(&self, dep: &str) -> u64 {
        let mut dropped = 0u64;
        for s in &self.shards {
            let mut shard = self.lock_shard(s);
            let Some(keys) = shard.by_dep.remove(dep) else {
                continue;
            };
            for key in keys {
                if let Some((deps, _)) = shard.entries.remove(&key) {
                    dropped += 1;
                    // Unlink the entry from its *other* dependency lists so
                    // they never accumulate dead keys.
                    for other in deps.iter().filter(|d| d.as_str() != dep) {
                        if let Some(set) = shard.by_dep.get_mut(other) {
                            set.remove(&key);
                            if set.is_empty() {
                                shard.by_dep.remove(other);
                            }
                        }
                    }
                }
            }
        }
        if dropped > 0 {
            self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_interp::MemoValue;
    use php_runtime::PhpValue;
    use std::sync::Arc;

    fn hit(n: i64) -> MemoHit {
        MemoHit {
            value: MemoValue::from_php(&PhpValue::Int(n)).unwrap(),
            output: format!("out{n}").into_bytes(),
        }
    }

    #[test]
    fn store_lookup_and_counters() {
        let cache = MemoCache::new(4);
        assert!(cache.lookup("a").is_none());
        cache.store("a".into(), vec!["d1".into()], hit(1));
        let got = cache.lookup("a").expect("stored entry");
        assert_eq!(got.output, b"out1");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.stores, s.entries), (1, 1, 1, 1));
    }

    #[test]
    fn invalidation_drops_only_fingerprinted_entries() {
        let cache = MemoCache::new(4);
        cache.store("a".into(), vec!["d1".into(), "d2".into()], hit(1));
        cache.store("b".into(), vec!["d2".into()], hit(2));
        cache.store("c".into(), vec![], hit(3));
        assert_eq!(cache.invalidate("d2"), 2, "a and b fingerprint d2");
        assert!(cache.lookup("a").is_none());
        assert!(cache.lookup("b").is_none());
        assert!(cache.lookup("c").is_some(), "no deps, never invalidated");
        assert_eq!(cache.stats().invalidations, 2);
        // d1's list must not retain a's dead key.
        assert_eq!(cache.invalidate("d1"), 0);
    }

    #[test]
    fn single_shard_still_works() {
        let cache = MemoCache::new(0); // clamped to 1
        cache.store("x".into(), vec!["g".into()], hit(9));
        assert!(cache.lookup("x").is_some());
        assert_eq!(cache.invalidate("g"), 1);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn concurrent_workers_share_one_cache() {
        let cache = Arc::new(MemoCache::new(8));
        std::thread::scope(|scope| {
            for w in 0..4 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..50 {
                        let key = format!("k{}", i % 10);
                        if cache.lookup(&key).is_none() {
                            cache.store(key, vec![format!("dep{w}")], hit(i));
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 200);
        assert!(s.entries <= 10, "at most one entry per distinct key");
        assert!(s.hits > 0, "shared entries must be visible across threads");
    }

    /// Regression: a panic while a shard lock was held poisoned the mutex,
    /// and every later `.lock().unwrap()` — from *any* worker — panicked,
    /// permanently killing that shard. Poisoned shards must instead recover:
    /// cleared once, counted once, fully usable afterwards.
    #[test]
    fn poisoned_shard_recovers_cleared_and_usable() {
        let cache = Arc::new(MemoCache::new(1)); // one shard: every key hits it
        cache.store("a".into(), vec!["d".into()], hit(1));
        assert!(cache.lookup("a").is_some());

        // Poison the only shard: panic while holding its lock.
        let poisoner = Arc::clone(&cache);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.shards[0].lock().unwrap();
            panic!("worker died holding the shard lock");
        })
        .join();
        std::panic::set_hook(hook);
        assert!(cache.shards[0].is_poisoned());

        // First touch recovers: the shard is cleared (half-applied state is
        // untrustworthy), not wedged.
        assert!(cache.lookup("a").is_none(), "recovered shard starts empty");
        assert!(!cache.shards[0].is_poisoned(), "mutex must be unpoisoned");

        // The shard is fully usable again, and the recovery was counted
        // exactly once — later locks must not re-clear.
        cache.store("b".into(), vec!["d".into()], hit(2));
        assert!(cache.lookup("b").is_some());
        assert_eq!(cache.invalidate("d"), 1);
        let stats = cache.stats();
        assert_eq!(stats.poison_recoveries, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = MemoCache::default();
        cache.store("a".into(), vec!["d".into()], hit(1));
        cache.lookup("a");
        cache.clear();
        assert_eq!(cache.stats(), MemoCacheStats::default());
    }
}
