//! Composable HTTP middleware.
//!
//! The front end wraps its router in a [`MiddlewareChain`] with onion
//! semantics, modeled on the `tokio_php` exemplar's stack (rate limiting →
//! access log → error pages → compression): every stage's [`Middleware::before`]
//! runs outside-in and may short-circuit with its own response (the inner
//! handler and the stages further in never run); [`Middleware::after`] then
//! runs inside-out over whichever response was produced, but only on the
//! stages whose `before` actually ran. A stage therefore always sees `after`
//! for exactly the requests it saw `before` — the contract that lets the
//! rate limiter count, the access log record, and the error-page stage
//! decorate without coordinating with each other.
//!
//! All stages are `Send + Sync` and interior-mutable, because connection
//! threads call the chain concurrently.

use crate::http::HttpResponse;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The request view middleware stages operate on: enough to route, log, and
/// rate-limit, without exposing the connection.
#[derive(Debug, Clone)]
pub struct MiddlewareRequest<'a> {
    /// Request method (`GET`, `POST`, …).
    pub method: &'a str,
    /// The raw request target (path + query as received).
    pub target: &'a str,
}

/// One stage of the middleware chain. Both hooks have no-op defaults so a
/// stage implements only the side it needs.
pub trait Middleware: Send + Sync {
    /// Stage name (for diagnostics and the metrics exporter).
    fn name(&self) -> &'static str;

    /// Runs before the inner handler, outside-in. Returning `Some(response)`
    /// short-circuits: the inner handler and all deeper stages are skipped.
    fn before(&self, _req: &MiddlewareRequest<'_>) -> Option<HttpResponse> {
        None
    }

    /// Runs after a response exists, inside-out, on every stage whose
    /// `before` ran for this request.
    fn after(&self, _req: &MiddlewareRequest<'_>, _resp: &mut HttpResponse) {}
}

/// Stages kept behind `Arc` handles still compose into a chain.
impl<M: Middleware + ?Sized> Middleware for std::sync::Arc<M> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn before(&self, req: &MiddlewareRequest<'_>) -> Option<HttpResponse> {
        (**self).before(req)
    }
    fn after(&self, req: &MiddlewareRequest<'_>, resp: &mut HttpResponse) {
        (**self).after(req, resp)
    }
}

/// An ordered stack of middleware stages around an inner handler.
#[derive(Default)]
pub struct MiddlewareChain {
    stages: Vec<Box<dyn Middleware>>,
}

impl std::fmt::Debug for MiddlewareChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiddlewareChain")
            .field(
                "stages",
                &self.stages.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl MiddlewareChain {
    /// An empty chain: `handle` just runs the inner handler.
    pub fn new() -> Self {
        MiddlewareChain::default()
    }

    /// Appends a stage; earlier-added stages are further *outside*.
    pub fn with(mut self, stage: impl Middleware + 'static) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// Stage names, outermost first.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Runs `inner` inside the chain (see module docs for the onion
    /// contract) and returns the final response.
    pub fn handle(
        &self,
        req: &MiddlewareRequest<'_>,
        inner: impl FnOnce() -> HttpResponse,
    ) -> HttpResponse {
        let mut ran = 0;
        let mut response = None;
        for (i, stage) in self.stages.iter().enumerate() {
            ran = i + 1;
            if let Some(resp) = stage.before(req) {
                response = Some(resp);
                break;
            }
        }
        let mut resp = response.unwrap_or_else(inner);
        for stage in self.stages[..ran].iter().rev() {
            stage.after(req, &mut resp);
        }
        resp
    }
}

/// Token-bucket rate limiter (stage: outermost). A bucket of `capacity`
/// tokens refills continuously at `refill_per_sec`; each request spends one
/// token, and an empty bucket answers 429 with a `Retry-After` hint.
/// `refill_per_sec == 0` never refills — tests use that for determinism.
#[derive(Debug)]
pub struct RateLimit {
    capacity: f64,
    refill_per_sec: f64,
    bucket: Mutex<(f64, Instant)>,
    limited: AtomicU64,
}

impl RateLimit {
    /// A full bucket of `capacity` tokens refilling at `refill_per_sec`.
    pub fn new(capacity: u64, refill_per_sec: f64) -> Self {
        RateLimit {
            capacity: capacity as f64,
            refill_per_sec: refill_per_sec.max(0.0),
            bucket: Mutex::new((capacity as f64, Instant::now())),
            limited: AtomicU64::new(0),
        }
    }

    /// Requests refused with 429 so far.
    pub fn limited(&self) -> u64 {
        self.limited.load(Ordering::Relaxed)
    }

    /// Seconds until one token exists again (the `Retry-After` hint).
    fn retry_after_secs(&self, tokens: f64) -> u64 {
        if self.refill_per_sec <= 0.0 {
            return 1;
        }
        ((1.0 - tokens).max(0.0) / self.refill_per_sec)
            .ceil()
            .max(1.0) as u64
    }
}

impl Middleware for RateLimit {
    fn name(&self) -> &'static str {
        "rate-limit"
    }

    fn before(&self, _req: &MiddlewareRequest<'_>) -> Option<HttpResponse> {
        let mut bucket = self.bucket.lock().unwrap_or_else(|e| e.into_inner());
        let (ref mut tokens, ref mut last) = *bucket;
        let now = Instant::now();
        *tokens = (*tokens + now.duration_since(*last).as_secs_f64() * self.refill_per_sec)
            .min(self.capacity);
        *last = now;
        if *tokens >= 1.0 {
            *tokens -= 1.0;
            None
        } else {
            let retry = self.retry_after_secs(*tokens);
            drop(bucket);
            self.limited.fetch_add(1, Ordering::Relaxed);
            Some(HttpResponse::new(429).with_header("retry-after", &retry.to_string()))
        }
    }
}

/// Access log: records one `method target status bytes` line per request
/// after the response is final (so short-circuited 429s are logged too).
#[derive(Debug, Default)]
pub struct AccessLog {
    lines: Mutex<Vec<String>>,
}

impl AccessLog {
    /// An empty log.
    pub fn new() -> Self {
        AccessLog::default()
    }

    /// All lines logged so far, in arrival-completion order.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of lines logged so far.
    pub fn len(&self) -> usize {
        self.lines.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Middleware for AccessLog {
    fn name(&self) -> &'static str {
        "access-log"
    }

    fn after(&self, req: &MiddlewareRequest<'_>, resp: &mut HttpResponse) {
        let line = format!(
            "{} {} {} {}",
            req.method,
            req.target,
            resp.status,
            resp.body.len()
        );
        self.lines
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(line);
    }
}

/// Fills empty 4xx/5xx bodies with a minimal HTML error page; responses
/// that already carry a body (including non-empty error bodies from the
/// application) pass through untouched.
#[derive(Debug, Default)]
pub struct ErrorPages;

impl Middleware for ErrorPages {
    fn name(&self) -> &'static str {
        "error-pages"
    }

    fn after(&self, _req: &MiddlewareRequest<'_>, resp: &mut HttpResponse) {
        if resp.status >= 400 && resp.body.is_empty() {
            let reason = crate::http::reason_phrase(resp.status);
            resp.body = format!(
                "<html><head><title>{s} {reason}</title></head>\
                 <body><h1>{s} {reason}</h1></body></html>\n",
                s = resp.status
            )
            .into_bytes();
            resp.set_header("content-type", "text/html; charset=utf-8");
        }
    }
}

/// The honest "compression" stub (stage: innermost). The workspace vendors
/// no deflate/brotli, so this never transforms bytes — it only declares what
/// is true: `Content-Encoding: identity` (unless the application already set
/// an encoding) plus `Vary: Accept-Encoding`, so clients and caches see a
/// well-formed negotiation surface that a real encoder could slot into.
#[derive(Debug, Default)]
pub struct IdentityEncoding;

impl Middleware for IdentityEncoding {
    fn name(&self) -> &'static str {
        "identity-encoding"
    }

    fn after(&self, _req: &MiddlewareRequest<'_>, resp: &mut HttpResponse) {
        if resp.header("content-encoding").is_none() {
            resp.headers
                .push(("content-encoding".into(), "identity".into()));
        }
        if resp.header("vary").is_none() {
            resp.headers.push(("vary".into(), "Accept-Encoding".into()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn req<'a>(method: &'a str, target: &'a str) -> MiddlewareRequest<'a> {
        MiddlewareRequest { method, target }
    }

    /// A stage recording the order its hooks run in.
    struct Tracer {
        name: &'static str,
        log: Arc<Mutex<Vec<String>>>,
        short_circuit: bool,
    }

    impl Middleware for Tracer {
        fn name(&self) -> &'static str {
            self.name
        }
        fn before(&self, _req: &MiddlewareRequest<'_>) -> Option<HttpResponse> {
            self.log
                .lock()
                .unwrap()
                .push(format!("before:{}", self.name));
            self.short_circuit.then(|| HttpResponse::new(429))
        }
        fn after(&self, _req: &MiddlewareRequest<'_>, _resp: &mut HttpResponse) {
            self.log
                .lock()
                .unwrap()
                .push(format!("after:{}", self.name));
        }
    }

    #[test]
    fn chain_runs_onion_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let tracer = |name| Tracer {
            name,
            log: Arc::clone(&log),
            short_circuit: false,
        };
        let chain = MiddlewareChain::new().with(tracer("a")).with(tracer("b"));
        let resp = chain.handle(&req("GET", "/x"), || {
            log.lock().unwrap().push("inner".into());
            HttpResponse::text(200, "hi")
        });
        assert_eq!(resp.status, 200);
        assert_eq!(
            *log.lock().unwrap(),
            vec!["before:a", "before:b", "inner", "after:b", "after:a"]
        );
    }

    #[test]
    fn short_circuit_skips_inner_and_deeper_stages() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let tracer = |name, short_circuit| Tracer {
            name,
            log: Arc::clone(&log),
            short_circuit,
        };
        let chain = MiddlewareChain::new()
            .with(tracer("outer", false))
            .with(tracer("limiter", true))
            .with(tracer("never", false));
        let resp = chain.handle(&req("GET", "/x"), || unreachable!("inner must not run"));
        assert_eq!(resp.status, 429);
        // The short-circuiting stage and everything outside it still see
        // `after`; the skipped inner stage sees neither hook.
        assert_eq!(
            *log.lock().unwrap(),
            vec![
                "before:outer",
                "before:limiter",
                "after:limiter",
                "after:outer"
            ]
        );
    }

    #[test]
    fn rate_limit_spends_tokens_then_answers_429() {
        // refill 0: the bucket never recovers, so the outcome is exact.
        let limiter = RateLimit::new(2, 0.0);
        let chain = MiddlewareChain::new().with(Arc::new(limiter));
        let serve = || HttpResponse::text(200, "ok");
        assert_eq!(chain.handle(&req("GET", "/a"), serve).status, 200);
        assert_eq!(chain.handle(&req("GET", "/a"), serve).status, 200);
        let third = chain.handle(&req("GET", "/a"), serve);
        assert_eq!(third.status, 429);
        assert!(third.header("retry-after").is_some());
    }

    #[test]
    fn access_log_records_final_status_including_short_circuits() {
        let log = Arc::new(AccessLog::new());
        let chain = MiddlewareChain::new()
            .with(Arc::clone(&log))
            .with(Arc::new(RateLimit::new(1, 0.0)));
        let serve = || HttpResponse::text(200, "body!");
        chain.handle(&req("GET", "/run/x"), serve);
        chain.handle(&req("GET", "/run/x"), serve); // rate-limited
        let lines = log.lines();
        assert_eq!(lines[0], "GET /run/x 200 5");
        assert!(lines[1].starts_with("GET /run/x 429"));
    }

    #[test]
    fn error_pages_fill_only_empty_error_bodies() {
        let chain = MiddlewareChain::new().with(ErrorPages);
        let filled = chain.handle(&req("GET", "/x"), || HttpResponse::new(404));
        assert!(String::from_utf8_lossy(&filled.body).contains("404 Not Found"));

        let untouched = chain.handle(&req("GET", "/x"), || HttpResponse::text(404, "custom"));
        assert_eq!(untouched.body, b"custom");

        let ok = chain.handle(&req("GET", "/x"), || HttpResponse::new(204));
        assert!(ok.body.is_empty(), "non-error responses stay empty");
    }

    #[test]
    fn identity_encoding_sets_honest_headers() {
        let chain = MiddlewareChain::new().with(IdentityEncoding);
        let resp = chain.handle(&req("GET", "/x"), || HttpResponse::text(200, "abc"));
        assert_eq!(resp.header("content-encoding"), Some("identity"));
        assert_eq!(resp.header("vary"), Some("Accept-Encoding"));
        assert_eq!(resp.body, b"abc", "bytes are never transformed");
    }
}
