//! The overload simulator: a bounded admission queue in front of simulated
//! workers, driven by shaped arrival schedules.
//!
//! This is the layer ROADMAP item 4 asks for: offered load above capacity
//! must degrade *gracefully* — shed early with 503s, keep every admitted
//! request inside its latency budget — instead of timeout-storming. The
//! model is a classic multi-server FIFO queue advanced by the Lindley
//! recurrence on the simulated-µop clock:
//!
//! * Each arrival `i` comes at timestamp `aᵢ` (from
//!   [`workloads::ArrivalConfig`] or any non-decreasing schedule) and
//!   carries the deadline `aᵢ + budget`.
//! * The predicted queue wait at arrival is exact: `min(free_at) − now`
//!   over the workers. The [`AdmissionController`] sheds when that wait
//!   plus its conservative service envelope would miss the deadline
//!   (hysteresis keeps the transition smooth), or when the bounded queue
//!   is at capacity.
//! * An admitted request starts at `max(now, min(free_at))` on the
//!   earliest-free worker (ties to the lowest index), runs for its
//!   *measured* service time (profiler µop delta through the full
//!   [`Server`] stack — sandbox, fault injection, breakers, byte-identity
//!   replay), and its end-to-end latency is queue wait + service.
//!
//! Execution is single-threaded in arrival order, so the machine-state
//! sequence — and therefore every response byte, breaker decision, and
//! replay comparison — is deterministic given the schedule: the worker
//! count shifts only *timing* (waits, sheds), never bytes. That is the
//! replay-determinism guarantee the overload bench asserts at 1/4/8
//! workers on both engines, with fault injection on.

use crate::admission::{AdmissionController, AdmissionDecision, AdmissionStats, ShedCause};
use crate::outcome::RequestOutcome;
use crate::server::{ServeStats, Server};
use phpaccel_core::PhpMachine;
use std::collections::VecDeque;

/// Configuration of one overload run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadConfig {
    /// Simulated workers draining the admission queue (≥ 1).
    pub workers: usize,
    /// Warmup requests served through the full server stack before the
    /// arrival schedule begins, followed by a [`Server::reset_stats`]
    /// boundary — the load generator's warmup idiom. Without it the cold
    /// first request (first-touch allocation, empty caches) lands *in* the
    /// measured stream, distorting both the latency tail and the
    /// controller's picture of steady-state service cost. Warmup requests
    /// occupy global indices `0..warmup`; arrival `i` is index
    /// `warmup + i` (seeded fault plans use a `burn_in` ≥ this).
    pub warmup: usize,
    /// Number of equal-width SLO accounting windows over the arrival span.
    pub slo_windows: usize,
    /// Restore the machine (and reference) to a pristine request boundary
    /// after every admitted request, as the pool's deterministic mode does.
    /// Soaks turn this off so faults land in live state.
    pub reset_between_requests: bool,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            workers: 1,
            warmup: 4,
            slo_windows: 10,
            reset_between_requests: true,
        }
    }
}

/// What happened to one arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverloadRecord {
    /// Global arrival index (shed arrivals consume indices too).
    pub request: u64,
    /// Arrival timestamp in simulated µops.
    pub at_uops: u64,
    /// Outcome ([`RequestOutcome::Shed`] if refused at admission).
    pub outcome: RequestOutcome,
    /// Why admission refused it, if it did.
    pub shed_cause: Option<ShedCause>,
    /// Queue depth (admitted-but-unstarted requests) seen at arrival.
    pub queue_depth: u64,
    /// Queue wait in µops (0 for shed arrivals).
    pub wait_uops: u64,
    /// Measured service time in µops (0 for shed arrivals).
    pub service_uops: u64,
    /// End-to-end latency (wait + service) in µops (0 for shed arrivals).
    pub latency_uops: u64,
}

/// SLO accounting for one window of the arrival span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloWindow {
    /// Window start (inclusive), simulated µops.
    pub start_uops: u64,
    /// Window end (exclusive), simulated µops.
    pub end_uops: u64,
    /// Arrivals in the window (admitted + shed).
    pub arrivals: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Admitted requests that completed OK within the latency budget.
    pub ok_within_budget: u64,
}

impl SloWindow {
    /// Fraction of admitted requests that met the SLO (OK within budget);
    /// vacuously 1 when the window admitted nothing.
    pub fn attainment(&self) -> f64 {
        if self.admitted == 0 {
            1.0
        } else {
            self.ok_within_budget as f64 / self.admitted as f64
        }
    }
}

/// The result of one overload run.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// Workers that drained the queue.
    pub workers: usize,
    /// The latency budget arrivals were admitted against, in µops.
    pub budget_uops: u64,
    /// Per-arrival records in arrival order.
    pub records: Vec<OverloadRecord>,
    /// Final serving statistics (includes shed counters and the
    /// queue-depth/wait/latency histograms).
    pub stats: ServeStats,
    /// Final admission-controller counters.
    pub admission: AdmissionStats,
    /// Per-window SLO accounting over the arrival span.
    pub windows: Vec<SloWindow>,
}

impl OverloadReport {
    /// Latencies of admitted requests, ascending, in µops.
    pub fn admitted_latencies(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .records
            .iter()
            .filter(|r| !r.outcome.is_shed())
            .map(|r| r.latency_uops)
            .collect();
        v.sort_unstable();
        v
    }

    /// Exact nearest-rank percentile of admitted latency (`p` ∈ [0, 100]);
    /// 0 when nothing was admitted.
    pub fn latency_percentile(&self, p: f64) -> u64 {
        let v = self.admitted_latencies();
        if v.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * v.len() as f64).ceil().max(1.0) as usize;
        v[rank.min(v.len()) - 1]
    }

    /// Fraction of arrivals shed, in [0, 1].
    pub fn shed_fraction(&self) -> f64 {
        self.stats.shed_fraction()
    }

    /// Fraction of admitted requests that completed OK within the budget.
    pub fn slo_attainment(&self) -> f64 {
        let admitted = self.records.iter().filter(|r| !r.outcome.is_shed());
        let (mut total, mut met) = (0u64, 0u64);
        for r in admitted {
            total += 1;
            if r.outcome.is_ok() && r.latency_uops <= self.budget_uops {
                met += 1;
            }
        }
        if total == 0 {
            1.0
        } else {
            met as f64 / total as f64
        }
    }
}

/// A bounded-admission multi-worker queue simulation around one [`Server`]
/// (see module docs).
pub struct OverloadSim {
    cfg: OverloadConfig,
    server: Server,
    controller: AdmissionController,
    /// Per-worker timestamp at which the worker next becomes free.
    free_at: Vec<u64>,
    /// Start times of admitted requests not yet started (the queue).
    queued_starts: VecDeque<u64>,
}

/// A rejected [`OverloadConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadConfigError {
    /// `workers` was 0 — nothing could ever drain the queue. This used to
    /// be caught only at runtime, deep in worker selection, as an
    /// `expect("workers > 0")` panic.
    ZeroWorkers,
    /// `slo_windows` was 0 — per-window attainment would be undefined.
    ZeroSloWindows,
}

impl std::fmt::Display for OverloadConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverloadConfigError::ZeroWorkers => {
                write!(f, "overload sim needs at least one worker")
            }
            OverloadConfigError::ZeroSloWindows => {
                write!(f, "overload sim needs at least one SLO window")
            }
        }
    }
}

impl std::error::Error for OverloadConfigError {}

impl OverloadSim {
    /// Creates a simulation draining `server` with `cfg.workers` workers
    /// under `controller`'s admission policy. Invalid configurations are
    /// rejected here, at construction, instead of panicking mid-run.
    pub fn new(
        cfg: OverloadConfig,
        server: Server,
        controller: AdmissionController,
    ) -> Result<Self, OverloadConfigError> {
        if cfg.workers == 0 {
            return Err(OverloadConfigError::ZeroWorkers);
        }
        if cfg.slo_windows == 0 {
            return Err(OverloadConfigError::ZeroSloWindows);
        }
        Ok(OverloadSim {
            free_at: vec![0; cfg.workers],
            queued_starts: VecDeque::new(),
            cfg,
            server,
            controller,
        })
    }

    /// The server under the queue (machine, breakers, stats).
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// The admission controller's current state.
    pub fn controller(&self) -> &AdmissionController {
        &self.controller
    }

    /// Runs the full arrival schedule (non-decreasing µop timestamps)
    /// through admission and the workers, returning the report. Warmup
    /// requests run first (indices `0..warmup`, excluded from stats by the
    /// reset boundary); arrival `i` is then global request index
    /// `warmup + i` — the handler, fault plan, and breakers all see those
    /// global indices.
    pub fn run(
        &mut self,
        arrivals: &[u64],
        handler: &mut dyn FnMut(&mut PhpMachine, u64) -> Vec<u8>,
    ) -> OverloadReport {
        let budget = self.controller.config().budget_uops;
        let warmup = self.cfg.warmup as u64;
        for w in 0..warmup {
            self.server.serve_indexed(w, handler);
            if self.cfg.reset_between_requests {
                self.server.recover_between_requests();
            }
        }
        self.server.reset_stats();
        let mut records = Vec::with_capacity(arrivals.len());
        for (i, &now) in arrivals.iter().enumerate() {
            let req = warmup + i as u64;
            // Drain queue entries that have started by `now`.
            while self.queued_starts.front().is_some_and(|&s| s <= now) {
                self.queued_starts.pop_front();
            }
            let depth = self.queued_starts.len();
            let predicted_wait = self
                .free_at
                .iter()
                .min()
                .copied()
                .unwrap_or(0)
                .saturating_sub(now);

            match self.controller.decide(predicted_wait, depth) {
                AdmissionDecision::Shed(cause) => {
                    let rec = self.server.record_shed(req, depth as u64);
                    records.push(OverloadRecord {
                        request: req,
                        at_uops: now,
                        outcome: rec.outcome,
                        shed_cause: Some(cause),
                        queue_depth: depth as u64,
                        wait_uops: 0,
                        service_uops: 0,
                        latency_uops: 0,
                    });
                }
                AdmissionDecision::Admit => {
                    let before = self.server.machine().ctx().profiler().total_uops();
                    let rec = self.server.serve_indexed(req, handler);
                    let after = self.server.machine().ctx().profiler().total_uops();
                    let service = after.saturating_sub(before);
                    self.controller.observe_service(service);

                    // Earliest-free worker, ties to the lowest index. The
                    // constructor rejects `workers == 0`, so the range is
                    // never empty; `unwrap_or(0)` keeps this non-panicking.
                    let w = (0..self.cfg.workers)
                        .min_by_key(|&w| self.free_at[w])
                        .unwrap_or(0);
                    let start = now.max(self.free_at[w]);
                    let wait = start - now;
                    self.free_at[w] = start + service;
                    let latency = wait + service;
                    self.server
                        .record_admitted_timing(depth as u64, wait, latency);
                    self.queued_starts.push_back(start);
                    records.push(OverloadRecord {
                        request: req,
                        at_uops: now,
                        outcome: rec.outcome,
                        shed_cause: None,
                        queue_depth: depth as u64,
                        wait_uops: wait,
                        service_uops: service,
                        latency_uops: latency,
                    });
                    if self.cfg.reset_between_requests {
                        self.server.recover_between_requests();
                    }
                }
            }
        }
        let windows = slo_windows(&records, budget, self.cfg.slo_windows);
        OverloadReport {
            workers: self.cfg.workers,
            budget_uops: budget,
            records,
            stats: self.server.stats().clone(),
            admission: *self.controller.stats(),
            windows,
        }
    }
}

/// Buckets the records into `n` equal-width windows over the arrival span.
fn slo_windows(records: &[OverloadRecord], budget_uops: u64, n: usize) -> Vec<SloWindow> {
    let span = records.last().map(|r| r.at_uops + 1).unwrap_or(0);
    if span == 0 {
        return Vec::new();
    }
    let width = span.div_ceil(n as u64).max(1);
    let mut windows: Vec<SloWindow> = (0..n)
        .map(|i| SloWindow {
            start_uops: i as u64 * width,
            end_uops: (i as u64 + 1) * width,
            arrivals: 0,
            admitted: 0,
            ok_within_budget: 0,
        })
        .collect();
    for r in records {
        let w = ((r.at_uops / width) as usize).min(n - 1);
        windows[w].arrivals += 1;
        if !r.outcome.is_shed() {
            windows[w].admitted += 1;
            if r.outcome.is_ok() && r.latency_uops <= budget_uops {
                windows[w].ok_within_budget += 1;
            }
        }
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use crate::breaker::BreakerConfig;
    use crate::sandbox::SandboxConfig;
    use workloads::{ArrivalConfig, ArrivalShape};

    fn handler() -> impl FnMut(&mut PhpMachine, u64) -> Vec<u8> {
        |m: &mut PhpMachine, req: u64| {
            let s = m.transient_str(format!("overload request {req}"));
            let out = match s {
                php_runtime::PhpValue::Str(s) => m.strtoupper(&s).as_bytes().to_vec(),
                _ => unreachable!(),
            };
            m.end_request();
            out
        }
    }

    /// Measures steady-state service time (mean over warm requests, with
    /// the between-request recovery the sim also performs; the cold first
    /// request is discarded) to scale arrival gaps to load factors.
    fn calibrate() -> u64 {
        let mut server = Server::new(
            PhpMachine::specialized(),
            BreakerConfig::default(),
            SandboxConfig::unlimited(),
        );
        let mut h = handler();
        let mut total = 0u64;
        let warm = 8u64;
        for i in 0..=warm {
            let before = server.machine().ctx().profiler().total_uops();
            server.serve(&mut h);
            let after = server.machine().ctx().profiler().total_uops();
            if i > 0 {
                total += after - before;
            }
            server.recover_between_requests();
        }
        total / warm
    }

    fn sim(workers: usize, budget: u64, service: u64) -> OverloadSim {
        let server = Server::new(
            PhpMachine::specialized(),
            BreakerConfig::default(),
            SandboxConfig::unlimited(),
        )
        .with_reference(PhpMachine::baseline());
        let controller = AdmissionController::new(AdmissionConfig {
            budget_uops: budget,
            queue_capacity: 4 * workers,
            release_ratio: 0.5,
            service_prior_uops: service * 2,
        });
        OverloadSim::new(
            OverloadConfig {
                workers,
                ..OverloadConfig::default()
            },
            server,
            controller,
        )
        .expect("valid overload config")
    }

    fn try_sim(cfg: OverloadConfig) -> Result<OverloadSim, OverloadConfigError> {
        let server = Server::new(
            PhpMachine::specialized(),
            BreakerConfig::default(),
            SandboxConfig::unlimited(),
        );
        OverloadSim::new(
            cfg,
            server,
            AdmissionController::new(AdmissionConfig::default()),
        )
    }

    #[test]
    fn zero_workers_is_a_config_error_not_a_panic() {
        let err = try_sim(OverloadConfig {
            workers: 0,
            ..OverloadConfig::default()
        })
        .err()
        .expect("zero workers must be rejected");
        assert_eq!(err, OverloadConfigError::ZeroWorkers);
        assert!(err.to_string().contains("worker"));
    }

    #[test]
    fn zero_slo_windows_is_a_config_error_not_a_panic() {
        let err = try_sim(OverloadConfig {
            slo_windows: 0,
            ..OverloadConfig::default()
        })
        .err()
        .expect("zero slo windows must be rejected");
        assert_eq!(err, OverloadConfigError::ZeroSloWindows);
        assert!(err.to_string().contains("SLO"));
    }

    fn arrivals(n: usize, gap: u64) -> Vec<u64> {
        ArrivalConfig {
            shape: ArrivalShape::Steady,
            requests: n,
            mean_gap_uops: gap,
            seed: 7,
        }
        .times()
    }

    #[test]
    fn under_capacity_nothing_is_shed() {
        let service = calibrate();
        // Offered load ≈ 0.5×: gaps twice the service time, one worker.
        let mut sim = sim(1, 20 * service, service);
        let report = sim.run(&arrivals(60, 2 * service), &mut handler());
        assert_eq!(report.stats.shed, 0, "under capacity must admit all");
        assert_eq!(report.stats.ok, 60);
        assert_eq!(report.stats.mismatches, 0);
        assert!(report.stats.outcomes_partition_requests());
        assert!(report.slo_attainment() >= 0.99);
    }

    #[test]
    fn overload_sheds_but_admitted_requests_meet_the_budget() {
        let service = calibrate();
        // Offered load ≈ 2×: gaps half the service time, one worker; the
        // budget allows a short queue (4 services + headroom).
        let budget = 6 * service;
        let mut sim = sim(1, budget, service);
        let report = sim.run(&arrivals(120, service / 2), &mut handler());
        assert!(
            report.shed_fraction() > 0.25,
            "2x load must shed substantially, shed {}",
            report.stats.shed
        );
        assert!(report.stats.ok > 0, "goodput must not collapse to zero");
        assert_eq!(report.stats.availability(), 1.0, "admitted all served OK");
        assert!(report.stats.outcomes_partition_requests());
        // The conservative envelope makes the budget a real guarantee.
        assert!(
            report.latency_percentile(99.0) <= budget,
            "admitted p99 {} must stay within budget {budget}",
            report.latency_percentile(99.0)
        );
        assert_eq!(
            report.stats.mismatches, 0,
            "replay must stay byte-identical"
        );
        // Histograms saw every arrival / admitted request.
        assert_eq!(report.stats.queue_depth.count(), 120);
        assert_eq!(report.stats.latency.count(), 120 - report.stats.shed);
    }

    #[test]
    fn overload_runs_replay_identically() {
        let service = calibrate();
        let run = || {
            let mut sim = sim(2, 6 * service, service);
            sim.run(&arrivals(80, service / 2), &mut handler())
        };
        let (a, b) = (run(), run());
        assert_eq!(a.records, b.records, "same schedule must replay exactly");
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.admission, b.admission);
        assert_eq!(a.windows, b.windows);
    }

    #[test]
    fn more_workers_shed_less_at_the_same_offered_load() {
        let service = calibrate();
        let shed_at = |workers: usize| {
            let mut s = sim(workers, 6 * service, service);
            s.run(&arrivals(100, service / 2), &mut handler())
                .stats
                .shed
        };
        let one = shed_at(1);
        let four = shed_at(4);
        assert!(
            four < one,
            "4 workers must shed less than 1 at fixed load ({four} vs {one})"
        );
        assert_eq!(shed_at(4), four, "deterministic at any worker count");
    }

    #[test]
    fn slo_windows_cover_the_span_and_flag_the_flash_crowd() {
        let service = calibrate();
        let mut s = sim(1, 6 * service, service);
        let schedule = ArrivalConfig {
            shape: ArrivalShape::FlashCrowd,
            requests: 150,
            mean_gap_uops: service, // 1× on average; the flash is ~5×
            seed: 3,
        }
        .times();
        let report = s.run(&schedule, &mut handler());
        assert_eq!(report.windows.len(), 10);
        let total: u64 = report.windows.iter().map(|w| w.arrivals).sum();
        assert_eq!(total, 150, "every arrival lands in exactly one window");
        // The flash (≈ progress 0.5–0.6) must shed; quiet windows must not.
        let shed_by_window: Vec<u64> = report
            .windows
            .iter()
            .map(|w| w.arrivals - w.admitted)
            .collect();
        assert!(
            shed_by_window.iter().any(|&s| s > 0),
            "flash crowd must force shedding: {shed_by_window:?}"
        );
        assert!(
            report.windows.first().unwrap().attainment() >= 0.99,
            "pre-flash window must meet the SLO"
        );
    }
}
