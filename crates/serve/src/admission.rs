//! Deadline-aware admission control with hysteresis.
//!
//! Overloaded servers fail badly by default: every request is accepted,
//! queues grow without bound, and *all* requests blow their latency budget
//! — a timeout storm. The fix (ROADMAP item 4, following the bounded-queue
//! layering of the `tokio_php` exemplar) is to refuse work at the front
//! door while refusal is still cheap: each arrival carries a deadline
//! (arrival time + latency budget), and the controller sheds it when the
//! *predicted* queue wait plus a conservative service estimate would miss
//! that deadline.
//!
//! Two refinements make this production-shaped rather than a bare
//! threshold:
//!
//! * **Hysteresis.** Shedding engages when predicted latency exceeds the
//!   full budget and releases only once it falls below a lower watermark
//!   (`release_ratio · budget`). Without the band, the controller would
//!   flip admit/shed on every arrival as the queue hovers at the boundary.
//! * **A conservative service estimate.** The controller tracks the
//!   *maximum* observed service time (seeded with a calibration prior), so
//!   "predicted wait + estimate ≤ budget" genuinely implies the admitted
//!   request meets its deadline whenever its service time stays within the
//!   observed envelope — which is what makes the overload bench's
//!   "admitted p99 within budget" assertion provable rather than lucky.
//!
//! The controller is pure bookkeeping over integers (simulated µops): no
//! clocks, no randomness — byte-identical replays of an arrival schedule
//! make byte-identical decisions.

/// Admission-control parameters. All times are simulated µops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Per-request latency budget: an arrival's deadline is
    /// `arrival + budget_uops`.
    pub budget_uops: u64,
    /// Maximum admitted-but-not-yet-started requests; arrivals beyond it
    /// are shed outright ([`ShedCause::QueueFull`]).
    pub queue_capacity: usize,
    /// Hysteresis low watermark as a fraction of the budget: once engaged,
    /// shedding releases only when predicted latency falls to
    /// `release_ratio · budget_uops`.
    pub release_ratio: f64,
    /// Initial conservative per-request service estimate (a calibration
    /// prior); the controller only ever raises it to observed maxima.
    pub service_prior_uops: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            budget_uops: 1_000_000,
            queue_capacity: 64,
            release_ratio: 0.5,
            service_prior_uops: 50_000,
        }
    }
}

/// Why an arrival was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// Predicted wait + conservative service estimate exceeded the budget
    /// (or shedding was engaged and had not yet released).
    OverBudget,
    /// The bounded admission queue was at capacity.
    QueueFull,
}

/// The controller's verdict on one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Hand the request to a worker.
    Admit,
    /// Refuse it with a 503 ([`crate::RequestOutcome::Shed`]).
    Shed(ShedCause),
}

/// Aggregate controller counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Arrivals evaluated.
    pub considered: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Arrivals shed for predicted deadline misses.
    pub shed_over_budget: u64,
    /// Arrivals shed because the queue was full.
    pub shed_queue_full: u64,
    /// Times shedding engaged (admit → shed transition).
    pub engages: u64,
    /// Times shedding released (shed → admit transition).
    pub releases: u64,
}

/// Deadline-aware admission controller with hysteresis (see module docs).
#[derive(Debug, Clone)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    /// Conservative per-request service envelope: max(prior, observed).
    service_max_uops: u64,
    /// Hysteresis state: whether shedding is currently engaged.
    shedding: bool,
    stats: AdmissionStats,
}

impl AdmissionController {
    /// Creates a controller in the admitting state.
    pub fn new(cfg: AdmissionConfig) -> Self {
        assert!(cfg.budget_uops > 0, "latency budget must be positive");
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        assert!(
            (0.0..=1.0).contains(&cfg.release_ratio),
            "release ratio must be a fraction of the budget"
        );
        AdmissionController {
            service_max_uops: cfg.service_prior_uops,
            shedding: false,
            cfg,
            stats: AdmissionStats::default(),
        }
    }

    /// The configuration the controller was built with.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Whether shedding is currently engaged.
    pub fn is_shedding(&self) -> bool {
        self.shedding
    }

    /// Current conservative per-request service envelope in µops.
    pub fn service_envelope_uops(&self) -> u64 {
        self.service_max_uops
    }

    /// Counters so far.
    pub fn stats(&self) -> &AdmissionStats {
        &self.stats
    }

    /// Decides one arrival given the predicted queue wait (time until a
    /// worker frees up) and the current admitted-but-unstarted queue depth.
    pub fn decide(&mut self, predicted_wait_uops: u64, queue_depth: usize) -> AdmissionDecision {
        self.stats.considered += 1;

        // A full queue sheds unconditionally but does *not* flip the
        // hysteresis state: capacity is a hard resource bound, not a
        // deadline prediction, and must not cause admit/shed flapping.
        if queue_depth >= self.cfg.queue_capacity {
            self.stats.shed_queue_full += 1;
            return AdmissionDecision::Shed(ShedCause::QueueFull);
        }

        let predicted_latency = predicted_wait_uops.saturating_add(self.service_max_uops);
        let release_at = (self.cfg.budget_uops as f64 * self.cfg.release_ratio) as u64;
        if self.shedding {
            // Release at the low watermark — or whenever the queue has
            // fully drained. The drain escape matters when the service
            // envelope alone exceeds the watermark (e.g. after one
            // pathologically slow request): without it the controller
            // could wedge in the shedding state forever on an idle system.
            if predicted_latency <= release_at || predicted_wait_uops == 0 {
                self.shedding = false;
                self.stats.releases += 1;
                self.stats.admitted += 1;
                AdmissionDecision::Admit
            } else {
                self.stats.shed_over_budget += 1;
                AdmissionDecision::Shed(ShedCause::OverBudget)
            }
        } else if predicted_latency > self.cfg.budget_uops {
            self.shedding = true;
            self.stats.engages += 1;
            self.stats.shed_over_budget += 1;
            AdmissionDecision::Shed(ShedCause::OverBudget)
        } else {
            self.stats.admitted += 1;
            AdmissionDecision::Admit
        }
    }

    /// Feeds back an admitted request's measured service time; the envelope
    /// only ever grows, keeping the admit condition conservative.
    pub fn observe_service(&mut self, service_uops: u64) {
        self.service_max_uops = self.service_max_uops.max(service_uops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdmissionConfig {
        AdmissionConfig {
            budget_uops: 1_000,
            queue_capacity: 4,
            release_ratio: 0.5,
            service_prior_uops: 100,
        }
    }

    #[test]
    fn admits_under_budget_and_sheds_over_it() {
        let mut c = AdmissionController::new(cfg());
        // wait 100 + envelope 100 = 200 ≤ 1000 → admit.
        assert_eq!(c.decide(100, 0), AdmissionDecision::Admit);
        assert!(!c.is_shedding());
        // wait 950 + envelope 100 = 1050 > 1000 → engage shedding.
        assert_eq!(
            c.decide(950, 0),
            AdmissionDecision::Shed(ShedCause::OverBudget)
        );
        assert!(c.is_shedding());
        assert_eq!(c.stats().engages, 1);
    }

    #[test]
    fn hysteresis_holds_until_the_low_watermark() {
        let mut c = AdmissionController::new(cfg());
        assert_eq!(
            c.decide(1_000, 0),
            AdmissionDecision::Shed(ShedCause::OverBudget)
        );
        // Back under the budget (700 + 100 = 800 ≤ 1000) but still above
        // the release watermark (500): keep shedding — no flapping.
        assert_eq!(
            c.decide(700, 0),
            AdmissionDecision::Shed(ShedCause::OverBudget)
        );
        assert!(c.is_shedding());
        // At or below the watermark (300 + 100 = 400 ≤ 500): release.
        assert_eq!(c.decide(300, 0), AdmissionDecision::Admit);
        assert!(!c.is_shedding());
        assert_eq!(c.stats().releases, 1);
        assert_eq!(c.stats().engages, 1);
    }

    #[test]
    fn queue_full_sheds_without_flipping_hysteresis() {
        let mut c = AdmissionController::new(cfg());
        assert_eq!(
            c.decide(0, 4),
            AdmissionDecision::Shed(ShedCause::QueueFull)
        );
        assert!(!c.is_shedding(), "capacity sheds are not deadline sheds");
        assert_eq!(c.stats().shed_queue_full, 1);
        assert_eq!(c.stats().engages, 0);
        // The very next arrival with room is admitted.
        assert_eq!(c.decide(0, 3), AdmissionDecision::Admit);
    }

    #[test]
    fn service_envelope_is_monotone_and_tightens_admission() {
        let mut c = AdmissionController::new(cfg());
        c.observe_service(600);
        c.observe_service(200); // smaller observation must not shrink it
        assert_eq!(c.service_envelope_uops(), 600);
        // wait 500 + envelope 600 = 1100 > 1000 → shed, where the prior
        // alone (100) would have admitted.
        assert_eq!(
            c.decide(500, 0),
            AdmissionDecision::Shed(ShedCause::OverBudget)
        );
    }

    #[test]
    fn stats_partition_considered_arrivals() {
        let mut c = AdmissionController::new(cfg());
        for (wait, depth) in [(0, 0), (2_000, 0), (0, 4), (100, 0), (0, 0)] {
            c.decide(wait, depth);
        }
        let s = c.stats();
        assert_eq!(
            s.admitted + s.shed_over_budget + s.shed_queue_full,
            s.considered
        );
    }
}
