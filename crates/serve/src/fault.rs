//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] schedules faults against specific request indexes, so a
//! soak run with a given seed is exactly reproducible. The faults model the
//! hardware failure modes each accelerator is built to detect (§4.2 parity
//! on hash-table entries and RTT back-pointers, §4.3 free-list node
//! corruption, §4.4 config-register parity, §4.5/§4.6 hint-vector and
//! reuse-entry bit flips) plus resource exhaustion in the allocator.

use phpaccel_core::AccelId;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One kind of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Corrupt the nth live hardware hash-table entry.
    HtableEntry {
        /// Index into the table's live entries.
        nth: usize,
    },
    /// Corrupt the nth reverse-translation-table back-pointer.
    HtableRtt {
        /// Index into the RTT.
        nth: usize,
    },
    /// Poison the nth node across the heap manager's free lists.
    HeapFreelist {
        /// Index across the free lists.
        nth: usize,
    },
    /// Flip a bit in the string accelerator's config registers.
    StringConfig,
    /// Corrupt the nth content-reuse-table entry.
    RegexReuse {
        /// Index into the reuse table.
        nth: usize,
    },
    /// Flip one bit of the next texturize hint vector.
    RegexHvFlip {
        /// Bit position to flip.
        bit: usize,
    },
    /// Clamp the allocator's memory ceiling so the request OOMs.
    AllocatorOom,
}

impl FaultKind {
    /// The accelerator domain this fault lands in, or `None` for faults
    /// outside the accelerators (allocator exhaustion).
    pub fn domain(self) -> Option<AccelId> {
        match self {
            FaultKind::HtableEntry { .. } | FaultKind::HtableRtt { .. } => Some(AccelId::Htable),
            FaultKind::HeapFreelist { .. } => Some(AccelId::Heap),
            FaultKind::StringConfig => Some(AccelId::Str),
            FaultKind::RegexReuse { .. } | FaultKind::RegexHvFlip { .. } => Some(AccelId::Regex),
            FaultKind::AllocatorOom => None,
        }
    }
}

/// A fault scheduled for a particular request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// Request index at which the fault is injected (before the request runs).
    pub at_request: u64,
    /// What to inject.
    pub kind: FaultKind,
}

/// An ordered schedule of faults, consumed as the request stream advances.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<PlannedFault>,
    cursor: usize,
}

impl FaultPlan {
    /// Builds a plan from an explicit list (sorted by request index).
    pub fn new(mut faults: Vec<PlannedFault>) -> Self {
        faults.sort_by_key(|f| f.at_request);
        FaultPlan { faults, cursor: 0 }
    }

    /// Builds a seeded plan hitting every accelerator domain: `per_domain`
    /// faults per domain, spread over requests `[burn_in, horizon)`. The
    /// same seed always yields the same plan.
    pub fn seeded(seed: u64, per_domain: usize, burn_in: u64, horizon: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let span = horizon.saturating_sub(burn_in).max(1);
        let mut faults = Vec::new();
        let at = |rng: &mut StdRng| burn_in + rng.gen_range(0..span);
        for _ in 0..per_domain {
            let kinds = [
                if rng.gen_bool(0.5) {
                    FaultKind::HtableEntry {
                        nth: rng.gen_range(0..8),
                    }
                } else {
                    FaultKind::HtableRtt {
                        nth: rng.gen_range(0..8),
                    }
                },
                FaultKind::HeapFreelist {
                    nth: rng.gen_range(0..4),
                },
                FaultKind::StringConfig,
                if rng.gen_bool(0.5) {
                    FaultKind::RegexReuse {
                        nth: rng.gen_range(0..4),
                    }
                } else {
                    FaultKind::RegexHvFlip {
                        bit: rng.gen_range(0..32),
                    }
                },
            ];
            for kind in kinds {
                faults.push(PlannedFault {
                    at_request: at(&mut rng),
                    kind,
                });
            }
        }
        FaultPlan::new(faults)
    }

    /// Every scheduled fault (injected or not).
    pub fn all(&self) -> &[PlannedFault] {
        &self.faults
    }

    /// Splits the plan across `workers` shards: shard `w` receives exactly
    /// the faults whose `at_request % workers == w`, with *global* request
    /// indices kept intact. Under the pool's modulo sharding, each fault
    /// therefore fires on the worker that actually serves its request, and
    /// the shards' union is the original plan.
    pub fn partition(&self, workers: usize) -> Vec<FaultPlan> {
        assert!(workers > 0, "at least one worker shard");
        let mut shards = vec![Vec::new(); workers];
        for f in &self.faults {
            shards[(f.at_request % workers as u64) as usize].push(*f);
        }
        shards.into_iter().map(FaultPlan::new).collect()
    }

    /// Appends late-scheduled faults, keeping the not-yet-consumed tail
    /// sorted by request index. The HTTP front end uses this: its workers
    /// pull each request's due faults from one shared global plan and
    /// deliver them into their private server's (otherwise empty) plan,
    /// since dynamic worker assignment cannot pre-partition the schedule.
    pub fn extend(&mut self, faults: impl IntoIterator<Item = PlannedFault>) {
        let before = self.faults.len();
        self.faults.extend(faults);
        if self.faults.len() != before {
            self.faults[self.cursor..].sort_by_key(|f| f.at_request);
        }
    }

    /// Removes and returns the faults due at request `req`. Faults scheduled
    /// for earlier, already-passed requests are also drained (and returned)
    /// so a sparse request stream cannot strand them.
    pub fn take_due(&mut self, req: u64) -> Vec<PlannedFault> {
        let start = self.cursor;
        while self.cursor < self.faults.len() && self.faults[self.cursor].at_request <= req {
            self.cursor += 1;
        }
        self.faults[start..self.cursor].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_faults_drain_in_order() {
        let mut plan = FaultPlan::new(vec![
            PlannedFault {
                at_request: 7,
                kind: FaultKind::StringConfig,
            },
            PlannedFault {
                at_request: 3,
                kind: FaultKind::AllocatorOom,
            },
        ]);
        assert!(plan.take_due(2).is_empty());
        let due = plan.take_due(5);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].kind, FaultKind::AllocatorOom);
        let due = plan.take_due(7);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].kind, FaultKind::StringConfig);
        assert!(plan.take_due(100).is_empty());
    }

    #[test]
    fn partition_preserves_every_fault_with_global_indices() {
        let plan = FaultPlan::seeded(7, 3, 5, 60);
        for workers in [1usize, 2, 4, 8] {
            let shards = plan.partition(workers);
            assert_eq!(shards.len(), workers);
            let mut union: Vec<PlannedFault> = shards
                .iter()
                .flat_map(|s| s.all().iter().copied())
                .collect();
            union.sort_by_key(|f| f.at_request);
            let mut expected = plan.all().to_vec();
            expected.sort_by_key(|f| f.at_request);
            assert_eq!(union, expected, "shard union must equal the plan");
            for (w, shard) in shards.iter().enumerate() {
                for f in shard.all() {
                    assert_eq!(
                        f.at_request % workers as u64,
                        w as u64,
                        "fault landed on the wrong shard"
                    );
                }
            }
        }
    }

    #[test]
    fn seeded_plans_are_reproducible_and_cover_all_domains() {
        let a = FaultPlan::seeded(42, 2, 10, 100);
        let b = FaultPlan::seeded(42, 2, 10, 100);
        assert_eq!(a.all(), b.all());
        assert_eq!(a.all().len(), 8);
        for id in AccelId::ALL {
            assert!(
                a.all().iter().any(|f| f.kind.domain() == Some(id)),
                "domain {} uncovered",
                id.name()
            );
        }
        for f in a.all() {
            assert!((10..100).contains(&f.at_request));
        }
        let c = FaultPlan::seeded(43, 2, 10, 100);
        assert_ne!(a.all(), c.all(), "different seeds should differ");
    }
}
