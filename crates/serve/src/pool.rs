//! Multi-worker request serving.
//!
//! [`WorkerPool`] shards a request stream across N workers, mirroring the
//! paper's per-core deployment: each worker owns a private [`PhpMachine`]
//! (accelerator state is per-core hardware and is never shared), its own
//! slice of the global [`FaultPlan`], and its own circuit breakers. Requests
//! are sharded by index — worker `w` of `W` serves requests `w, w+W, w+2W, …`
//! — so the union of the workers' streams is exactly the single-server
//! stream, and [`ServeStats::merge`] makes the pool totals the lossless sum
//! of the workers'.
//!
//! What *is* shared is read-only: callers typically drive every worker from
//! one `Arc`-held compile cache (`workloads::php_corpus::CorpusCache`), the
//! software analogue of a bytecode cache shared across server processes.

use crate::breaker::{BreakerConfig, BreakerState};
use crate::fault::FaultPlan;
use crate::memo::{MemoCache, MemoCacheStats};
use crate::outcome::{classify_panic, panic_message, RequestOutcome};
use crate::sandbox::SandboxConfig;
use crate::server::{RequestRecord, ServeStats, Server};
use php_runtime::StaticSavings;
use phpaccel_core::{AccelId, PhpMachine};
use std::sync::Arc;

/// Configuration for one pool run.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of workers (≥ 1).
    pub workers: usize,
    /// Total number of requests across the pool.
    pub requests: u64,
    /// Breaker configuration applied to every worker's four breakers.
    pub breaker_cfg: BreakerConfig,
    /// Sandbox limits applied to every request.
    pub sandbox: SandboxConfig,
    /// Global fault plan; partitioned so each fault fires on the worker
    /// that serves its request (see [`FaultPlan::partition`]).
    pub plan: FaultPlan,
    /// Replay each successful request on a per-worker all-software
    /// [`PhpMachine::baseline`] reference and count byte mismatches.
    pub reference: bool,
    /// Restore machines (and references) to a pristine request boundary
    /// after every request. This makes each request's result independent of
    /// machine history, so responses and per-request counters are identical
    /// at any worker count — the mode the determinism tests and the bench
    /// run in. Soaks leave it off so faults land in live state.
    pub reset_between_requests: bool,
    /// Retain response bytes in the per-request records.
    pub keep_bodies: bool,
    /// Enable the allocator's arena/epoch mode on every worker machine:
    /// allocation sites the region analysis proved request-scoped
    /// bump-allocate into a per-request epoch reclaimed in O(1) at the
    /// request boundary. Reference machines stay on the free-list path, so
    /// the replay check also compares arena mode against classic
    /// allocation byte-for-byte.
    pub arena: bool,
    /// Cross-request memo tier shared by every worker. The pool itself
    /// cannot attach it to the interpreters the handlers build, so handlers
    /// capture their own `Arc` clone of the same cache; carrying it here too
    /// lets the report snapshot the cache-wide counters and makes the run's
    /// memo policy part of its configuration. Reference machines never see
    /// the tier — replay stays an independent recomputation.
    pub memo: Option<Arc<MemoCache>>,
}

impl PoolConfig {
    /// A deterministic, reference-checked configuration with no faults.
    pub fn deterministic(workers: usize, requests: u64) -> Self {
        PoolConfig {
            workers,
            requests,
            breaker_cfg: BreakerConfig::default(),
            sandbox: SandboxConfig::unlimited(),
            plan: FaultPlan::default(),
            reference: true,
            reset_between_requests: true,
            keep_bodies: true,
            arena: false,
            memo: None,
        }
    }

    /// The same configuration with arena/epoch allocation enabled.
    pub fn with_arena(mut self, arena: bool) -> Self {
        self.arena = arena;
        self
    }

    /// The same configuration sharing `cache` across the workers. Handlers
    /// still attach the cache to the engines they build (see
    /// `workloads::php_corpus::PreparedScript::run_memo`).
    pub fn with_memo(mut self, cache: Arc<MemoCache>) -> Self {
        self.memo = Some(cache);
        self
    }
}

/// What one worker did: its server statistics plus the counters that live
/// on the machine rather than in [`ServeStats`].
#[derive(Debug)]
pub struct WorkerReport {
    /// Worker index in `0..workers`.
    pub worker: usize,
    /// The worker's serving statistics.
    pub stats: ServeStats,
    /// Per-request records, in this worker's serving order (global indices).
    pub records: Vec<RequestRecord>,
    /// Simulated service time of each request in µops, parallel to
    /// `records` (delta of the machine profiler's `total_uops`).
    pub service_uops: Vec<u64>,
    /// Total metered µops this worker executed.
    pub total_uops: u64,
    /// Injected-fault counters per accelerator domain.
    pub injected: [u64; 4],
    /// Detected-fault counters per accelerator domain.
    pub detected: [u64; 4],
    /// Static-analysis savings accumulated by this worker's machine.
    pub savings: StaticSavings,
    /// Breaker trips per domain.
    pub trips: [u64; 4],
    /// Breaker recoveries per domain.
    pub recoveries: [u64; 4],
    /// Whether every breaker ended the run closed.
    pub all_breakers_closed: bool,
    /// Live allocator blocks on the worker's machine after the run (leak
    /// check — should be 0 once every request ended or recovered).
    pub live_blocks: usize,
}

/// One worker whose thread died instead of returning a report.
///
/// The sandbox catches handler panics, so a worker thread dying means the
/// failure escaped the per-request isolation — a panic in the worker scaffold
/// itself (machine construction, the handler factory, reference recovery).
/// It is classified like a request panic so operators see OOM/timeout/crash
/// consistently, but it is *per-worker*: the other workers' results survive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFailure {
    /// Index of the worker that died.
    pub worker: usize,
    /// The panic classified through [`classify_panic`].
    pub outcome: RequestOutcome,
    /// The raw panic message.
    pub message: String,
}

/// The merged result of a pool run.
#[derive(Debug)]
pub struct PoolReport {
    /// Number of workers that served the stream.
    pub workers: usize,
    /// Lossless sum of the workers' statistics.
    pub stats: ServeStats,
    /// All request records, sorted by global request index.
    pub records: Vec<RequestRecord>,
    /// Simulated per-request service times in µops, parallel to `records`.
    pub service_uops: Vec<u64>,
    /// Each worker's total metered µops: the pool's simulated elapsed time
    /// is the maximum entry (workers run in parallel on their own cores).
    pub worker_uops: Vec<u64>,
    /// Summed injected-fault counters per domain.
    pub injected: [u64; 4],
    /// Summed detected-fault counters per domain.
    pub detected: [u64; 4],
    /// Summed static-analysis savings.
    pub savings: StaticSavings,
    /// Summed breaker trips per domain.
    pub trips: [u64; 4],
    /// Summed breaker recoveries per domain.
    pub recoveries: [u64; 4],
    /// Whether every breaker on every worker ended the run closed.
    pub all_breakers_closed: bool,
    /// Summed live allocator blocks across worker machines after the run.
    pub live_blocks: usize,
    /// End-of-run snapshot of the shared memo cache, when one was
    /// configured. Cache-wide (hits/misses/stores are also in
    /// [`ServeStats`], summed from the workers' engine counters; `entries`
    /// exists only here).
    pub memo: Option<MemoCacheStats>,
    /// Workers whose threads panicked instead of reporting. Their requests
    /// are absent from `records`/`stats`; the surviving workers' results are
    /// merged normally (empty on a healthy run).
    pub failed_workers: Vec<WorkerFailure>,
}

impl PoolReport {
    /// The pool's simulated elapsed time in µops: the busiest worker's
    /// total, since workers execute concurrently on private cores.
    pub fn simulated_elapsed_uops(&self) -> u64 {
        self.worker_uops.iter().copied().max().unwrap_or(0)
    }
}

/// A pool of request-serving workers, each wrapping its own [`Server`].
#[derive(Debug)]
pub struct WorkerPool {
    cfg: PoolConfig,
}

impl WorkerPool {
    /// Creates a pool from `cfg`. Panics if `cfg.workers == 0`.
    pub fn new(cfg: PoolConfig) -> Self {
        assert!(cfg.workers > 0, "a pool needs at least one worker");
        WorkerPool { cfg }
    }

    /// Number of requests worker `w` serves under modulo sharding.
    fn requests_for(&self, w: usize) -> u64 {
        let (total, stride, w) = (self.cfg.requests, self.cfg.workers as u64, w as u64);
        if total > w {
            (total - w).div_ceil(stride)
        } else {
            0
        }
    }

    /// Runs the whole request stream across the workers and merges the
    /// results.
    ///
    /// `make_machine(w)` builds worker `w`'s private machine and
    /// `make_handler(w)` builds its request handler — both are called *on
    /// the worker's thread*, so the handler itself needs no `Send` bound and
    /// may own thread-local state. Handlers see global request indices.
    pub fn run<M, F, H>(&self, make_machine: M, make_handler: F) -> PoolReport
    where
        M: Fn(usize) -> PhpMachine + Sync,
        F: Fn(usize) -> H + Sync,
        H: FnMut(&mut PhpMachine, u64) -> Vec<u8>,
    {
        let shards = self.cfg.plan.partition(self.cfg.workers);
        // A worker thread dying must not abort the pool: joins collect
        // per-worker Results, and a panic becomes a classified
        // `WorkerFailure` while every other worker's report is merged
        // normally (the old `.expect()` here tore the whole pool down).
        let mut reports: Vec<WorkerReport> = Vec::with_capacity(self.cfg.workers);
        let mut failed: Vec<WorkerFailure> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .enumerate()
                .map(|(w, shard)| {
                    let n = self.requests_for(w);
                    let cfg = &self.cfg;
                    let make_machine = &make_machine;
                    let make_handler = &make_handler;
                    scope.spawn(move || {
                        run_worker(w, n, shard, cfg, make_machine(w), make_handler(w))
                    })
                })
                .collect();
            for (w, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(report) => reports.push(report),
                    Err(payload) => {
                        let message = panic_message(payload.as_ref());
                        failed.push(WorkerFailure {
                            worker: w,
                            outcome: classify_panic(message.clone()),
                            message,
                        });
                    }
                }
            }
        });
        let mut report = merge_reports(self.cfg.workers, reports);
        report.memo = self.cfg.memo.as_ref().map(|c| c.stats());
        report.failed_workers = failed;
        report
    }
}

/// One worker's serving loop (runs on the worker's thread).
fn run_worker<H>(
    worker: usize,
    requests: u64,
    shard: FaultPlan,
    cfg: &PoolConfig,
    machine: PhpMachine,
    mut handler: H,
) -> WorkerReport
where
    H: FnMut(&mut PhpMachine, u64) -> Vec<u8>,
{
    if cfg.arena {
        machine.ctx().set_arena_enabled(true);
    }
    let mut server = Server::new(machine, cfg.breaker_cfg, cfg.sandbox)
        .with_fault_plan(shard)
        .with_request_numbering(worker as u64, cfg.workers as u64)
        .with_keep_bodies(cfg.keep_bodies);
    if cfg.reference {
        server = server.with_reference(PhpMachine::baseline());
    }

    let mut records = Vec::with_capacity(requests as usize);
    let mut service_uops = Vec::with_capacity(requests as usize);
    for _ in 0..requests {
        let before = server.machine().ctx().profiler().total_uops();
        let record = server.serve(&mut handler);
        let after = server.machine().ctx().profiler().total_uops();
        service_uops.push(after.saturating_sub(before));
        records.push(record);
        if cfg.reset_between_requests {
            server.recover_between_requests();
        }
    }

    let machine = server.machine();
    let mut trips = [0u64; 4];
    let mut recoveries = [0u64; 4];
    let mut all_closed = true;
    for id in AccelId::ALL {
        let b = server.breaker(id);
        trips[id.index()] = b.trips;
        recoveries[id.index()] = b.recoveries;
        all_closed &= b.state() == BreakerState::Closed;
    }
    let savings = machine.ctx().profiler().static_savings();
    let mut stats = server.stats().clone();
    // The engines count memo traffic on the worker's profiler; surface it in
    // the serving stats so pool totals carry hit/miss/invalidation counts.
    stats.memo_hits = savings.memo_hits;
    stats.memo_misses = savings.memo_misses;
    stats.memo_stores = savings.memo_stores;
    stats.memo_invalidations = savings.memo_invalidations;
    WorkerReport {
        worker,
        stats,
        total_uops: machine.ctx().profiler().total_uops(),
        injected: machine.injected_fault_counts(),
        detected: machine.detected_fault_counts(),
        savings,
        trips,
        recoveries,
        all_breakers_closed: all_closed,
        live_blocks: machine.ctx().with_allocator(|a| a.live_block_count()),
        records,
        service_uops,
    }
}

/// Folds the per-worker reports into a pool total, re-interleaving the
/// records into global request order.
fn merge_reports(workers: usize, reports: Vec<WorkerReport>) -> PoolReport {
    let mut stats = ServeStats::default();
    let mut injected = [0u64; 4];
    let mut detected = [0u64; 4];
    let mut savings = StaticSavings::default();
    let mut trips = [0u64; 4];
    let mut recoveries = [0u64; 4];
    let mut worker_uops = Vec::with_capacity(workers);
    let mut all_closed = true;
    let mut live_blocks = 0usize;
    let mut tagged: Vec<(RequestRecord, u64)> = Vec::new();
    for report in reports {
        stats.merge(&report.stats);
        savings.accumulate(&report.savings);
        for i in 0..4 {
            injected[i] += report.injected[i];
            detected[i] += report.detected[i];
            trips[i] += report.trips[i];
            recoveries[i] += report.recoveries[i];
        }
        worker_uops.push(report.total_uops);
        all_closed &= report.all_breakers_closed;
        live_blocks += report.live_blocks;
        tagged.extend(report.records.into_iter().zip(report.service_uops));
    }
    tagged.sort_by_key(|(r, _)| r.request);
    let (records, service_uops) = tagged.into_iter().unzip();
    PoolReport {
        workers,
        stats,
        records,
        service_uops,
        worker_uops,
        injected,
        detected,
        savings,
        trips,
        recoveries,
        all_breakers_closed: all_closed,
        live_blocks,
        memo: None,
        failed_workers: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_handler(_w: usize) -> impl FnMut(&mut PhpMachine, u64) -> Vec<u8> {
        |m: &mut PhpMachine, req: u64| {
            let s = m.transient_str(format!("req {req}"));
            let out = match s {
                php_runtime::PhpValue::Str(s) => m.strtoupper(&s).as_bytes().to_vec(),
                _ => unreachable!(),
            };
            m.end_request();
            out
        }
    }

    #[test]
    fn sharding_covers_every_request_exactly_once() {
        for workers in [1usize, 2, 3, 4, 8] {
            let pool = WorkerPool::new(PoolConfig::deterministic(workers, 21));
            let report = pool.run(|_| PhpMachine::specialized(), echo_handler);
            assert_eq!(report.stats.requests, 21);
            assert!(report.stats.outcomes_partition_requests());
            let indices: Vec<u64> = report.records.iter().map(|r| r.request).collect();
            assert_eq!(indices, (0..21).collect::<Vec<_>>(), "{workers} workers");
            assert_eq!(report.service_uops.len(), 21);
            assert_eq!(report.worker_uops.len(), workers);
        }
    }

    /// Regression: one worker's thread panicking (outside the per-request
    /// sandbox — here in machine construction) used to abort the whole pool
    /// via `join().expect(...)`. It must instead surface as a classified
    /// [`WorkerFailure`] while the surviving workers' results merge
    /// normally.
    #[test]
    fn one_worker_panicking_does_not_abort_the_pool() {
        let pool = WorkerPool::new(PoolConfig::deterministic(2, 10));
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report = pool.run(
            |w| {
                if w == 1 {
                    panic!("worker 1 machine bring-up failed");
                }
                PhpMachine::specialized()
            },
            echo_handler,
        );
        std::panic::set_hook(hook);

        // Worker 0's even-indexed requests survived intact.
        assert_eq!(report.stats.requests, 5);
        assert_eq!(report.stats.ok, 5);
        assert_eq!(report.stats.mismatches, 0);
        let indices: Vec<u64> = report.records.iter().map(|r| r.request).collect();
        assert_eq!(indices, vec![0, 2, 4, 6, 8]);

        // The dead worker is reported, classified, and attributable.
        assert_eq!(report.failed_workers.len(), 1);
        let failure = &report.failed_workers[0];
        assert_eq!(failure.worker, 1);
        assert!(failure.message.contains("bring-up failed"));
        assert!(matches!(failure.outcome, RequestOutcome::Panicked { .. }));

        // A healthy run reports no failures.
        let healthy = WorkerPool::new(PoolConfig::deterministic(2, 10))
            .run(|_| PhpMachine::specialized(), echo_handler);
        assert!(healthy.failed_workers.is_empty());
        assert_eq!(healthy.stats.requests, 10);
    }

    #[test]
    fn pool_totals_equal_sum_of_workers() {
        let pool = WorkerPool::new(PoolConfig::deterministic(4, 20));
        let report = pool.run(|_| PhpMachine::specialized(), echo_handler);
        assert_eq!(report.stats.ok, 20);
        assert_eq!(report.stats.mismatches, 0);
        // Worker totals cover the per-request deltas plus the inter-request
        // recovery work metered between them.
        assert!(report.worker_uops.iter().sum::<u64>() >= report.service_uops.iter().sum::<u64>());
        assert!(report.service_uops.iter().all(|&u| u > 0));
        assert!(report.simulated_elapsed_uops() < report.worker_uops.iter().sum::<u64>());
        assert!(report.all_breakers_closed);
    }
}
