//! The HTTP/1.1 front end (ROADMAP item 1).
//!
//! Built on `std::net` only — the workspace vendors no async runtime — and
//! layered exactly like the `tokio_php` exemplar:
//!
//! ```text
//!   acceptor thread ── connection threads (parse, keep-alive)
//!        │                   │
//!        │             middleware chain  (rate limit → access log →
//!        │                   │            error pages → identity encoding)
//!        │             admission control (predicted-wait shedding, 503)
//!        │                   │
//!        │             bounded sync_channel queue
//!        │                   │
//!        └───────────► N PHP workers, each a private [`Server`]
//!                           (sandbox → faults → breakers → memo → replay)
//! ```
//!
//! The HTTP layer is a *transport* over the same [`Server::serve_indexed`]
//! seam the deterministic pool drives: a worker thread owns a private
//! [`PhpMachine`] wrapped in a `Server`, pulls each request's due faults
//! from one shared global [`FaultPlan`], and serves corpus scripts through
//! the full sandbox/fault/breaker/memo pipeline. With
//! `reset_between_requests` every response is machine-history-independent,
//! so the bytes served over a socket are byte-identical to driving the
//! `Server` directly on the same request indices — the end-to-end test's
//! invariant, and the reason HTTP never becomes a second execution path.
//!
//! Internal endpoints: `GET /health` (liveness) and `GET /metrics`
//! (Prometheus text format, schema in [`crate::metrics_text`]). Application
//! traffic is `GET /run/<corpus-script>`.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionDecision, ShedCause};
use crate::breaker::{BreakerConfig, BreakerState};
use crate::fault::FaultPlan;
use crate::hist::Histogram;
use crate::memo::{MemoCache, MemoCacheStats};
use crate::metrics_text::{render_prometheus, MetricsSnapshot};
use crate::middleware::{
    AccessLog, ErrorPages, IdentityEncoding, Middleware as _, MiddlewareChain, MiddlewareRequest,
    RateLimit,
};
use crate::sandbox::SandboxConfig;
use crate::server::{ServeStats, Server};
use php_interp::MemoTier;
use php_runtime::StaticSavings;
use phpaccel_core::{AccelId, Engine, PhpMachine};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Hard limits the parser enforces before allocating or trusting anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Maximum request-line length in bytes (414 beyond it).
    pub max_request_line: usize,
    /// Maximum single header line length in bytes (431 beyond it).
    pub max_header_line: usize,
    /// Maximum number of header lines (431 beyond it).
    pub max_headers: usize,
    /// Maximum declared body size in bytes (413 beyond it).
    pub max_body: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_request_line: 8192,
            max_header_line: 8192,
            max_headers: 100,
            max_body: 1 << 20,
        }
    }
}

/// Why a request failed to parse. [`HttpParseError::status`] maps each
/// variant to the response the connection sends before closing; `Eof` and
/// `Io` get no response (the peer is gone).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpParseError {
    /// Clean end of stream before any request byte — a closed keep-alive.
    Eof,
    /// Transport error mid-request.
    Io(ErrorKind),
    /// Request line exceeded [`HttpLimits::max_request_line`].
    RequestLineTooLong,
    /// Request line was not `METHOD TARGET HTTP/x.y`.
    MalformedRequestLine,
    /// HTTP version other than 1.0 / 1.1.
    UnsupportedVersion,
    /// A header line had no colon or an empty name.
    MalformedHeader,
    /// A header line exceeded [`HttpLimits::max_header_line`].
    HeaderTooLong,
    /// More than [`HttpLimits::max_headers`] header lines.
    TooManyHeaders,
    /// `Content-Length` was not a decimal integer.
    InvalidContentLength,
    /// Declared body exceeded [`HttpLimits::max_body`].
    BodyTooLarge,
    /// A `Transfer-Encoding` other than `identity` (chunked is not
    /// implemented; the server never advertises it).
    UnsupportedTransferEncoding,
    /// The stream ended mid-request (truncated headers or body).
    UnexpectedEof,
}

impl HttpParseError {
    /// The status code to answer with, or `None` when the peer is gone and
    /// no response can be delivered.
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpParseError::Eof | HttpParseError::Io(_) => None,
            HttpParseError::RequestLineTooLong => Some(414),
            HttpParseError::MalformedRequestLine
            | HttpParseError::MalformedHeader
            | HttpParseError::InvalidContentLength
            | HttpParseError::UnexpectedEof => Some(400),
            HttpParseError::UnsupportedVersion => Some(505),
            HttpParseError::HeaderTooLong | HttpParseError::TooManyHeaders => Some(431),
            HttpParseError::BodyTooLarge => Some(413),
            HttpParseError::UnsupportedTransferEncoding => Some(501),
        }
    }
}

/// HTTP version of a parsed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpVersion {
    /// HTTP/1.0 (keep-alive is opt-in).
    H10,
    /// HTTP/1.1 (keep-alive is the default).
    H11,
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, as received (`GET`, `POST`, …).
    pub method: String,
    /// The raw request target (path + query, undecoded).
    pub target: String,
    /// Percent-decoded path component.
    pub path: String,
    /// Decoded query pairs, in order.
    pub query: Vec<(String, String)>,
    /// Protocol version.
    pub version: HttpVersion,
    /// Headers in order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length` bytes; empty without one).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl HttpRequest {
    /// First header with the given lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one `\n`-terminated line of at most `max` bytes (excluding the
/// terminator). Distinguishes clean EOF, truncation, and oversize.
fn read_line_bounded<R: BufRead>(
    r: &mut R,
    max: usize,
    oversize: HttpParseError,
) -> Result<Vec<u8>, HttpParseError> {
    let mut buf = Vec::new();
    let mut limited = r.by_ref().take(max as u64 + 2);
    match limited.read_until(b'\n', &mut buf) {
        Ok(_) => {}
        Err(e) => return Err(HttpParseError::Io(e.kind())),
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        if buf.len() > max {
            return Err(oversize);
        }
        Ok(buf)
    } else if buf.len() > max {
        Err(oversize)
    } else if buf.is_empty() {
        Err(HttpParseError::Eof)
    } else {
        Err(HttpParseError::UnexpectedEof)
    }
}

/// Decodes `%XX` escapes (and, in query mode, `+` as space). Invalid or
/// truncated escapes pass through literally; the result is lossy UTF-8 —
/// decoding never fails and never panics.
fn percent_decode(s: &str, plus_is_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a request target into a decoded path and decoded query pairs.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let pairs = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k, true), percent_decode(v, true)),
            None => (percent_decode(kv, true), String::new()),
        })
        .collect();
    (percent_decode(path, false), pairs)
}

/// Parses one HTTP/1.x request from `r` under `limits`. Never panics on any
/// input (see the `http_parser_prop` proptest); every malformed or
/// oversized input maps to an [`HttpParseError`] the connection can answer
/// and close on.
pub fn parse_request<R: BufRead>(
    r: &mut R,
    limits: &HttpLimits,
) -> Result<HttpRequest, HttpParseError> {
    let line = read_line_bounded(
        r,
        limits.max_request_line,
        HttpParseError::RequestLineTooLong,
    )?;
    let line = String::from_utf8_lossy(&line).into_owned();
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpParseError::MalformedRequestLine),
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(HttpParseError::MalformedRequestLine);
    }
    if target.is_empty() || !target.starts_with('/') {
        return Err(HttpParseError::MalformedRequestLine);
    }
    let version = match version {
        "HTTP/1.1" => HttpVersion::H11,
        "HTTP/1.0" => HttpVersion::H10,
        _ => return Err(HttpParseError::UnsupportedVersion),
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let raw = match read_line_bounded(r, limits.max_header_line, HttpParseError::HeaderTooLong)
        {
            Ok(raw) => raw,
            // Truncation inside the header block is never a clean EOF.
            Err(HttpParseError::Eof) => return Err(HttpParseError::UnexpectedEof),
            Err(e) => return Err(e),
        };
        if raw.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpParseError::TooManyHeaders);
        }
        let raw = String::from_utf8_lossy(&raw).into_owned();
        let Some((name, value)) = raw.split_once(':') else {
            return Err(HttpParseError::MalformedHeader);
        };
        let name = name.trim();
        if name.is_empty() || name.contains(' ') {
            return Err(HttpParseError::MalformedHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };
    if let Some(te) = find("transfer-encoding") {
        if !te.eq_ignore_ascii_case("identity") {
            return Err(HttpParseError::UnsupportedTransferEncoding);
        }
    }
    let content_length = match find("content-length") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| HttpParseError::InvalidContentLength)?,
        None => 0,
    };
    if content_length > limits.max_body as u64 {
        return Err(HttpParseError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length as usize];
    if content_length > 0 {
        r.read_exact(&mut body).map_err(|e| match e.kind() {
            ErrorKind::UnexpectedEof => HttpParseError::UnexpectedEof,
            kind => HttpParseError::Io(kind),
        })?;
    }

    let keep_alive = match (version, find("connection")) {
        (_, Some(c)) if c.eq_ignore_ascii_case("close") => false,
        (HttpVersion::H10, Some(c)) if c.eq_ignore_ascii_case("keep-alive") => true,
        (HttpVersion::H10, _) => false,
        (HttpVersion::H11, _) => true,
    };
    let (path, query) = split_target(target);
    Ok(HttpRequest {
        method: method.to_string(),
        target: target.to_string(),
        path,
        query,
        version,
        headers,
        body,
        keep_alive,
    })
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// The canonical reason phrase for a status code.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

/// One response under construction (middleware mutates it in place).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers in order, names lowercased. `content-length` and
    /// `connection` are emitted by [`HttpResponse::write_to`] and must not
    /// be set here.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// An empty response with the given status.
    pub fn new(status: u16) -> Self {
        HttpResponse {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        HttpResponse::new(status)
            .with_header("content-type", "text/plain; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// A `text/html` response.
    pub fn html(status: u16, body: Vec<u8>) -> Self {
        HttpResponse::new(status)
            .with_header("content-type", "text/html; charset=utf-8")
            .with_body(body)
    }

    /// Appends a header (name lowercased).
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers
            .push((name.to_ascii_lowercase(), value.to_string()));
        self
    }

    /// Replaces the body.
    pub fn with_body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// First header with the given lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Sets or replaces a header in place.
    pub fn set_header(&mut self, name: &str, value: &str) {
        let name = name.to_ascii_lowercase();
        match self.headers.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = value.to_string(),
            None => self.headers.push((name, value.to_string())),
        }
    }

    /// Serializes the response, adding `content-length` and `connection`.
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\n",
            self.status,
            reason_phrase(self.status)
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "content-length: {}\r\n", self.body.len())?;
        write!(
            w,
            "connection: {}\r\n\r\n",
            if keep_alive { "keep-alive" } else { "close" }
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Front-end configuration. The request pipeline behind the queue reuses
/// the same knobs as [`crate::pool::PoolConfig`], so a loopback run is
/// directly comparable to a pool run.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// PHP worker threads (≥ 1).
    pub workers: usize,
    /// Bounded request-queue capacity (≥ 1); arrivals beyond it get 503.
    pub queue_capacity: usize,
    /// Execution engine on every worker machine.
    pub engine: Engine,
    /// Breaker configuration for every worker's four breakers.
    pub breaker_cfg: BreakerConfig,
    /// Per-request sandbox limits.
    pub sandbox: SandboxConfig,
    /// Global fault plan; workers pull each request's due faults from it.
    pub plan: FaultPlan,
    /// Replay each successful request on a per-worker all-software
    /// reference and count byte mismatches.
    pub reference: bool,
    /// Restore machines to a pristine request boundary after every request.
    /// Required for byte-identity with a directly-driven [`Server`]: HTTP
    /// assigns requests to workers dynamically, so responses must not
    /// depend on machine history.
    pub reset_between_requests: bool,
    /// Arena/epoch allocation on worker machines.
    pub arena: bool,
    /// Shared cross-request memo tier.
    pub memo: Option<Arc<MemoCache>>,
    /// Parser limits.
    pub limits: HttpLimits,
    /// Deadline-aware admission control; `None` admits everything the
    /// queue can hold.
    pub admission: Option<AdmissionConfig>,
    /// Token-bucket rate limiting `(capacity, refill_per_sec)`; `None`
    /// disables the stage.
    pub rate_limit: Option<(u64, f64)>,
    /// Maximum concurrent connections; beyond it new connections get an
    /// immediate 503 and close.
    pub max_connections: usize,
    /// Maximum requests served per keep-alive connection.
    pub max_keep_alive_requests: usize,
}

impl HttpConfig {
    /// A loopback configuration with `workers` workers, reference replay
    /// and reset-between-requests on, and no faults, admission, or rate
    /// limiting.
    pub fn loopback(workers: usize) -> Self {
        HttpConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            queue_capacity: workers.max(1) * 100,
            engine: Engine::TreeWalk,
            breaker_cfg: BreakerConfig::default(),
            sandbox: SandboxConfig::unlimited(),
            plan: FaultPlan::default(),
            reference: true,
            reset_between_requests: true,
            arena: false,
            memo: None,
            limits: HttpLimits::default(),
            admission: None,
            rate_limit: None,
            max_connections: 256,
            max_keep_alive_requests: 10_000,
        }
    }
}

/// Point-in-time front-door counters (everything that happens before a
/// request reaches a worker).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Connections refused because `max_connections` was reached.
    pub connections_refused: u64,
    /// Requests parsed successfully.
    pub http_requests: u64,
    /// Requests that failed to parse (answered 4xx/5xx and closed).
    pub parse_errors: u64,
    /// `/run/<name>` lookups that missed the corpus.
    pub not_found: u64,
    /// Non-GET requests refused with 405.
    pub method_not_allowed: u64,
    /// Requests refused with 429 by the rate limiter.
    pub rate_limited: u64,
    /// Arrivals shed by admission control (predicted deadline miss).
    pub shed_over_budget: u64,
    /// Arrivals shed because the bounded queue was full.
    pub shed_queue_full: u64,
    /// `/health` requests served.
    pub health_requests: u64,
    /// `/metrics` requests served.
    pub metrics_requests: u64,
}

impl FrontSnapshot {
    /// Total arrivals refused with 503 before reaching a worker.
    pub fn shed_total(&self) -> u64 {
        self.shed_over_budget + self.shed_queue_full
    }
}

#[derive(Debug, Default)]
struct FrontCounters {
    connections: AtomicU64,
    connections_refused: AtomicU64,
    http_requests: AtomicU64,
    parse_errors: AtomicU64,
    not_found: AtomicU64,
    method_not_allowed: AtomicU64,
    shed_over_budget: AtomicU64,
    shed_queue_full: AtomicU64,
    health_requests: AtomicU64,
    metrics_requests: AtomicU64,
}

/// One worker's published state, refreshed after every request it serves.
#[derive(Debug, Clone, Default)]
struct WorkerSnapshot {
    stats: ServeStats,
    savings: StaticSavings,
    injected: [u64; 4],
    detected: [u64; 4],
    trips: [u64; 4],
    recoveries: [u64; 4],
    /// Breaker state per domain: 0 closed, 1 half-open, 2 open.
    breaker_states: [u8; 4],
    total_uops: u64,
    live_blocks: usize,
}

/// One queued request.
struct Job {
    req: u64,
    script: Arc<workloads::php_corpus::PreparedScript>,
    depth_at_arrival: u64,
    reply: std::sync::mpsc::Sender<WorkerReply>,
}

struct WorkerReply {
    status: u16,
    body: Vec<u8>,
}

/// Shared state between the acceptor, connection threads, and workers.
struct FrontState {
    corpus: Arc<workloads::php_corpus::CorpusCache>,
    jobs: SyncSender<Job>,
    queue_depth: AtomicUsize,
    next_request: AtomicU64,
    admission: Option<Mutex<AdmissionController>>,
    plan: Mutex<FaultPlan>,
    snapshots: Vec<Mutex<WorkerSnapshot>>,
    front: FrontCounters,
    shed_depth: Mutex<Histogram>,
    chain: MiddlewareChain,
    access_log: Arc<AccessLog>,
    rate_limit: Option<Arc<RateLimit>>,
    memo: Option<Arc<MemoCache>>,
    shutdown: AtomicBool,
    conn_count: AtomicUsize,
    limits: HttpLimits,
    max_connections: usize,
    max_keep_alive_requests: usize,
}

impl FrontState {
    fn front_snapshot(&self) -> FrontSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        FrontSnapshot {
            connections: load(&self.front.connections),
            connections_refused: load(&self.front.connections_refused),
            http_requests: load(&self.front.http_requests),
            parse_errors: load(&self.front.parse_errors),
            not_found: load(&self.front.not_found),
            method_not_allowed: load(&self.front.method_not_allowed),
            rate_limited: self.rate_limit.as_ref().map_or(0, |r| r.limited()),
            shed_over_budget: load(&self.front.shed_over_budget),
            shed_queue_full: load(&self.front.shed_queue_full),
            health_requests: load(&self.front.health_requests),
            metrics_requests: load(&self.front.metrics_requests),
        }
    }

    /// Merges the workers' published state and the front door's shed
    /// accounting into one metrics snapshot. Front sheds are folded into
    /// the merged [`ServeStats`] (`requests`/`shed`/arrival-depth
    /// histogram) so [`ServeStats::outcomes_partition_requests`] covers
    /// every arrival, exactly as in the overload layer.
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        let front = self.front_snapshot();
        let mut stats = ServeStats::default();
        let mut savings = StaticSavings::default();
        let mut injected = [0u64; 4];
        let mut detected = [0u64; 4];
        let mut trips = [0u64; 4];
        let mut recoveries = [0u64; 4];
        let mut breaker_states = Vec::with_capacity(self.snapshots.len());
        let mut worker_uops = Vec::with_capacity(self.snapshots.len());
        let mut live_blocks = 0usize;
        for slot in &self.snapshots {
            let snap = slot.lock().unwrap_or_else(|e| e.into_inner()).clone();
            stats.merge(&snap.stats);
            savings.accumulate(&snap.savings);
            for i in 0..4 {
                injected[i] += snap.injected[i];
                detected[i] += snap.detected[i];
                trips[i] += snap.trips[i];
                recoveries[i] += snap.recoveries[i];
            }
            breaker_states.push(snap.breaker_states);
            worker_uops.push(snap.total_uops);
            live_blocks += snap.live_blocks;
        }
        let sheds = front.shed_total();
        stats.requests += sheds;
        stats.shed += sheds;
        stats
            .queue_depth
            .merge(&self.shed_depth.lock().unwrap_or_else(|e| e.into_inner()));
        MetricsSnapshot {
            workers: self.snapshots.len(),
            stats,
            savings,
            injected,
            detected,
            trips,
            recoveries,
            breaker_states,
            worker_uops,
            live_blocks,
            memo: self.memo.as_ref().map(|m| m.stats()),
            front,
        }
    }
}

/// End-of-run report returned by [`HttpHandle::shutdown`]. The serving-side
/// fields mirror [`crate::pool::PoolReport`] so loopback runs reconcile
/// against pool runs; `stats` includes front-door sheds (see
/// [`FrontState::metrics_snapshot`]).
#[derive(Debug)]
pub struct HttpReport {
    /// Merged serving statistics (workers + front-door sheds).
    pub stats: ServeStats,
    /// Summed static-analysis savings across workers.
    pub savings: StaticSavings,
    /// Summed injected-fault counters per domain.
    pub injected: [u64; 4],
    /// Summed detected-fault counters per domain.
    pub detected: [u64; 4],
    /// Summed breaker trips per domain.
    pub trips: [u64; 4],
    /// Summed breaker recoveries per domain.
    pub recoveries: [u64; 4],
    /// Final breaker state per worker per domain: 0 closed, 1 half-open,
    /// 2 open.
    pub breaker_states: Vec<[u8; 4]>,
    /// Total metered µops per worker.
    pub worker_uops: Vec<u64>,
    /// Live allocator blocks across worker machines after the run.
    pub live_blocks: usize,
    /// End-of-run memo-cache snapshot, when a tier was configured.
    pub memo: Option<MemoCacheStats>,
    /// Front-door counters.
    pub front: FrontSnapshot,
    /// Access-log lines in completion order.
    pub access_log: Vec<String>,
}

/// A running front end. Dropping the handle without calling
/// [`HttpHandle::shutdown`] leaves the threads running for the process
/// lifetime (the `serve_http` binary relies on that).
pub struct HttpServer {
    state: Arc<FrontState>,
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    conn_handles: Arc<Mutex<VecDeque<JoinHandle<()>>>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl HttpServer {
    /// Binds, spawns the acceptor and `cfg.workers` worker threads, and
    /// returns a handle. `corpus` provides the `/run/<name>` scripts.
    pub fn start(
        cfg: HttpConfig,
        corpus: Arc<workloads::php_corpus::CorpusCache>,
    ) -> std::io::Result<HttpServer> {
        assert!(cfg.workers > 0, "the front end needs at least one worker");
        let listener = TcpListener::bind(cfg.addr.as_str())?;
        let addr = listener.local_addr()?;

        let (jobs_tx, jobs_rx) = sync_channel::<Job>(cfg.queue_capacity.max(1));
        let access_log = Arc::new(AccessLog::new());
        let rate_limit = cfg
            .rate_limit
            .map(|(cap, refill)| Arc::new(RateLimit::new(cap, refill)));
        let mut chain = MiddlewareChain::new();
        if let Some(rl) = &rate_limit {
            chain = chain.with(Arc::clone(rl));
        }
        chain = chain
            .with(Arc::clone(&access_log))
            .with(ErrorPages)
            .with(IdentityEncoding);

        let state = Arc::new(FrontState {
            corpus,
            jobs: jobs_tx,
            queue_depth: AtomicUsize::new(0),
            next_request: AtomicU64::new(0),
            admission: cfg
                .admission
                .map(|a| Mutex::new(AdmissionController::new(a))),
            plan: Mutex::new(cfg.plan.clone()),
            snapshots: (0..cfg.workers)
                .map(|_| Mutex::new(WorkerSnapshot::default()))
                .collect(),
            front: FrontCounters::default(),
            shed_depth: Mutex::new(Histogram::new()),
            chain,
            access_log,
            rate_limit,
            memo: cfg.memo.clone(),
            shutdown: AtomicBool::new(false),
            conn_count: AtomicUsize::new(0),
            limits: cfg.limits,
            max_connections: cfg.max_connections.max(1),
            max_keep_alive_requests: cfg.max_keep_alive_requests.max(1),
        });

        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let workers: Vec<JoinHandle<()>> = (0..cfg.workers)
            .map(|w| {
                let state = Arc::clone(&state);
                let jobs_rx = Arc::clone(&jobs_rx);
                let cfg = cfg.clone();
                std::thread::Builder::new()
                    .name(format!("php-worker-{w}"))
                    .spawn(move || worker_loop(w, &cfg, &state, &jobs_rx))
                    .expect("spawn worker thread")
            })
            .collect();

        let conn_handles = Arc::new(Mutex::new(VecDeque::new()));
        let acceptor = {
            let state = Arc::clone(&state);
            let conn_handles = Arc::clone(&conn_handles);
            std::thread::Builder::new()
                .name("http-acceptor".into())
                .spawn(move || acceptor_loop(listener, state, conn_handles))
                .expect("spawn acceptor thread")
        };

        Ok(HttpServer {
            state,
            addr,
            acceptor,
            workers,
            conn_handles,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time metrics snapshot (what `/metrics` renders).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.state.metrics_snapshot()
    }

    /// Stops accepting, drains the queue, joins every thread, and returns
    /// the final report.
    pub fn shutdown(self) -> HttpReport {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        // Connection threads finish first (workers must stay alive to
        // answer their queued jobs) …
        loop {
            let handle = self
                .conn_handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        // … then the workers drain the (now quiescent) queue and exit on
        // the shutdown flag.
        for h in self.workers {
            let _ = h.join();
        }
        let snap = self.state.metrics_snapshot();
        HttpReport {
            stats: snap.stats,
            savings: snap.savings,
            injected: snap.injected,
            detected: snap.detected,
            trips: snap.trips,
            recoveries: snap.recoveries,
            breaker_states: snap.breaker_states,
            worker_uops: snap.worker_uops,
            live_blocks: snap.live_blocks,
            memo: snap.memo,
            front: snap.front,
            access_log: self.state.access_log.lines(),
        }
    }
}

/// Accepts connections until the shutdown flag is set, spawning one thread
/// per connection (bounded by `max_connections`).
fn acceptor_loop(
    listener: TcpListener,
    state: Arc<FrontState>,
    conn_handles: Arc<Mutex<VecDeque<JoinHandle<()>>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if state.conn_count.load(Ordering::SeqCst) >= state.max_connections {
            state
                .front
                .connections_refused
                .fetch_add(1, Ordering::Relaxed);
            let mut w = BufWriter::new(&stream);
            let _ = HttpResponse::new(503)
                .with_header("retry-after", "1")
                .write_to(&mut w, false);
            continue;
        }
        state.front.connections.fetch_add(1, Ordering::Relaxed);
        state.conn_count.fetch_add(1, Ordering::SeqCst);
        let conn_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name("http-conn".into())
            .spawn(move || {
                connection_loop(stream, &conn_state);
                conn_state.conn_count.fetch_sub(1, Ordering::SeqCst);
            })
            .expect("spawn connection thread");
        conn_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(handle);
    }
}

/// Serves one connection: parse → middleware chain → route, with keep-alive.
fn connection_loop(stream: TcpStream, state: &FrontState) {
    // Idle keep-alive connections must not pin shutdown forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    for _ in 0..state.max_keep_alive_requests {
        let req = match parse_request(&mut reader, &state.limits) {
            Ok(req) => req,
            Err(e) => {
                if let Some(status) = e.status() {
                    state.front.parse_errors.fetch_add(1, Ordering::Relaxed);
                    let mut resp = HttpResponse::new(status);
                    ErrorPages.after(
                        &MiddlewareRequest {
                            method: "-",
                            target: "-",
                        },
                        &mut resp,
                    );
                    let _ = resp.write_to(&mut writer, false);
                }
                return;
            }
        };
        state.front.http_requests.fetch_add(1, Ordering::Relaxed);
        let mreq = MiddlewareRequest {
            method: &req.method,
            target: &req.target,
        };
        let resp = state.chain.handle(&mreq, || route(state, &req));
        let keep_alive = req.keep_alive && !state.shutdown.load(Ordering::SeqCst);
        if resp.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Routes one parsed request to an endpoint.
fn route(state: &FrontState, req: &HttpRequest) -> HttpResponse {
    if req.method != "GET" {
        state
            .front
            .method_not_allowed
            .fetch_add(1, Ordering::Relaxed);
        return HttpResponse::new(405).with_header("allow", "GET");
    }
    match req.path.as_str() {
        "/health" => {
            state.front.health_requests.fetch_add(1, Ordering::Relaxed);
            HttpResponse::text(200, "ok\n")
        }
        "/metrics" => {
            state.front.metrics_requests.fetch_add(1, Ordering::Relaxed);
            let body = render_prometheus(&state.metrics_snapshot());
            HttpResponse::new(200)
                .with_header("content-type", "text/plain; version=0.0.4; charset=utf-8")
                .with_body(body.into_bytes())
        }
        path => match path.strip_prefix("/run/") {
            Some(name) => dispatch_run(state, name),
            None => {
                state.front.not_found.fetch_add(1, Ordering::Relaxed);
                HttpResponse::new(404)
            }
        },
    }
}

/// Admits (or sheds) one `/run/<name>` request and waits for its worker.
fn dispatch_run(state: &FrontState, name: &str) -> HttpResponse {
    let Some(script) = state
        .corpus
        .scripts()
        .iter()
        .find(|s| s.entry().name == name)
        .cloned()
    else {
        state.front.not_found.fetch_add(1, Ordering::Relaxed);
        return HttpResponse::new(404);
    };

    // The arrival consumes a global request index whether or not it is
    // admitted — exactly the overload layer's numbering, so fault plans
    // keyed on request indices stay meaningful (a due fault lands on the
    // next admitted request).
    let req = state.next_request.fetch_add(1, Ordering::SeqCst);
    let depth = state.queue_depth.load(Ordering::SeqCst);
    if let Some(ctl) = &state.admission {
        let mut ctl = ctl.lock().unwrap_or_else(|e| e.into_inner());
        let predicted = (depth as u64).saturating_mul(ctl.service_envelope_uops());
        if let AdmissionDecision::Shed(cause) = ctl.decide(predicted, depth) {
            drop(ctl);
            return shed(state, cause, depth);
        }
    }

    let (reply_tx, reply_rx) = std::sync::mpsc::channel();
    state.queue_depth.fetch_add(1, Ordering::SeqCst);
    let job = Job {
        req,
        script,
        depth_at_arrival: depth as u64,
        reply: reply_tx,
    };
    match state.jobs.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
            state.queue_depth.fetch_sub(1, Ordering::SeqCst);
            return shed(state, ShedCause::QueueFull, depth);
        }
    }
    match reply_rx.recv() {
        Ok(reply) => {
            if reply.status == 200 {
                HttpResponse::html(200, reply.body)
            } else {
                HttpResponse::new(reply.status)
            }
        }
        // The worker died mid-request; its panic was already classified.
        Err(_) => HttpResponse::new(500),
    }
}

/// Records one front-door shed and builds its 503.
fn shed(state: &FrontState, cause: ShedCause, depth: usize) -> HttpResponse {
    let counter = match cause {
        ShedCause::OverBudget => &state.front.shed_over_budget,
        ShedCause::QueueFull => &state.front.shed_queue_full,
    };
    counter.fetch_add(1, Ordering::Relaxed);
    state
        .shed_depth
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .record(depth as u64);
    HttpResponse::new(503).with_header("retry-after", "1")
}

/// One worker thread: a private [`Server`] draining the shared job queue
/// through the full sandbox/fault/breaker/memo pipeline.
fn worker_loop(worker: usize, cfg: &HttpConfig, state: &FrontState, jobs: &Mutex<Receiver<Job>>) {
    let mut machine = PhpMachine::specialized();
    machine.set_engine(cfg.engine);
    if cfg.arena {
        machine.ctx().set_arena_enabled(true);
    }
    let mut server = Server::new(machine, cfg.breaker_cfg, cfg.sandbox);
    if cfg.reference {
        server = server.with_reference(PhpMachine::baseline());
    }
    let memo: Option<Arc<dyn MemoTier>> = cfg
        .memo
        .as_ref()
        .map(|m| Arc::clone(m) as Arc<dyn MemoTier>);

    loop {
        let job = {
            let rx = jobs.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv_timeout(Duration::from_millis(25))
        };
        let job = match job {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        state.queue_depth.fetch_sub(1, Ordering::SeqCst);

        // Pull the request's due faults from the shared global plan into
        // this worker's private server. Pulling happens at service time —
        // never at admission — so a shed arrival cannot strand a fault.
        let due = state
            .plan
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take_due(job.req);
        server.schedule_faults(due);

        let script = Arc::clone(&job.script);
        let memo = memo.clone();
        let before_uops = server.machine().ctx().profiler().total_uops();
        let record = server.serve_indexed(job.req, &mut |m, _req| {
            script.run_memo(m, true, memo.clone())
        });
        let service_uops = server
            .machine()
            .ctx()
            .profiler()
            .total_uops()
            .saturating_sub(before_uops);
        // Queue wait has no simulated-µop value on the wall-clock HTTP
        // path, so only arrival depth and service latency are recorded
        // (`queue_wait` stays empty; the overload simulator owns it).
        server.record_admitted_timing(job.depth_at_arrival, 0, service_uops);
        if let Some(ctl) = &state.admission {
            ctl.lock()
                .unwrap_or_else(|e| e.into_inner())
                .observe_service(service_uops);
        }
        if cfg.reset_between_requests {
            server.recover_between_requests();
        }

        let _ = job.reply.send(WorkerReply {
            status: record.outcome.status_code(),
            body: record.response,
        });
        publish_snapshot(worker, &server, state);
    }
    publish_snapshot(worker, &server, state);
}

/// Publishes one worker's current counters into its snapshot slot.
fn publish_snapshot(worker: usize, server: &Server, state: &FrontState) {
    let machine = server.machine();
    let savings = machine.ctx().profiler().static_savings();
    let mut stats = server.stats().clone();
    stats.memo_hits = savings.memo_hits;
    stats.memo_misses = savings.memo_misses;
    stats.memo_stores = savings.memo_stores;
    stats.memo_invalidations = savings.memo_invalidations;
    let mut trips = [0u64; 4];
    let mut recoveries = [0u64; 4];
    let mut breaker_states = [0u8; 4];
    for id in AccelId::ALL {
        let b = server.breaker(id);
        trips[id.index()] = b.trips;
        recoveries[id.index()] = b.recoveries;
        breaker_states[id.index()] = match b.state() {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open { .. } => 2,
        };
    }
    let snap = WorkerSnapshot {
        stats,
        savings,
        injected: machine.injected_fault_counts(),
        detected: machine.detected_fault_counts(),
        trips,
        recoveries,
        breaker_states,
        total_uops: machine.ctx().profiler().total_uops(),
        live_blocks: machine.ctx().with_allocator(|a| a.live_block_count()),
    };
    *state.snapshots[worker]
        .lock()
        .unwrap_or_else(|e| e.into_inner()) = snap;
}

/// Convenience for tests and tooling: resolves `addr` and issues one
/// blocking GET, returning `(status, body)`.
pub fn blocking_get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<(u16, Vec<u8>)> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    write!(writer, "GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n")?;
    writer.flush()?;
    read_response(&mut reader)
}

/// Reads one HTTP response (status line, headers, `content-length` body).
pub fn read_response<R: BufRead>(r: &mut R) -> std::io::Result<(u16, Vec<u8>)> {
    let bad = |msg: &str| std::io::Error::new(ErrorKind::InvalidData, msg.to_string());
    let mut line = String::new();
    r.read_line(&mut line)?;
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        r.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<HttpRequest, HttpParseError> {
        parse_request(&mut Cursor::new(bytes.to_vec()), &HttpLimits::default())
    }

    #[test]
    fn parses_a_plain_get() {
        let req = parse(b"GET /run/tag-cloud?x=1&y=a+b HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/run/tag-cloud");
        assert_eq!(
            req.query,
            vec![("x".into(), "1".into()), ("y".into(), "a b".into())]
        );
        assert_eq!(req.version, HttpVersion::H11);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.keep_alive, "1.1 defaults to keep-alive");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_body_and_percent_escapes() {
        let req = parse(b"POST /p%20q HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.path, "/p q");
        assert_eq!(req.body, b"abcd");
        // Invalid escapes pass through rather than erroring.
        let req = parse(b"GET /%zz%2 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/%zz%2");
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        let close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!close.keep_alive);
        let old = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!old.keep_alive, "1.0 defaults to close");
        let old_ka = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(old_ka.keep_alive);
    }

    #[test]
    fn malformed_inputs_map_to_4xx_5xx() {
        let cases: &[(&[u8], HttpParseError)] = &[
            (b"", HttpParseError::Eof),
            (b"GARBAGE\r\n\r\n", HttpParseError::MalformedRequestLine),
            (b"GET /\r\n\r\n", HttpParseError::MalformedRequestLine),
            (
                b"GET / HTTP/2.0\r\n\r\n",
                HttpParseError::UnsupportedVersion,
            ),
            (
                b"G@T / HTTP/1.1\r\n\r\n",
                HttpParseError::MalformedRequestLine,
            ),
            (
                b"GET noslash HTTP/1.1\r\n\r\n",
                HttpParseError::MalformedRequestLine,
            ),
            (
                b"GET / HTTP/1.1\r\nbroken\r\n\r\n",
                HttpParseError::MalformedHeader,
            ),
            (
                b"GET / HTTP/1.1\r\n: empty\r\n\r\n",
                HttpParseError::MalformedHeader,
            ),
            (
                b"GET / HTTP/1.1\r\nContent-Length: pony\r\n\r\n",
                HttpParseError::InvalidContentLength,
            ),
            (
                b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                HttpParseError::UnsupportedTransferEncoding,
            ),
            (b"GET / HTTP/1.1\r\nHost: x", HttpParseError::UnexpectedEof),
            (
                b"GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
                HttpParseError::UnexpectedEof,
            ),
        ];
        for (bytes, want) in cases {
            let got = parse(bytes).unwrap_err();
            assert_eq!(&got, want, "input {:?}", String::from_utf8_lossy(bytes));
            if !matches!(want, HttpParseError::Eof) {
                assert!(got.status().is_some(), "{want:?} must be answerable");
            }
        }
    }

    #[test]
    fn limits_are_enforced() {
        let limits = HttpLimits {
            max_request_line: 32,
            max_header_line: 32,
            max_headers: 2,
            max_body: 8,
        };
        let parse = |bytes: &[u8]| parse_request(&mut Cursor::new(bytes.to_vec()), &limits);
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64));
        assert_eq!(
            parse(long_line.as_bytes()).unwrap_err(),
            HttpParseError::RequestLineTooLong
        );
        let long_header = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "v".repeat(64));
        assert_eq!(
            parse(long_header.as_bytes()).unwrap_err(),
            HttpParseError::HeaderTooLong
        );
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n").unwrap_err(),
            HttpParseError::TooManyHeaders
        );
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789").unwrap_err(),
            HttpParseError::BodyTooLarge
        );
    }

    #[test]
    fn response_serialization_has_length_and_connection() {
        let resp = HttpResponse::text(200, "hello");
        let mut out = Vec::new();
        resp.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 5\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));

        let mut closed = Vec::new();
        resp.write_to(&mut closed, false).unwrap();
        assert!(String::from_utf8(closed)
            .unwrap()
            .contains("connection: close"));
    }

    #[test]
    fn read_response_round_trips_write_to() {
        let resp = HttpResponse::html(404, b"<h1>gone</h1>".to_vec());
        let mut wire = Vec::new();
        resp.write_to(&mut wire, false).unwrap();
        let (status, body) = read_response(&mut Cursor::new(wire)).unwrap();
        assert_eq!(status, 404);
        assert_eq!(body, b"<h1>gone</h1>");
    }
}
