//! Per-request outcomes as seen by the serving layer.

/// How one sandboxed request ended. Anything other than [`RequestOutcome::Ok`]
/// maps to a 5xx-style response: the request stream continues and machine
/// invariants have been restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The request completed normally.
    Ok,
    /// The execution budget (step fuel or µop deadline) ran out.
    Timeout,
    /// The per-request memory ceiling was exceeded.
    OomKilled,
    /// The handler panicked for any other reason.
    Panicked {
        /// The panic message.
        message: String,
    },
    /// The admission controller refused the request before it reached a
    /// worker (overload protection). The machine never ran it: shedding is
    /// deliberate back-pressure, not a failure of the serving stack.
    Shed,
}

impl RequestOutcome {
    /// Whether the request completed normally.
    pub fn is_ok(&self) -> bool {
        matches!(self, RequestOutcome::Ok)
    }

    /// Whether the request was refused by admission control (it never ran).
    pub fn is_shed(&self) -> bool {
        matches!(self, RequestOutcome::Shed)
    }

    /// HTTP-style status code the outcome maps to.
    pub fn status_code(&self) -> u16 {
        match self {
            RequestOutcome::Ok => 200,
            // "Service Unavailable": the canonical please-retry-later
            // response of a load-shedding front end.
            RequestOutcome::Shed => 503,
            RequestOutcome::Timeout => 504,
            RequestOutcome::OomKilled | RequestOutcome::Panicked { .. } => 500,
        }
    }
}

/// Classifies a caught panic message into an outcome. The slab allocator's
/// memory-ceiling panic and the interpreter's budget errors carry
/// recognizable text; everything else is an opaque crash.
pub fn classify_panic(message: String) -> RequestOutcome {
    if message.contains("Allowed memory size") {
        RequestOutcome::OomKilled
    } else if message.contains("maximum execution budget exceeded") {
        RequestOutcome::Timeout
    } else {
        RequestOutcome::Panicked { message }
    }
}

/// Extracts a human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_message() {
        assert_eq!(
            classify_panic(
                "Allowed memory size of 64 bytes exhausted (tried to allocate 80 bytes)".into()
            ),
            RequestOutcome::OomKilled
        );
        assert_eq!(
            classify_panic("template runs: RuntimeError { message: \"maximum execution budget exceeded\", kind: Timeout }".into()),
            RequestOutcome::Timeout
        );
        let p = classify_panic("index out of bounds".into());
        assert!(matches!(p, RequestOutcome::Panicked { .. }));
        assert_eq!(p.status_code(), 500);
        assert_eq!(RequestOutcome::Ok.status_code(), 200);
        assert_eq!(RequestOutcome::Timeout.status_code(), 504);
        assert_eq!(RequestOutcome::Shed.status_code(), 503);
        assert!(RequestOutcome::Shed.is_shed());
        assert!(!RequestOutcome::Shed.is_ok());
    }
}
