//! The fault-tolerant request server.
//!
//! [`Server`] ties the robustness layer together: before each request it
//! injects any scheduled faults, consults the four per-accelerator circuit
//! breakers to decide hardware vs. software paths, runs the handler inside
//! the sandbox, and feeds detected-fault deltas back into the breakers.
//! Optionally it replays every successful request against an all-software
//! reference machine and checks the response bytes are identical — the
//! degradation guarantee made measurable.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::fault::{FaultKind, FaultPlan};
use crate::hist::Histogram;
use crate::outcome::RequestOutcome;
use crate::sandbox::{run_sandboxed, SandboxConfig};
use phpaccel_core::{AccelId, PhpMachine};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Heap ceiling used to realize [`FaultKind::AllocatorOom`]: low enough that
/// any real request trips it, high enough that the sandbox's own bookkeeping
/// does not.
const OOM_CLAMP_BYTES: u64 = 512;

/// Aggregate serving statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests served (any outcome).
    pub requests: u64,
    /// Requests that completed normally.
    pub ok: u64,
    /// Requests killed by the execution budget.
    pub timeouts: u64,
    /// Requests killed by the memory ceiling.
    pub ooms: u64,
    /// Requests that panicked for other reasons.
    pub panics: u64,
    /// Requests refused by admission control before reaching a worker.
    pub shed: u64,
    /// Requests served with the given domain degraded to software.
    pub degraded_requests: [u64; 4],
    /// Successful responses whose bytes differed from the all-software
    /// reference (must stay 0).
    pub mismatches: u64,
    /// Memo-cache hits this server's requests scored (0 with no tier).
    pub memo_hits: u64,
    /// Memo-cache misses at proven-memoizable sites.
    pub memo_misses: u64,
    /// Results this server's requests stored into the shared tier.
    pub memo_stores: u64,
    /// Cache entries this server's global writes invalidated.
    pub memo_invalidations: u64,
    /// Admission-queue depth observed at each arrival (admitted or shed).
    /// Populated only by the overload layer; empty in plain serving.
    pub queue_depth: Histogram,
    /// Queue wait of each admitted request, in simulated µops.
    pub queue_wait: Histogram,
    /// End-to-end latency (queue wait + service) of each admitted request,
    /// in simulated µops.
    pub latency: Histogram,
}

impl ServeStats {
    /// Fraction of *admitted* requests that completed normally, in [0, 1].
    ///
    /// Every abnormal served outcome maps to a 5xx (`Timeout` → 504, OOM
    /// and panic → 500), so this is the non-5xx fraction of the requests
    /// the system accepted: `ok / (requests − shed)`. Shed requests are
    /// deliberate overload back-pressure (503 before any work happens) and
    /// are reported separately ([`ServeStats::shed_fraction`]) — counting
    /// them as failures would make graceful degradation look like an
    /// outage. With nothing admitted the fraction is vacuously 1.
    pub fn availability(&self) -> f64 {
        let admitted = self.requests - self.shed;
        if admitted == 0 {
            1.0
        } else {
            self.ok as f64 / admitted as f64
        }
    }

    /// Fraction of all arrivals refused by admission control, in [0, 1].
    pub fn shed_fraction(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.shed as f64 / self.requests as f64
        }
    }

    /// Whether the per-outcome counters exactly partition the request count
    /// (`ok + timeouts + ooms + panics + shed == requests`). Holds for any
    /// stats produced by [`Server`], including merged pool totals and
    /// overload runs with shedding.
    pub fn outcomes_partition_requests(&self) -> bool {
        self.ok + self.timeouts + self.ooms + self.panics + self.shed == self.requests
    }

    /// Losslessly folds another worker's statistics into this one: every
    /// counter is summed and the histograms concatenate, so pool totals
    /// equal the sum of the workers'.
    pub fn merge(&mut self, other: &ServeStats) {
        self.requests += other.requests;
        self.ok += other.ok;
        self.timeouts += other.timeouts;
        self.ooms += other.ooms;
        self.panics += other.panics;
        self.shed += other.shed;
        for i in 0..4 {
            self.degraded_requests[i] += other.degraded_requests[i];
        }
        self.mismatches += other.mismatches;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.memo_stores += other.memo_stores;
        self.memo_invalidations += other.memo_invalidations;
        self.queue_depth.merge(&other.queue_depth);
        self.queue_wait.merge(&other.queue_wait);
        self.latency.merge(&other.latency);
    }
}

/// What happened to one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// Request index.
    pub request: u64,
    /// How the sandbox classified the exit.
    pub outcome: RequestOutcome,
    /// Response bytes (empty on abnormal outcomes).
    pub response: Vec<u8>,
    /// Domains that ran on the software path for this request.
    pub degraded: [bool; 4],
    /// Detected-fault delta per domain during this request.
    pub fault_delta: [u64; 4],
}

/// A single-machine request server with sandboxing, fault injection,
/// circuit breaking, and optional byte-identity checking.
pub struct Server {
    machine: PhpMachine,
    /// All-software reference replaying successful requests, if checking.
    reference: Option<PhpMachine>,
    breakers: [CircuitBreaker; 4],
    plan: FaultPlan,
    sandbox: SandboxConfig,
    stats: ServeStats,
    next_request: u64,
    request_stride: u64,
    keep_bodies: bool,
}

impl Server {
    /// Creates a server around `machine`.
    pub fn new(machine: PhpMachine, breaker_cfg: BreakerConfig, sandbox: SandboxConfig) -> Self {
        Server {
            machine,
            reference: None,
            breakers: std::array::from_fn(|_| CircuitBreaker::new(breaker_cfg)),
            plan: FaultPlan::default(),
            sandbox,
            stats: ServeStats::default(),
            next_request: 0,
            request_stride: 1,
            keep_bodies: true,
        }
    }

    /// Installs a fault-injection plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Appends faults to the server's plan mid-stream. The HTTP front end
    /// uses this to hand a worker the due faults it pulled from the shared
    /// global plan just before serving a dynamically-assigned request.
    pub fn schedule_faults(
        &mut self,
        faults: impl IntoIterator<Item = crate::fault::PlannedFault>,
    ) {
        self.plan.extend(faults);
    }

    /// Numbers requests `base, base + stride, base + 2·stride, …` instead of
    /// `0, 1, 2, …`. A pool worker `w` of `W` uses `(w, W)` so its breakers,
    /// fault plan, and handler all see *global* request indices.
    pub fn with_request_numbering(mut self, base: u64, stride: u64) -> Self {
        assert!(stride > 0, "request stride must be positive");
        self.next_request = base;
        self.request_stride = stride;
        self
    }

    /// Controls whether [`RequestRecord::response`] retains the response
    /// bytes (default `true`). Long soaks set `false` so memory stays
    /// bounded; statistics, breaker feedback, and reference replay are
    /// computed before the bytes are dropped and are unaffected.
    pub fn with_keep_bodies(mut self, keep: bool) -> Self {
        self.keep_bodies = keep;
        self
    }

    /// Replays each successful request on `reference` (normally
    /// [`PhpMachine::baseline`]) and counts byte mismatches. Only valid for
    /// handlers that are deterministic given `(machine, request index)`.
    pub fn with_reference(mut self, reference: PhpMachine) -> Self {
        self.reference = Some(reference);
        self
    }

    /// The machine under test.
    pub fn machine(&self) -> &PhpMachine {
        &self.machine
    }

    /// Mutable access to the machine under test (setup/teardown).
    pub fn machine_mut(&mut self) -> &mut PhpMachine {
        &mut self.machine
    }

    /// One domain's breaker.
    pub fn breaker(&self, id: AccelId) -> &CircuitBreaker {
        &self.breakers[id.index()]
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Zeroes the statistics, keeping machine, breaker, and fault-plan
    /// state. The overload simulator's warmup boundary uses this — exactly
    /// like the load generator's `reset_metrics` — so measured stats cover
    /// steady state only while warm accelerator state carries over.
    pub fn reset_stats(&mut self) {
        self.stats = ServeStats::default();
    }

    fn inject(&mut self, kind: FaultKind) -> bool {
        let core = self.machine.core_mut();
        match kind {
            FaultKind::HtableEntry { nth } => core.htable.inject_entry_fault(nth),
            FaultKind::HtableRtt { nth } => core.htable.inject_rtt_fault(nth),
            FaultKind::HeapFreelist { nth } => core.heap.inject_freelist_fault(nth),
            FaultKind::StringConfig => {
                core.straccel.inject_config_fault();
                true
            }
            FaultKind::RegexReuse { nth } => core.reuse.inject_entry_fault(nth),
            FaultKind::RegexHvFlip { bit } => {
                self.machine.arm_hv_flip(bit);
                true
            }
            FaultKind::AllocatorOom => true, // realized as a sandbox ceiling below
        }
    }

    /// Serves one request: injects due faults, applies breaker decisions,
    /// runs `handler` in the sandbox, feeds fault deltas back into the
    /// breakers, and (if configured) byte-compares against the reference.
    pub fn serve(
        &mut self,
        handler: &mut dyn FnMut(&mut PhpMachine, u64) -> Vec<u8>,
    ) -> RequestRecord {
        let req = self.next_request;
        self.next_request += self.request_stride;
        self.serve_indexed(req, handler)
    }

    /// Like [`Server::serve`], but serves explicitly-numbered request `req`
    /// instead of the internal counter. The overload layer uses this: shed
    /// arrivals consume global indices without ever reaching the server, so
    /// the admitted stream's indices are sparse and caller-driven — yet
    /// breakers and the fault plan still key on the *global* index, keeping
    /// fault schedules meaningful whether or not their request was admitted
    /// (a due fault simply lands on the next admitted request).
    pub fn serve_indexed(
        &mut self,
        req: u64,
        handler: &mut dyn FnMut(&mut PhpMachine, u64) -> Vec<u8>,
    ) -> RequestRecord {
        let mut force_oom = false;
        for fault in self.plan.take_due(req) {
            if fault.kind == FaultKind::AllocatorOom {
                force_oom = true;
            }
            self.inject(fault.kind);
        }

        let mut degraded = [false; 4];
        for id in AccelId::ALL {
            let allowed = self.breakers[id.index()].allows(req);
            self.machine.set_accel_enabled(id, allowed);
            degraded[id.index()] = !allowed;
            if !allowed {
                self.stats.degraded_requests[id.index()] += 1;
            }
        }

        let before = self.machine.detected_fault_counts();
        let mut sandbox = self.sandbox;
        if force_oom {
            sandbox.memory_limit =
                Some(OOM_CLAMP_BYTES.min(sandbox.memory_limit.unwrap_or(u64::MAX)));
        }
        let mut response = Vec::new();
        let outcome = run_sandboxed(&mut self.machine, sandbox, |m| {
            response = handler(m, req);
        });
        let after = self.machine.detected_fault_counts();

        let mut fault_delta = [0u64; 4];
        for id in AccelId::ALL {
            let i = id.index();
            // Saturating: abnormal-exit recovery (or a metrics reset inside
            // the handler) may shrink a detected-fault counter mid-request;
            // a plain subtraction would underflow and panic the server.
            fault_delta[i] = after[i].saturating_sub(before[i]);
            if fault_delta[i] > 0 {
                self.breakers[i].record_faults(req, fault_delta[i]);
            } else if outcome.is_ok() {
                self.breakers[i].record_success(req);
            }
        }

        self.stats.requests += 1;
        match &outcome {
            RequestOutcome::Ok => self.stats.ok += 1,
            RequestOutcome::Timeout => self.stats.timeouts += 1,
            RequestOutcome::OomKilled => self.stats.ooms += 1,
            RequestOutcome::Panicked { .. } => self.stats.panics += 1,
            // Shedding happens before a request reaches the sandbox
            // (see Server::record_shed); the sandbox never produces it.
            RequestOutcome::Shed => unreachable!("sandbox exits are never Shed"),
        }

        if outcome.is_ok() {
            if let Some(reference) = self.reference.as_mut() {
                let expected = catch_unwind(AssertUnwindSafe(|| handler(reference, req)));
                match expected {
                    Ok(bytes) if bytes == response => {}
                    Ok(_) => self.stats.mismatches += 1,
                    Err(_) => {
                        reference.recover_request();
                        self.stats.mismatches += 1;
                    }
                }
            }
        } else {
            response.clear();
        }
        if !self.keep_bodies {
            response = Vec::new();
        }

        RequestRecord {
            request: req,
            outcome,
            response,
            degraded,
            fault_delta,
        }
    }

    /// Serves `n` requests, returning the records.
    pub fn serve_many(
        &mut self,
        n: u64,
        handler: &mut dyn FnMut(&mut PhpMachine, u64) -> Vec<u8>,
    ) -> Vec<RequestRecord> {
        (0..n).map(|_| self.serve(handler)).collect()
    }

    /// Records one arrival refused by admission control at the given queue
    /// depth. The machine, breakers, and fault plan are untouched — the
    /// request never ran — but it still counts toward `requests` so the
    /// outcome partition covers every arrival. Returns the 503 record.
    pub fn record_shed(&mut self, req: u64, queue_depth: u64) -> RequestRecord {
        self.stats.requests += 1;
        self.stats.shed += 1;
        self.stats.queue_depth.record(queue_depth);
        RequestRecord {
            request: req,
            outcome: RequestOutcome::Shed,
            response: Vec::new(),
            degraded: [false; 4],
            fault_delta: [0; 4],
        }
    }

    /// Records the queueing observations of one *admitted* request: the
    /// queue depth it saw on arrival, its queue wait, and its end-to-end
    /// latency (wait + service), all in simulated µops.
    pub fn record_admitted_timing(&mut self, queue_depth: u64, wait_uops: u64, latency_uops: u64) {
        self.stats.queue_depth.record(queue_depth);
        self.stats.queue_wait.record(wait_uops);
        self.stats.latency.record(latency_uops);
    }

    /// Restores the machine — and the reference, if one is attached — to a
    /// pristine request boundary. The pool's deterministic mode calls this
    /// between requests so every request observes identical machine history
    /// regardless of which worker serves it. Statistics are kept.
    pub fn recover_between_requests(&mut self) {
        self.machine.recover_request();
        if let Some(r) = self.reference.as_mut() {
            r.recover_request();
        }
    }

    /// Whether any breaker is currently open or half-open.
    pub fn any_breaker_degraded(&self) -> bool {
        self.breakers
            .iter()
            .any(|b| b.state() != BreakerState::Closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::PlannedFault;
    use php_runtime::{ArrayKey, PhpValue};

    /// A handler exercising the hash-table domain: a persistent map is
    /// mutated and read every request; the response is the rendered map.
    fn htable_handler() -> impl FnMut(&mut PhpMachine, u64) -> Vec<u8> {
        let mut arrays = std::collections::HashMap::new();
        move |m: &mut PhpMachine, req: u64| {
            let arr = arrays
                .entry(m as *const PhpMachine as usize)
                .or_insert_with(|| m.new_array());
            for k in 0..4u64 {
                m.array_set(
                    arr,
                    ArrayKey::Str(format!("k{k}").into()),
                    PhpValue::Int((req * 10 + k) as i64),
                );
            }
            let mut out = Vec::new();
            for k in 0..4u64 {
                let v = m.array_get(arr, &ArrayKey::Str(format!("k{k}").into()));
                out.extend_from_slice(format!("{v:?};").as_bytes());
            }
            m.end_request();
            out
        }
    }

    fn breaker_cfg() -> BreakerConfig {
        BreakerConfig {
            fault_threshold: 2,
            window: 20,
            base_backoff: 3,
            max_backoff: 12,
        }
    }

    #[test]
    fn faults_trip_breaker_then_recover_with_identical_output() {
        let plan = FaultPlan::new(vec![
            PlannedFault {
                at_request: 2,
                kind: FaultKind::HtableEntry { nth: 0 },
            },
            PlannedFault {
                at_request: 3,
                kind: FaultKind::HtableEntry { nth: 1 },
            },
        ]);
        let mut server = Server::new(
            PhpMachine::specialized(),
            breaker_cfg(),
            SandboxConfig::unlimited(),
        )
        .with_fault_plan(plan)
        .with_reference(PhpMachine::baseline());

        let mut handler = htable_handler();
        let records = server.serve_many(20, &mut handler);

        // Every request completed; every byte matched the software run.
        assert!(records.iter().all(|r| r.outcome.is_ok()));
        assert_eq!(server.stats().mismatches, 0);
        assert_eq!(server.stats().availability(), 1.0);

        // Both injected faults were detected and tripped the breaker.
        let b = server.breaker(AccelId::Htable);
        assert!(b.trips >= 1, "breaker never tripped");
        assert!(
            server.stats().degraded_requests[AccelId::Htable.index()] >= 1,
            "no degraded requests recorded"
        );
        // ... and the half-open trial succeeded within the backoff window.
        assert!(b.recoveries >= 1, "breaker never recovered");
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.last_recovery_latency.unwrap() <= 12 + 1);
        // Other domains untouched.
        assert_eq!(server.breaker(AccelId::Heap).trips, 0);
        assert_eq!(server.breaker(AccelId::Regex).trips, 0);
    }

    #[test]
    fn forced_oom_is_contained_and_stream_continues() {
        let plan = FaultPlan::new(vec![PlannedFault {
            at_request: 1,
            kind: FaultKind::AllocatorOom,
        }]);
        let mut server = Server::new(
            PhpMachine::specialized(),
            BreakerConfig::default(),
            SandboxConfig::unlimited(),
        )
        .with_fault_plan(plan);

        // Allocate more than the clamp so the OOM actually fires.
        let mut handler = |m: &mut PhpMachine, _req: u64| {
            let b = m.alloc(2048);
            m.free(b);
            m.end_request();
            b"done".to_vec()
        };
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let records = server.serve_many(3, &mut handler);
        std::panic::set_hook(hook);

        assert_eq!(records[0].outcome, RequestOutcome::Ok);
        assert_eq!(records[1].outcome, RequestOutcome::OomKilled);
        assert_eq!(records[2].outcome, RequestOutcome::Ok, "stream resumed");
        assert_eq!(server.stats().ooms, 1);
        assert_eq!(
            server
                .machine()
                .ctx()
                .with_allocator(|a| a.live_block_count()),
            0,
            "recovery leaked blocks"
        );
    }

    /// Regression for the `fault_delta` underflow: the string accelerator
    /// detects an injected config fault on request 0, then request 1 resets
    /// the machine metrics mid-stream (a load generator's warmup boundary
    /// does exactly this). The server's pre-request snapshot is then larger
    /// than the post-request counter, and the old `after - before` panicked
    /// the server itself with a subtract overflow.
    #[test]
    fn mid_request_counter_reset_does_not_underflow_fault_delta() {
        let mut server = Server::new(
            PhpMachine::specialized(),
            BreakerConfig::default(),
            SandboxConfig::unlimited(),
        );
        let mut handler = |m: &mut PhpMachine, req: u64| {
            if req == 0 {
                m.core_mut().straccel.inject_config_fault();
                let s = match m.transient_str("Fault Probe".to_string()) {
                    PhpValue::Str(s) => s,
                    _ => unreachable!(),
                };
                let _ = m.strtolower(&s);
            } else {
                m.reset_metrics();
            }
            m.end_request();
            b"ok".to_vec()
        };
        let records = server.serve_many(2, &mut handler);
        assert!(
            records[0].fault_delta[AccelId::Str.index()] >= 1,
            "request 0 must detect the injected fault"
        );
        assert_eq!(records[1].outcome, RequestOutcome::Ok);
        assert_eq!(
            records[1].fault_delta, [0u64; 4],
            "a shrunken counter clamps to zero, it does not underflow"
        );
        assert!(server.stats().outcomes_partition_requests());
    }

    /// `availability()` counts exactly the non-5xx requests, and the outcome
    /// counters partition the stream.
    #[test]
    fn availability_counts_non_5xx_and_outcomes_partition() {
        let plan = FaultPlan::new(vec![PlannedFault {
            at_request: 1,
            kind: FaultKind::AllocatorOom,
        }]);
        let mut server = Server::new(
            PhpMachine::specialized(),
            BreakerConfig::default(),
            SandboxConfig::unlimited(),
        )
        .with_fault_plan(plan);
        let mut handler = |m: &mut PhpMachine, _req: u64| {
            let b = m.alloc(2048);
            m.free(b);
            m.end_request();
            b"done".to_vec()
        };
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        server.serve_many(4, &mut handler);
        std::panic::set_hook(hook);

        let s = server.stats();
        assert_eq!(
            s.ok + s.timeouts + s.ooms + s.panics,
            s.requests,
            "outcome counters must partition the request count"
        );
        assert!(s.outcomes_partition_requests());
        // One OOM (a 504/500-class exit) out of four: availability is the
        // non-5xx fraction, not merely "produced bytes".
        assert_eq!(s.ooms, 1);
        assert_eq!(s.availability(), 3.0 / 4.0);
    }

    /// Dropping response bodies changes nothing except the retained bytes:
    /// stats (including reference-replay mismatches), outcomes, degradation
    /// flags, and fault deltas are identical.
    #[test]
    fn dropping_bodies_leaves_stats_and_replay_unchanged() {
        let plan = || {
            FaultPlan::new(vec![
                PlannedFault {
                    at_request: 2,
                    kind: FaultKind::HtableEntry { nth: 0 },
                },
                PlannedFault {
                    at_request: 3,
                    kind: FaultKind::HtableEntry { nth: 1 },
                },
            ])
        };
        let run = |keep: bool| {
            let mut server = Server::new(
                PhpMachine::specialized(),
                breaker_cfg(),
                SandboxConfig::unlimited(),
            )
            .with_fault_plan(plan())
            .with_reference(PhpMachine::baseline())
            .with_keep_bodies(keep);
            let mut handler = htable_handler();
            let records = server.serve_many(12, &mut handler);
            (records, server.stats().clone())
        };
        let (kept, stats_kept) = run(true);
        let (dropped, stats_dropped) = run(false);

        assert_eq!(stats_kept, stats_dropped);
        assert_eq!(stats_dropped.mismatches, 0, "replay ran before the drop");
        assert!(kept.iter().any(|r| !r.response.is_empty()));
        for (k, d) in kept.iter().zip(&dropped) {
            assert!(d.response.is_empty(), "bodies must not be retained");
            assert_eq!(k.request, d.request);
            assert_eq!(k.outcome, d.outcome);
            assert_eq!(k.degraded, d.degraded);
            assert_eq!(k.fault_delta, d.fault_delta);
        }
    }

    /// Strided numbering hands the handler, plan, and breakers global
    /// request indices: worker 1 of 4 sees requests 1, 5, 9, …
    #[test]
    fn request_numbering_follows_base_and_stride() {
        let mut server = Server::new(
            PhpMachine::specialized(),
            BreakerConfig::default(),
            SandboxConfig::unlimited(),
        )
        .with_request_numbering(1, 4);
        let mut seen = Vec::new();
        let mut handler = |m: &mut PhpMachine, req: u64| {
            seen.push(req);
            m.end_request();
            req.to_string().into_bytes()
        };
        let records = server.serve_many(3, &mut handler);
        assert_eq!(seen, vec![1, 5, 9]);
        assert_eq!(
            records.iter().map(|r| r.request).collect::<Vec<_>>(),
            vec![1, 5, 9]
        );
    }

    #[test]
    fn merged_stats_equal_sum_of_parts() {
        let a = ServeStats {
            requests: 12,
            ok: 8,
            timeouts: 1,
            ooms: 1,
            panics: 0,
            shed: 2,
            degraded_requests: [1, 2, 3, 4],
            mismatches: 0,
            ..ServeStats::default()
        };
        let b = ServeStats {
            requests: 6,
            ok: 4,
            timeouts: 0,
            ooms: 0,
            panics: 1,
            shed: 1,
            degraded_requests: [4, 3, 2, 1],
            mismatches: 1,
            ..ServeStats::default()
        };
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.requests, 18);
        assert_eq!(merged.ok, 12);
        assert_eq!(merged.timeouts, 1);
        assert_eq!(merged.ooms, 1);
        assert_eq!(merged.panics, 1);
        assert_eq!(merged.shed, 3);
        assert_eq!(merged.degraded_requests, [5, 5, 5, 5]);
        assert_eq!(merged.mismatches, 1);
        assert!(merged.outcomes_partition_requests());
    }

    /// Regression for the `Shed` outcome's accounting: shed requests are
    /// back-pressure, not failures — `availability()` must be computed over
    /// admitted requests only, while `outcomes_partition_requests()` must
    /// still cover every arrival (served *and* shed).
    #[test]
    fn shed_requests_are_not_failures_and_partition_holds() {
        let mut server = Server::new(
            PhpMachine::specialized(),
            BreakerConfig::default(),
            SandboxConfig::unlimited(),
        );
        let mut handler = |m: &mut PhpMachine, req: u64| {
            m.end_request();
            req.to_string().into_bytes()
        };
        // Arrivals 0 and 2 are admitted; 1 and 3 are shed by the controller.
        let r0 = server.serve_indexed(0, &mut handler);
        let s1 = server.record_shed(1, 3);
        let r2 = server.serve_indexed(2, &mut handler);
        let s3 = server.record_shed(3, 4);

        assert!(r0.outcome.is_ok() && r2.outcome.is_ok());
        assert_eq!(s1.outcome, RequestOutcome::Shed);
        assert_eq!(s1.outcome.status_code(), 503);
        assert!(s3.response.is_empty(), "a shed request never ran");

        let stats = server.stats();
        assert_eq!(stats.requests, 4, "sheds still count as arrivals");
        assert_eq!((stats.ok, stats.shed), (2, 2));
        assert!(
            stats.outcomes_partition_requests(),
            "ok + timeouts + ooms + panics + shed must equal requests"
        );
        // Both admitted requests succeeded: availability is 1.0, not 0.5 —
        // shedding under overload must not read as an outage.
        assert_eq!(stats.availability(), 1.0);
        assert_eq!(stats.shed_fraction(), 0.5);
        assert_eq!(stats.queue_depth.count(), 2, "sheds record arrival depth");

        // All-shed stats stay vacuously available and still partition.
        let mut all_shed = Server::new(
            PhpMachine::specialized(),
            BreakerConfig::default(),
            SandboxConfig::unlimited(),
        );
        all_shed.record_shed(0, 1);
        assert_eq!(all_shed.stats().availability(), 1.0);
        assert!(all_shed.stats().outcomes_partition_requests());
    }

    #[test]
    fn string_config_fault_degrades_without_byte_changes() {
        let plan = FaultPlan::new(vec![
            PlannedFault {
                at_request: 1,
                kind: FaultKind::StringConfig,
            },
            PlannedFault {
                at_request: 2,
                kind: FaultKind::StringConfig,
            },
        ]);
        let mut server = Server::new(
            PhpMachine::specialized(),
            breaker_cfg(),
            SandboxConfig::unlimited(),
        )
        .with_fault_plan(plan)
        .with_reference(PhpMachine::baseline());

        let mut handler = |m: &mut PhpMachine, req: u64| {
            let s = m.transient_str(format!("  Request {req} <Body> "));
            let s = match s {
                PhpValue::Str(s) => s,
                _ => unreachable!(),
            };
            let t = m.trim(&s);
            let lower = m.strtolower(&t);
            let esc = m.htmlspecialchars(&lower);
            let out = esc.as_bytes().to_vec();
            m.end_request();
            out
        };
        let records = server.serve_many(12, &mut handler);
        assert!(records.iter().all(|r| r.outcome.is_ok()));
        assert_eq!(server.stats().mismatches, 0);
        let b = server.breaker(AccelId::Str);
        assert!(b.trips >= 1);
        assert_eq!(b.state(), BreakerState::Closed, "should have recovered");
    }
}
