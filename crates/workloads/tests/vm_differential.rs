//! Cross-engine differential harness: the compiled opcode VM must be
//! observationally identical to the tree-walking evaluator.
//!
//! The VM is only allowed to remove *metered* work — dispatch overhead,
//! transient intermediates, fact-checked guards. It must never change what
//! a script prints, which error it raises, or how many heap blocks survive
//! the request boundary. This harness runs every corpus program and a
//! family of generated programs through the tree walker and through the VM
//! (fusion on and off × facts on and off × arena on and off) and demands
//! byte-identical output plus identical end-of-request live-block counts.
//!
//! The pinned tests at the bottom each encode an evaluation-order or
//! short-circuit rule the differential flushed out while the VM codegen was
//! being brought into line with the tree walker; they assert the exact
//! expected bytes so a regression fails with a readable diff rather than a
//! generated-program dump.

use php_analysis::analyze_with_funcs;
use php_interp::ast::{FuncDef, Stmt};
use php_interp::{compile, parse, CompileOptions, Interp, MemoHandle, MemoTier, SimpleMemo, Vm};
use phpaccel_core::{Engine, PhpMachine};
use proptest::prelude::*;
use std::fmt::Write as _;
use std::sync::Arc;
use workloads::php_corpus;

/// Which execution engine to run a generated source through.
#[derive(Debug, Clone, Copy)]
enum Runner {
    Tree,
    Vm { fused: bool },
}

/// Runs `src` on a fresh specialized machine under `runner`, returning the
/// output bytes and the end-of-request live-block count. Mirrors
/// `php_corpus::prepare`: function bodies are shared between the analysis
/// and the engines so facts keyed on node identity stay valid inside them.
fn run_src_on(src: &str, runner: Runner, with_facts: bool, arena: bool) -> (Vec<u8>, usize) {
    run_src_memo(src, runner, with_facts, arena, None)
}

fn run_src_memo(
    src: &str,
    runner: Runner,
    with_facts: bool,
    arena: bool,
    memo: Option<Arc<dyn MemoTier>>,
) -> (Vec<u8>, usize) {
    let program =
        parse(src).unwrap_or_else(|e| panic!("generated program fails to parse: {e:?}\n{src}"));
    let shared: Vec<Arc<FuncDef>> = program
        .stmts
        .iter()
        .filter_map(|s| match s {
            Stmt::FuncDef(f) => Some(Arc::new(f.clone())),
            _ => None,
        })
        .collect();
    let analysis = analyze_with_funcs(&program, &shared);
    let facts = Arc::new(analysis.facts);
    let mut m = PhpMachine::specialized();
    if arena {
        m.ctx().set_arena_enabled(true);
    }
    let out = match runner {
        Runner::Tree => {
            let mut interp = Interp::new(&mut m);
            interp.predefine_funcs(shared.iter().cloned());
            if with_facts {
                interp.set_facts(Arc::clone(&facts));
            }
            if let Some(t) = memo {
                interp.set_memo(MemoHandle::new(t, "vm-diff"));
            }
            interp
                .run_program(&program)
                .unwrap_or_else(|e| panic!("tree walk fails: {e:?}\n{src}"));
            interp.take_output()
        }
        Runner::Vm { fused } => {
            let unit = Arc::new(compile(
                &program,
                &shared,
                with_facts.then_some(&*facts),
                CompileOptions { fuse: fused },
            ));
            let mut vm = Vm::new(&mut m, unit);
            if let Some(t) = memo {
                vm.set_memo(MemoHandle::new(t, "vm-diff"));
            }
            vm.run()
                .unwrap_or_else(|e| panic!("vm (fused={fused}) fails: {e:?}\n{src}"));
            vm.take_output()
        }
    };
    m.end_request();
    let live = m.ctx().with_allocator(|a| a.live_block_count());
    (out, live)
}

/// Runs `src` through the tree walker and both VM variants across the full
/// facts × arena matrix, asserting byte-identical output and identical
/// end-of-request live blocks everywhere. Returns the (unique) output.
fn assert_engines_agree(src: &str) -> Vec<u8> {
    let (reference, _) = run_src_on(src, Runner::Tree, false, false);
    for with_facts in [false, true] {
        for arena in [false, true] {
            let (out_tree, live_tree) = run_src_on(src, Runner::Tree, with_facts, arena);
            assert_eq!(
                out_tree, reference,
                "tree walk (facts={with_facts}, arena={arena}) diverged from itself:\n{src}"
            );
            for fused in [false, true] {
                let (out_vm, live_vm) = run_src_on(src, Runner::Vm { fused }, with_facts, arena);
                assert_eq!(
                    out_vm,
                    out_tree,
                    "vm (fused={fused}, facts={with_facts}, arena={arena}) changed the output of:\n{src}\n\
                     tree: {:?}\nvm:   {:?}",
                    String::from_utf8_lossy(&out_tree),
                    String::from_utf8_lossy(&out_vm),
                );
                assert_eq!(
                    live_vm, live_tree,
                    "vm (fused={fused}, facts={with_facts}, arena={arena}) changed live blocks of:\n{src}"
                );
            }
        }
    }

    // Memo axis: one tier shared across engines, so the VM replays entries
    // the tree walker stored (and vice versa) — cross-engine cache
    // compatibility is byte-checked here, not assumed. Facts stay on (memo
    // sites only exist in the facts table).
    let tier: Arc<dyn MemoTier> = Arc::new(SimpleMemo::new());
    for arena in [false, true] {
        let (out_tree, live_tree) =
            run_src_memo(src, Runner::Tree, true, arena, Some(Arc::clone(&tier)));
        assert_eq!(
            out_tree, reference,
            "tree walk (memo, arena={arena}) changed the output of:\n{src}"
        );
        for fused in [false, true] {
            let (out_vm, live_vm) = run_src_memo(
                src,
                Runner::Vm { fused },
                true,
                arena,
                Some(Arc::clone(&tier)),
            );
            assert_eq!(
                out_vm, reference,
                "vm (memo, fused={fused}, arena={arena}) changed the output of:\n{src}"
            );
            assert_eq!(
                live_vm, live_tree,
                "vm (memo, fused={fused}, arena={arena}) changed live blocks of:\n{src}"
            );
        }
    }
    reference
}

// -- corpus ------------------------------------------------------------------

/// Every corpus program, tree walk vs VM, across facts × fusion × arena.
/// This is the acceptance gate for the compile pass: the prepared script
/// caches all four `CompiledUnit` variants, and each must reproduce the
/// tree walker's bytes and leave the allocator in the same state.
#[test]
fn corpus_programs_are_engine_invariant() {
    for entry in php_corpus::ENTRIES {
        let p = php_corpus::prepare(entry);
        for with_facts in [false, true] {
            for arena in [false, true] {
                let mut m_tree = PhpMachine::specialized();
                if arena {
                    m_tree.ctx().set_arena_enabled(true);
                }
                let out_tree = p.run(&mut m_tree, with_facts);
                m_tree.end_request();
                let live_tree = m_tree.ctx().with_allocator(|a| a.live_block_count());

                for fused in [false, true] {
                    let mut m_vm = PhpMachine::specialized();
                    if arena {
                        m_vm.ctx().set_arena_enabled(true);
                    }
                    let out_vm = p.run_vm(&mut m_vm, with_facts, fused);
                    m_vm.end_request();
                    let live_vm = m_vm.ctx().with_allocator(|a| a.live_block_count());
                    assert_eq!(
                        out_vm, out_tree,
                        "{}/{} (facts={with_facts}, fused={fused}, arena={arena}): \
                         vm changed the output",
                        entry.app, entry.name
                    );
                    assert_eq!(
                        live_vm, live_tree,
                        "{}/{} (facts={with_facts}, fused={fused}, arena={arena}): \
                         vm changed the end-of-request live-block count",
                        entry.app, entry.name
                    );
                }
            }
        }
    }
}

/// Corpus programs with the cross-request memo tier attached: one warm tier
/// per entry is shared between the tree walker and both VM variants, across
/// the arena axis, and every run must reproduce the memo-off tree walker's
/// bytes and end-of-request live-block count.
#[test]
fn corpus_programs_are_memo_invariant_across_engines() {
    for entry in php_corpus::ENTRIES {
        let p = php_corpus::prepare(entry);
        for arena in [false, true] {
            let mut m_off = PhpMachine::specialized();
            if arena {
                m_off.ctx().set_arena_enabled(true);
            }
            let out_off = p.run(&mut m_off, true);
            m_off.end_request();
            let live_off = m_off.ctx().with_allocator(|a| a.live_block_count());

            let tier: Arc<dyn MemoTier> = Arc::new(SimpleMemo::new());
            let mut runs: Vec<(String, Vec<u8>, usize)> = Vec::new();
            for pass in ["cold", "warm"] {
                let mut m = PhpMachine::specialized();
                if arena {
                    m.ctx().set_arena_enabled(true);
                }
                let out = p.run_memo(&mut m, true, Some(Arc::clone(&tier)));
                m.end_request();
                let live = m.ctx().with_allocator(|a| a.live_block_count());
                runs.push((format!("tree/{pass}"), out, live));
            }
            for fused in [false, true] {
                let mut m = PhpMachine::specialized();
                if arena {
                    m.ctx().set_arena_enabled(true);
                }
                let out = p.run_vm_memo(&mut m, true, fused, Some(Arc::clone(&tier)));
                m.end_request();
                let live = m.ctx().with_allocator(|a| a.live_block_count());
                runs.push((format!("vm/fused={fused}"), out, live));
            }
            for (label, out, live) in &runs {
                assert_eq!(
                    out, &out_off,
                    "{}/{} (arena={arena}, {label}): memo changed the output",
                    entry.app, entry.name
                );
                assert_eq!(
                    live, &live_off,
                    "{}/{} (arena={arena}, {label}): memo changed the \
                     end-of-request live-block count",
                    entry.app, entry.name
                );
            }
        }
    }
}

/// The engine seam itself: a machine switched to [`Engine::Vm`] must make
/// `PreparedScript::run` — the entry point the server, pool, soak, and
/// bench all use — produce the same bytes the default tree-walk engine
/// does, with no caller-side changes.
#[test]
fn engine_dispatch_on_machine_is_transparent() {
    for entry in php_corpus::ENTRIES {
        let p = php_corpus::prepare(entry);
        let mut m_tree = PhpMachine::specialized();
        assert_eq!(m_tree.engine(), Engine::TreeWalk);
        let out_tree = p.run(&mut m_tree, true);

        let mut m_vm = PhpMachine::specialized();
        m_vm.set_engine(Engine::Vm);
        let out_vm = p.run(&mut m_vm, true);
        assert_eq!(
            out_vm, out_tree,
            "{}/{}: Engine::Vm dispatch changed the output",
            entry.app, entry.name
        );
    }
}

// -- generated programs ------------------------------------------------------
//
// Each segment contributes one helper function `segN(..)` plus main-scope
// statements exercising it. Unlike the facts-differential generator (which
// targets the interprocedural analyses), these segments target the VM
// codegen paths where evaluation order is easiest to get wrong: operand
// order around side-effecting calls, short-circuit evaluation, loop
// control flow, indexed assignment, and array iteration.

#[derive(Debug, Clone)]
enum Seg {
    /// `segN($x) = $x * k + c`, called with literal `a`.
    Arith { k: i64, c: i64, a: i64 },
    /// Appends a tag to a global log and returns `v` — the probe other
    /// segments use to observe evaluation order.
    Probe { v: i64 },
    /// A `for` loop with `continue` on multiples of `skip` and `break`
    /// past `stop`.
    Loop { n: i64, skip: i64, stop: i64 },
    /// Builds an array with literal and computed keys, writes through a
    /// probed index, and reads it back.
    Index { base: i64 },
    /// `&&` / `||` chains whose right-hand sides are probed calls: the
    /// log shows exactly which operands were evaluated.
    Short { a: i64, b: i64 },
    /// Ternary and elvis over probed operands.
    Cond { c: i64 },
    /// A foreach over a literal array concatenating key:value pairs.
    Each { len: usize },
}

fn seg_strategy() -> impl Strategy<Value = Seg> {
    prop_oneof![
        (1i64..9, 0i64..50, 0i64..60).prop_map(|(k, c, a)| Seg::Arith { k, c, a }),
        (0i64..40).prop_map(|v| Seg::Probe { v }),
        (1i64..12, 2i64..5, 1i64..10).prop_map(|(n, skip, stop)| Seg::Loop { n, skip, stop }),
        (0i64..30).prop_map(|base| Seg::Index { base }),
        (0i64..3, 0i64..3).prop_map(|(a, b)| Seg::Short { a, b }),
        (0i64..4).prop_map(|c| Seg::Cond { c }),
        (1usize..5).prop_map(|len| Seg::Each { len }),
    ]
}

/// Renders the segments into one mini-PHP source: helper functions first,
/// then the main-scope driver. Every program starts a `$log` global so the
/// probe segments can record evaluation order into the output.
fn render(segs: &[Seg]) -> String {
    let mut funcs = String::new();
    let mut main = String::from("$log = '';\n");
    for (i, seg) in segs.iter().enumerate() {
        match seg {
            Seg::Arith { k, c, a } => {
                let _ = writeln!(funcs, "function seg{i}($x) {{ return $x * {k} + {c}; }}");
                let _ = writeln!(main, "echo 'a{i}:', seg{i}({a}), ';';");
            }
            Seg::Probe { v } => {
                let _ = writeln!(
                    funcs,
                    "function seg{i}($x) {{ global $log; $log = $log . 'p{i}'; return $x + {v}; }}"
                );
                let _ = writeln!(main, "echo 'p{i}:', seg{i}({v}), ';';");
            }
            Seg::Loop { n, skip, stop } => {
                let _ = writeln!(
                    funcs,
                    "function seg{i}($n) {{ $acc = ''; \
                     for ($j = 0; $j < $n; $j = $j + 1) {{ \
                     if ($j % {skip} == 0) {{ continue; }} \
                     if ($j > {stop}) {{ break; }} \
                     $acc = $acc . $j; }} return $acc; }}"
                );
                let _ = writeln!(main, "echo 'l{i}:', seg{i}({n}), ';';");
            }
            Seg::Index { base } => {
                let _ = writeln!(
                    funcs,
                    "function seg{i}($x) {{ global $log; $log = $log . 'i{i}'; return $x; }}"
                );
                let _ = writeln!(
                    main,
                    "$arr{i} = array('k' => {base}, 1, 2); \
                     $arr{i}[seg{i}(0)] = seg{i}(7) + 1; \
                     echo 'x{i}:', $arr{i}[0], $arr{i}['k'], ';';"
                );
            }
            Seg::Short { a, b } => {
                let _ = writeln!(
                    funcs,
                    "function seg{i}($x) {{ global $log; $log = $log . 's{i}'; return $x; }}"
                );
                let _ = writeln!(
                    main,
                    "$u{i} = {a} && seg{i}(1); $v{i} = {b} || seg{i}(0); \
                     echo 'b{i}:', $u{i} ? 'T' : 'F', $v{i} ? 'T' : 'F', ';';"
                );
            }
            Seg::Cond { c } => {
                let _ = writeln!(
                    funcs,
                    "function seg{i}($x) {{ global $log; $log = $log . 'c{i}'; return $x; }}"
                );
                let _ = writeln!(
                    main,
                    "echo 'q{i}:', {c} ? seg{i}(1) : seg{i}(2), ';', seg{i}({c}) ?: 9, ';';"
                );
            }
            Seg::Each { len } => {
                let items: Vec<String> = (0..*len).map(|j| format!("'v{j}'")).collect();
                let _ = writeln!(
                    funcs,
                    "function seg{i}($a) {{ $s = ''; foreach ($a as $k => $v) \
                     {{ $s = $s . $k . ':' . $v . ','; }} return $s; }}"
                );
                let _ = writeln!(
                    main,
                    "echo 'e{i}:', seg{i}(array({})), ';';",
                    items.join(", ")
                );
            }
        }
    }
    main.push_str("echo 'log:', $log;\n");
    format!("{funcs}{main}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn generated_programs_are_engine_invariant(
        segs in prop::collection::vec(seg_strategy(), 1..6),
    ) {
        let src = render(&segs);
        // assert_engines_agree covers the full facts × fusion × arena matrix.
        assert_engines_agree(&src);
    }
}

// -- pinned evaluation-order regressions -------------------------------------

/// Indexed assignment evaluates the assigned *value* before the base is
/// loaded or the key is evaluated. A VM that naively emits base, key, value
/// in syntactic order logs "KV" here and reads a stale global.
#[test]
fn pinned_indexed_assign_value_before_base_and_key() {
    let src = "function v() { global $log; $log = $log . 'V'; return 7; }\n\
               function k() { global $log; $log = $log . 'K'; return 1; }\n\
               $log = '';\n\
               $a = array(0, 0);\n\
               $a[k()] = v();\n\
               echo $log, ':', $a[1];";
    assert_eq!(assert_engines_agree(src), b"VK:7");
}

/// Array-literal entries evaluate the value before the key, entry by entry.
#[test]
fn pinned_array_literal_value_before_key() {
    let src = "function v() { global $log; $log = $log . 'V'; return 'x'; }\n\
               function k() { global $log; $log = $log . 'K'; return 'kk'; }\n\
               $log = '';\n\
               $a = array(k() => v(), 1 => 'y');\n\
               echo $log, ':', $a['kk'], $a[1];";
    assert_eq!(assert_engines_agree(src), b"VK:xy");
}

/// `?:` (elvis) returns the *condition's value* when truthy — not a
/// re-evaluation, not a bool — and never touches the fallback.
#[test]
fn pinned_elvis_returns_condition_and_skips_fallback() {
    let src = "function f() { global $log; $log = $log . 'F'; return 'fb'; }\n\
               function c() { global $log; $log = $log . 'C'; return 'hi'; }\n\
               $log = '';\n\
               echo c() ?: f(), ':', $log;";
    assert_eq!(assert_engines_agree(src), b"hi:C");
}

/// `&&` and `||` short-circuit: the right operand must not run when the
/// left decides the result, and the result is a bool either way.
#[test]
fn pinned_and_or_short_circuit_and_return_bool() {
    let src = "function t() { global $log; $log = $log . 'T'; return 1; }\n\
               $log = '';\n\
               $a = 0 && t();\n\
               $b = 1 || t();\n\
               $c = 1 && t();\n\
               echo $log, ':', $a ? 'y' : 'n', $b ? 'y' : 'n', $c ? 'y' : 'n';";
    assert_eq!(assert_engines_agree(src), b"T:nyy");
}

/// Division by zero emits its warning *into the output stream* at the point
/// of evaluation — fused echo paths must preserve the interleaving.
#[test]
fn pinned_div_by_zero_warning_interleaves_with_echo() {
    let src = "echo 'before;';\n\
               echo 10 % 0 ? 'y' : 'n';\n\
               echo ';after';";
    assert_eq!(
        assert_engines_agree(src),
        b"before;Warning: Division by zero\nn;after"
    );
}

/// String concatenation evaluates left-to-right even when fusion flattens
/// the tree into one `ConcatN` superinstruction.
#[test]
fn pinned_concat_chain_evaluates_left_to_right() {
    let src = "function p($t) { global $log; $log = $log . $t; return $t; }\n\
               $log = '';\n\
               echo p('a') . p('b') . p('c') . p('d'), ':', $log;";
    assert_eq!(assert_engines_agree(src), b"abcd:abcd");
}
