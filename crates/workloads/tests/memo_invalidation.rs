//! Invalidation soundness for the cross-request memo tier.
//!
//! The memo key embeds the *values* of every read-set global, so a stale
//! replay is impossible by construction — these tests pin that down by
//! writing to a dependency between two calls of a memoized function (a
//! direct global rebind, and an indexed write through the global's array)
//! and checking the second call observes the new value, on both engines,
//! with the write-triggered invalidation counters actually firing.

use php_analysis::analyze_with_funcs;
use php_interp::ast::{FuncDef, Stmt};
use php_interp::{compile, parse, CompileOptions, Interp, MemoHandle, MemoTier, SimpleMemo, Vm};
use phpaccel_core::{Engine, PhpMachine};
use std::sync::Arc;

/// Runs `src` once on a fresh machine with facts attached and the given
/// memo tier (if any); returns the output bytes and the machine's memo
/// counters `(hits, misses, stores, invalidations)`.
fn run_once(
    src: &str,
    engine: Engine,
    tier: Option<Arc<dyn MemoTier>>,
) -> (Vec<u8>, (u64, u64, u64, u64)) {
    let program = parse(src).expect("test source parses");
    let shared: Vec<Arc<FuncDef>> = program
        .stmts
        .iter()
        .filter_map(|s| match s {
            Stmt::FuncDef(f) => Some(Arc::new(f.clone())),
            _ => None,
        })
        .collect();
    let analysis = analyze_with_funcs(&program, &shared);
    let facts = Arc::new(analysis.facts);
    let mut m = PhpMachine::specialized();
    m.set_engine(engine);
    let out = match engine {
        Engine::TreeWalk => {
            let mut interp = Interp::new(&mut m);
            interp.predefine_funcs(shared.iter().cloned());
            interp.set_facts(facts.clone());
            if let Some(t) = tier {
                interp.set_memo(MemoHandle::new(t, "inval-test"));
            }
            interp.run_program(&program).expect("test source runs");
            interp.take_output()
        }
        Engine::Vm => {
            let unit = Arc::new(compile(
                &program,
                &shared,
                Some(&facts),
                CompileOptions { fuse: true },
            ));
            let mut vm = Vm::new(&mut m, unit);
            if let Some(t) = tier {
                vm.set_memo(MemoHandle::new(t, "inval-test"));
            }
            vm.run().expect("test source runs on vm");
            vm.take_output()
        }
    };
    let s = m.ctx().profiler().static_savings();
    (
        out,
        (
            s.memo_hits,
            s.memo_misses,
            s.memo_stores,
            s.memo_invalidations,
        ),
    )
}

/// A direct rebind of a read-set global between two identical calls: the
/// second call must see the new value, never the cached first result.
const DIRECT_REBIND: &str = r#"
$cfg = 'A';
function render($x) {
    global $cfg;
    return $x . ':' . $cfg;
}
echo render('a');
$cfg = 'B';
echo render('a');
"#;

/// The same hazard through an indexed write: the dependency is an array
/// global and the write lands on one of its keys, not the binding itself.
const INDEXED_WRITE: &str = r#"
$conf = array();
$conf['mode'] = 'fast';
function mode_line($p) {
    global $conf;
    return $p . '=' . $conf['mode'];
}
echo mode_line('m');
$conf['mode'] = 'slow';
echo mode_line('m');
"#;

#[test]
fn dependency_writes_never_replay_stale_values() {
    for engine in [Engine::TreeWalk, Engine::Vm] {
        for (name, src, expected) in [
            ("direct-rebind", DIRECT_REBIND, "a:Aa:B"),
            ("indexed-write", INDEXED_WRITE, "m=fastm=slow"),
        ] {
            let (plain, _) = run_once(src, engine, None);
            assert_eq!(plain, expected.as_bytes(), "{name} memo-off ({engine:?})");

            let tier = Arc::new(SimpleMemo::new());
            let (memoized, (hits, misses, stores, invalidations)) =
                run_once(src, engine, Some(tier));
            assert_eq!(
                memoized, plain,
                "{name} ({engine:?}): a dependency write must flow into the \
                 next call, not be shadowed by a stale memo entry"
            );
            assert_eq!(hits, 0, "{name} ({engine:?}): both keys are distinct");
            assert!(misses >= 2 && stores >= 1, "{name} ({engine:?})");
            assert!(
                invalidations >= 1,
                "{name} ({engine:?}): the write must purge the fingerprinted \
                 entry, got hits={hits} misses={misses} stores={stores}"
            );
        }
    }
}

/// Across requests against one warm tier: a dependency-free helper replays,
/// while an entry whose dependency is rewritten at the top of every request
/// is invalidated before it could ever be (incorrectly or not) reused with
/// the counters to prove it.
#[test]
fn warm_tier_hits_are_dependency_faithful_across_requests() {
    for engine in [Engine::TreeWalk, Engine::Vm] {
        let tier: Arc<SimpleMemo> = Arc::new(SimpleMemo::new());
        let mut outputs = Vec::new();
        let mut last = (0, 0, 0, 0);
        for _ in 0..3 {
            let (out, counters) = run_once(
                DIRECT_REBIND,
                engine,
                Some(tier.clone() as Arc<dyn MemoTier>),
            );
            outputs.push(out);
            last = counters;
        }
        assert!(
            outputs.iter().all(|o| o == &outputs[0]),
            "requests must be reproducible ({engine:?})"
        );
        // Every request rebinds $cfg twice, so entries fingerprinted on it
        // are purged each request: the warm tier keeps serving misses, and
        // the per-request invalidation counter stays live.
        let (hits, _misses, _stores, invalidations) = last;
        assert_eq!(
            hits, 0,
            "rewritten deps must not accumulate hits ({engine:?})"
        );
        assert!(invalidations >= 1, "({engine:?})");
    }
}
