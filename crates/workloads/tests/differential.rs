//! Differential soundness harness for the static analyses.
//!
//! The facts table is only allowed to remove *metered* work — type checks,
//! refcount traffic, hash-table probe stages, regex compiles. Attaching it
//! must never change what a script prints or how many heap blocks survive
//! the request. This harness runs every corpus program, plus a family of
//! generated call-heavy programs, both fully dynamic and with facts
//! attached, and demands byte-identical output and identical live-block
//! counts.

use php_analysis::analyze_with_funcs;
use php_interp::ast::{FuncDef, Stmt};
use php_interp::{parse, Interp, MemoHandle, MemoTier, SimpleMemo};
use phpaccel_core::PhpMachine;
use proptest::prelude::*;
use std::fmt::Write as _;
use std::sync::Arc;
use workloads::php_corpus;

/// Runs `src` on a fresh specialized machine, returning the output bytes and
/// the *end-of-request* live-block count (after the request boundary, so an
/// arena epoch has been reclaimed). Mirrors `php_corpus::prepare`: function
/// bodies are shared between the analysis and the interpreter so facts stay
/// valid inside them.
fn run_generated_with(
    src: &str,
    with_facts: bool,
    arena: bool,
    memo: Option<Arc<dyn MemoTier>>,
) -> (Vec<u8>, usize) {
    let program =
        parse(src).unwrap_or_else(|e| panic!("generated program fails to parse: {e:?}\n{src}"));
    let shared: Vec<Arc<FuncDef>> = program
        .stmts
        .iter()
        .filter_map(|s| match s {
            Stmt::FuncDef(f) => Some(Arc::new(f.clone())),
            _ => None,
        })
        .collect();
    let analysis = analyze_with_funcs(&program, &shared);
    let facts = Arc::new(analysis.facts);
    let mut m = PhpMachine::specialized();
    if arena {
        m.ctx().set_arena_enabled(true);
    }
    let out = {
        let mut interp = Interp::new(&mut m);
        interp.predefine_funcs(shared.iter().cloned());
        if with_facts {
            interp.set_facts(facts);
        }
        if let Some(t) = memo {
            interp.set_memo(MemoHandle::new(t, "diff-test"));
        }
        interp
            .run_program(&program)
            .unwrap_or_else(|e| panic!("generated program fails: {e:?}\n{src}"));
        interp.take_output()
    };
    m.end_request();
    let live = m.ctx().with_allocator(|a| a.live_block_count());
    (out, live)
}

fn run_generated(src: &str, with_facts: bool) -> (Vec<u8>, usize) {
    run_generated_with(src, with_facts, false, None)
}

#[test]
fn corpus_programs_are_facts_invariant() {
    for entry in php_corpus::ENTRIES {
        let p = php_corpus::prepare(entry);
        let mut m_dyn = PhpMachine::specialized();
        let out_dyn = p.run(&mut m_dyn, false);
        let mut m_facts = PhpMachine::specialized();
        let out_facts = p.run(&mut m_facts, true);
        assert_eq!(
            out_dyn, out_facts,
            "{}/{}: facts changed the output",
            entry.app, entry.name
        );
        let live_dyn = m_dyn.ctx().with_allocator(|a| a.live_block_count());
        let live_facts = m_facts.ctx().with_allocator(|a| a.live_block_count());
        assert_eq!(
            live_dyn, live_facts,
            "{}/{}: facts changed the live-block count",
            entry.app, entry.name
        );
    }
}

/// Arena/epoch mode is a pure allocation-policy change: with the same facts
/// attached, routing region-proven sites through the bump arena must not
/// change a byte of output, and after the request-boundary epoch reset both
/// machines must hold the same number of live blocks (escaping allocations
/// only — the arena's were reclaimed in O(1), the free lists' one by one).
#[test]
fn corpus_programs_are_arena_invariant() {
    for entry in php_corpus::ENTRIES {
        let p = php_corpus::prepare(entry);

        let mut m_off = PhpMachine::specialized();
        let out_off = p.run(&mut m_off, true);
        m_off.end_request();

        let mut m_on = PhpMachine::specialized();
        m_on.ctx().set_arena_enabled(true);
        let out_on = p.run(&mut m_on, true);
        m_on.end_request();

        assert_eq!(
            out_off, out_on,
            "{}/{}: arena mode changed the output",
            entry.app, entry.name
        );
        let live_off = m_off.ctx().with_allocator(|a| a.live_block_count());
        let live_on = m_on.ctx().with_allocator(|a| a.live_block_count());
        assert_eq!(
            live_off, live_on,
            "{}/{}: arena mode changed the end-of-request live-block count",
            entry.app, entry.name
        );
    }
}

/// Memo mode is a pure evaluation shortcut: with a warm cross-request tier
/// attached (second run against the same cache, so hits actually replay),
/// every corpus program must print the same bytes and leave the same number
/// of live blocks after the request boundary as the memo-off run — with and
/// without the arena underneath.
#[test]
fn corpus_programs_are_memo_invariant() {
    for entry in php_corpus::ENTRIES {
        let p = php_corpus::prepare(entry);
        for arena in [false, true] {
            let mut m_off = PhpMachine::specialized();
            if arena {
                m_off.ctx().set_arena_enabled(true);
            }
            let out_off = p.run(&mut m_off, true);
            m_off.end_request();
            let live_off = m_off.ctx().with_allocator(|a| a.live_block_count());

            let tier: Arc<dyn MemoTier> = Arc::new(SimpleMemo::new());
            for label in ["cold", "warm"] {
                let mut m_on = PhpMachine::specialized();
                if arena {
                    m_on.ctx().set_arena_enabled(true);
                }
                let out_on = p.run_memo(&mut m_on, true, Some(Arc::clone(&tier)));
                m_on.end_request();
                let live_on = m_on.ctx().with_allocator(|a| a.live_block_count());
                assert_eq!(
                    out_off, out_on,
                    "{}/{} (arena={arena}, {label}): memo changed the output",
                    entry.app, entry.name
                );
                assert_eq!(
                    live_off, live_on,
                    "{}/{} (arena={arena}, {label}): memo changed the \
                     end-of-request live-block count",
                    entry.app, entry.name
                );
            }
        }
    }
}

// -- generated call-heavy programs -------------------------------------------
//
// Each segment contributes one helper function `segN($x)` plus the main-scope
// statements that exercise it. Segments cover the interprocedural features:
// constant arithmetic across a call, string returns feeding concats, constant
// `preg_*` patterns returned from helpers, global writes inside callees,
// self-recursion (an SCC in the call graph), and chains calling the previous
// segment's helper.

#[derive(Debug, Clone)]
enum Seg {
    /// `segN($x) = $x * k + c`, called with literal `a`.
    Arith { k: i64, c: i64, a: i64 },
    /// `segN($x) = lit . $x . '!'`, called with a literal string.
    Concat { lit: String, arg: String },
    /// `segN()` returns a constant pattern; main feeds it to `preg_match`.
    Pattern { pat: &'static str, subject: String },
    /// `segN($x)` writes a global the caller also reads.
    Global { v: i64 },
    /// Self-recursive countdown — a non-trivial SCC for the summary pass.
    Recur { n: i64, base: i64 },
    /// Calls the previous segment's helper twice and concatenates.
    Chain { a: i64 },
}

fn seg_strategy() -> impl Strategy<Value = Seg> {
    prop_oneof![
        (1i64..9, 0i64..50, 0i64..60).prop_map(|(k, c, a)| Seg::Arith { k, c, a }),
        ("[a-z]{0,6}", "[a-z0-9]{0,8}").prop_map(|(lit, arg)| Seg::Concat { lit, arg }),
        (
            prop::sample::select(vec!["[a-z]+", "[0-9]+", "wp", "ab"]),
            "[a-z ]{0,16}"
        )
            .prop_map(|(pat, subject)| Seg::Pattern { pat, subject }),
        (0i64..40).prop_map(|v| Seg::Global { v }),
        (0i64..6, 0i64..10).prop_map(|(n, base)| Seg::Recur { n, base }),
        (0i64..20).prop_map(|a| Seg::Chain { a }),
    ]
}

/// Renders the segments into one mini-PHP source: all helper functions first,
/// then the main-scope driver, then a foreach epilogue re-calling `seg0` so
/// every program ends with a loop full of calls.
fn render(segs: &[Seg]) -> String {
    let mut funcs = String::new();
    let mut main = String::new();
    for (i, seg) in segs.iter().enumerate() {
        match seg {
            Seg::Arith { k, c, a } => {
                let _ = writeln!(funcs, "function seg{i}($x) {{ return $x * {k} + {c}; }}");
                let _ = writeln!(main, "$r{i} = seg{i}({a}); echo 'a{i}:', $r{i}, ';';");
            }
            Seg::Concat { lit, arg } => {
                let _ = writeln!(
                    funcs,
                    "function seg{i}($x) {{ return '{lit}' . $x . '!'; }}"
                );
                let _ = writeln!(main, "$s{i} = seg{i}('{arg}'); echo $s{i}, ';';");
            }
            Seg::Pattern { pat, subject } => {
                let _ = writeln!(funcs, "function seg{i}($x) {{ return '/{pat}/'; }}");
                let _ = writeln!(
                    main,
                    "$m{i} = preg_match(seg{i}(0), '{subject}'); echo 'm{i}:', $m{i}, ';';"
                );
            }
            Seg::Global { v } => {
                let _ = writeln!(
                    funcs,
                    "function seg{i}($x) {{ global $gv{i}; $gv{i} = $x + 1; return $gv{i}; }}"
                );
                let _ = writeln!(
                    main,
                    "$gv{i} = 5; $t{i} = seg{i}({v}); echo $t{i}, ':', $gv{i}, ';';"
                );
            }
            Seg::Recur { n, base } => {
                let _ = writeln!(
                    funcs,
                    "function seg{i}($x) {{ return $x ? seg{i}($x - 1) : {base}; }}"
                );
                let _ = writeln!(main, "echo 'r{i}:', seg{i}({n}), ';';");
            }
            Seg::Chain { a } => {
                if i == 0 {
                    let _ = writeln!(funcs, "function seg{i}($x) {{ return $x + 1; }}");
                } else {
                    let j = i - 1;
                    let _ = writeln!(
                        funcs,
                        "function seg{i}($x) {{ return seg{j}($x) . '|' . seg{j}($x); }}"
                    );
                }
                let _ = writeln!(main, "echo 'c{i}:', seg{i}({a}), ';';");
            }
        }
    }
    main.push_str("foreach (array(1, 2, 3) as $it) { echo seg0($it), ','; }\n");
    format!("{funcs}{main}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn generated_call_heavy_programs_are_facts_invariant(
        segs in prop::collection::vec(seg_strategy(), 1..6),
    ) {
        let src = render(&segs);
        let (out_dyn, live_dyn) = run_generated(&src, false);
        let (out_facts, live_facts) = run_generated(&src, true);
        prop_assert_eq!(&out_dyn, &out_facts, "facts changed the output of:\n{}", src);
        prop_assert_eq!(live_dyn, live_facts, "facts changed live blocks of:\n{}", src);

        // Same facts, arena mode on: the allocation policy must be invisible.
        let (out_arena, live_arena) = run_generated_with(&src, true, true, None);
        prop_assert_eq!(&out_dyn, &out_arena, "arena mode changed the output of:\n{}", src);
        prop_assert_eq!(
            live_dyn, live_arena,
            "arena mode changed end-of-request live blocks of:\n{}", src
        );

        // Memo axis: run the same program twice against one warm tier (so
        // second-request replays actually fire where the analysis proved a
        // site), then once more with the arena on top. The generated
        // `Seg::Global` helpers write globals inside callees — exactly the
        // shape the effect analysis must refuse to memoize — so any
        // unsoundness in the purity verdicts shows up as a byte diff here.
        let tier: Arc<dyn MemoTier> = Arc::new(SimpleMemo::new());
        for label in ["cold", "warm"] {
            let (out_memo, live_memo) =
                run_generated_with(&src, true, false, Some(Arc::clone(&tier)));
            prop_assert_eq!(
                &out_dyn, &out_memo,
                "memo ({}) changed the output of:\n{}", label, src
            );
            prop_assert_eq!(
                live_dyn, live_memo,
                "memo ({}) changed end-of-request live blocks of:\n{}", label, src
            );
        }
        let (out_am, live_am) = run_generated_with(&src, true, true, Some(tier));
        prop_assert_eq!(
            &out_dyn, &out_am,
            "memo x arena changed the output of:\n{}", src
        );
        prop_assert_eq!(
            live_dyn, live_am,
            "memo x arena changed end-of-request live blocks of:\n{}", src
        );
    }
}
