//! MediaWiki-like wiki workload.
//!
//! Wikitext parsing is regexp- and string-intensive: a cascade of markup
//! regexps over the same article text, section splitting, title
//! canonicalization, and link-table lookups. The paper reports MediaWiki
//! getting modest regexp-accelerator benefit and solid string/heap benefit.

use crate::corpus::{Corpus, CorpusConfig};
use crate::loadgen::Workload;
use crate::vmtail::VmTail;
use php_runtime::array::ArrayKey;
use php_runtime::string::PhpStr;
use php_runtime::value::PhpValue;
use phpaccel_core::PhpMachine;
use regex_engine::Regex;

/// The MediaWiki-like application.
pub struct MediaWiki {
    corpus: Corpus,
    articles: Vec<PhpStr>,
    titles: Vec<PhpStr>,
    parse_rules: Vec<(Regex, Vec<u8>)>,
    interwiki: Vec<(String, String)>,
    parser_cache: Vec<Option<PhpStr>>,
    tail: VmTail,
}

impl MediaWiki {
    /// Builds the application.
    pub fn new(seed: u64) -> Self {
        let mut corpus = Corpus::new(CorpusConfig {
            special_density: 0.04,
            words_per_paragraph: 40,
            paragraphs_per_post: 3,
            seed,
        });
        let articles: Vec<PhpStr> = (0..25).map(|_| corpus.wiki_markup()).collect();
        let titles: Vec<PhpStr> = (0..25).map(|_| corpus.title()).collect();
        // The wikitext pipeline: all patterns seek special characters
        // (brackets, quotes, '='), so shadows can skip sifted content.
        let parse_rules = vec![
            (Regex::new("'''").unwrap(), b"<b>".to_vec()),
            (Regex::new("''").unwrap(), b"<i>".to_vec()),
            (
                Regex::new("\\[\\[[a-z]+\\]\\]").unwrap(),
                b"<a>x</a>".to_vec(),
            ),
            (Regex::new("== ").unwrap(), b"<h2>".to_vec()),
            (Regex::new(" ==").unwrap(), b"</h2>".to_vec()),
        ];
        let interwiki = (0..12)
            .map(|i| (format!("wiki{i}"), format!("https://w{i}.example/")))
            .collect();
        let parser_cache = vec![None; articles.len()];
        MediaWiki {
            corpus,
            articles,
            titles,
            parse_rules,
            interwiki,
            parser_cache,
            tail: VmTail {
                scale: 150,
                refcount_ops: 1300,
                type_checks: 800,
            },
        }
    }
}

impl Workload for MediaWiki {
    fn name(&self) -> &'static str {
        "mediawiki"
    }

    fn handle_request(&mut self, m: &mut PhpMachine, req: u64) {
        let idx = self.corpus.zipf_pick(self.articles.len());
        let article = self.articles[idx].clone();
        let title = self.titles[idx].clone();

        // 1. Title canonicalization: trim, case-fold, space→underscore.
        let trimmed = m.trim(&title);
        let lowered = m.strtolower(&trimmed);
        let (canonical, _) = m.str_replace(b" ", b"_", &lowered);
        let _v = m.transient_str(canonical.clone());

        // 2. Page-cache and interwiki lookups.
        let mut page_cache = m.new_array();
        m.array_set(
            &mut page_cache,
            ArrayKey::from(format!("page:{}", canonical.to_string_lossy())),
            PhpValue::from(idx as i64),
        );
        let mut iw = m.new_array();
        for (k, v) in &self.interwiki {
            m.array_set(
                &mut iw,
                ArrayKey::from(k.as_str()),
                PhpValue::from(v.as_str()),
            );
        }
        for _pass in 0..2 {
            for (k, _) in self.interwiki.iter().take(10) {
                m.array_get(&iw, &ArrayKey::from(k.as_str()));
            }
        }

        // 3. Section split: explode on newlines, scan for heading markers.
        let sections = m.explode(b"\n", &article);
        let mut heading_count = 0;
        for s in &sections {
            if m.strpos(s, b"==", 0).is_some() {
                heading_count += 1;
            }
        }
        let _ = heading_count;

        // 4. The wikitext regexp cascade — through the parser cache, as in
        //    production MediaWiki (full parse only on a cache miss or on
        //    periodic invalidation).
        let html = match (&self.parser_cache[idx], req.is_multiple_of(32)) {
            (Some(cached), false) => cached.clone(),
            _ => {
                let parsed = m.texturize(&article, &self.parse_rules);
                self.parser_cache[idx] = Some(parsed.clone());
                parsed
            }
        };

        // 5. Escape and assemble the skin: repeated small allocations.
        let escaped = m.htmlspecialchars(&html);
        for chunk in escaped.as_bytes().chunks(96).take(24) {
            let piece = PhpStr::from_bytes(chunk.to_vec());
            let _v = m.transient_str(piece);
        }
        let joined = m.implode(b"\n", &sections[..sections.len().min(8)]);
        let _v = m.transient_str(joined);

        // 6. Parser-object churn: token and node objects recycled heavily.
        for i in 0..20u64 {
            let b = m.alloc(16 + (i as usize % 8) * 16);
            m.free(b);
        }

        // The VM tail (skin rendering plumbing, localisation, hooks).
        self.tail.charge(m);

        m.array_free(&iw);
        m.array_free(&page_cache);
        m.end_request();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_runtime::Category;

    #[test]
    fn string_and_regex_heavy() {
        let mut app = MediaWiki::new(1);
        let mut m = PhpMachine::baseline();
        for r in 0..3 {
            app.handle_request(&mut m, r);
        }
        let cats = m.ctx().profiler().category_breakdown();
        assert!(cats[&Category::String] > 0);
        assert!(cats[&Category::Regex] > 0);
        assert!(
            cats[&Category::String] + cats[&Category::Regex] > cats[&Category::HashMap],
            "wikitext parsing dominates hash traffic"
        );
    }

    #[test]
    fn sifting_skips_wiki_content() {
        let mut app = MediaWiki::new(2);
        let mut m = PhpMachine::specialized();
        for r in 0..3 {
            app.handle_request(&mut m, r);
        }
        let stats = m.core().regex_stats;
        assert!(stats.sieve_calls > 0);
        assert!(stats.shadow_calls > 0);
        assert!(stats.bytes_skipped_sift > 0);
    }

    #[test]
    fn outputs_agree_between_modes() {
        let mut a1 = MediaWiki::new(3);
        let mut a2 = MediaWiki::new(3);
        let mut base = PhpMachine::baseline();
        let mut spec = PhpMachine::specialized();
        a1.handle_request(&mut base, 0);
        a2.handle_request(&mut spec, 0);
        // Same request stream, both complete without leaks.
        assert_eq!(base.ctx().with_allocator(|a| a.live_block_count()), 0);
        assert_eq!(spec.ctx().with_allocator(|a| a.live_block_count()), 0);
    }
}
