//! WordPress-like blog workload.
//!
//! Mirrors the behaviours the paper measured on WordPress: symbol-table
//! `extract`s with dynamic keys, heavy small-object churn while assembling
//! HTML tags, `wptexturize`-style consecutive regexps over the same content
//! (Figure 11), author-URL parsing with near-identical content (Figure 13),
//! and a mini-PHP page template interpreted per request.

use crate::corpus::{Corpus, CorpusConfig};
use crate::loadgen::Workload;
use crate::vmtail::VmTail;
use php_interp::ast::{FuncDef, Stmt};
use php_interp::{parse, AnalysisFacts, Interp, Program};
use php_runtime::array::ArrayKey;
use php_runtime::string::PhpStr;
use php_runtime::value::PhpValue;
use phpaccel_core::PhpMachine;
use regex_engine::Regex;
use std::sync::Arc;

struct Post {
    title: PhpStr,
    body: PhpStr,
    author: PhpStr,
    tags: Vec<PhpStr>,
    comments: Vec<PhpStr>,
}

/// The WordPress-like application.
pub struct WordPress {
    corpus: Corpus,
    posts: Vec<Post>,
    texturize_rules: Vec<(Regex, Vec<u8>)>,
    author_re: Regex,
    template: Program,
    /// The template's function definitions as shared instances. Every
    /// request pre-registers these with the interpreter, so facts interned
    /// over them stay valid inside function bodies (the interpreter would
    /// otherwise hoist private clones whose nodes have fresh addresses).
    shared_funcs: Vec<Arc<FuncDef>>,
    /// Facts proven over `template` and `shared_funcs` by
    /// [`Workload::enable_static_analysis`]; keyed by node identity, so they
    /// are valid only for those instances.
    facts: Option<Arc<AnalysisFacts>>,
    tail: VmTail,
    requests_handled: u64,
}

/// Number of posts in the synthetic database.
const POST_COUNT: usize = 40;

/// The page template (mini-PHP), interpreted on every request.
pub const TEMPLATE: &str = r#"
function render_header($title) {
    return '<header><h1>' . htmlspecialchars($title) . '</h1></header>';
}
function render_tags($tags) {
    $out = '<ul class="tags">';
    foreach ($tags as $tag) {
        $out .= '<li>' . strtolower(trim($tag)) . '</li>';
    }
    return $out . '</ul>';
}
function render_meta($meta) {
    $out = '';
    foreach ($meta as $k => $v) {
        $out .= '<span data-' . $k . '="' . $v . '"></span>';
    }
    return $out;
}
$page = render_header($title) . render_tags($tags) . render_meta($meta);
echo $page;
"#;

impl WordPress {
    /// Builds the application with a deterministic content database.
    pub fn new(seed: u64) -> Self {
        let mut corpus = Corpus::new(CorpusConfig {
            special_density: 0.05,
            words_per_paragraph: 70,
            paragraphs_per_post: 4,
            seed,
        });
        let posts = (0..POST_COUNT)
            .map(|_| {
                let tags = (0..3 + corpus.pick(4)).map(|_| corpus.title()).collect();
                let comments = (0..2 + corpus.pick(5)).map(|_| corpus.comment()).collect();
                Post {
                    title: corpus.title(),
                    body: corpus.post_body(),
                    author: corpus.author(),
                    tags,
                    comments,
                }
            })
            .collect();
        // Figure 11: consecutive regexps all seeking special characters —
        // apostrophe, double quote, newline, opening angle bracket.
        let texturize_rules = vec![
            (Regex::new("'").unwrap(), b"&#8217;".to_vec()),
            (Regex::new("\"").unwrap(), b"&#8221;".to_vec()),
            (Regex::new("\\n").unwrap(), b"<br/>".to_vec()),
            (Regex::new("<br>").unwrap(), b"<br/>".to_vec()),
        ];
        let author_re = Regex::new("https://localhost/\\?author=[a-z]+").unwrap();
        let template = parse(TEMPLATE).expect("template parses");
        let shared_funcs = template
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::FuncDef(f) => Some(Arc::new(f.clone())),
                _ => None,
            })
            .collect();
        WordPress {
            corpus,
            posts,
            texturize_rules,
            author_re,
            template,
            shared_funcs,
            facts: None,
            tail: VmTail {
                scale: 155,
                refcount_ops: 1500,
                type_checks: 900,
            },
            requests_handled: 0,
        }
    }
}

impl Workload for WordPress {
    fn name(&self) -> &'static str {
        "wordpress"
    }

    fn enable_static_analysis(&mut self) {
        let analysis = php_analysis::analyze_with_funcs(&self.template, &self.shared_funcs);
        self.facts = Some(Arc::new(analysis.facts));
    }

    fn handle_request(&mut self, m: &mut PhpMachine, req: u64) {
        self.requests_handled += 1;
        let idx = self.corpus.zipf_pick(self.posts.len());
        let post = &self.posts[idx];

        // 1. Materialize the post row as a hash map with dynamic keys and
        //    import it into a symbol table (extract).
        let mut row = m.new_array();
        m.array_set(
            &mut row,
            ArrayKey::from("title"),
            PhpValue::str(post.title.clone()),
        );
        m.array_set(
            &mut row,
            ArrayKey::from("body"),
            PhpValue::str(post.body.clone()),
        );
        m.array_set(
            &mut row,
            ArrayKey::from("author"),
            PhpValue::str(post.author.clone()),
        );
        m.array_set(
            &mut row,
            ArrayKey::from("status"),
            PhpValue::from("publish"),
        );
        m.array_set(
            &mut row,
            ArrayKey::from("comment_count"),
            PhpValue::from(post.comments.len() as i64),
        );
        let mut symtab = m.new_array();
        m.extract(&mut symtab, &row);

        // 2. Post meta: short-lived hash map keyed by dynamic names.
        let mut meta = m.new_array();
        for k in 0..6 {
            let key = format!("meta_{}_{}", idx % 7, k);
            m.array_set(&mut meta, ArrayKey::from(key), PhpValue::from(k as i64));
        }
        for _pass in 0..2 {
            for k in 0..6 {
                let key = format!("meta_{}_{}", idx % 7, k);
                m.array_get(&meta, &ArrayKey::from(key));
            }
        }
        // Templates re-read post fields repeatedly.
        {
            for f in ["title", "author", "status", "comment_count"] {
                m.array_get(&row, &ArrayKey::from(f));
            }
        }

        // 3. Texturize: the excerpt every request; the full body only on a
        //    texturize-cache miss (1 in 5), like production object caching.
        let excerpt = m.ctx().strlib().substr(&post.body, 0, Some(96));
        let textured = if req.is_multiple_of(24) {
            m.texturize(&post.body, &self.texturize_rules)
        } else {
            m.texturize(&excerpt, &self.texturize_rules)
        };

        // 4. Interpreted page template: header, tags, meta spans.
        let mut tags_arr = m.new_array();
        let tag_values: Vec<PhpValue> =
            post.tags.iter().map(|t| PhpValue::str(t.clone())).collect();
        for t in tag_values {
            m.array_push(&mut tags_arr, t);
        }
        let mut meta_view = m.new_array();
        m.array_set(
            &mut meta_view,
            ArrayKey::from("views"),
            PhpValue::from(idx as i64 * 7),
        );
        m.array_set(
            &mut meta_view,
            ArrayKey::from("likes"),
            PhpValue::from(idx as i64),
        );
        {
            let mut interp = Interp::new(m);
            interp.predefine_funcs(self.shared_funcs.iter().cloned());
            if let Some(facts) = &self.facts {
                interp.set_facts(facts.clone());
            }
            interp.set_var_public("title", PhpValue::str(post.title.clone()));
            interp.set_var_public("tags", PhpValue::array_from(tags_arr));
            interp.set_var_public("meta", PhpValue::array_from(meta_view));
            interp.run_program(&self.template).expect("template runs");
            let _page = interp.take_output();
        }

        // 5. Comments: normalize, escape, line-break — each comment churns
        //    several short-lived strings (the paper's HTML-tag pattern).
        for c in &post.comments {
            let trimmed = m.trim(c);
            let lowered = m.strtolower(&trimmed);
            let _pos = m.strpos(&lowered, b"the", 0);
            let escaped = m.htmlspecialchars(&trimmed);
            let broken = m.nl2br(&escaped);
            let _v = m.transient_str(broken);
        }

        // 5b. Tag-assembly allocation churn: attribute strings are built
        //     and recycled constantly (§4.3's strong memory reuse).
        for i in 0..17u64 {
            let b = m.alloc(16 + (i as usize % 8) * 16);
            m.free(b);
        }

        // 5c. Slug + search-highlight string work.
        let upper = m.strtoupper(&post.title);
        let slug = m.strtolower(&upper);
        let (slug, _) = m.str_replace(b" ", b"-", &slug);
        let _v = m.transient_str(slug);
        let _ = m.strpos(&post.body, b"content", 0);
        let _ = m.strpos(&post.body, b"article", 0);
        let _cmp = m.strcmp(&post.title, &upper);

        // 6. Author URL parsed repeatedly — content reuse opportunity.
        let url = self.corpus.author_url(&post.author);
        let _ = m.match_with_reuse(0x4010_0000, &self.author_re, &url);

        // 7. Assemble the final page: tag-churn allocations.
        let mut page = PhpStr::from("<article>");
        page.push_bytes(textured.as_bytes());
        page.push_bytes(b"</article>");
        let _v = m.transient_str(page);

        // 8. The VM tail: request plumbing, DB driver, autoloader, session.
        self.tail.charge(m);

        // 9. Teardown: free the short-lived maps.
        m.array_free(&meta);
        m.array_free(&symtab);
        m.array_free(&row);
        m.end_request();
    }
}

/// Helper: PhpValue::Array from a PhpArray (readability shim).
trait ArrayFrom {
    fn array_from(a: php_runtime::array::PhpArray) -> PhpValue;
}

impl ArrayFrom for PhpValue {
    fn array_from(a: php_runtime::array::PhpArray) -> PhpValue {
        PhpValue::array(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_runtime::Category;

    #[test]
    fn request_exercises_all_categories() {
        let mut app = WordPress::new(1);
        let mut m = PhpMachine::baseline();
        for r in 0..3 {
            app.handle_request(&mut m, r);
        }
        let cats = m.ctx().profiler().category_breakdown();
        for cat in [
            Category::HashMap,
            Category::Heap,
            Category::String,
            Category::Regex,
            Category::JitCode,
        ] {
            assert!(cats.get(&cat).copied().unwrap_or(0) > 0, "missing {cat:?}");
        }
    }

    #[test]
    fn specialized_runs_identically_and_cheaper() {
        let mut base_app = WordPress::new(2);
        let mut spec_app = WordPress::new(2);
        let mut base = PhpMachine::baseline();
        let mut spec = PhpMachine::specialized();
        for r in 0..5 {
            base_app.handle_request(&mut base, r);
            spec_app.handle_request(&mut spec, r);
        }
        let b = base.ctx().profiler().total_uops();
        let s = spec.ctx().profiler().total_uops();
        assert!(s < b, "specialized {s} vs baseline {b}");
        assert!(spec.core().htable.stats().hit_rate() > 0.5);
        assert!(spec.core().regex_stats.bytes_skipped_sift > 0);
        assert!(spec.core().reuse.stats().lookups > 0);
    }

    /// Renders one request's template directly, with or without facts.
    fn render_template_once(analyzed: bool, mode_spec: bool) -> (Vec<u8>, u64, u64) {
        let mut app = WordPress::new(11);
        if analyzed {
            app.enable_static_analysis();
        }
        let mut m = if mode_spec {
            PhpMachine::specialized()
        } else {
            PhpMachine::baseline()
        };
        let mut interp = Interp::new(&mut m);
        interp.predefine_funcs(app.shared_funcs.iter().cloned());
        if let Some(f) = &app.facts {
            interp.set_facts(f.clone());
        }
        interp.set_var_public("title", PhpValue::from("A 'Title' & more"));
        let mut tags = interp.machine().new_array();
        for t in ["  News ", "PHP"] {
            let v = PhpValue::from(t);
            interp.machine().array_push(&mut tags, v);
        }
        interp.set_var_public("tags", PhpValue::array(tags));
        let mut meta = interp.machine().new_array();
        interp
            .machine()
            .array_set(&mut meta, ArrayKey::from("views"), PhpValue::from(3i64));
        interp.set_var_public("meta", PhpValue::array(meta));
        interp.run_program(&app.template).expect("template runs");
        let out = interp.take_output();
        let savings = m.ctx().profiler().static_savings();
        (
            out,
            savings.type_checks_avoided,
            savings.rc_incs_avoided + savings.rc_decs_avoided,
        )
    }

    #[test]
    fn analysis_preserves_template_output_exactly() {
        for spec in [false, true] {
            let (plain, tc0, rc0) = render_template_once(false, spec);
            let (analyzed, tc1, rc1) = render_template_once(true, spec);
            assert_eq!(
                plain, analyzed,
                "output must be byte-identical (spec={spec})"
            );
            assert_eq!((tc0, rc0), (0, 0), "no savings without facts");
            assert!(tc1 > 0, "analysis must avoid some type checks");
            assert!(rc1 > 0, "analysis must elide some refcount traffic");
        }
    }

    #[test]
    fn enable_static_analysis_accumulates_savings_across_requests() {
        let mut app = WordPress::new(5);
        app.enable_static_analysis();
        let mut m = PhpMachine::specialized();
        for r in 0..3 {
            app.handle_request(&mut m, r);
        }
        let s = m.ctx().profiler().static_savings();
        assert!(s.type_checks_avoided > 0);
        assert!(s.rc_incs_avoided > 0);
        assert!(s.rc_decs_avoided > 0);
        // The proven const-string / append key shapes reach the hardware
        // hash table as hints.
        let ht = m.core().htable.stats();
        assert!(ht.hinted_hash_skips > 0, "{ht:?}");
    }

    #[test]
    fn no_leaks_across_requests() {
        let mut app = WordPress::new(3);
        let mut m = PhpMachine::specialized();
        for r in 0..4 {
            app.handle_request(&mut m, r);
        }
        let live = m.ctx().with_allocator(|a| a.live_block_count());
        assert_eq!(live, 0, "request-scoped memory must be recycled");
    }
}
