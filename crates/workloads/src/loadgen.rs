//! Load generator.
//!
//! §5.1: "The load generator emulates load from a large pool of client
//! clusters [...] It generates 300 warmup requests, then as many requests
//! as possible in next one minute." Here time is simulated, so the measured
//! phase is a fixed request count; warmup requests run with metrics
//! suppressed and are discarded by a [`PhpMachine::reset_metrics`] before
//! measurement begins.

use phpaccel_core::PhpMachine;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A server-side application under test.
pub trait Workload {
    /// Short identifier.
    fn name(&self) -> &'static str;
    /// Handles one request end-to-end (must call `end_request`).
    fn handle_request(&mut self, m: &mut PhpMachine, req: u64);
    /// Runs the static analyzer over the application's interpreted PHP
    /// templates so later requests skip statically provable work (type
    /// checks, refcount pairs, hash stages). Default: no templates, no-op.
    fn enable_static_analysis(&mut self) {}
}

/// Load-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadGen {
    /// Warmup requests (paper: 300; scaled down by default for test speed).
    pub warmup: usize,
    /// Measured requests.
    pub measured: usize,
    /// Inject an OS context switch every N requests (0 = never).
    pub context_switch_every: usize,
}

impl Default for LoadGen {
    fn default() -> Self {
        LoadGen {
            warmup: 30,
            measured: 100,
            context_switch_every: 50,
        }
    }
}

/// Summary of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Requests measured.
    pub requests: usize,
    /// Total µops in the measured phase.
    pub total_uops: u64,
    /// Accelerator cycles in the measured phase.
    pub accel_cycles: u64,
    /// Requests (warmup or measured) that panicked instead of completing.
    pub failed_requests: usize,
    /// Message of the first failure, if any.
    pub first_error: Option<String>,
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

impl LoadGen {
    /// Runs `warmup + measured` requests of `app` on `machine`; metrics
    /// cover only the measured phase. A request that panics is *recorded*
    /// (count + first message), the machine's invariants are restored via
    /// [`PhpMachine::recover_request`], and the run continues — one bad
    /// request must not take down the stream.
    pub fn run(&self, app: &mut dyn Workload, machine: &mut PhpMachine) -> RunSummary {
        let mut failed_requests = 0;
        let mut first_error = None;
        let mut serve = |machine: &mut PhpMachine, req: u64| {
            let out = catch_unwind(AssertUnwindSafe(|| app.handle_request(machine, req)));
            if let Err(payload) = out {
                failed_requests += 1;
                if first_error.is_none() {
                    first_error = Some(panic_message(payload.as_ref()));
                }
                machine.recover_request();
            }
        };
        for r in 0..self.warmup {
            serve(machine, r as u64);
        }
        machine.reset_metrics();
        for r in 0..self.measured {
            if self.context_switch_every > 0 && r > 0 && r % self.context_switch_every == 0 {
                machine.context_switch();
            }
            serve(machine, (self.warmup + r) as u64);
        }
        RunSummary {
            requests: self.measured,
            total_uops: machine.ctx().profiler().total_uops(),
            accel_cycles: machine.core().accel_cycles(),
            failed_requests,
            first_error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specweb::{SpecVariant, SpecWeb};

    #[test]
    fn warmup_excluded_from_metrics() {
        let mut app = SpecWeb::new(SpecVariant::Banking);
        let mut m = PhpMachine::baseline();
        let lg = LoadGen {
            warmup: 10,
            measured: 5,
            context_switch_every: 0,
        };
        let summary = lg.run(&mut app, &mut m);
        assert_eq!(summary.requests, 5);
        // ~5 requests worth of µops, not 15.
        let per_request = summary.total_uops / 5;
        assert!(
            summary.total_uops < per_request * 7,
            "warmup leaked into metrics"
        );
    }

    #[test]
    fn failures_recorded_not_propagated() {
        struct Flaky;
        impl Workload for Flaky {
            fn name(&self) -> &'static str {
                "flaky"
            }
            fn handle_request(&mut self, m: &mut PhpMachine, req: u64) {
                let b = m.alloc(32);
                m.free(b);
                if req % 3 == 2 {
                    panic!("simulated request crash at {req}");
                }
                m.end_request();
            }
        }
        let mut app = Flaky;
        let mut m = PhpMachine::specialized();
        let lg = LoadGen {
            warmup: 0,
            measured: 9,
            context_switch_every: 0,
        };
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        let summary = lg.run(&mut app, &mut m);
        std::panic::set_hook(hook);
        assert_eq!(summary.requests, 9);
        assert_eq!(summary.failed_requests, 3);
        assert!(
            summary
                .first_error
                .as_deref()
                .unwrap()
                .contains("simulated request crash"),
            "{:?}",
            summary.first_error
        );
        // Machine still consistent: no leaked live blocks.
        assert_eq!(m.ctx().with_allocator(|a| a.live_block_count()), 0);
    }

    #[test]
    fn context_switches_fire() {
        let mut app = SpecWeb::new(SpecVariant::Ecommerce);
        let mut m = PhpMachine::specialized();
        let lg = LoadGen {
            warmup: 0,
            measured: 10,
            context_switch_every: 3,
        };
        lg.run(&mut app, &mut m);
        assert!(m.core().context_switches >= 3);
    }
}
