//! Load generator.
//!
//! §5.1: "The load generator emulates load from a large pool of client
//! clusters [...] It generates 300 warmup requests, then as many requests
//! as possible in next one minute." Here time is simulated, so the measured
//! phase is a fixed request count; warmup requests run with metrics
//! suppressed and are discarded by a [`PhpMachine::reset_metrics`] before
//! measurement begins.

use crate::arrival::ArrivalConfig;
use phpaccel_core::PhpMachine;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A server-side application under test.
pub trait Workload {
    /// Short identifier.
    fn name(&self) -> &'static str;
    /// Handles one request end-to-end (must call `end_request`).
    fn handle_request(&mut self, m: &mut PhpMachine, req: u64);
    /// Runs the static analyzer over the application's interpreted PHP
    /// templates so later requests skip statically provable work (type
    /// checks, refcount pairs, hash stages). Default: no templates, no-op.
    fn enable_static_analysis(&mut self) {}
}

/// Load-generation parameters.
///
/// **Context switches and warmup.** `context_switch_every` fires an OS
/// context switch every N requests *in both phases*. Historically the
/// warmup loop hardcoded `context_switch_every: 0` semantics — no warmup
/// request was ever preempted, so a machine entered measurement with
/// unrealistically warm accelerator state whenever `warmup >= every`.
/// Warmup now preempts at the same cadence (at warmup request `w` for
/// `w > 0, w % every == 0`). Metrics are unaffected either way: the
/// [`PhpMachine::reset_metrics`] at the phase boundary discards all warmup
/// µops, including the switches' — only machine *state* carries over. The
/// measured phase keeps its original phase-local cadence (first switch at
/// measured request `every`), so existing figure output is unchanged for
/// any configuration with `warmup < every` (the defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadGen {
    /// Warmup requests (paper: 300; scaled down by default for test speed).
    pub warmup: usize,
    /// Measured requests.
    pub measured: usize,
    /// Inject an OS context switch every N requests (0 = never).
    pub context_switch_every: usize,
}

impl Default for LoadGen {
    fn default() -> Self {
        LoadGen {
            warmup: 30,
            measured: 100,
            context_switch_every: 50,
        }
    }
}

/// Summary of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Requests measured.
    pub requests: usize,
    /// Total µops in the measured phase.
    pub total_uops: u64,
    /// Accelerator cycles in the measured phase.
    pub accel_cycles: u64,
    /// Requests (warmup or measured) that panicked instead of completing.
    pub failed_requests: usize,
    /// Message of the first failure, if any.
    pub first_error: Option<String>,
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

impl LoadGen {
    /// Runs `warmup + measured` requests of `app` on `machine`; metrics
    /// cover only the measured phase. A request that panics is *recorded*
    /// (count + first message), the machine's invariants are restored via
    /// [`PhpMachine::recover_request`], and the run continues — one bad
    /// request must not take down the stream.
    pub fn run(&self, app: &mut dyn Workload, machine: &mut PhpMachine) -> RunSummary {
        let mut failed_requests = 0;
        let mut first_error = None;
        let mut serve = |machine: &mut PhpMachine, req: u64| {
            let out = catch_unwind(AssertUnwindSafe(|| app.handle_request(machine, req)));
            if let Err(payload) = out {
                failed_requests += 1;
                if first_error.is_none() {
                    first_error = Some(panic_message(payload.as_ref()));
                }
                machine.recover_request();
            }
        };
        for r in 0..self.warmup {
            // Warmup preempts at the configured cadence too (see the struct
            // docs): the boundary reset_metrics erases the switches' µops,
            // so only the realistic machine state survives into measurement.
            if self.context_switch_every > 0 && r > 0 && r % self.context_switch_every == 0 {
                machine.context_switch();
            }
            serve(machine, r as u64);
        }
        machine.reset_metrics();
        for r in 0..self.measured {
            if self.context_switch_every > 0 && r > 0 && r % self.context_switch_every == 0 {
                machine.context_switch();
            }
            serve(machine, (self.warmup + r) as u64);
        }
        RunSummary {
            requests: self.measured,
            total_uops: machine.ctx().profiler().total_uops(),
            accel_cycles: machine.core().accel_cycles(),
            failed_requests,
            first_error,
        }
    }

    /// Like [`LoadGen::run`], but the measured phase follows a shaped
    /// arrival schedule ([`ArrivalConfig`]): `arrivals.requests` requests
    /// replace `self.measured`, each tagged with its simulated-µop arrival
    /// timestamp. Warmup runs exactly as in `run` (unshaped, preempted at
    /// the configured cadence) and is excluded from metrics by the same
    /// boundary [`PhpMachine::reset_metrics`] — the shape redistributes
    /// arrivals in time but must never leak warmup work into the measured
    /// µops. Context switches stay request-indexed (a preemption per N
    /// *served* requests), so metered work is comparable across shapes.
    pub fn run_shaped(
        &self,
        app: &mut dyn Workload,
        machine: &mut PhpMachine,
        arrivals: &ArrivalConfig,
    ) -> ShapedSummary {
        let times = arrivals.times();
        let measured = LoadGen {
            measured: times.len(),
            ..*self
        };
        let summary = measured.run(app, machine);
        ShapedSummary {
            summary,
            shape: arrivals.shape,
            offered_span_uops: times.last().copied().unwrap_or(0),
        }
    }
}

/// Summary of a shaped run: the usual metrics plus the offered-load span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapedSummary {
    /// Metrics of the measured phase (warmup excluded).
    pub summary: RunSummary,
    /// The arrival shape that paced the measured phase.
    pub shape: crate::arrival::ArrivalShape,
    /// Timestamp of the last arrival in simulated µops: the span the
    /// measured requests were offered over.
    pub offered_span_uops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specweb::{SpecVariant, SpecWeb};

    #[test]
    fn warmup_excluded_from_metrics() {
        let mut app = SpecWeb::new(SpecVariant::Banking);
        let mut m = PhpMachine::baseline();
        let lg = LoadGen {
            warmup: 10,
            measured: 5,
            context_switch_every: 0,
        };
        let summary = lg.run(&mut app, &mut m);
        assert_eq!(summary.requests, 5);
        // ~5 requests worth of µops, not 15.
        let per_request = summary.total_uops / 5;
        assert!(
            summary.total_uops < per_request * 7,
            "warmup leaked into metrics"
        );

        // The same exclusion must hold when the measured phase follows any
        // of the shaped arrival schedules: the shape redistributes arrivals
        // in simulated time, never the warmup/measured metric boundary.
        for shape in crate::arrival::ArrivalShape::ALL {
            let mut app = SpecWeb::new(SpecVariant::Banking);
            let mut m = PhpMachine::baseline();
            let arrivals = crate::arrival::ArrivalConfig {
                shape,
                requests: 5,
                mean_gap_uops: 50_000,
                seed: 11,
            };
            let shaped = lg.run_shaped(&mut app, &mut m, &arrivals);
            assert_eq!(shaped.summary.requests, 5, "{}", shape.name());
            assert_eq!(shaped.shape, shape);
            assert!(shaped.offered_span_uops > 0, "{}", shape.name());
            let per_request = shaped.summary.total_uops / 5;
            assert!(
                shaped.summary.total_uops < per_request * 7,
                "{}: warmup leaked into shaped metrics",
                shape.name()
            );
            // Shaping must not change *what* runs, only when it arrives:
            // metered work matches the unshaped run exactly.
            assert_eq!(
                shaped.summary.total_uops,
                summary.total_uops,
                "{}: shaped metered work drifted",
                shape.name()
            );
        }
    }

    #[test]
    fn failures_recorded_not_propagated() {
        struct Flaky;
        impl Workload for Flaky {
            fn name(&self) -> &'static str {
                "flaky"
            }
            fn handle_request(&mut self, m: &mut PhpMachine, req: u64) {
                let b = m.alloc(32);
                m.free(b);
                if req % 3 == 2 {
                    panic!("simulated request crash at {req}");
                }
                m.end_request();
            }
        }
        let mut app = Flaky;
        let mut m = PhpMachine::specialized();
        let lg = LoadGen {
            warmup: 0,
            measured: 9,
            context_switch_every: 0,
        };
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        let summary = lg.run(&mut app, &mut m);
        std::panic::set_hook(hook);
        assert_eq!(summary.requests, 9);
        assert_eq!(summary.failed_requests, 3);
        assert!(
            summary
                .first_error
                .as_deref()
                .unwrap()
                .contains("simulated request crash"),
            "{:?}",
            summary.first_error
        );
        // Machine still consistent: no leaked live blocks.
        assert_eq!(m.ctx().with_allocator(|a| a.live_block_count()), 0);
    }

    #[test]
    fn context_switches_fire() {
        let mut app = SpecWeb::new(SpecVariant::Ecommerce);
        let mut m = PhpMachine::specialized();
        let lg = LoadGen {
            warmup: 0,
            measured: 10,
            context_switch_every: 3,
        };
        lg.run(&mut app, &mut m);
        assert!(m.core().context_switches >= 3);
    }

    /// Regression for the warmup branch that hardcoded
    /// `context_switch_every: 0` semantics: warmup requests are now
    /// preempted at the configured cadence too, while the boundary
    /// `reset_metrics` keeps the measured µops clean of them.
    #[test]
    fn warmup_context_switches_fire_but_stay_out_of_metrics() {
        let mut app = SpecWeb::new(SpecVariant::Ecommerce);
        let mut m = PhpMachine::specialized();
        let lg = LoadGen {
            warmup: 7,
            measured: 4,
            context_switch_every: 3,
        };
        let summary = lg.run(&mut app, &mut m);
        // Warmup preempts at w = 3, 6; the measured phase at r = 3.
        assert!(
            m.core().context_switches >= 3,
            "warmup must be preempted at the configured cadence"
        );
        // Exclusion still holds: ~4 requests of metered work, not 11.
        let per_request = summary.total_uops / 4;
        assert!(
            summary.total_uops < per_request * 6,
            "warmup (or its context switches) leaked into metrics"
        );
    }
}
