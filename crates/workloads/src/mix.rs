//! Application registry and per-app microarchitectural profiles.

use crate::drupal::Drupal;
use crate::loadgen::Workload;
use crate::mediawiki::MediaWiki;
use crate::specweb::{SpecVariant, SpecWeb};
use crate::wordpress::WordPress;
use uarch_sim::TraceProfile;

/// The applications of the evaluation (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// WordPress-like blog platform.
    WordPress,
    /// Drupal-like CMS/forum.
    Drupal,
    /// MediaWiki-like wiki.
    MediaWiki,
    /// SPECWeb2005 banking (Figure 1 contrast).
    SpecWebBanking,
    /// SPECWeb2005 e-commerce (Figure 1 contrast).
    SpecWebEcommerce,
}

impl AppKind {
    /// The three real-world PHP applications.
    pub const PHP_APPS: [AppKind; 3] = [AppKind::WordPress, AppKind::Drupal, AppKind::MediaWiki];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            AppKind::WordPress => "WordPress",
            AppKind::Drupal => "Drupal",
            AppKind::MediaWiki => "MediaWiki",
            AppKind::SpecWebBanking => "SPECWeb-banking",
            AppKind::SpecWebEcommerce => "SPECWeb-ecommerce",
        }
    }

    /// Builds the workload.
    pub fn build(self, seed: u64) -> Box<dyn Workload> {
        match self {
            AppKind::WordPress => Box::new(WordPress::new(seed)),
            AppKind::Drupal => Box::new(Drupal::new(seed)),
            AppKind::MediaWiki => Box::new(MediaWiki::new(seed)),
            AppKind::SpecWebBanking => Box::new(SpecWeb::new(SpecVariant::Banking)),
            AppKind::SpecWebEcommerce => Box::new(SpecWeb::new(SpecVariant::Ecommerce)),
        }
    }

    /// The synthetic instruction-trace profile used by the §2 µarch
    /// experiments (Figure 2) for this application.
    pub fn trace_profile(self, seed: u64) -> TraceProfile {
        match self {
            AppKind::WordPress => TraceProfile::php_app(seed),
            // Same family, slightly different pressure points.
            AppKind::Drupal => {
                let mut p = TraceProfile::php_app(seed ^ 0xD0);
                p.functions = 460;
                p.data_dep_branch_fraction = 0.33;
                p
            }
            AppKind::MediaWiki => {
                let mut p = TraceProfile::php_app(seed ^ 0x3E);
                p.functions = 420;
                p.data_dep_branch_fraction = 0.35;
                p
            }
            AppKind::SpecWebBanking | AppKind::SpecWebEcommerce => TraceProfile::specweb(seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_all() {
        for kind in [
            AppKind::WordPress,
            AppKind::Drupal,
            AppKind::MediaWiki,
            AppKind::SpecWebBanking,
            AppKind::SpecWebEcommerce,
        ] {
            let w = kind.build(1);
            assert!(!w.name().is_empty());
            assert!(!kind.label().is_empty());
        }
        assert_eq!(AppKind::PHP_APPS.len(), 3);
    }
}
