//! A minimal blocking HTTP/1.1 client and loopback load generator.
//!
//! This is the measurement side of the serving stack: `std::net` only, no
//! external dependencies, just enough protocol to drive the serve crate's
//! HTTP front end over loopback — keep-alive connection reuse,
//! `Content-Length` framing, and status-line parsing. It deliberately does
//! not implement chunked transfer or compression; the server never emits
//! either.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A single parsed HTTP response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line (e.g. 200).
    pub status: u16,
    /// Lowercased header name → value, last occurrence wins.
    pub headers: Vec<(String, String)>,
    /// The response body (empty if no `content-length`).
    pub body: Vec<u8>,
    /// Whether the server asked to keep the connection open.
    pub keep_alive: bool,
}

impl ClientResponse {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A blocking HTTP/1.1 client holding one keep-alive connection.
///
/// `get` transparently reconnects when the server closed the previous
/// connection (or asked to via `connection: close`).
pub struct HttpClient {
    addr: SocketAddr,
    stream: Option<BufReader<TcpStream>>,
    timeout: Duration,
}

impl HttpClient {
    /// Creates a client for `addr`; connects lazily on the first request.
    pub fn connect(addr: SocketAddr) -> HttpClient {
        HttpClient {
            addr,
            stream: None,
            timeout: Duration::from_secs(10),
        }
    }

    fn ensure_stream(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(BufReader::new(stream));
        }
        Ok(self.stream.as_mut().expect("stream just set"))
    }

    /// Sends `GET <path>` and reads the full response.
    ///
    /// Reuses the live connection when possible; one silent retry on a
    /// fresh connection covers the race where the server closed a
    /// keep-alive connection between our requests.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        let had_live_conn = self.stream.is_some();
        match self.try_get(path) {
            Ok(resp) => Ok(resp),
            Err(e) if had_live_conn => {
                // Stale keep-alive connection: drop it and retry once.
                let _ = e;
                self.stream = None;
                self.try_get(path)
            }
            Err(e) => Err(e),
        }
    }

    fn try_get(&mut self, path: &str) -> io::Result<ClientResponse> {
        let request = format!("GET {path} HTTP/1.1\r\nhost: loopback\r\n\r\n");
        let reader = self.ensure_stream()?;
        reader.get_mut().write_all(request.as_bytes())?;
        reader.get_mut().flush()?;
        let resp = read_client_response(reader)?;
        if !resp.keep_alive {
            self.stream = None;
        }
        Ok(resp)
    }
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Reads one HTTP/1.1 response (status line, headers, `Content-Length`
/// body) from `reader`.
pub fn read_client_response<R: BufRead>(reader: &mut R) -> io::Result<ClientResponse> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before status line",
        ));
    }
    let line = line.trim_end();
    let mut parts = line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("bad status line version"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("bad status code"))?;

    let mut headers = Vec::new();
    loop {
        let mut hline = String::new();
        if reader.read_line(&mut hline)? == 0 {
            return Err(invalid("eof in headers"));
        }
        let hline = hline.trim_end();
        if hline.is_empty() {
            break;
        }
        let (name, value) = hline.split_once(':').ok_or_else(|| invalid("bad header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse().map_err(|_| invalid("bad content-length")))
        .transpose()?
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let keep_alive = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| !v.eq_ignore_ascii_case("close"))
        .unwrap_or(true);

    Ok(ClientResponse {
        status,
        headers,
        body,
        keep_alive,
    })
}

/// Configuration for [`LoopbackLoadGen`].
#[derive(Debug, Clone)]
pub struct LoopbackConfig {
    /// Number of concurrent client threads.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Paths to cycle through (client `c` starts at offset `c`).
    pub paths: Vec<String>,
}

/// What a loopback run observed, merged across client threads.
#[derive(Debug, Clone, Default)]
pub struct LoopbackReport {
    /// Requests that completed with any HTTP status.
    pub completed: u64,
    /// Transport errors (connect/read/write failures).
    pub errors: u64,
    /// Status code → count.
    pub status_counts: BTreeMap<u16, u64>,
    /// Per-request wall latency in microseconds, unordered.
    pub latencies_us: Vec<u64>,
    /// Path → the set of distinct 200-response bodies observed.
    pub bodies: BTreeMap<String, Vec<Vec<u8>>>,
    /// Wall-clock duration of the whole run in microseconds.
    pub wall_us: u64,
}

impl LoopbackReport {
    /// Count of responses with the given status.
    pub fn status(&self, code: u16) -> u64 {
        self.status_counts.get(&code).copied().unwrap_or(0)
    }
}

/// Drives N client threads against an HTTP server on loopback.
pub struct LoopbackLoadGen {
    cfg: LoopbackConfig,
}

impl LoopbackLoadGen {
    /// Creates a load generator with the given shape.
    pub fn new(cfg: LoopbackConfig) -> LoopbackLoadGen {
        LoopbackLoadGen { cfg }
    }

    /// Runs the full load against `addr` and merges per-thread results.
    pub fn run(&self, addr: SocketAddr) -> LoopbackReport {
        let start = Instant::now();
        let threads: Vec<_> = (0..self.cfg.clients)
            .map(|c| {
                let paths = self.cfg.paths.clone();
                let n = self.cfg.requests_per_client;
                std::thread::Builder::new()
                    .name(format!("loadgen-{c}"))
                    .spawn(move || client_thread(addr, c, n, &paths))
                    .expect("spawn loadgen thread")
            })
            .collect();
        let mut merged = LoopbackReport::default();
        for t in threads {
            let part = t.join().expect("loadgen thread panicked");
            merged.completed += part.completed;
            merged.errors += part.errors;
            for (code, count) in part.status_counts {
                *merged.status_counts.entry(code).or_insert(0) += count;
            }
            merged.latencies_us.extend(part.latencies_us);
            for (path, bodies) in part.bodies {
                let slot = merged.bodies.entry(path).or_default();
                for body in bodies {
                    if !slot.contains(&body) {
                        slot.push(body);
                    }
                }
            }
        }
        merged.wall_us = start.elapsed().as_micros() as u64;
        merged
    }
}

fn client_thread(
    addr: SocketAddr,
    client: usize,
    requests: usize,
    paths: &[String],
) -> LoopbackReport {
    let mut report = LoopbackReport::default();
    if paths.is_empty() {
        return report;
    }
    let mut http = HttpClient::connect(addr);
    for i in 0..requests {
        let path = &paths[(client + i) % paths.len()];
        let t0 = Instant::now();
        match http.get(path) {
            Ok(resp) => {
                report.completed += 1;
                *report.status_counts.entry(resp.status).or_insert(0) += 1;
                report
                    .latencies_us
                    .push(t0.elapsed().as_micros().max(1) as u64);
                if resp.status == 200 {
                    let slot = report.bodies.entry(path.clone()).or_default();
                    if !slot.contains(&resp.body) {
                        slot.push(resp.body);
                    }
                }
            }
            Err(_) => report.errors += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_response_with_body() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\ncontent-length: 5\r\nconnection: keep-alive\r\n\r\nhello";
        let resp = read_client_response(&mut Cursor::new(&raw[..])).expect("parse");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"hello");
        assert!(resp.keep_alive);
        assert_eq!(resp.header("content-type"), Some("text/plain"));
    }

    #[test]
    fn connection_close_and_no_body() {
        let raw = b"HTTP/1.1 404 Not Found\r\nconnection: close\r\n\r\n";
        let resp = read_client_response(&mut Cursor::new(&raw[..])).expect("parse");
        assert_eq!(resp.status, 404);
        assert!(resp.body.is_empty());
        assert!(!resp.keep_alive);
    }

    #[test]
    fn rejects_garbage_status_line() {
        let raw = b"not-http at all\r\n\r\n";
        assert!(read_client_response(&mut Cursor::new(&raw[..])).is_err());
    }

    #[test]
    fn truncated_body_is_an_error() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nshort";
        assert!(read_client_response(&mut Cursor::new(&raw[..])).is_err());
    }
}
