//! The VM "tail": the hundreds of flat leaf functions real PHP
//! applications spend most of their time in (Figure 1).
//!
//! "The PHP web applications exhibit significant diversity, having very
//! flat execution profiles — the hottest single function (JIT compiled
//! code) is responsible for only 10-12% of cycles, and they take about 100
//! functions to account for about 65% of cycles." Request handling, DB
//! drivers, autoloaders, serializers, session management — none of it is
//! one of the four accelerated categories, and none of it shrinks under
//! the prior optimizations. This module charges that long tail, plus the
//! refcount/type-check traffic that pervades all of it.

use phpaccel_core::PhpMachine;

/// Number of distinct tail leaf functions.
pub const TAIL_FUNCTIONS: usize = 150;

/// Per-request VM-tail parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmTail {
    /// Overall scale: the hottest function (JIT code) gets `10 × scale`
    /// µops; tail function *k* gets `60 × scale / (k + 6)`.
    pub scale: u64,
    /// Refcount increments + decrements charged per request.
    pub refcount_ops: u64,
    /// Dynamic type checks charged per request.
    pub type_checks: u64,
}

impl VmTail {
    /// Charges the tail for one request.
    pub fn charge(&self, m: &PhpMachine) {
        let ctx = m.ctx();
        // The hottest single function: JIT-compiled code (~10-12 %).
        ctx.charge_jit(10 * self.scale);
        // A flat, heavy tail of VM leaf functions.
        for k in 0..TAIL_FUNCTIONS as u64 {
            let name = format!("vm_leaf_{k:03}");
            ctx.charge_other(&name, 60 * self.scale / (k + 6));
        }
        // Abstraction overheads spread across everything (§3).
        let half = self.refcount_ops / 2;
        ctx.refcount().inc_n(half, ctx.profiler());
        for _ in 0..(self.refcount_ops - half) / 8 {
            ctx.refcount().dec(ctx.profiler());
        }
        for _ in 0..self.type_checks / 4 {
            ctx.type_check(&php_runtime::value::PhpValue::Null);
        }
        // The remaining checks charged in bulk for speed.
        ctx.profiler().record(
            "zval_type_check",
            php_runtime::Category::TypeCheck,
            php_runtime::OpCost {
                uops: 3 * (self.type_checks - self.type_checks / 4),
                branches: self.type_checks,
                loads: self.type_checks,
                stores: 0,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_runtime::Category;

    #[test]
    fn tail_is_flat_and_jit_topped() {
        let m = PhpMachine::baseline();
        let tail = VmTail {
            scale: 100,
            refcount_ops: 400,
            type_checks: 300,
        };
        tail.charge(&m);
        let rows = m.ctx().profiler().leaf_profile();
        assert!(rows.len() > 140);
        assert_eq!(rows[0].name, "jit_compiled_code");
        assert!(rows[0].share < 0.15, "hottest ≤ ~12%: {}", rows[0].share);
        // Flat tail: takes many functions to cover 65 %.
        let mut cum = 0.0;
        let mut needed = 0;
        for r in &rows {
            cum += r.share;
            needed += 1;
            if cum >= 0.65 {
                break;
            }
        }
        assert!(needed > 20, "needed {needed} functions for 65%");
    }

    #[test]
    fn charges_refcount_and_typecheck() {
        let m = PhpMachine::baseline();
        VmTail {
            scale: 10,
            refcount_ops: 100,
            type_checks: 80,
        }
        .charge(&m);
        let cats = m.ctx().profiler().category_breakdown();
        assert!(cats[&Category::RefCount] > 0);
        assert!(cats[&Category::TypeCheck] > 0);
    }
}
