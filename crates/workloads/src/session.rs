//! Per-user session model: login → browse → write mixes over the corpus.
//!
//! Production PHP traffic is not a uniform stream of independent requests:
//! it is *sessions*. A user logs in, browses a handful of (popularity-
//! skewed) pages, occasionally writes, and leaves. This module generates a
//! deterministic, seeded request stream with exactly that structure:
//!
//! * **User popularity is zipfian** — a hot head of heavy users dominates,
//!   matching the per-user activity skew of the hyperscale workload study
//!   (PAPERS.md).
//! * **Sessions are stateful** — a user's first request is always a
//!   [`RequestKind::Login`]; subsequent requests browse or write until the
//!   session ends (geometric length), after which the next request from
//!   that user logs in again.
//! * **Script selection follows the kind** — logins hit a small set of
//!   entry scripts, browses pick corpus scripts zipfian (hot content),
//!   writes hit the tail of the corpus (update paths).
//!
//! Combined with [`crate::arrival::ArrivalConfig`], [`TrafficPlan`] yields
//! the full overload-experiment input: who arrives when, doing what.

use crate::arrival::ArrivalConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What one session step asks the application to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Session start: authentication + landing page.
    Login,
    /// Read path: render a (popularity-skewed) page.
    Browse,
    /// Write path: submit content, invalidating caches.
    Write,
}

impl RequestKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Login => "login",
            RequestKind::Browse => "browse",
            RequestKind::Write => "write",
        }
    }

    /// Index into per-kind counters (`[login, browse, write]`).
    pub fn index(self) -> usize {
        match self {
            RequestKind::Login => 0,
            RequestKind::Browse => 1,
            RequestKind::Write => 2,
        }
    }
}

/// Session-model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Size of the user population (zipfian popularity over it).
    pub users: usize,
    /// Probability an active session continues after a browse/write
    /// (session length is geometric: mean `1 / (1 - continue_prob)` steps).
    pub continue_prob: f64,
    /// Probability an active-session step is a write rather than a browse.
    pub write_prob: f64,
    /// RNG seed; the same seed yields an identical stream.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            users: 64,
            continue_prob: 0.8,
            write_prob: 0.15,
            seed: 0x5E55,
        }
    }
}

/// One generated request: who, what, and which corpus script serves it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionRequest {
    /// User index in `0..users` (zipfian popularity: low indexes are hot).
    pub user: usize,
    /// Session step kind.
    pub kind: RequestKind,
    /// Step number within the user's current session (0 = the login).
    pub step: u32,
    /// Corpus script index in `0..scripts` chosen for this request.
    pub script: usize,
}

/// Zipf-ish pick over `n` items with weight `1/(k+1)` (hot head, long
/// tail) — the same approximation [`crate::corpus::Corpus::zipf_pick`]
/// uses, inlined here so the session stream owns its RNG.
fn zipf_pick(rng: &mut StdRng, n: usize) -> usize {
    assert!(n > 0);
    let weights: Vec<f64> = (0..n).map(|k| 1.0 / (k as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    n - 1
}

/// Deterministic generator of session-structured request streams.
#[derive(Debug)]
pub struct SessionModel {
    cfg: SessionConfig,
    rng: StdRng,
    /// `None` = logged out; `Some(step)` = active session at that step.
    state: Vec<Option<u32>>,
}

impl SessionModel {
    /// Creates a generator with every user logged out.
    pub fn new(cfg: SessionConfig) -> Self {
        assert!(cfg.users > 0, "session model needs at least one user");
        SessionModel {
            rng: StdRng::seed_from_u64(cfg.seed),
            state: vec![None; cfg.users],
            cfg,
        }
    }

    /// Generates the next request, choosing among `scripts` corpus scripts.
    pub fn next_request(&mut self, scripts: usize) -> SessionRequest {
        assert!(scripts > 0, "session model needs at least one script");
        let user = zipf_pick(&mut self.rng, self.cfg.users);
        match self.state[user] {
            None => {
                self.state[user] = Some(1);
                SessionRequest {
                    user,
                    kind: RequestKind::Login,
                    step: 0,
                    // Entry scripts: a small, user-pinned slice of the head.
                    script: user % scripts.min(4),
                    // (min(4): with fewer than 4 scripts, wrap over them all)
                }
            }
            Some(step) => {
                let kind = if self.rng.gen_bool(self.cfg.write_prob) {
                    RequestKind::Write
                } else {
                    RequestKind::Browse
                };
                let script = match kind {
                    RequestKind::Login => unreachable!(),
                    // Hot content dominates the read path.
                    RequestKind::Browse => zipf_pick(&mut self.rng, scripts),
                    // Writes land on the corpus tail (update/submit paths).
                    RequestKind::Write => scripts - 1 - self.rng.gen_range(0..scripts.div_ceil(3)),
                };
                self.state[user] = if self.rng.gen_bool(self.cfg.continue_prob) {
                    Some(step + 1)
                } else {
                    None
                };
                SessionRequest {
                    user,
                    kind,
                    step,
                    script,
                }
            }
        }
    }

    /// Generates `n` requests in order.
    pub fn generate(&mut self, n: usize, scripts: usize) -> Vec<SessionRequest> {
        (0..n).map(|_| self.next_request(scripts)).collect()
    }
}

/// One fully-specified arrival: when, who, what, and which script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficItem {
    /// Arrival timestamp in simulated µops since the start of the run.
    pub at_uops: u64,
    /// The session step arriving at that instant.
    pub request: SessionRequest,
}

/// A complete, deterministic overload-experiment input: session-structured
/// requests joined with shaped arrival timestamps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficPlan {
    /// Arrivals in non-decreasing timestamp order.
    pub items: Vec<TrafficItem>,
}

impl TrafficPlan {
    /// Generates a plan of `arrival.requests` items over `scripts` corpus
    /// scripts. Deterministic given both configs.
    pub fn generate(arrival: &ArrivalConfig, session: &SessionConfig, scripts: usize) -> Self {
        let times = arrival.times();
        let mut model = SessionModel::new(*session);
        let items = times
            .into_iter()
            .map(|at_uops| TrafficItem {
                at_uops,
                request: model.next_request(scripts),
            })
            .collect();
        TrafficPlan { items }
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Per-kind request counts (`[login, browse, write]`).
    pub fn kind_counts(&self) -> [u64; 3] {
        let mut counts = [0u64; 3];
        for item in &self.items {
            counts[item.request.kind.index()] += 1;
        }
        counts
    }

    /// Timestamp of the last arrival (the offered span of the run).
    pub fn span_uops(&self) -> u64 {
        self.items.last().map(|i| i.at_uops).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalShape;

    fn session_cfg() -> SessionConfig {
        SessionConfig {
            users: 32,
            seed: 7,
            ..SessionConfig::default()
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let a = SessionModel::new(session_cfg()).generate(500, 11);
        let b = SessionModel::new(session_cfg()).generate(500, 11);
        assert_eq!(a, b);
        let c = SessionModel::new(SessionConfig {
            seed: 8,
            ..session_cfg()
        })
        .generate(500, 11);
        assert_ne!(a, c);
    }

    #[test]
    fn every_session_starts_with_a_login() {
        let reqs = SessionModel::new(session_cfg()).generate(800, 11);
        let mut last_step: Vec<Option<u32>> = vec![None; 32];
        for r in &reqs {
            match r.kind {
                // A login is always step 0 (and is the only step-0 kind),
                // so a user's first-ever request must be a login.
                RequestKind::Login => assert_eq!(r.step, 0),
                _ => {
                    assert!(r.step > 0, "browse/write before login");
                    assert_eq!(
                        last_step[r.user],
                        Some(r.step - 1),
                        "user {}: session steps must be contiguous",
                        r.user
                    );
                }
            }
            last_step[r.user] = Some(r.step);
        }
        // Mix sanity: browses dominate, writes and logins both present.
        let mut counts = [0u64; 3];
        for r in &reqs {
            counts[r.kind.index()] += 1;
        }
        assert!(counts[1] > counts[0] && counts[1] > counts[2], "{counts:?}");
        assert!(counts[0] > 0 && counts[2] > 0, "{counts:?}");
    }

    #[test]
    fn user_popularity_is_zipfian() {
        let reqs = SessionModel::new(session_cfg()).generate(3000, 11);
        let mut per_user = vec![0u64; 32];
        for r in &reqs {
            per_user[r.user] += 1;
        }
        assert!(per_user[0] > per_user[8] * 2, "{per_user:?}");
        assert!(per_user[0] > per_user[31] * 4, "{per_user:?}");
    }

    #[test]
    fn scripts_follow_the_kind() {
        let scripts = 12;
        let reqs = SessionModel::new(session_cfg()).generate(2000, scripts);
        for r in &reqs {
            assert!(r.script < scripts);
            match r.kind {
                RequestKind::Login => assert!(r.script < 4),
                RequestKind::Write => assert!(r.script >= scripts - scripts.div_ceil(3)),
                RequestKind::Browse => {}
            }
        }
        // Browse popularity is head-heavy.
        let browse_hits = |s: usize| {
            reqs.iter()
                .filter(|r| r.kind == RequestKind::Browse && r.script == s)
                .count()
        };
        assert!(browse_hits(0) > browse_hits(scripts - 1) * 2);
    }

    #[test]
    fn traffic_plan_joins_arrivals_and_sessions() {
        let arrival = ArrivalConfig {
            shape: ArrivalShape::FlashCrowd,
            requests: 400,
            mean_gap_uops: 5_000,
            seed: 3,
        };
        let plan = TrafficPlan::generate(&arrival, &session_cfg(), 11);
        let again = TrafficPlan::generate(&arrival, &session_cfg(), 11);
        assert_eq!(plan, again, "plans must replay identically");
        assert_eq!(plan.len(), 400);
        assert!(!plan.is_empty());
        assert!(plan.items.windows(2).all(|w| w[0].at_uops <= w[1].at_uops));
        assert_eq!(plan.kind_counts().iter().sum::<u64>(), 400);
        assert!(plan.span_uops() > 0);
    }
}
