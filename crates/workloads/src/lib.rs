//! # workloads
//!
//! Synthetic reproductions of the paper's applications (§5.1): WordPress-,
//! Drupal-, and MediaWiki-like request handlers plus SPECWeb2005-style
//! hotspot microbenchmarks, driven by a warmup-then-measure load generator.
//! Every workload runs unmodified on both the baseline and the specialized
//! [`phpaccel_core::PhpMachine`].
//!
//! ```
//! use workloads::{AppKind, LoadGen};
//! use phpaccel_core::PhpMachine;
//!
//! let mut app = AppKind::WordPress.build(42);
//! let mut machine = PhpMachine::specialized();
//! let lg = LoadGen { warmup: 2, measured: 3, context_switch_every: 0 };
//! let summary = lg.run(app.as_mut(), &mut machine);
//! assert!(summary.total_uops > 0);
//! ```

#![warn(missing_docs)]

pub mod arrival;
pub mod corpus;
pub mod drupal;
pub mod http_client;
pub mod loadgen;
pub mod mediawiki;
pub mod mix;
pub mod php_corpus;
pub mod session;
pub mod specweb;
pub mod vmtail;
pub mod wordpress;

pub use arrival::{ArrivalConfig, ArrivalShape};
pub use corpus::{Corpus, CorpusConfig};
pub use drupal::Drupal;
pub use http_client::{
    read_client_response, ClientResponse, HttpClient, LoopbackConfig, LoopbackLoadGen,
    LoopbackReport,
};
pub use loadgen::{LoadGen, RunSummary, ShapedSummary, Workload};
pub use mediawiki::MediaWiki;
pub use mix::AppKind;
pub use session::{
    RequestKind, SessionConfig, SessionModel, SessionRequest, TrafficItem, TrafficPlan,
};
pub use specweb::{SpecVariant, SpecWeb};
pub use vmtail::VmTail;
pub use wordpress::WordPress;
