//! Drupal-like CMS workload.
//!
//! Drupal in the paper shows "the least opportunity" (Figure 5) and
//! benefits least from the accelerators (Figure 14): its profile is
//! dominated by configuration/routing hash traffic and entity assembly,
//! with comparatively little string/regexp processing. Its famously long
//! machine names also exceed the hardware hash table's 24-byte inline key
//! limit more often, pushing some accesses back to software.

use crate::corpus::{Corpus, CorpusConfig};
use crate::loadgen::Workload;
use crate::vmtail::VmTail;
use php_runtime::array::ArrayKey;
use php_runtime::string::PhpStr;
use php_runtime::value::PhpValue;
use phpaccel_core::PhpMachine;
use regex_engine::Regex;

/// The Drupal-like application.
pub struct Drupal {
    corpus: Corpus,
    routes: Vec<String>,
    config_keys: Vec<String>,
    field_names: Vec<String>,
    nodes: Vec<PhpStr>,
    clean_re: Regex,
    filter_rules: Vec<(Regex, Vec<u8>)>,
    tail: VmTail,
}

impl Drupal {
    /// Builds the application.
    pub fn new(seed: u64) -> Self {
        let mut corpus = Corpus::new(CorpusConfig {
            special_density: 0.03,
            words_per_paragraph: 40,
            paragraphs_per_post: 3,
            seed,
        });
        let routes = (0..12).map(|i| format!("node/{i}")).collect();
        let config_keys = (0..8).map(|i| format!("sys.perf.cache.max_{i}")).collect();
        // Drupal field machine names: long, often > 24 bytes.
        let field_names = (0..8)
            .map(|i| format!("field_node_article_body_with_summary_{i}"))
            .collect();
        let nodes = (0..12).map(|_| corpus.post_body()).collect();
        Drupal {
            corpus,
            routes,
            config_keys,
            field_names,
            nodes,
            clean_re: Regex::new("<[a-z]+>").unwrap(),
            filter_rules: vec![
                (Regex::new("'").unwrap(), b"&#039;".to_vec()),
                (Regex::new("\"").unwrap(), b"&quot;".to_vec()),
                (Regex::new("\n").unwrap(), b"<br>".to_vec()),
            ],
            tail: VmTail {
                scale: 215,
                refcount_ops: 1250,
                type_checks: 1050,
            },
        }
    }
}

impl Workload for Drupal {
    fn name(&self) -> &'static str {
        "drupal"
    }

    fn handle_request(&mut self, m: &mut PhpMachine, req: u64) {
        // 1. Bootstrap: load configuration into a hash map, read it a lot.
        let mut config = m.new_array();
        for k in &self.config_keys {
            m.array_set(
                &mut config,
                ArrayKey::from(k.as_str()),
                PhpValue::from(1i64),
            );
        }
        for _pass in 0..2 {
            for k in &self.config_keys {
                m.array_get(&config, &ArrayKey::from(k.as_str()));
            }
        }

        // 2. Routing: match the request path against the route table.
        let mut router = m.new_array();
        for (i, r) in self.routes.iter().enumerate() {
            m.array_set(
                &mut router,
                ArrayKey::from(r.as_str()),
                PhpValue::from(i as i64),
            );
        }
        let picked = self.corpus.zipf_pick(self.routes.len());
        let path = self.routes[picked].clone();
        let _route = m.array_get(&router, &ArrayKey::from(path.as_str()));

        // 3. Entity assembly: one array per field, nested into a node array
        //    (allocation-heavy, hash-heavy).
        let mut node = m.new_array();
        for f in &self.field_names {
            let mut field = m.new_array();
            m.array_set(
                &mut field,
                ArrayKey::from("value"),
                PhpValue::from(req as i64),
            );
            m.array_set(
                &mut field,
                ArrayKey::from("format"),
                PhpValue::from("basic_html"),
            );
            let b = m.alloc(64); // field item object
            m.free(b);
            m.array_set(
                &mut node,
                ArrayKey::from(f.as_str()),
                PhpValue::array(field),
            );
        }
        // Render traversal.
        let pairs = m.foreach(&node);
        for (_k, v) in &pairs {
            if let PhpValue::Array(rc) = v {
                let field = rc.borrow();
                m.array_get(&field, &ArrayKey::from("value"));
            }
        }

        // 4. Light text handling: check_plain on the body (single pass) and
        //    one tag-strip regexp — Drupal spends little time here.
        let body = self.nodes[picked].clone();
        let escaped = m.htmlspecialchars(&body);
        if req.is_multiple_of(8) {
            // Filter-cache miss: run the full text-filter pipeline.
            let mut rules = vec![(self.clean_re.clone(), b"".to_vec())];
            rules.extend(
                self.filter_rules
                    .iter()
                    .map(|(r, t)| (r.clone(), t.clone())),
            );
            let _clean = m.texturize(&escaped, &rules);
        }

        // 5. Cache write: render-cache entry keyed by cid (alloc + hash set).
        let mut cache = m.new_array();
        let cid = format!("entity_view:node:{picked}:full");
        let tv = m.transient_str(PhpStr::from("cached-render-output"));
        m.array_set(&mut cache, ArrayKey::from(cid), tv);

        // 6. Object churn: entity/typed-data objects allocated and dropped.
        for i in 0..18u64 {
            let b = m.alloc(24 + (i as usize % 7) * 16);
            m.free(b);
        }

        // The VM tail (Drupal's hook system and service container are huge).
        self.tail.charge(m);

        m.array_free(&cache);
        m.array_free(&node);
        m.array_free(&router);
        m.array_free(&config);
        m.end_request();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_runtime::Category;

    #[test]
    fn hash_dominates_drupal() {
        let mut app = Drupal::new(1);
        let mut m = PhpMachine::baseline();
        for r in 0..16 {
            app.handle_request(&mut m, r);
        }
        let cats = m.ctx().profiler().category_breakdown();
        let hash = cats[&Category::HashMap];
        let string = cats.get(&Category::String).copied().unwrap_or(0);
        let regex = cats.get(&Category::Regex).copied().unwrap_or(0);
        assert!(hash > string, "drupal is hash-heavy: {hash} vs {string}");
        assert!(hash > regex, "hash {hash} vs regex {regex}");
    }

    #[test]
    fn long_field_names_fall_back_to_software() {
        let mut app = Drupal::new(2);
        let mut m = PhpMachine::specialized();
        for r in 0..3 {
            app.handle_request(&mut m, r);
        }
        assert!(
            m.core().htable.stats().key_too_long > 0,
            "Drupal's long machine names should exceed the 24-byte inline key"
        );
    }

    #[test]
    fn no_leaks() {
        let mut app = Drupal::new(3);
        let mut m = PhpMachine::specialized();
        for r in 0..3 {
            app.handle_request(&mut m, r);
        }
        assert_eq!(m.ctx().with_allocator(|a| a.live_block_count()), 0);
    }
}
