//! Arrival processes: realistic request-arrival shapes over simulated time.
//!
//! The load generator historically did warmup-then-steady-stream, which
//! never asks the system to survive offered load above capacity. This
//! module generates *deterministic, seeded arrival timestamps* — expressed
//! in simulated µops, the repo's universal clock — for four shapes drawn
//! from production traffic studies (the Meta hyperscale workload-behavior
//! methodology in PAPERS.md):
//!
//! * **Steady** — Poisson arrivals at a constant mean rate.
//! * **Diurnal** — the mean rate follows a sinusoidal day/night cycle.
//! * **Burst** — a square wave: long quiet valleys punctuated by short
//!   windows at several times the base rate (mean rate still ≈ 1×).
//! * **Flash crowd** — steady background, then a sudden spike to several
//!   times the base rate for a short fraction of the run (a link from a
//!   popular aggregator), then back to background.
//!
//! Timestamps are produced by inverting exponential interarrival gaps whose
//! mean is modulated by the shape's rate multiplier, so the same seed always
//! yields byte-identical schedules — overload experiments replay exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The shape of the offered-load curve over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalShape {
    /// Constant mean rate (Poisson arrivals).
    Steady,
    /// Sinusoidal day/night modulation around the base rate.
    Diurnal,
    /// Quiet valleys with short bursts at several times the base rate.
    Burst,
    /// Background load with one sudden flash-crowd spike mid-run.
    FlashCrowd,
}

impl ArrivalShape {
    /// Every shape, in a fixed order (tests and benches sweep this).
    pub const ALL: [ArrivalShape; 4] = [
        ArrivalShape::Steady,
        ArrivalShape::Diurnal,
        ArrivalShape::Burst,
        ArrivalShape::FlashCrowd,
    ];

    /// Display / CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ArrivalShape::Steady => "steady",
            ArrivalShape::Diurnal => "diurnal",
            ArrivalShape::Burst => "burst",
            ArrivalShape::FlashCrowd => "flash-crowd",
        }
    }

    /// Parses a CLI name (the inverse of [`ArrivalShape::name`]).
    pub fn parse(s: &str) -> Option<ArrivalShape> {
        ArrivalShape::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Instantaneous rate multiplier at `progress` ∈ [0, 1] through the
    /// run, where progress is measured in simulated *time* (elapsed µops
    /// over the expected span), not request index. Each shape's multiplier
    /// time-averages ≈ 1.0, so — because arrivals per time window are
    /// proportional to the multiplier — the run's *offered* load factor is
    /// set by the base gap alone and the shape only redistributes arrivals
    /// in time.
    pub fn rate_multiplier(self, progress: f64) -> f64 {
        let p = progress.clamp(0.0, 1.0);
        match self {
            ArrivalShape::Steady => 1.0,
            // Two full "days": min 0.4×, max 1.6×, time-mean exactly 1.0.
            ArrivalShape::Diurnal => 1.0 + 0.6 * (std::f64::consts::TAU * 2.0 * p).sin(),
            // Five cycles of 80% valley at 0.25× and 20% burst at 4.0×:
            // time-mean = 0.8·0.25 + 0.2·4.0 = 1.0.
            ArrivalShape::Burst => {
                let phase = (p * 5.0).fract();
                if phase >= 0.8 {
                    4.0
                } else {
                    0.25
                }
            }
            // Background 0.6× with a 5.0× flash over [0.5, 0.6):
            // time-mean = 0.9·0.6 + 0.1·5.0 ≈ 1.04.
            ArrivalShape::FlashCrowd => {
                if (0.5..0.6).contains(&p) {
                    5.0
                } else {
                    0.6
                }
            }
        }
    }
}

/// Parameters of one arrival schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalConfig {
    /// Offered-load curve.
    pub shape: ArrivalShape,
    /// Number of arrivals to generate.
    pub requests: usize,
    /// Mean interarrival gap in simulated µops at 1× rate. Offered load
    /// relative to a capacity of `c` µops/request on `w` workers is
    /// `c / (w · mean_gap_uops)`.
    pub mean_gap_uops: u64,
    /// RNG seed; the same seed yields a byte-identical schedule.
    pub seed: u64,
}

impl ArrivalConfig {
    /// Generates the arrival timestamps, in simulated µops since the start
    /// of the run, non-decreasing. Deterministic given the config.
    pub fn times(&self) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.requests;
        let expected_span = n as f64 * self.mean_gap_uops as f64;
        let mut t = 0.0f64;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            // Progress through the shape is elapsed simulated time over the
            // expected span (wrapping if sampling noise runs past the end),
            // so a shape's spikes occupy their designed fraction of *time*
            // and arrivals per window are proportional to the multiplier.
            let raw = t / expected_span.max(1.0);
            let progress = if raw < 1.0 { raw } else { raw.fract() };
            let mult = self.shape.rate_multiplier(progress);
            // Inverse-CDF exponential gap with mean base_gap / mult.
            let u: f64 = rng.gen();
            let gap = -(1.0 - u).ln() * self.mean_gap_uops as f64 / mult;
            t += gap;
            out.push(t as u64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shape: ArrivalShape) -> ArrivalConfig {
        ArrivalConfig {
            shape,
            requests: 2000,
            mean_gap_uops: 10_000,
            seed: 99,
        }
    }

    #[test]
    fn schedules_are_deterministic_and_monotone() {
        for shape in ArrivalShape::ALL {
            let a = cfg(shape).times();
            let b = cfg(shape).times();
            assert_eq!(a, b, "{}: same seed must replay identically", shape.name());
            assert!(
                a.windows(2).all(|w| w[0] <= w[1]),
                "{}: timestamps must be non-decreasing",
                shape.name()
            );
            let c = ArrivalConfig {
                seed: 100,
                ..cfg(shape)
            }
            .times();
            assert_ne!(a, c, "{}: a different seed must differ", shape.name());
        }
    }

    #[test]
    fn every_shape_offers_roughly_the_configured_mean_rate() {
        for shape in ArrivalShape::ALL {
            let c = cfg(shape);
            let times = c.times();
            let span = *times.last().unwrap() as f64;
            let mean_gap = span / c.requests as f64;
            let ratio = mean_gap / c.mean_gap_uops as f64;
            assert!(
                (0.85..1.25).contains(&ratio),
                "{}: mean gap off by {ratio:.2}x",
                shape.name()
            );
        }
    }

    #[test]
    fn burst_and_flash_concentrate_arrivals() {
        // A shape's peak decile must be denser than its quietest decile by
        // the design ratio; steady must not show such skew.
        let density = |shape: ArrivalShape| -> (usize, usize) {
            let times = cfg(shape).times();
            let span = *times.last().unwrap() + 1;
            let mut deciles = [0usize; 10];
            for t in &times {
                deciles[((t * 10) / span) as usize] += 1;
            }
            (
                *deciles.iter().max().unwrap(),
                *deciles.iter().min().unwrap(),
            )
        };
        let (smax, smin) = density(ArrivalShape::Steady);
        assert!(
            (smax as f64) < (smin as f64) * 1.5,
            "steady skewed: {smax}/{smin}"
        );
        let (bmax, bmin) = density(ArrivalShape::Burst);
        assert!(bmax as f64 > bmin as f64 * 3.0, "burst flat: {bmax}/{bmin}");
        let (fmax, fmin) = density(ArrivalShape::FlashCrowd);
        assert!(fmax as f64 > fmin as f64 * 3.0, "flash flat: {fmax}/{fmin}");
    }

    #[test]
    fn rate_multipliers_average_to_one() {
        for shape in ArrivalShape::ALL {
            let n = 10_000;
            let mean: f64 = (0..n)
                .map(|i| shape.rate_multiplier(i as f64 / n as f64))
                .sum::<f64>()
                / n as f64;
            assert!(
                (0.9..1.1).contains(&mean),
                "{}: mean multiplier {mean:.3}",
                shape.name()
            );
        }
    }

    #[test]
    fn shape_names_round_trip() {
        for shape in ArrivalShape::ALL {
            assert_eq!(ArrivalShape::parse(shape.name()), Some(shape));
        }
        assert_eq!(ArrivalShape::parse("nope"), None);
    }
}
