//! A corpus of mini-PHP scripts for the static-analysis tooling.
//!
//! Entries are grouped by application so `analyze --corpus wordpress`
//! reports on just that app. The WordPress group includes the live page
//! template ([`crate::wordpress::TEMPLATE`]) next to standalone snippets in
//! each application's characteristic style; the WordPress group collectively
//! triggers all four lint diagnostics.

use php_interp::ast::{FuncDef, Stmt};
use php_interp::{
    parse, AnalysisFacts, CompileOptions, CompiledUnit, Interp, MemoHandle, MemoTier, Program, Vm,
};
use php_runtime::array::ArrayKey;
use php_runtime::value::PhpValue;
use phpaccel_core::{Engine, PhpMachine};
use std::sync::Arc;

/// One mini-PHP script in the corpus.
#[derive(Debug)]
pub struct CorpusEntry {
    /// Application the script belongs to.
    pub app: &'static str,
    /// Short script name.
    pub name: &'static str,
    /// The mini-PHP source.
    pub source: &'static str,
    /// Whether the script reads the request variables `$title`, `$tags`,
    /// `$meta` from the environment ([`bind_request_vars`] provides them).
    pub needs_request_vars: bool,
}

/// Exercises every lint: a dead store, an always-true `is_string` guard, a
/// constant condition, and a use-before-assign read.
const WP_LINT_DEMO: &str = r#"
$status = 'publish';
$status = 'draft';
if (is_string($status)) {
    echo 'status:', $status;
}
if (1 > 2) {
    echo 'unreachable';
}
echo $missing;
"#;

/// Builtin-only loop work: proven operand types, const-string keys, and
/// integer-append inserts.
const WP_TAG_CLOUD: &str = r#"
$counts = array();
$counts['php'] = 10;
$counts['perf'] = 7;
$tags = array('php', 'perf', 'cache');
$out = '';
foreach ($tags as $t) {
    $out = $out . '<a href="/tag/' . $t . '">' . $t . '</a> ';
}
$list = array();
$list[] = strlen($out);
$list[] = $counts['php'] + $counts['perf'];
echo $out, 'total=', $list[1];
"#;

/// Call-heavy comment pipeline: helper functions whose summaries carry
/// types, constants, and purity across call boundaries — including a
/// constant `preg_*` pattern returned *from a function*, which only the
/// interprocedural constant propagation can pre-compile.
const WP_COMMENT_FILTER: &str = r#"
function shout_pattern() {
    return '/[A-Z][A-Z]+/';
}
function clean($text) {
    return trim(strip_tags($text));
}
function format_comment($author, $text) {
    $t = clean($text);
    if (preg_match(shout_pattern(), $t)) {
        $t = strtolower($t);
    }
    $t = preg_replace('/!!+/', '!', $t);
    return '<p><b>' . $author . '</b>: ' . $t . '</p>';
}
$comments = array('Great <em>post</em>!', '  FIRST comment!!! ', 'measured take');
$out = '';
foreach ($comments as $c) {
    $out = $out . format_comment('reader', $c);
}
echo $out;
"#;

/// Leaf helpers called from `<main>`: with summaries the callers keep
/// concrete types (and locals survive the calls); without them every call
/// poisons the whole script scope.
const SPECWEB_PRICE_HELPERS: &str = r#"
function add_fee($n) {
    return $n + 25;
}
function label($s) {
    return '[' . $s . ']';
}
$name = 'cart';
$subtotal = 100;
$fee = add_fee($subtotal);
$total = $fee + add_fee(80);
$line = label($name) . ' total=' . $total;
echo $line, ' fee=', $fee, ' for ', $name;
"#;

/// Intentional tainted-sink demo: raw request input reaches an echo before
/// the sanitized copy does. The taint allowlist in `scripts/` names it.
const WP_SEARCH_ECHO: &str = r#"
$q = trim($title);
echo '<h1>Results for ', $q, '</h1>';
echo '<p class="safe">', htmlspecialchars($q), '</p>';
"#;

const DRUPAL_NODE_RENDER: &str = r#"
$node = array();
$node['title'] = 'About';
$node['status'] = 1;
$node['body'] = 'Company history.';
$out = '<h2>' . htmlspecialchars($node['title']) . '</h2>';
if ($node['status'] == 1) {
    $out = $out . '<div>' . $node['body'] . '</div>';
}
echo $out;
"#;

const MEDIAWIKI_WORD_STATS: &str = r#"
$lines = array('== History ==', 'The wiki grew quickly.', '* bullet item');
$words = 0;
$chars = 0;
foreach ($lines as $line) {
    $t = trim($line);
    $words = $words + str_word_count($t);
    $chars = $chars + strlen($t);
}
echo 'words=', $words, ' chars=', $chars;
"#;

const SPECWEB_BANKING: &str = r#"
$balance = 1200;
$rate = 3;
$years = 4;
$interest = 0;
for ($y = 1; $y <= $years; $y = $y + 1) {
    $interest = $interest + $balance * $rate / 100;
}
echo 'interest=', $interest;
"#;

const SPECWEB_SUPPORT: &str = r#"
$docs = array('alpha manual', 'beta install guide', 'gamma faq');
$total = 0;
$longest = '';
foreach ($docs as $d) {
    $total = $total + str_word_count($d);
    if (strlen($d) > strlen($longest)) {
        $longest = $d;
    }
}
echo 'words=', $total, ' longest=', $longest;
"#;

/// Render-cache idiom: pure block helpers plus a `global`-reading header
/// builder. Every call site here is proven memoizable by the effect
/// analysis, so with a shared tier attached the blocks render once and
/// replay on every later request — the workload `memo_bench` measures.
/// (The `$site` assignment invalidates `page_header`'s fingerprint each
/// request, keeping the invalidation path exercised too.)
const DRUPAL_BLOCK_CACHE: &str = r#"
$site = 'Daily Build';
$blocks = array('recent', 'popular', 'archive');
function block_title($name) {
    return '<h3>' . ucfirst($name) . '</h3>';
}
function block_body($name, $rows) {
    $out = '<ul>';
    for ($i = 1; $i <= $rows; $i = $i + 1) {
        $out = $out . '<li>' . $name . ' item ' . $i . '</li>';
    }
    return $out . '</ul>';
}
function page_header($title) {
    global $site;
    return '<header>' . $site . ' | ' . $title . '</header>';
}
$out = page_header('Blocks');
foreach ($blocks as $b) {
    $out = $out . block_title($b) . block_body($b, 3);
}
echo $out;
"#;

/// The classic "cached a session token" near-miss: `fresh_token` is
/// cache-shaped — write-free, argument never retained — but draws from
/// `rand()`/`time()`, so the effect analysis refuses to memoize it and
/// raises `[nondeterministic-cacheable]` instead. The allowlist in
/// `scripts/taint-allowlist.txt` names it as an intentional demo; `greet`
/// stays memoizable.
const SPECWEB_SESSION_TOKEN: &str = r#"
function fresh_token($user) {
    return $user . '-' . rand(1000, 9999) . '-' . time();
}
function greet($user) {
    return 'Welcome back, ' . ucfirst($user) . '.';
}
echo greet('visitor'), ' session=', fresh_token('visitor');
"#;

/// All corpus scripts, grouped by app.
pub const ENTRIES: &[CorpusEntry] = &[
    CorpusEntry {
        app: "wordpress",
        name: "page-template",
        source: crate::wordpress::TEMPLATE,
        needs_request_vars: true,
    },
    CorpusEntry {
        app: "wordpress",
        name: "lint-demo",
        source: WP_LINT_DEMO,
        needs_request_vars: false,
    },
    CorpusEntry {
        app: "wordpress",
        name: "tag-cloud",
        source: WP_TAG_CLOUD,
        needs_request_vars: false,
    },
    CorpusEntry {
        app: "wordpress",
        name: "comment-filter",
        source: WP_COMMENT_FILTER,
        needs_request_vars: false,
    },
    CorpusEntry {
        app: "wordpress",
        name: "search-echo",
        source: WP_SEARCH_ECHO,
        needs_request_vars: true,
    },
    CorpusEntry {
        app: "drupal",
        name: "node-render",
        source: DRUPAL_NODE_RENDER,
        needs_request_vars: false,
    },
    CorpusEntry {
        app: "drupal",
        name: "block-cache",
        source: DRUPAL_BLOCK_CACHE,
        needs_request_vars: false,
    },
    CorpusEntry {
        app: "mediawiki",
        name: "word-stats",
        source: MEDIAWIKI_WORD_STATS,
        needs_request_vars: false,
    },
    CorpusEntry {
        app: "specweb",
        name: "banking-interest",
        source: SPECWEB_BANKING,
        needs_request_vars: false,
    },
    CorpusEntry {
        app: "specweb",
        name: "support-search",
        source: SPECWEB_SUPPORT,
        needs_request_vars: false,
    },
    CorpusEntry {
        app: "specweb",
        name: "price-helpers",
        source: SPECWEB_PRICE_HELPERS,
        needs_request_vars: false,
    },
    CorpusEntry {
        app: "specweb",
        name: "session-token",
        source: SPECWEB_SESSION_TOKEN,
        needs_request_vars: false,
    },
];

/// Entries belonging to `app`.
pub fn for_app(app: &str) -> Vec<&'static CorpusEntry> {
    ENTRIES.iter().filter(|e| e.app == app).collect()
}

/// Distinct application names, in corpus order.
pub fn apps() -> Vec<&'static str> {
    let mut out: Vec<&'static str> = Vec::new();
    for e in ENTRIES {
        if !out.contains(&e.app) {
            out.push(e.app);
        }
    }
    out
}

/// Builds the request-variable sample values (`$title`, `$tags`, `$meta`)
/// on `m` — shared by both engines so the allocations they charge are
/// identical.
fn request_var_values(m: &mut PhpMachine) -> Vec<(&'static str, PhpValue)> {
    let title = PhpValue::from("Corpus & 'Sample' Title");
    let mut tags = m.new_array();
    for t in ["  News ", "PHP", " Perf"] {
        let v = PhpValue::from(t);
        m.array_push(&mut tags, v);
    }
    let mut meta = m.new_array();
    m.array_set(&mut meta, ArrayKey::from("views"), PhpValue::from(42i64));
    m.array_set(&mut meta, ArrayKey::from("likes"), PhpValue::from(7i64));
    vec![
        ("title", title),
        ("tags", PhpValue::array(tags)),
        ("meta", PhpValue::array(meta)),
    ]
}

/// Binds the request variables the WordPress page template reads
/// (`$title`, `$tags`, `$meta`) to fixed sample values.
pub fn bind_request_vars(interp: &mut Interp<'_>) {
    for (name, v) in request_var_values(interp.machine()) {
        interp.set_var_public(name, v);
    }
}

/// [`bind_request_vars`] for the compiled-VM engine.
pub fn bind_request_vars_vm(vm: &mut Vm<'_>) {
    for (name, v) in request_var_values(vm.machine()) {
        vm.set_var_public(name, v);
    }
}

/// A parsed and analyzed corpus script, ready to run with or without its
/// proven facts attached.
///
/// Both the program and its facts live behind `Arc`s, so a `PreparedScript`
/// (itself usually `Arc`-wrapped via [`CorpusCache`]) can be shared across
/// worker threads: the facts key on node addresses inside the program's
/// statement buffer, and that buffer is never moved or cloned once prepared,
/// so every worker resolves the same facts for the same sites.
#[derive(Debug)]
pub struct PreparedScript {
    entry: &'static CorpusEntry,
    program: Arc<Program>,
    /// Function definitions shared with the interpreter so facts stay valid
    /// inside bodies (see [`Interp::predefine_funcs`]).
    shared_funcs: Vec<Arc<FuncDef>>,
    /// Facts proven over `program` and `shared_funcs`.
    pub facts: Arc<AnalysisFacts>,
    /// Per-scope statistics and lints.
    pub report: php_analysis::Report,
    /// Compiled bytecode, one unit per (facts on/off, fusion on/off)
    /// combination, indexed `[with_facts as usize][fused as usize]`. Shared
    /// `Arc`s: workers on the VM engine execute cached bytecode the same way
    /// tree-walking workers execute the cached `Arc<Program>`.
    vm_units: [[Arc<CompiledUnit>; 2]; 2],
}

/// Parses and analyzes one corpus entry.
pub fn prepare(entry: &'static CorpusEntry) -> PreparedScript {
    let program = parse(entry.source).unwrap_or_else(|e| {
        panic!(
            "corpus script {}/{} fails to parse: {e:?}",
            entry.app, entry.name
        )
    });
    let shared_funcs: Vec<Arc<FuncDef>> = program
        .stmts
        .iter()
        .filter_map(|s| match s {
            Stmt::FuncDef(f) => Some(Arc::new(f.clone())),
            _ => None,
        })
        .collect();
    let analysis = php_analysis::analyze_with_funcs(&program, &shared_funcs);
    let unit = |facts: Option<&AnalysisFacts>, fuse: bool| {
        Arc::new(php_interp::compile(
            &program,
            &shared_funcs,
            facts,
            CompileOptions { fuse },
        ))
    };
    let vm_units = [
        [unit(None, false), unit(None, true)],
        [
            unit(Some(&analysis.facts), false),
            unit(Some(&analysis.facts), true),
        ],
    ];
    // Wrapping after analysis is sound: the move relocates only the `Program`
    // struct itself, while the statement nodes the facts point at live in its
    // heap-allocated `stmts` buffer, whose address is stable.
    PreparedScript {
        entry,
        program: Arc::new(program),
        shared_funcs,
        facts: Arc::new(analysis.facts),
        report: analysis.report,
        vm_units,
    }
}

/// Shared compile cache: every corpus entry parsed and analyzed exactly once,
/// the software analogue of a bytecode cache shared by server workers.
///
/// Build it once, wrap it in an `Arc`, and hand clones to worker threads —
/// each worker executes the cached `Arc<Program>`/`Arc<AnalysisFacts>` pairs
/// on its own private `PhpMachine` without re-parsing or re-analyzing.
#[derive(Debug)]
pub struct CorpusCache {
    scripts: Vec<Arc<PreparedScript>>,
}

impl CorpusCache {
    /// Parses and analyzes the whole corpus ([`ENTRIES`], in order).
    pub fn build() -> Self {
        CorpusCache {
            scripts: ENTRIES.iter().map(|e| Arc::new(prepare(e))).collect(),
        }
    }

    /// The cached scripts, in corpus order.
    pub fn scripts(&self) -> &[Arc<PreparedScript>] {
        &self.scripts
    }

    /// Number of cached scripts.
    pub fn len(&self) -> usize {
        self.scripts.len()
    }

    /// Whether the cache is empty (it never is after [`CorpusCache::build`]).
    pub fn is_empty(&self) -> bool {
        self.scripts.is_empty()
    }

    /// The script a request cycles onto: request `n` runs script
    /// `n % len()`, so any contiguous block of requests covers the corpus
    /// round-robin regardless of how requests are sharded across workers.
    pub fn script_for_request(&self, request: u64) -> &Arc<PreparedScript> {
        &self.scripts[(request % self.scripts.len() as u64) as usize]
    }
}

impl PreparedScript {
    /// The corpus entry this script was prepared from.
    pub fn entry(&self) -> &'static CorpusEntry {
        self.entry
    }

    /// The cached bytecode for one (facts, fusion) combination.
    pub fn vm_unit(&self, with_facts: bool, fused: bool) -> &Arc<CompiledUnit> {
        &self.vm_units[with_facts as usize][fused as usize]
    }

    /// Runs the script once on `m` and returns its output, dispatching on
    /// the machine's configured [`Engine`]: the tree-walker executes the
    /// cached `Arc<Program>`, the VM the cached (fused) `Arc<CompiledUnit>`.
    /// `with_facts` selects specialized execution on either engine. Output
    /// is byte-identical across all four combinations.
    pub fn run(&self, m: &mut PhpMachine, with_facts: bool) -> Vec<u8> {
        self.run_memo(m, with_facts, None)
    }

    /// [`PreparedScript::run`] with an optional shared memo tier attached.
    /// Keys are namespaced by the entry name, so many scripts can share one
    /// tier (e.g. `serve::MemoCache`, or `php_interp::SimpleMemo` in tests)
    /// without colliding on same-named functions. Only facts-proven sites
    /// consult the tier, so `with_facts: false` leaves it inert.
    pub fn run_memo(
        &self,
        m: &mut PhpMachine,
        with_facts: bool,
        memo: Option<Arc<dyn MemoTier>>,
    ) -> Vec<u8> {
        match m.engine() {
            Engine::TreeWalk => {
                let mut interp = Interp::new(m);
                interp.predefine_funcs(self.shared_funcs.iter().cloned());
                if with_facts {
                    interp.set_facts(self.facts.clone());
                }
                if let Some(tier) = memo {
                    interp.set_memo(MemoHandle::new(tier, self.entry.name));
                }
                if self.entry.needs_request_vars {
                    bind_request_vars(&mut interp);
                }
                interp.run_program(&self.program).unwrap_or_else(|e| {
                    panic!(
                        "corpus script {}/{} fails: {e:?}",
                        self.entry.app, self.entry.name
                    )
                });
                interp.take_output()
            }
            Engine::Vm => self.run_vm_memo(m, with_facts, true, memo),
        }
    }

    /// Runs the script once on the compiled-VM engine with an explicit
    /// fusion choice (the benchmark measures fused vs unfused).
    pub fn run_vm(&self, m: &mut PhpMachine, with_facts: bool, fused: bool) -> Vec<u8> {
        self.run_vm_memo(m, with_facts, fused, None)
    }

    /// [`PreparedScript::run_vm`] with an optional shared memo tier. The
    /// `MemoEnter`/`MemoStore` opcodes exist only in facts-compiled units,
    /// so without facts the tier is inert on this engine too.
    pub fn run_vm_memo(
        &self,
        m: &mut PhpMachine,
        with_facts: bool,
        fused: bool,
        memo: Option<Arc<dyn MemoTier>>,
    ) -> Vec<u8> {
        let unit = Arc::clone(self.vm_unit(with_facts, fused));
        let mut vm = Vm::new(m, unit);
        if let Some(tier) = memo {
            vm.set_memo(MemoHandle::new(tier, self.entry.name));
        }
        if self.entry.needs_request_vars {
            bind_request_vars_vm(&mut vm);
        }
        vm.run().unwrap_or_else(|e| {
            panic!(
                "corpus script {}/{} fails on vm: {e:?}",
                self.entry.app, self.entry.name
            )
        });
        vm.take_output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_analysis::LintKind;

    #[test]
    fn every_entry_parses_and_runs() {
        for entry in ENTRIES {
            let p = prepare(entry);
            let mut m = PhpMachine::baseline();
            let out = p.run(&mut m, false);
            assert!(
                !out.is_empty(),
                "{}/{} produced no output",
                entry.app,
                entry.name
            );
        }
    }

    #[test]
    fn outputs_are_byte_identical_with_facts_on_and_off() {
        for entry in ENTRIES {
            let p = prepare(entry);
            let mut off = PhpMachine::specialized();
            let mut on = PhpMachine::specialized();
            let plain = p.run(&mut off, false);
            let specialized = p.run(&mut on, true);
            assert_eq!(
                plain, specialized,
                "{}/{} output diverged with analysis enabled",
                entry.app, entry.name
            );
        }
    }

    #[test]
    fn wordpress_corpus_triggers_all_four_lints() {
        let mut kinds = Vec::new();
        for entry in for_app("wordpress") {
            kinds.extend(prepare(entry).report.lints.iter().map(|l| l.kind));
        }
        for kind in [
            LintKind::UseBeforeAssign,
            LintKind::DeadStore,
            LintKind::AlwaysTrueGuard,
            LintKind::ConstantCondition,
        ] {
            assert!(kinds.contains(&kind), "missing {kind} in {kinds:?}");
        }
    }

    /// Acceptance: turning on the interprocedural layer must *strictly*
    /// increase both proven operand types and elidable refcount pairs over
    /// the corpus — summaries keep caller environments alive across calls
    /// and release arguments the callee provably never retains.
    #[test]
    fn interprocedural_mode_strictly_improves_precision() {
        use php_analysis::{analyze_with_options, AnalyzeOptions};
        let mut typed = (0usize, 0usize);
        let mut rc = (0usize, 0usize);
        let mut summarized = 0;
        let mut precompiled = 0;
        for entry in ENTRIES {
            let program = parse(entry.source).unwrap();
            let intra = analyze_with_options(
                &program,
                &[],
                AnalyzeOptions {
                    interprocedural: false,
                },
            );
            let inter = analyze_with_options(&program, &[], AnalyzeOptions::default());
            typed.0 += intra.report.typed_operands();
            typed.1 += inter.report.typed_operands();
            rc.0 += intra.report.rc_elided_sites();
            rc.1 += inter.report.rc_elided_sites();
            summarized += inter.report.summarized_calls();
            precompiled += inter.report.preg_precompiled();
            assert_eq!(
                intra.report.summarized_calls(),
                0,
                "intraprocedural mode must not claim summary wins"
            );
        }
        assert!(typed.1 > typed.0, "typed operands: {typed:?}");
        assert!(rc.1 > rc.0, "rc-elidable sites: {rc:?}");
        assert!(summarized > 0, "no call site used a summary");
        assert!(precompiled > 0, "no constant preg pattern was precompiled");
    }

    /// The comment-filter entry's flagship win: its `preg_match` pattern
    /// comes out of a *function call*, so only constant-return propagation
    /// through the call graph can compile it at analysis time.
    #[test]
    fn const_return_pattern_is_precompiled_across_the_call() {
        let entry = ENTRIES.iter().find(|e| e.name == "comment-filter").unwrap();
        let p = prepare(entry);
        assert!(
            p.facts.precompiled_regex_count() >= 2,
            "literal and const-return patterns both precompile, got {}",
            p.facts.precompiled_regex_count()
        );
        assert!(p.report.summarized_calls() > 0);
    }

    /// Acceptance: with facts attached the comment-filter entry performs
    /// *zero* runtime regex compiles — both `preg_*` sites reuse handles
    /// compiled once at analysis time.
    #[test]
    fn precompiled_patterns_remove_all_runtime_regex_compiles() {
        let entry = ENTRIES.iter().find(|e| e.name == "comment-filter").unwrap();
        let p = prepare(entry);

        let mut m = PhpMachine::specialized();
        let mut interp = Interp::new(&mut m);
        interp.predefine_funcs(p.shared_funcs.iter().cloned());
        interp.run_program(&p.program).unwrap();
        assert!(
            interp.regex_compile_count() > 0,
            "fully dynamic mode must compile per request"
        );

        let mut m = PhpMachine::specialized();
        let mut interp = Interp::new(&mut m);
        interp.predefine_funcs(p.shared_funcs.iter().cloned());
        interp.set_facts(p.facts.clone());
        interp.run_program(&p.program).unwrap();
        assert_eq!(
            interp.regex_compile_count(),
            0,
            "precompiled handles must cover every preg_* site"
        );
    }

    /// Every one of the interprocedural savings counters fires somewhere in
    /// the corpus, so `analyze` never reports a structurally-zero column.
    #[test]
    fn interprocedural_savings_counters_all_fire() {
        let mut summaries = 0u64;
        let mut regex_avoided = 0u64;
        let mut preseeded = 0u64;
        let mut taint = 0u64;
        for entry in ENTRIES {
            let p = prepare(entry);
            let mut m = PhpMachine::specialized();
            p.run(&mut m, true);
            let s = m.ctx().profiler().static_savings();
            summaries += s.summaries_applied;
            regex_avoided += s.regex_compiles_avoided;
            preseeded += s.heap_classes_preseeded;
            taint += s.taint_lints_flagged;
        }
        assert!(summaries > 0, "no summarized call executed");
        assert!(regex_avoided > 0, "no precompiled regex was reused");
        assert!(preseeded > 0, "no heap size class was preseeded");
        assert!(taint > 0, "no taint lint reached the profiler");
    }

    /// The search-echo entry exists to keep the taint lint (and its
    /// allowlist entry) exercised end to end.
    #[test]
    fn search_echo_raises_a_tainted_sink_lint() {
        let entry = ENTRIES.iter().find(|e| e.name == "search-echo").unwrap();
        let p = prepare(entry);
        assert!(
            p.report
                .lints
                .iter()
                .any(|l| l.kind == LintKind::TaintedSink && l.message.contains("($q)")),
            "{:?}",
            p.report.lints
        );
        assert_eq!(p.facts.taint_lint_count(), 1, "the sanitized echo is clean");
    }

    /// Tentpole invariant: one shared cache, many threads, byte-identical
    /// output. Each thread runs every cached script (facts attached) on its
    /// own machine and must reproduce the single-threaded reference exactly —
    /// proving the facts stay identity-stable under `Arc` sharing.
    #[test]
    fn shared_cache_is_byte_identical_across_threads() {
        let cache = std::sync::Arc::new(CorpusCache::build());
        assert_eq!(cache.len(), ENTRIES.len());
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CorpusCache>();
        assert_send_sync::<PreparedScript>();

        let reference: Vec<Vec<u8>> = cache
            .scripts()
            .iter()
            .map(|p| p.run(&mut PhpMachine::specialized(), true))
            .collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    cache
                        .scripts()
                        .iter()
                        .map(|p| {
                            let out = p.run(&mut PhpMachine::specialized(), true);
                            // Facts resolved, not just tolerated: the regex
                            // sites this entry precompiled must be visible
                            // through the shared Arc on this thread too.
                            (out, p.facts.precompiled_regex_count())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            let got = h.join().unwrap();
            for (i, (out, precompiled)) in got.iter().enumerate() {
                assert_eq!(out, &reference[i], "{} diverged", ENTRIES[i].name);
                assert_eq!(
                    *precompiled,
                    cache.scripts()[i].facts.precompiled_regex_count()
                );
            }
        }
    }

    #[test]
    fn block_cache_proves_memoizable_sites() {
        let entry = ENTRIES.iter().find(|e| e.name == "block-cache").unwrap();
        let p = prepare(entry);
        assert!(
            p.report.memo_sites() >= 3,
            "header + title + body sites: {:?}",
            p.report.scopes
        );
        assert!(p.facts.memo_site_count() >= 3);
    }

    #[test]
    fn session_token_raises_nondeterministic_cacheable() {
        let entry = ENTRIES.iter().find(|e| e.name == "session-token").unwrap();
        let p = prepare(entry);
        assert!(
            p.report.lints.iter().any(|l| {
                l.kind == LintKind::NondeterministicCacheable && l.message.contains("fresh_token")
            }),
            "{:?}",
            p.report.lints
        );
        assert!(p.report.memo_sites() >= 1, "greet stays memoizable");
    }

    /// Acceptance: a shared memo tier never changes a single output byte —
    /// every corpus entry, both engines, repeated requests against the same
    /// warm tier.
    #[test]
    fn memo_tier_replays_byte_identical_output_on_both_engines() {
        use php_interp::SimpleMemo;
        use std::sync::Arc;
        for entry in ENTRIES {
            let p = prepare(entry);
            let baseline = p.run(&mut PhpMachine::specialized(), true);
            for engine in [Engine::TreeWalk, Engine::Vm] {
                let tier = Arc::new(SimpleMemo::new());
                for req in 0..3 {
                    let mut m = PhpMachine::specialized();
                    m.set_engine(engine);
                    let out = p.run_memo(&mut m, true, Some(tier.clone()));
                    assert_eq!(
                        out, baseline,
                        "{}/{} request {req} diverged with memo on ({engine:?})",
                        entry.app, entry.name
                    );
                }
            }
        }
    }

    /// The warm tier actually replays: the second request of the render-cache
    /// entry scores hits on both engines and skips the helpers' work.
    #[test]
    fn warm_tier_scores_hits_on_second_request() {
        use php_interp::SimpleMemo;
        use std::sync::Arc;
        let entry = ENTRIES.iter().find(|e| e.name == "block-cache").unwrap();
        let p = prepare(entry);
        for engine in [Engine::TreeWalk, Engine::Vm] {
            let tier = Arc::new(SimpleMemo::new());
            let mut m1 = PhpMachine::specialized();
            m1.set_engine(engine);
            p.run_memo(&mut m1, true, Some(tier.clone()));
            let s1 = m1.ctx().profiler().static_savings();
            assert_eq!(s1.memo_hits, 0, "cold tier cannot hit ({engine:?})");
            assert!(s1.memo_stores > 0, "cold run must populate ({engine:?})");

            let mut m2 = PhpMachine::specialized();
            m2.set_engine(engine);
            p.run_memo(&mut m2, true, Some(tier.clone()));
            let s2 = m2.ctx().profiler().static_savings();
            assert!(s2.memo_hits > 0, "warm tier must replay ({engine:?})");
        }
    }

    #[test]
    fn corpus_covers_types_rc_and_key_shapes() {
        let mut typed = 0;
        let mut rc = 0;
        let mut consts = 0;
        let mut appends = 0;
        for entry in ENTRIES {
            let p = prepare(entry);
            typed += p.report.typed_operands();
            rc += p.report.rc_elided_sites();
            let (c, a) = p.facts.key_shape_counts();
            consts += c;
            appends += a;
        }
        assert!(typed > 0 && rc > 0 && consts > 0 && appends > 0);
    }
}
