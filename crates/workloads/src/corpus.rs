//! Synthetic textual corpus.
//!
//! The paper's applications "process large volumes of unstructured textual
//! data (such as social media updates, web documents, blog posts, news
//! articles, and system logs)". This module generates deterministic text
//! with controllable *special-character density* — the lever behind content
//! sifting's opportunity (Figure 12) — plus URLs, markup, and comments.

use php_runtime::string::PhpStr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Corpus generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusConfig {
    /// Probability a word is followed by a special-character island
    /// (quote, apostrophe, markup).
    pub special_density: f64,
    /// Words per paragraph.
    pub words_per_paragraph: usize,
    /// Paragraphs per post body.
    pub paragraphs_per_post: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            special_density: 0.04,
            words_per_paragraph: 60,
            paragraphs_per_post: 4,
            seed: 0xC0FFEE,
        }
    }
}

const WORDS: &[&str] = &[
    "the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog", "server", "request", "content",
    "article", "update", "system", "module", "theme", "plugin", "widget", "render", "template",
    "cache", "database", "query", "index", "page", "post", "comment", "author", "reader", "editor",
    "publish", "draft", "archive", "category", "network", "social", "media", "document", "blog",
    "news", "log", "data", "value", "field", "table", "entry", "record",
];

const SPECIAL_ISLANDS: &[&str] = &[
    "it's",
    "\"quoted\"",
    "<em>note</em>",
    "don't",
    "(aside)",
    "[ref]",
    "&copy;",
    "<br>",
    "a:b",
    "x=1",
    "it's!",
    "\"say\"",
];

/// Deterministic corpus generator.
#[derive(Debug)]
pub struct Corpus {
    cfg: CorpusConfig,
    rng: StdRng,
}

impl Corpus {
    /// Creates a generator.
    pub fn new(cfg: CorpusConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Corpus { cfg, rng }
    }

    /// One paragraph of mostly-regular text with occasional special islands.
    pub fn paragraph(&mut self) -> PhpStr {
        let mut out = String::new();
        for w in 0..self.cfg.words_per_paragraph {
            if w > 0 {
                out.push(' ');
            }
            if self.rng.gen_bool(self.cfg.special_density) {
                out.push_str(SPECIAL_ISLANDS[self.rng.gen_range(0..SPECIAL_ISLANDS.len())]);
            } else {
                out.push_str(WORDS[self.rng.gen_range(0..WORDS.len())]);
            }
        }
        out.push('.');
        PhpStr::from(out)
    }

    /// A multi-paragraph post body separated by newlines.
    pub fn post_body(&mut self) -> PhpStr {
        let mut out = PhpStr::new();
        for p in 0..self.cfg.paragraphs_per_post {
            if p > 0 {
                out.push_bytes(b"\n\n");
            }
            out.push_bytes(self.paragraph().as_bytes());
        }
        out
    }

    /// A short comment (higher special density: people quote and emote).
    pub fn comment(&mut self) -> PhpStr {
        let saved = self.cfg.special_density;
        self.cfg.special_density = (saved * 3.0).min(0.5);
        let words = self.cfg.words_per_paragraph;
        self.cfg.words_per_paragraph = 12 + self.rng.gen_range(0..20);
        let out = self.paragraph();
        self.cfg.special_density = saved;
        self.cfg.words_per_paragraph = words;
        out
    }

    /// A title: a few capitalized words.
    pub fn title(&mut self) -> PhpStr {
        let n = 3 + self.rng.gen_range(0..5);
        let mut out = String::new();
        for i in 0..n {
            if i > 0 {
                out.push(' ');
            }
            let w = WORDS[self.rng.gen_range(0..WORDS.len())];
            let mut c = w.chars();
            if let Some(first) = c.next() {
                out.push(first.to_ascii_uppercase());
                out.push_str(c.as_str());
            }
        }
        PhpStr::from(out)
    }

    /// An author handle (lowercase letters).
    pub fn author(&mut self) -> PhpStr {
        let n = 3 + self.rng.gen_range(0..6);
        let s: String = (0..n)
            .map(|_| (b'a' + self.rng.gen_range(0..26)) as char)
            .collect();
        PhpStr::from(s)
    }

    /// Figure-13-style author URL: only the name field varies.
    pub fn author_url(&mut self, author: &PhpStr) -> PhpStr {
        let mut out = PhpStr::from("https://localhost/?author=");
        out.push_bytes(author.as_bytes());
        out
    }

    /// MediaWiki-style markup: wiki links, bold, headings.
    pub fn wiki_markup(&mut self) -> PhpStr {
        let mut out = String::new();
        out.push_str("== ");
        out.push_str(&self.title().to_string_lossy());
        out.push_str(" ==\n");
        for _ in 0..self.cfg.paragraphs_per_post {
            for w in 0..self.cfg.words_per_paragraph {
                if w > 0 {
                    out.push(' ');
                }
                let r: f64 = self.rng.gen();
                if r < 0.03 {
                    out.push_str("[[");
                    out.push_str(WORDS[self.rng.gen_range(0..WORDS.len())]);
                    out.push_str("]]");
                } else if r < 0.05 {
                    out.push_str("'''");
                    out.push_str(WORDS[self.rng.gen_range(0..WORDS.len())]);
                    out.push_str("'''");
                } else {
                    out.push_str(WORDS[self.rng.gen_range(0..WORDS.len())]);
                }
            }
            out.push('\n');
        }
        PhpStr::from(out)
    }

    /// Zipf-ish popularity pick over `n` items (hot head, long tail).
    pub fn zipf_pick(&mut self, n: usize) -> usize {
        assert!(n > 0);
        // Simple discrete approximation: rank ∝ 1/(k+1).
        let weights: Vec<f64> = (0..n).map(|k| 1.0 / (k as f64 + 1.0)).collect();
        let total: f64 = weights.iter().sum();
        let mut x = self.rng.gen::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        n - 1
    }

    /// Uniform random integer in `[0, n)`.
    pub fn pick(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_runtime::strfuncs::is_special_char;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Corpus::new(CorpusConfig::default());
        let mut b = Corpus::new(CorpusConfig::default());
        assert_eq!(a.paragraph(), b.paragraph());
        assert_eq!(a.post_body(), b.post_body());
    }

    #[test]
    fn special_density_controls_specials() {
        let mut low = Corpus::new(CorpusConfig {
            special_density: 0.0,
            ..Default::default()
        });
        let mut high = Corpus::new(CorpusConfig {
            special_density: 0.4,
            ..Default::default()
        });
        let count = |s: &PhpStr| s.as_bytes().iter().filter(|&&b| is_special_char(b)).count();
        let lp = low.paragraph();
        let hp = high.paragraph();
        // "." is regular in the paper's classification, so a 0-density
        // paragraph has no specials at all.
        assert_eq!(count(&lp), 0);
        assert!(count(&hp) > 10);
    }

    #[test]
    fn author_url_shares_prefix() {
        let mut c = Corpus::new(CorpusConfig::default());
        let a1 = c.author();
        let a2 = c.author();
        let u1 = c.author_url(&a1);
        let u2 = c.author_url(&a2);
        assert!(u1
            .to_string_lossy()
            .starts_with("https://localhost/?author="));
        assert_eq!(&u1.as_bytes()[..26], &u2.as_bytes()[..26]);
    }

    #[test]
    fn wiki_markup_has_wiki_constructs() {
        let mut c = Corpus::new(CorpusConfig {
            seed: 7,
            ..Default::default()
        });
        let w = c.wiki_markup().to_string_lossy();
        assert!(w.contains("=="));
        assert!(w.contains("[[") || w.contains("'''"));
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut c = Corpus::new(CorpusConfig::default());
        let mut counts = vec![0u32; 10];
        for _ in 0..5000 {
            counts[c.zipf_pick(10)] += 1;
        }
        assert!(counts[0] > counts[5] * 2, "{counts:?}");
        assert!(counts[0] > counts[9] * 3, "{counts:?}");
    }
}
