//! SPECWeb2005-style microbenchmarks (banking, e-commerce).
//!
//! These exist as Figure 1's contrast: "the SPECWeb2005 workloads contain
//! significant hotspots — with very few functions responsible for about 90%
//! of their execution time," and they "spend most of their time in
//! JIT-generated compiled code, contrary to the real-world PHP
//! applications."

use crate::loadgen::Workload;
use php_runtime::array::ArrayKey;
use php_runtime::string::PhpStr;
use php_runtime::value::PhpValue;
use phpaccel_core::PhpMachine;

/// Which SPECWeb-like benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecVariant {
    /// Banking: transaction loop hotspot.
    Banking,
    /// E-commerce: catalog formatting hotspot.
    Ecommerce,
}

/// The SPECWeb-like microbenchmark.
pub struct SpecWeb {
    variant: SpecVariant,
    accounts: Vec<i64>,
}

impl SpecWeb {
    /// Builds the chosen variant.
    pub fn new(variant: SpecVariant) -> Self {
        SpecWeb {
            variant,
            accounts: (0..64).map(|i| i * 100).collect(),
        }
    }
}

impl Workload for SpecWeb {
    fn name(&self) -> &'static str {
        match self.variant {
            SpecVariant::Banking => "specweb-banking",
            SpecVariant::Ecommerce => "specweb-ecommerce",
        }
    }

    fn handle_request(&mut self, m: &mut PhpMachine, req: u64) {
        match self.variant {
            SpecVariant::Banking => {
                // One giant hot function: the transaction-processing loop.
                m.ctx().charge_jit(9_000);
                m.ctx().charge_other("bank_validate_session", 900);
                m.ctx().charge_other("bank_format_statement", 700);
                // A small, static-key account table: IC-friendly accesses.
                let mut accounts = m.new_array();
                for (i, bal) in self.accounts.iter().enumerate().take(16) {
                    m.array_set(&mut accounts, ArrayKey::Int(i as i64), PhpValue::from(*bal));
                }
                let _ = m.array_get(&accounts, &ArrayKey::Int((req % 16) as i64));
                m.array_free(&accounts);
            }
            SpecVariant::Ecommerce => {
                m.ctx().charge_jit(7_500);
                m.ctx().charge_other("shop_render_catalog", 2_200);
                m.ctx().charge_other("shop_price_format", 650);
                let price = PhpStr::from(format!("{}.99", 10 + req % 90));
                let formatted = m.sprintf(
                    &PhpStr::from("item %s: $%s"),
                    &[PhpValue::from(req as i64), PhpValue::str(price)],
                );
                let _v = m.transient_str(formatted);
            }
        }
        m.end_request();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_hotspot_shaped() {
        let mut app = SpecWeb::new(SpecVariant::Banking);
        let mut m = PhpMachine::baseline();
        for r in 0..20 {
            app.handle_request(&mut m, r);
        }
        // Figure 1: very few functions cover ~90 % of cycles.
        let top3 = m.ctx().profiler().cumulative_share(3);
        assert!(top3 > 0.85, "top-3 share {top3}");
    }

    #[test]
    fn ecommerce_also_hotspots() {
        let mut app = SpecWeb::new(SpecVariant::Ecommerce);
        let mut m = PhpMachine::baseline();
        for r in 0..20 {
            app.handle_request(&mut m, r);
        }
        let top5 = m.ctx().profiler().cumulative_share(5);
        assert!(top5 > 0.85, "top-5 share {top5}");
    }
}
