//! # accel-regex
//!
//! The ISCA 2017 paper's **regexp acceleration techniques** (§4.5):
//!
//! * **Content Sifting** — a *sieve* regexp scans the content once and emits
//!   a per-segment **hint vector** of special-character presence (built by
//!   the string accelerator); subsequent *shadow* regexps consult the HV and
//!   skip clean segments. Whitespace padding keeps segment boundaries (and
//!   therefore the HV) valid when shadow regexps rewrite HTML content.
//! * **Content Reuse** — a 32-entry table keyed by `(PC, ASID)` remembers a
//!   ≤32-byte content prefix and the FSM state reached after it; a repeat
//!   scan of almost-identical content jumps straight to that state.
//!
//! ```
//! use accel_regex::sieve::{regexp_sieve, regexp_shadow};
//! use accel_string::StringAccel;
//! use regex_engine::Regex;
//!
//! let content = b"plain text then a 'quote' and lots more plain text after it";
//! let sieve_re = Regex::new("'")?;
//! let mut straccel = StringAccel::default();
//! let sieve = regexp_sieve(&sieve_re, content, 16, &mut straccel);
//! let shadow_re = Regex::new("\"")?;
//! let shadow = regexp_shadow(&shadow_re, content, &sieve.hv);
//! assert!(shadow.bytes_skipped > 0); // clean segments were never scanned
//! # Ok::<(), regex_engine::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod hints;
pub mod padding;
pub mod prebuilt;
pub mod reuse;
pub mod sieve;
pub mod stats;

pub use hints::{HintVector, DEFAULT_SEGMENT_SIZE};
pub use padding::{replace_padded, PaddedEdit};
pub use prebuilt::{PrebuiltPattern, ShadowPlan};
pub use reuse::{run_with_reuse, ContentReuseTable, LookupOutcome, ReuseRun, ReuseStats};
pub use sieve::{regexp_shadow, regexp_sieve, ShadowMode, ShadowOutcome, SieveOutcome};
pub use stats::RegexAccelStats;
