//! Aggregate statistics for the regexp accelerator (Figure 12 input).

use crate::reuse::ReuseStats;
use crate::sieve::{ShadowMode, ShadowOutcome, SieveOutcome};

/// Running totals across sieve/shadow/reuse activity.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegexAccelStats {
    /// Sieve passes.
    pub sieve_calls: u64,
    /// Shadow passes.
    pub shadow_calls: u64,
    /// Shadow passes that used HV skipping.
    pub shadow_skipping: u64,
    /// Shadow passes that fell back to a full scan.
    pub shadow_fallbacks: u64,
    /// Total subject bytes offered to regexps.
    pub bytes_total: u64,
    /// Bytes actually scanned.
    pub bytes_scanned: u64,
    /// Bytes skipped by content sifting.
    pub bytes_skipped_sift: u64,
    /// Bytes skipped by content reuse.
    pub bytes_skipped_reuse: u64,
    /// Software µops spent in regexp processing.
    pub uops: u64,
    /// Hint-vector bit flips injected (testing hook).
    pub hv_faults_injected: u64,
    /// Hint-vector parity failures detected (vector degraded to all-dirty).
    pub hv_faults_detected: u64,
}

impl RegexAccelStats {
    /// Records a sieve pass over `len` content bytes.
    pub fn note_sieve(&mut self, out: &SieveOutcome, len: usize) {
        self.sieve_calls += 1;
        self.bytes_total += len as u64;
        self.bytes_scanned += out.bytes_scanned;
        self.uops += out.uops;
    }

    /// Records a shadow pass over `len` content bytes.
    pub fn note_shadow(&mut self, out: &ShadowOutcome, len: usize) {
        self.shadow_calls += 1;
        self.bytes_total += len as u64;
        self.bytes_scanned += out.bytes_scanned;
        self.bytes_skipped_sift += out.bytes_skipped;
        self.uops += out.uops;
        match out.mode {
            ShadowMode::Skipping { .. } => self.shadow_skipping += 1,
            _ => self.shadow_fallbacks += 1,
        }
    }

    /// Folds in reuse-table savings.
    pub fn note_reuse(&mut self, reuse: &ReuseStats) {
        self.bytes_skipped_reuse = reuse.bytes_skipped;
    }

    /// Fraction of total content bytes skipped by either technique —
    /// Figure 12's y-axis.
    pub fn skip_fraction(&self) -> f64 {
        if self.bytes_total == 0 {
            return 0.0;
        }
        (self.bytes_skipped_sift + self.bytes_skipped_reuse) as f64 / self.bytes_total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sieve::ShadowMode;

    #[test]
    fn aggregation_and_fraction() {
        let mut s = RegexAccelStats::default();
        let shadow = ShadowOutcome {
            matches: vec![],
            bytes_scanned: 100,
            bytes_skipped: 900,
            uops: 700,
            mode: ShadowMode::Skipping { lookback: 0 },
        };
        s.note_shadow(&shadow, 1000);
        assert_eq!(s.shadow_skipping, 1);
        assert!((s.skip_fraction() - 0.9).abs() < 1e-12);
        let fb = ShadowOutcome {
            matches: vec![],
            bytes_scanned: 1000,
            bytes_skipped: 0,
            uops: 6045,
            mode: ShadowMode::FullScanIneligible,
        };
        s.note_shadow(&fb, 1000);
        assert_eq!(s.shadow_fallbacks, 1);
        assert!((s.skip_fraction() - 0.45).abs() < 1e-12);
    }
}
