//! Whitespace padding for edited HTML content (§4.5).
//!
//! "Fortunately, we can exploit the HTML specification, which allows an
//! arbitrary number of linear white spaces in the response body, to embed
//! the appropriate number of whitespace characters in the updated content to
//! realign the segment boundaries to the existing HV."
//!
//! Two cases when a shadow regexp rewrites a span:
//!
//! * the replacement is **no longer** than the replaced span → pad the
//!   shortfall with spaces, net length change 0, HV untouched;
//! * the replacement is **longer** → pad the *insertion* up to a whole
//!   number of segments, so every later boundary shifts by exactly
//!   `k × SEGMENT_SIZE`; the HV then splices `k` dirty segments in place.

use crate::hints::HintVector;

/// Result of a padded replacement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaddedEdit {
    /// The rewritten content.
    pub content: Vec<u8>,
    /// Whitespace bytes inserted to preserve alignment.
    pub pad_bytes: usize,
    /// Whole segments spliced into the HV (0 when length was preserved).
    pub segments_added: usize,
}

/// Replaces `content[start..end]` with `replacement`, padding with spaces so
/// that every segment boundary at or after the edit stays aligned with the
/// existing hint vector. Updates `hv` in place (marks the edited segments
/// dirty and splices any added segments).
///
/// # Panics
///
/// Panics when `start..end` is not a valid range of `content`.
pub fn replace_padded(
    content: &[u8],
    start: usize,
    end: usize,
    replacement: &[u8],
    hv: &mut HintVector,
) -> PaddedEdit {
    assert!(start <= end && end <= content.len(), "bad edit range");
    let seg = hv.segment_size();
    let removed = end - start;
    let mut out = Vec::with_capacity(content.len() + replacement.len() + seg);
    out.extend_from_slice(&content[..start]);
    out.extend_from_slice(replacement);

    let (pad, segments_added) = if replacement.len() <= removed {
        // Shrinking or equal: pad to original span length.
        (removed - replacement.len(), 0)
    } else {
        // Growing: pad the *net insertion* to a whole number of segments.
        let delta = replacement.len() - removed;
        let pad = (seg - delta % seg) % seg;
        ((pad), (delta + pad) / seg)
    };
    out.extend(std::iter::repeat_n(b' ', pad));
    out.extend_from_slice(&content[end..]);

    // HV maintenance: the touched segments become dirty (replacement text,
    // e.g. an HTML tag, typically contains special characters), and grown
    // edits splice extra dirty segments.
    let first_seg = start / seg;
    let last_seg = if end > start {
        (end - 1) / seg
    } else {
        first_seg
    };
    for s in first_seg..=last_seg.min(hv.segments().saturating_sub(1)) {
        hv.mark_dirty(s);
    }
    if segments_added > 0 {
        hv.splice((last_seg + 1).min(hv.segments()), segments_added, true);
    }

    PaddedEdit {
        content: out,
        pad_bytes: pad,
        segments_added,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hv_for(content: &[u8], seg: usize) -> HintVector {
        let flags: Vec<bool> = content
            .chunks(seg)
            .map(|c| c.iter().any(|&b| php_special(b)))
            .collect();
        HintVector::from_flags(&flags, seg)
    }

    fn php_special(b: u8) -> bool {
        !(b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b',' | b'-' | b' '))
    }

    #[test]
    fn shrinking_edit_preserves_length() {
        let content = b"hello 'world' and more text padding here".to_vec();
        let mut hv = hv_for(&content, 16);
        let edit = replace_padded(&content, 6, 13, b"[w]", &mut hv);
        assert_eq!(edit.content.len(), content.len());
        assert_eq!(edit.segments_added, 0);
        assert_eq!(edit.pad_bytes, 4);
        assert!(edit.content.windows(3).any(|w| w == b"[w]"));
        // Tail is untouched and still aligned.
        assert_eq!(
            &edit.content[content.len() - 5..],
            &content[content.len() - 5..]
        );
    }

    #[test]
    fn growing_edit_adds_whole_segments() {
        let content = b"0123456789abcdef0123456789abcdef".to_vec(); // 2 segs of 16
        let mut hv = hv_for(&content, 16);
        assert_eq!(hv.segments(), 2);
        // Insert a 20-byte tag replacing 4 bytes: delta 16 → exactly 1 segment.
        let edit = replace_padded(&content, 4, 8, b"<strong>45678</strong>", &mut hv);
        let delta = edit.content.len() - content.len();
        assert_eq!(delta % 16, 0, "length change is whole segments");
        assert_eq!(edit.segments_added, delta / 16);
        assert_eq!(hv.segments(), 2 + edit.segments_added);
        // Later content still lands on the same segment offsets.
        let tail_old = &content[16..];
        let tail_new = &edit.content[16 + edit.segments_added * 16..];
        assert_eq!(tail_old, tail_new);
    }

    #[test]
    fn edited_segment_marked_dirty() {
        let content = b"abcdefghijklmnop0123456789abcdef".to_vec();
        let mut hv = hv_for(&content, 16);
        assert!(!hv.is_dirty(0));
        let _ = replace_padded(&content, 2, 4, b"<>", &mut hv);
        assert!(hv.is_dirty(0));
        assert!(!hv.is_dirty(1), "untouched segment stays clean");
    }

    #[test]
    fn equal_length_replacement_needs_no_pad() {
        let content = b"aaaa bbbb cccc dddd".to_vec();
        let mut hv = hv_for(&content, 16);
        let edit = replace_padded(&content, 0, 4, b"zzzz", &mut hv);
        assert_eq!(edit.pad_bytes, 0);
        assert_eq!(edit.segments_added, 0);
        assert_eq!(edit.content.len(), content.len());
    }

    #[test]
    #[should_panic(expected = "bad edit range")]
    fn bad_range_panics() {
        let mut hv = HintVector::all_dirty(1, 16);
        let _ = replace_padded(b"abc", 2, 1, b"", &mut hv);
    }
}
