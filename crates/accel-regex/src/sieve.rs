//! Content sifting: `regexp_sieve` and `regexp_shadow` (§4.5, §4.6).
//!
//! "We name the first regexp in the set as the sieve regexp and the
//! following ones as shadow regexps. Now if the sieve regexp can confirm the
//! presence of no special character in the incoming content, the following
//! shadow regexps can effectively skip scanning the content regardless of
//! the different special characters they look for."
//!
//! Soundness: a shadow regexp may skip a clean segment only if every one of
//! its matches (a) must contain a special character — which necessarily sits
//! in a *dirty* segment — and (b) can be found from a scan window around the
//! dirty segments. (b) holds when either the pattern's match length is
//! bounded (window widened by `max_len - 1`) or every viable first byte is
//! itself special (match starts inside a dirty segment). Patterns meeting
//! neither condition fall back to a full scan.

use crate::hints::HintVector;
use accel_string::{AccelCost, StringAccel};
use regex_engine::analysis::{is_special_byte, max_match_len, requires_special};
use regex_engine::{Match, Regex, SW_UOPS_PER_BYTE, SW_UOPS_PER_CALL};

/// Result of a sieve pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SieveOutcome {
    /// Matches of the sieve regexp itself (traditional full scan).
    pub matches: Vec<Match>,
    /// The hint vector populated via the string accelerator.
    pub hv: HintVector,
    /// Bytes the sieve's own FSM scanned.
    pub bytes_scanned: u64,
    /// Software µops of the sieve's scan.
    pub uops: u64,
    /// String-accelerator cost of populating the HV.
    pub hv_cost: AccelCost,
}

/// `regexp_sieve`: full traditional matching *plus* HV population through
/// the string accelerator.
pub fn regexp_sieve(
    re: &Regex,
    content: &[u8],
    segment_size: usize,
    accel: &mut StringAccel,
) -> SieveOutcome {
    let (matches, scan) = re.find_all(content);
    let (flags, hv_cost) = accel.sift_special(content, segment_size);
    SieveOutcome {
        matches,
        hv: HintVector::from_flags(&flags, segment_size),
        bytes_scanned: scan.bytes_scanned,
        uops: scan.uops,
        hv_cost,
    }
}

/// Why a shadow pass scanned everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowMode {
    /// Skipped clean segments (the accelerated path).
    Skipping {
        /// Window widening applied on each side of a dirty run, in bytes.
        lookback: usize,
    },
    /// Pattern not provably special-seeking → full scan.
    FullScanIneligible,
    /// `^`-anchored pattern → single anchored probe, nothing to skip.
    FullScanAnchored,
}

/// Result of a shadow pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowOutcome {
    /// Matches found (always identical to a full scan).
    pub matches: Vec<Match>,
    /// Bytes examined (prefilter probes + FSM steps).
    pub bytes_scanned: u64,
    /// Bytes skipped thanks to the HV.
    pub bytes_skipped: u64,
    /// Software µops.
    pub uops: u64,
    /// Which path was taken.
    pub mode: ShadowMode,
}

/// Decides whether a pattern may use HV-based skipping, returning the sound
/// lookback width.
fn skipping_plan(re: &Regex, segment_size: usize) -> Option<usize> {
    if re.anchored_start() || !requires_special(re.ast()) {
        return None;
    }
    if let Some(len) = max_match_len(re.ast()) {
        return Some(len.saturating_sub(1));
    }
    // Unbounded pattern: sound iff every viable first byte is special, so a
    // match can only *start* inside a dirty segment.
    let viable = re.viable_first_bytes();
    let all_special = viable
        .iter()
        .enumerate()
        .all(|(b, &ok)| !ok || is_special_byte(b as u8));
    if all_special {
        Some(0)
    } else {
        let _ = segment_size;
        None
    }
}

/// `regexp_shadow`: matches `re` against `content`, consulting the HV to
/// skip special-character-free segments when sound.
pub fn regexp_shadow(re: &Regex, content: &[u8], hv: &HintVector) -> ShadowOutcome {
    let lookback = match skipping_plan(re, hv.segment_size()) {
        Some(lb) => lb,
        None => {
            let (matches, scan) = re.find_all(content);
            let mode = if re.anchored_start() {
                ShadowMode::FullScanAnchored
            } else {
                ShadowMode::FullScanIneligible
            };
            return ShadowOutcome {
                matches,
                bytes_scanned: scan.bytes_scanned,
                bytes_skipped: 0,
                uops: scan.uops,
                mode,
            };
        }
    };

    let viable = re.viable_first_bytes();
    let mut matches = Vec::new();
    let mut bytes_scanned = 0u64;
    let mut positions_examined = 0u64;
    let mut resume_at = 0usize; // nothing before this may start a new match

    for (run_start, run_end) in hv.dirty_runs() {
        let (rs, _) = hv.segment_bytes(run_start, content.len());
        let (_, re_end) = hv.segment_bytes(run_end, content.len());
        let mut pos = rs.saturating_sub(lookback).max(resume_at);
        let window_end = re_end; // match may *extend* past; starts stay inside
        while pos < window_end {
            positions_examined += 1;
            if !viable[content[pos] as usize] {
                pos += 1;
                continue;
            }
            let (m, cost) = re.match_at(content, pos);
            bytes_scanned += cost;
            match m {
                Some(m) => {
                    pos = if m.is_empty() { m.end + 1 } else { m.end };
                    resume_at = pos;
                    matches.push(m);
                }
                None => pos += 1,
            }
        }
        resume_at = resume_at.max(window_end);
    }

    let examined = bytes_scanned + positions_examined;
    let bytes_skipped = (content.len() as u64).saturating_sub(examined.min(content.len() as u64));
    ShadowOutcome {
        matches,
        bytes_scanned: examined,
        bytes_skipped,
        uops: SW_UOPS_PER_CALL
            + bytes_scanned * SW_UOPS_PER_BYTE
            + positions_examined
            + hv.segments() as u64 / 8,
        mode: ShadowMode::Skipping { lookback },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sieve(pattern: &str, content: &[u8], seg: usize) -> (Regex, SieveOutcome) {
        let re = Regex::new(pattern).unwrap();
        let mut accel = StringAccel::default();
        let out = regexp_sieve(&re, content, seg, &mut accel);
        (re, out)
    }

    /// Content mimicking a blog paragraph: mostly regular text, a few
    /// special-character islands.
    fn blog_content() -> Vec<u8> {
        let mut c = Vec::new();
        c.extend_from_slice(b"The quick brown fox jumps over the lazy dog again and again ");
        c.extend_from_slice(b"while the narrator says it's fine to keep going with more ");
        c.extend_from_slice(&[b'a'; 200]);
        c.extend_from_slice(b" and finally a <em>tag</em> closes the show with more text ");
        c.extend_from_slice(&[b'b'; 200]);
        c
    }

    #[test]
    fn sieve_builds_hv_and_matches() {
        let content = blog_content();
        let (_, out) = sieve("'", &content, 32);
        assert_eq!(out.matches.len(), 1, "one apostrophe (it's)");
        assert!(out.hv.dirty_count() >= 1);
        assert!(
            out.hv.clean_fraction() > 0.4,
            "long regular stretches are clean"
        );
        assert!(out.hv_cost.cycles > 0);
    }

    #[test]
    fn shadow_agrees_with_full_scan_for_bounded_patterns() {
        let content = blog_content();
        let (_, s) = sieve("'", &content, 32);
        for pat in ["'", "\"", "'s", "' "] {
            let re = Regex::new(pat).unwrap();
            let shadow = regexp_shadow(&re, &content, &s.hv);
            let (full, _) = re.find_all(&content);
            assert_eq!(shadow.matches, full, "pattern {pat}");
            assert!(matches!(shadow.mode, ShadowMode::Skipping { .. }));
        }
    }

    #[test]
    fn shadow_agrees_for_unbounded_special_start() {
        let content = blog_content();
        let (_, s) = sieve("'", &content, 32);
        let re = Regex::new("<[a-z]+>").unwrap(); // unbounded but starts on '<'
        let shadow = regexp_shadow(&re, &content, &s.hv);
        let (full, _) = re.find_all(&content);
        assert_eq!(shadow.matches, full);
        assert_eq!(shadow.mode, ShadowMode::Skipping { lookback: 0 });
        assert!(
            shadow.bytes_skipped > 300,
            "skipped {}",
            shadow.bytes_skipped
        );
    }

    #[test]
    fn shadow_skips_most_of_clean_content() {
        let mut content = vec![b'x'; 4096];
        content[2048] = b'\'';
        let (_, s) = sieve("'", &content, 32);
        let re = Regex::new("\"").unwrap();
        let shadow = regexp_shadow(&re, &content, &s.hv);
        assert!(shadow.matches.is_empty());
        assert!(
            shadow.bytes_skipped as usize > content.len() * 9 / 10,
            "skipped {} of {}",
            shadow.bytes_skipped,
            content.len()
        );
    }

    #[test]
    fn ineligible_pattern_falls_back() {
        let content = blog_content();
        let (_, s) = sieve("'", &content, 32);
        let re = Regex::new("[a-z]+ing").unwrap(); // purely regular matches
        let shadow = regexp_shadow(&re, &content, &s.hv);
        assert_eq!(shadow.mode, ShadowMode::FullScanIneligible);
        assert_eq!(shadow.bytes_skipped, 0);
        let (full, _) = re.find_all(&content);
        assert_eq!(shadow.matches, full);
    }

    #[test]
    fn anchored_pattern_probes_once() {
        let content = blog_content();
        let (_, s) = sieve("'", &content, 32);
        let re = Regex::new("^The").unwrap();
        let shadow = regexp_shadow(&re, &content, &s.hv);
        assert_eq!(shadow.mode, ShadowMode::FullScanAnchored);
        assert_eq!(shadow.matches.len(), 1);
    }

    #[test]
    fn match_spanning_segment_boundary_not_missed() {
        // Special char at the very start of a segment; match extends back
        // into the previous (clean) segment — lookback must cover it.
        let mut content = vec![b'z'; 128];
        // Place "ab'" so that ' lands exactly on a 32-byte boundary.
        content[62] = b'a';
        content[63] = b'b';
        content[64] = b'\'';
        let (_, s) = sieve("'", &content, 32);
        assert!(!s.hv.is_dirty(1), "segment 1 must be clean for this test");
        let re = Regex::new("ab'").unwrap(); // bounded, len 3 → lookback 2
        let shadow = regexp_shadow(&re, &content, &s.hv);
        assert_eq!(shadow.matches.len(), 1);
        assert_eq!(shadow.matches[0].start, 62);
    }

    #[test]
    fn match_extending_past_dirty_run_found() {
        // '<' in a dirty segment, long [a-z]+ tail through clean segments.
        let mut content = vec![b' '; 32];
        content.extend_from_slice(b"<");
        content.extend_from_slice(&[b'q'; 60]);
        content.extend_from_slice(b">");
        content.extend_from_slice(&[b' '; 32]);
        let (_, s) = sieve("'", &content, 32);
        let re = Regex::new("<[a-z]+>").unwrap();
        let shadow = regexp_shadow(&re, &content, &s.hv);
        assert_eq!(shadow.matches.len(), 1);
        assert_eq!(shadow.matches[0].len(), 62);
    }

    #[test]
    fn fully_clean_content_scans_nothing() {
        let content = vec![b'm'; 1024];
        let (_, s) = sieve("'", &content, 32);
        assert_eq!(s.hv.dirty_count(), 0);
        let re = Regex::new("\"").unwrap();
        let shadow = regexp_shadow(&re, &content, &s.hv);
        assert!(shadow.matches.is_empty());
        assert_eq!(shadow.bytes_scanned, 0);
        assert_eq!(shadow.bytes_skipped as usize, content.len());
    }
}
