//! Analysis-time pre-built pattern descriptors.
//!
//! When static analysis constant-propagates the pattern argument of a
//! `preg_*` call it can do every per-pattern derivation *once*, before the
//! first request: compile the FSM, decide whether the pattern is eligible
//! for hint-vector skipping (and with what lookback), collect the special
//! bytes it seeks, and extract its literal prefix. Per-request dispatch
//! then consults the descriptor instead of re-walking the AST — the same
//! split §4.5 makes between the sieve's configuration phase and its
//! per-content scan phase.

use crate::sieve::{regexp_shadow, ShadowOutcome};
use crate::HintVector;
use regex_engine::analysis::{
    literal_prefix, max_match_len, requires_special, sought_special_chars,
};
use regex_engine::{ParseError, Regex};

/// How a pre-built pattern will behave under hint-vector skipping,
/// decided at analysis time (mirrors `sieve::skipping_plan`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowPlan {
    /// May skip clean segments with this lookback width (bytes).
    Skip {
        /// Window widening applied on each side of a dirty run.
        lookback: usize,
    },
    /// `^`-anchored: single probe, nothing to skip.
    Anchored,
    /// Not provably special-seeking: full scan.
    FullScan,
}

/// A pattern compiled and analyzed ahead of the first request.
#[derive(Debug, Clone)]
pub struct PrebuiltPattern {
    regex: Regex,
    plan: ShadowPlan,
    special_bytes: Vec<u8>,
    literal_prefix: Vec<u8>,
}

impl PrebuiltPattern {
    /// Compiles `pattern` (bare, delimiters already stripped) and derives
    /// all per-pattern facts.
    pub fn compile(pattern: &str) -> Result<Self, ParseError> {
        Ok(Self::from_regex(Regex::new(pattern)?))
    }

    /// Wraps an already compiled regex (e.g. one the analysis compiled via
    /// the interpreter's own path, keeping the handles identical).
    pub fn from_regex(regex: Regex) -> Self {
        let ast = regex.ast();
        let plan = if regex.anchored_start() {
            ShadowPlan::Anchored
        } else if !requires_special(ast) {
            ShadowPlan::FullScan
        } else if let Some(len) = max_match_len(ast) {
            ShadowPlan::Skip {
                lookback: len.saturating_sub(1),
            }
        } else {
            // Unbounded: skipping is sound iff every viable first byte is
            // special (a match can only start inside a dirty segment).
            let viable = regex.viable_first_bytes();
            let all_special = viable
                .iter()
                .enumerate()
                .all(|(b, &ok)| !ok || regex_engine::analysis::is_special_byte(b as u8));
            if all_special {
                ShadowPlan::Skip { lookback: 0 }
            } else {
                ShadowPlan::FullScan
            }
        };
        let special_bytes = sought_special_chars(ast);
        let prefix = literal_prefix(ast);
        PrebuiltPattern {
            regex,
            plan,
            special_bytes,
            literal_prefix: prefix,
        }
    }

    /// The compiled regex.
    pub fn regex(&self) -> &Regex {
        &self.regex
    }

    /// The skipping plan decided at analysis time.
    pub fn plan(&self) -> ShadowPlan {
        self.plan
    }

    /// Whether the pattern can act as a shadow regexp (skip clean segments).
    pub fn sieve_eligible(&self) -> bool {
        matches!(self.plan, ShadowPlan::Skip { .. })
    }

    /// Special bytes the pattern seeks (candidate sieve bytes).
    pub fn special_bytes(&self) -> &[u8] {
        &self.special_bytes
    }

    /// The pattern's literal prefix (memchr-style prefilter seed).
    pub fn literal_prefix(&self) -> &[u8] {
        &self.literal_prefix
    }

    /// Runs the shadow pass with the pre-built handle. Behaviourally
    /// identical to `regexp_shadow` on a freshly compiled regex — the win
    /// is that no compile or AST walk happened on the request path.
    pub fn shadow(&self, content: &[u8], hv: &HintVector) -> ShadowOutcome {
        regexp_shadow(&self.regex, content, hv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sieve::{regexp_sieve, ShadowMode};
    use accel_string::StringAccel;

    #[test]
    fn plans_match_sieve_eligibility() {
        let bounded = PrebuiltPattern::compile("'s").unwrap();
        assert_eq!(bounded.plan(), ShadowPlan::Skip { lookback: 1 });
        assert!(bounded.sieve_eligible());

        let unbounded_special = PrebuiltPattern::compile("<[a-z]+>").unwrap();
        assert_eq!(unbounded_special.plan(), ShadowPlan::Skip { lookback: 0 });

        let regular = PrebuiltPattern::compile("[a-z]+ing").unwrap();
        assert_eq!(regular.plan(), ShadowPlan::FullScan);
        assert!(!regular.sieve_eligible());

        let anchored = PrebuiltPattern::compile("^The").unwrap();
        assert_eq!(anchored.plan(), ShadowPlan::Anchored);
    }

    #[test]
    fn derived_facts_are_recorded() {
        let p = PrebuiltPattern::compile("<em>[a-z]+").unwrap();
        assert!(p.special_bytes().contains(&b'<'));
        assert_eq!(p.literal_prefix(), b"<em>");
    }

    #[test]
    fn prebuilt_shadow_agrees_with_fresh_compile() {
        let mut content = vec![b'x'; 512];
        content[100] = b'\'';
        content[300] = b'\'';
        let sieve_re = Regex::new("'").unwrap();
        let mut accel = StringAccel::default();
        let sieve = regexp_sieve(&sieve_re, &content, 32, &mut accel);

        let pre = PrebuiltPattern::compile("' ").unwrap();
        let out = pre.shadow(&content, &sieve.hv);
        let fresh = regexp_shadow(&Regex::new("' ").unwrap(), &content, &sieve.hv);
        assert_eq!(out.matches, fresh.matches);
        assert!(matches!(out.mode, ShadowMode::Skipping { .. }));
    }
}
