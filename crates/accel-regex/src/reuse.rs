//! Content reuse table (§4.5, Figure 13; `regexlookup`/`regexset`, §4.6).
//!
//! "The reuse table is indexed by a regexp PC value, and address space
//! identifier (ASID). Each entry in the table has three fields — the first
//! stores the matching content seen last time when the regexp was executed,
//! the second captures the content size, and the third captures the state in
//! the FSM table that the regexp can advance to if the incoming content
//! finds a match with the first field."

use regex_engine::{DfaStateId, Regex};

/// Maximum stored content prefix ("The 'Content' field in the reuse table is
/// limited to a maximum of 32 bytes for efficiency reasons").
pub const MAX_CONTENT_BYTES: usize = 32;

/// One reuse-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ReuseEntry {
    pc: u64,
    asid: u32,
    content: Vec<u8>, // ≤ MAX_CONTENT_BYTES
    size: usize,      // matched size recorded last time (0 = cleared)
    next_state: Option<DfaStateId>,
    last_access: u64,
}

/// Result of a `regexlookup`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// PC, ASID, and content match: "the software can automatically jump to
    /// the FSM state located in the hardware table".
    Hit {
        /// Bytes of the subject that can be skipped.
        skip: usize,
        /// FSM state to resume from.
        state: DfaStateId,
    },
    /// Invalid-miss (PC/ASID miss or first byte differs): new content was
    /// installed, size and FSM fields cleared; software traverses normally.
    InvalidMiss,
    /// PC+ASID hit with a different non-zero matching size: content/size
    /// updated, software traverses and should store the state via
    /// [`ContentReuseTable::regexset`].
    Training {
        /// The new common-prefix length recorded.
        match_len: usize,
    },
}

/// Statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Lookups.
    pub lookups: u64,
    /// Full hits (prefix skipped).
    pub hits: u64,
    /// Invalid misses (entry (re)installed).
    pub invalid_misses: u64,
    /// Training accesses (size recorded, awaiting regexset).
    pub trainings: u64,
    /// regexset writes.
    pub sets: u64,
    /// Bytes skipped across all hits.
    pub bytes_skipped: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
    /// Entries corrupted by the fault-injection hook.
    pub faults_injected: u64,
    /// Corrupt entries caught by the parity check on lookup.
    pub faults_detected: u64,
}

/// The 32-entry content reuse table.
#[derive(Debug)]
pub struct ContentReuseTable {
    entries: Vec<Option<ReuseEntry>>,
    clock: u64,
    stats: ReuseStats,
    /// Slots whose stored state no longer passes parity (injected faults);
    /// caught on the slot's next lookup.
    corrupt: Vec<bool>,
}

impl Default for ContentReuseTable {
    fn default() -> Self {
        Self::new(32)
    }
}

impl ContentReuseTable {
    /// Builds a table with `capacity` entries (paper: 32).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        ContentReuseTable {
            entries: vec![None; capacity],
            clock: 0,
            stats: ReuseStats::default(),
            corrupt: vec![false; capacity],
        }
    }

    /// Statistics.
    pub fn stats(&self) -> &ReuseStats {
        &self.stats
    }

    /// Resets statistics counters (entries stay resident).
    pub fn reset_stats(&mut self) {
        self.stats = ReuseStats::default();
    }

    /// Live entry count.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    fn find(&mut self, pc: u64, asid: u32) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.as_ref().is_some_and(|e| e.pc == pc && e.asid == asid))
    }

    fn victim_slot(&self) -> usize {
        // First empty, else LRU.
        if let Some(i) = self.entries.iter().position(Option::is_none) {
            return i;
        }
        self.entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.as_ref().map(|e| e.last_access).unwrap_or(0))
            .map(|(i, _)| i)
            .expect("nonempty table")
    }

    /// `regexlookup pc, asid, content` — the three-scenario protocol of §4.5.
    pub fn regexlookup(&mut self, pc: u64, asid: u32, content: &[u8]) -> LookupOutcome {
        self.clock += 1;
        self.stats.lookups += 1;
        let now = self.clock;
        if let Some(i) = self.find(pc, asid) {
            if self.corrupt[i] {
                // Parity mismatch: drop the entry; the reinstall below is an
                // invalid-miss, so software traverses the content normally.
                self.corrupt[i] = false;
                self.entries[i] = None;
                self.stats.faults_detected += 1;
            }
        }
        match self.find(pc, asid) {
            None => {
                // PC/ASID miss → invalid-miss: install.
                let slot = self.victim_slot();
                if self.entries[slot].is_some() {
                    self.stats.evictions += 1;
                }
                self.corrupt[slot] = false;
                self.entries[slot] = Some(ReuseEntry {
                    pc,
                    asid,
                    content: content.iter().copied().take(MAX_CONTENT_BYTES).collect(),
                    size: 0,
                    next_state: None,
                    last_access: now,
                });
                self.stats.invalid_misses += 1;
                LookupOutcome::InvalidMiss
            }
            Some(i) => {
                let e = self.entries[i].as_mut().expect("found");
                e.last_access = now;
                let match_len = common_prefix_len(&e.content, content);
                if match_len == 0 || content.first() != e.content.first() {
                    // First byte differs → invalid-miss: overwrite in place.
                    e.content = content.iter().copied().take(MAX_CONTENT_BYTES).collect();
                    e.size = 0;
                    e.next_state = None;
                    self.stats.invalid_misses += 1;
                    return LookupOutcome::InvalidMiss;
                }
                if e.size > 0 && match_len == e.size {
                    if let Some(state) = e.next_state {
                        self.stats.hits += 1;
                        self.stats.bytes_skipped += match_len as u64;
                        return LookupOutcome::Hit {
                            skip: match_len,
                            state,
                        };
                    }
                }
                // Non-zero match of a different size (or size/state cleared):
                // record and train.
                e.content = content.iter().copied().take(MAX_CONTENT_BYTES).collect();
                e.size = match_len;
                e.next_state = None;
                self.stats.trainings += 1;
                LookupOutcome::Training { match_len }
            }
        }
    }

    /// `regexset pc, asid, state` — the software handler stores the FSM
    /// state it reached after traversing the recorded prefix.
    pub fn regexset(&mut self, pc: u64, asid: u32, state: DfaStateId) {
        self.stats.sets += 1;
        if let Some(i) = self.find(pc, asid) {
            if let Some(e) = self.entries[i].as_mut() {
                e.next_state = Some(state);
            }
        }
    }

    /// Flushes all entries for `asid` (process teardown).
    pub fn flush_asid(&mut self, asid: u32) {
        for (i, e) in self.entries.iter_mut().enumerate() {
            if e.as_ref().is_some_and(|e| e.asid == asid) {
                *e = None;
                self.corrupt[i] = false;
            }
        }
    }

    /// Fault-injection hook: corrupts the `nth` occupied slot. The parity
    /// check catches it on that slot's next lookup, which then behaves as an
    /// invalid-miss (software traverses normally). Returns `false` when the
    /// table is empty.
    pub fn inject_entry_fault(&mut self, nth: usize) -> bool {
        let occupied: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_some())
            .map(|(i, _)| i)
            .collect();
        if occupied.is_empty() {
            return false;
        }
        self.corrupt[occupied[nth % occupied.len()]] = true;
        self.stats.faults_injected += 1;
        true
    }

    /// Full reset (the sandbox recovery path): drops every entry and any
    /// latent corruption. Statistics stay.
    pub fn clear(&mut self) {
        for e in self.entries.iter_mut() {
            *e = None;
        }
        for c in self.corrupt.iter_mut() {
            *c = false;
        }
    }
}

fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// Outcome of running a regexp through the reuse table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseRun {
    /// End offset of the match, if the subject matched (whole-subject run).
    pub match_end: Option<usize>,
    /// Bytes skipped thanks to a reuse hit.
    pub bytes_skipped: u64,
    /// Bytes the FSM actually stepped through.
    pub bytes_scanned: u64,
}

/// Runs an *anchored* regexp over `content` with reuse-table support: on a
/// hit the FSM resumes from the stored state past the common prefix; on a
/// training access the handler traverses fully and stores the reached state
/// with `regexset`. Results are always identical to a cold run.
pub fn run_with_reuse(
    re: &Regex,
    pc: u64,
    asid: u32,
    content: &[u8],
    table: &mut ContentReuseTable,
) -> ReuseRun {
    match table.regexlookup(pc, asid, content) {
        LookupOutcome::Hit { skip, state } => {
            let out = re.fsm_run_from(state, &content[skip..], true);
            ReuseRun {
                match_end: out.last_match_end.map(|e| e + skip),
                bytes_skipped: skip as u64,
                bytes_scanned: out.bytes_consumed as u64,
            }
        }
        LookupOutcome::InvalidMiss => {
            let (m, scanned) = re.match_at(content, 0);
            ReuseRun {
                match_end: m.map(|m| m.end),
                bytes_skipped: 0,
                bytes_scanned: scanned,
            }
        }
        LookupOutcome::Training { match_len } => {
            let (m, scanned) = re.match_at(content, 0);
            // Store the FSM state reached after the recorded prefix, if the
            // FSM survives it.
            if let Some(state) = re.fsm_state_after(&content[..match_len]) {
                table.regexset(pc, asid, state);
            }
            ReuseRun {
                match_end: m.map(|m| m.end),
                bytes_skipped: 0,
                bytes_scanned: scanned,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Send-audit: per-core accelerator state must be movable into a worker
    /// thread (it stays worker-private, so `Sync` is not required).
    #[test]
    fn content_reuse_table_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ContentReuseTable>();
    }

    #[test]
    fn figure13_author_url_scenario() {
        // Figure 13: scanning two author URLs where only the name changes;
        // the second scan skips the common 26-byte prefix.
        let re = Regex::new("https://localhost/\\?author=[a-z]+").unwrap();
        let mut table = ContentReuseTable::default();
        let url_abc = b"https://localhost/?author=abc";
        let url_xyz = b"https://localhost/?author=xyz";

        // 1st access: invalid-miss (table empty).
        let r1 = run_with_reuse(&re, 0x401000, 7, url_abc, &mut table);
        assert_eq!(r1.match_end, Some(29));
        assert_eq!(r1.bytes_skipped, 0);

        // 2nd access with different name: training (prefix match size 26).
        let r2 = run_with_reuse(&re, 0x401000, 7, url_xyz, &mut table);
        assert_eq!(r2.match_end, Some(29));
        assert_eq!(r2.bytes_skipped, 0);
        assert_eq!(table.stats().trainings, 1);
        assert_eq!(table.stats().sets, 1);

        // 3rd access with yet another name: HIT, skips the 26-byte prefix.
        let url_def = b"https://localhost/?author=def";
        let r3 = run_with_reuse(&re, 0x401000, 7, url_def, &mut table);
        assert_eq!(
            r3.match_end,
            Some(29),
            "resumed run must agree with cold run"
        );
        assert_eq!(r3.bytes_skipped, 26);
        assert_eq!(table.stats().hits, 1);
    }

    #[test]
    fn first_byte_mismatch_is_invalid_miss() {
        let re = Regex::new("[a-z]+").unwrap();
        let mut t = ContentReuseTable::default();
        let _ = run_with_reuse(&re, 1, 1, b"aaaa", &mut t);
        let _ = run_with_reuse(&re, 1, 1, b"aabb", &mut t); // training
        let out = t.regexlookup(1, 1, b"zzzz"); // first byte differs
        assert_eq!(out, LookupOutcome::InvalidMiss);
        assert_eq!(t.stats().invalid_misses, 2);
    }

    #[test]
    fn distinct_pcs_and_asids_are_separate() {
        let mut t = ContentReuseTable::default();
        assert_eq!(t.regexlookup(1, 1, b"abc"), LookupOutcome::InvalidMiss);
        assert_eq!(t.regexlookup(2, 1, b"abc"), LookupOutcome::InvalidMiss);
        assert_eq!(t.regexlookup(1, 2, b"abc"), LookupOutcome::InvalidMiss);
        assert_eq!(t.occupancy(), 3);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut t = ContentReuseTable::new(2);
        let _ = t.regexlookup(1, 0, b"a");
        let _ = t.regexlookup(2, 0, b"b");
        let _ = t.regexlookup(1, 0, b"a"); // touch 1 → 2 becomes LRU
        let _ = t.regexlookup(3, 0, b"c");
        assert_eq!(t.stats().evictions, 1);
        // PC 2 was evicted; PC 1 must still be resident (no new install).
        let misses_before = t.stats().invalid_misses;
        let _ = t.regexlookup(1, 0, b"a");
        assert_eq!(
            t.stats().invalid_misses,
            misses_before,
            "pc 1 still resident"
        );
    }

    #[test]
    fn content_field_capped_at_32_bytes() {
        let re = Regex::new("[a-z/:.?=]+").unwrap();
        let mut t = ContentReuseTable::default();
        let long_a = b"https://example.com/very/long/path/aaaa";
        let long_b = b"https://example.com/very/long/path/bbbb";
        let _ = run_with_reuse(&re, 9, 0, long_a, &mut t);
        let _ = run_with_reuse(&re, 9, 0, long_b, &mut t); // training: prefix capped at 32
        let long_c = b"https://example.com/very/long/path/cccc";
        let r = run_with_reuse(&re, 9, 0, long_c, &mut t);
        assert_eq!(
            r.bytes_skipped, 32,
            "skip capped at the 32-byte content field"
        );
        assert_eq!(r.match_end, Some(long_c.len()));
    }

    #[test]
    fn reuse_works_even_with_special_chars() {
        // §4.5: "with content reuse the regexps can skip processing content
        // even in the presence of special characters which content sifting
        // technique can not."
        let re = Regex::new("<a href=\"/\\?author=[a-z]+\">").unwrap();
        let mut t = ContentReuseTable::default();
        let a = b"<a href=\"/?author=ann\">";
        let b = b"<a href=\"/?author=bob\">";
        let c = b"<a href=\"/?author=cat\">";
        let _ = run_with_reuse(&re, 5, 0, a, &mut t);
        let _ = run_with_reuse(&re, 5, 0, b, &mut t);
        let r = run_with_reuse(&re, 5, 0, c, &mut t);
        assert!(r.bytes_skipped > 0);
        assert_eq!(r.match_end, Some(c.len()));
    }

    #[test]
    fn corrupt_entry_detected_and_results_stay_correct() {
        let re = Regex::new("https://localhost/\\?author=[a-z]+").unwrap();
        let mut t = ContentReuseTable::default();
        let a = b"https://localhost/?author=abc";
        let b = b"https://localhost/?author=xyz";
        let c = b"https://localhost/?author=def";
        let _ = run_with_reuse(&re, 1, 0, a, &mut t);
        let _ = run_with_reuse(&re, 1, 0, b, &mut t); // trained
        assert!(t.inject_entry_fault(0));
        // Instead of a (corrupt) hit, the lookup detects the fault and the
        // run degrades to a full traversal with an identical result.
        let r = run_with_reuse(&re, 1, 0, c, &mut t);
        assert_eq!(r.match_end, Some(c.len()));
        assert_eq!(r.bytes_skipped, 0, "no skip through a corrupt entry");
        assert_eq!(t.stats().faults_detected, 1);
        // The table re-trains and hits again afterwards.
        let _ = run_with_reuse(&re, 1, 0, a, &mut t);
        let r2 = run_with_reuse(&re, 1, 0, b, &mut t);
        assert_eq!(r2.match_end, Some(b.len()));
        assert!(r2.bytes_skipped > 0, "recovered to hitting");
    }

    #[test]
    fn clear_drops_entries_and_corruption() {
        let mut t = ContentReuseTable::default();
        let _ = t.regexlookup(1, 0, b"abc");
        t.inject_entry_fault(0);
        t.clear();
        assert_eq!(t.occupancy(), 0);
        let _ = t.regexlookup(1, 0, b"abc");
        assert_eq!(t.stats().faults_detected, 0);
    }

    #[test]
    fn inject_on_empty_table_reports_nothing() {
        let mut t = ContentReuseTable::default();
        assert!(!t.inject_entry_fault(0));
        assert_eq!(t.stats().faults_injected, 0);
    }

    #[test]
    fn flush_asid_clears_process_entries() {
        let mut t = ContentReuseTable::default();
        let _ = t.regexlookup(1, 7, b"x");
        let _ = t.regexlookup(2, 8, b"y");
        t.flush_asid(7);
        assert_eq!(t.occupancy(), 1);
    }
}
