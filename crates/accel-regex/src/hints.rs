//! Hint vectors (HVs).
//!
//! §4.5: the sieve regexp "outputs a bit vector indicating segments (of some
//! granularity) in the incoming content that may have some special
//! characters. We name these bit vectors as hint vectors. [...] The X86
//! ISA's count leading zeros instruction is used to find the next segment in
//! the HV that requires regexp processing."

/// Default segment granularity in bytes.
pub const DEFAULT_SEGMENT_SIZE: usize = 32;

/// A packed per-segment bit vector: bit set ⇔ the segment may contain
/// special characters and must be scanned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HintVector {
    words: Vec<u64>,
    segments: usize,
    segment_size: usize,
    /// Whether the stored words still match their parity bits. Hardware
    /// writes keep parity in sync; an injected bit flip clears it, and
    /// consumers must then fall back to a conservative all-dirty vector.
    parity_ok: bool,
}

impl HintVector {
    /// Builds an HV from per-segment dirty flags.
    pub fn from_flags(flags: &[bool], segment_size: usize) -> Self {
        assert!(segment_size > 0);
        let mut words = vec![0u64; flags.len().div_ceil(64)];
        for (i, &dirty) in flags.iter().enumerate() {
            if dirty {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        HintVector {
            words,
            segments: flags.len(),
            segment_size,
            parity_ok: true,
        }
    }

    /// An all-dirty HV (conservative fallback).
    pub fn all_dirty(segments: usize, segment_size: usize) -> Self {
        Self::from_flags(&vec![true; segments], segment_size)
    }

    /// Number of segments covered.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Segment granularity in bytes.
    pub fn segment_size(&self) -> usize {
        self.segment_size
    }

    /// Whether segment `i` must be scanned.
    pub fn is_dirty(&self, i: usize) -> bool {
        assert!(i < self.segments, "segment out of range");
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Count of dirty segments.
    pub fn dirty_count(&self) -> usize {
        let full: u32 = self.words.iter().map(|w| w.count_ones()).sum();
        full as usize
    }

    /// Fraction of segments that are clean (skippable), in \[0, 1\].
    pub fn clean_fraction(&self) -> f64 {
        if self.segments == 0 {
            return 0.0;
        }
        1.0 - self.dirty_count() as f64 / self.segments as f64
    }

    /// Next dirty segment at or after `from` — the CLZ/CTZ hardware loop.
    pub fn next_dirty(&self, from: usize) -> Option<usize> {
        if from >= self.segments {
            return None;
        }
        let mut w = from / 64;
        let mut word = self.words[w] & (!0u64).checked_shl((from % 64) as u32).unwrap_or(0);
        loop {
            if word != 0 {
                let seg = w * 64 + word.trailing_zeros() as usize;
                return (seg < self.segments).then_some(seg);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = self.words[w];
        }
    }

    /// Iterates maximal runs of consecutive dirty segments as
    /// `(first, last_inclusive)`.
    pub fn dirty_runs(&self) -> Vec<(usize, usize)> {
        let mut runs = Vec::new();
        let mut i = 0;
        while let Some(start) = self.next_dirty(i) {
            let mut end = start;
            while end + 1 < self.segments && self.is_dirty(end + 1) {
                end += 1;
            }
            runs.push((start, end));
            i = end + 1;
        }
        runs
    }

    /// Byte range `[start, end)` of segment `i` in a subject of `len` bytes.
    pub fn segment_bytes(&self, i: usize, len: usize) -> (usize, usize) {
        let start = i * self.segment_size;
        (start.min(len), ((i + 1) * self.segment_size).min(len))
    }

    /// Splices `count` segments (all `dirty` or all clean) in *before*
    /// segment `at` — used after a padded insertion shifted later content by
    /// whole segments (§4.5 whitespace padding).
    pub fn splice(&mut self, at: usize, count: usize, dirty: bool) {
        assert!(at <= self.segments, "splice past end");
        let mut flags: Vec<bool> = (0..self.segments).map(|i| self.is_dirty(i)).collect();
        for k in 0..count {
            flags.insert(at + k, dirty);
        }
        *self = Self::from_flags(&flags, self.segment_size);
    }

    /// Marks segment `i` dirty (content edits inside a segment).
    pub fn mark_dirty(&mut self, i: usize) {
        assert!(i < self.segments);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Fault-injection hook: flips the dirty bit of segment `i` without
    /// updating parity. A dirty→clean flip would silently skip a segment, so
    /// consumers must check [`HintVector::parity_ok`] and degrade to
    /// [`HintVector::all_dirty`] when it fails.
    pub fn inject_bit_flip(&mut self, i: usize) {
        let i = if self.segments == 0 {
            return;
        } else {
            i % self.segments
        };
        self.words[i / 64] ^= 1 << (i % 64);
        self.parity_ok = false;
    }

    /// Whether the vector's parity check still passes.
    pub fn parity_ok(&self) -> bool {
        self.parity_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hv(flags: &[bool]) -> HintVector {
        HintVector::from_flags(flags, 32)
    }

    #[test]
    fn flags_roundtrip() {
        let v = hv(&[true, false, true, false, false]);
        assert_eq!(v.segments(), 5);
        assert!(v.is_dirty(0));
        assert!(!v.is_dirty(1));
        assert!(v.is_dirty(2));
        assert_eq!(v.dirty_count(), 2);
        assert!((v.clean_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn next_dirty_scans_forward() {
        let v = hv(&[false, false, true, false, true]);
        assert_eq!(v.next_dirty(0), Some(2));
        assert_eq!(v.next_dirty(2), Some(2));
        assert_eq!(v.next_dirty(3), Some(4));
        assert_eq!(v.next_dirty(5), None);
    }

    #[test]
    fn next_dirty_across_word_boundary() {
        let mut flags = vec![false; 130];
        flags[127] = true;
        flags[129] = true;
        let v = hv(&flags);
        assert_eq!(v.next_dirty(0), Some(127));
        assert_eq!(v.next_dirty(128), Some(129));
    }

    #[test]
    fn dirty_runs_merge_consecutive() {
        let v = hv(&[true, true, false, true, false, true, true, true]);
        assert_eq!(v.dirty_runs(), vec![(0, 1), (3, 3), (5, 7)]);
        assert_eq!(hv(&[false; 4]).dirty_runs(), vec![]);
    }

    #[test]
    fn segment_bytes_clamped_to_len() {
        let v = hv(&[true, true, true]);
        assert_eq!(v.segment_bytes(0, 80), (0, 32));
        assert_eq!(v.segment_bytes(2, 80), (64, 80));
    }

    #[test]
    fn splice_inserts_segments() {
        let mut v = hv(&[true, false, true]);
        v.splice(1, 2, true);
        assert_eq!(v.segments(), 5);
        let flags: Vec<bool> = (0..5).map(|i| v.is_dirty(i)).collect();
        assert_eq!(flags, [true, true, true, false, true]);
    }

    #[test]
    fn bit_flip_breaks_parity() {
        let mut v = hv(&[true, false, true]);
        assert!(v.parity_ok());
        v.inject_bit_flip(0);
        assert!(!v.parity_ok());
        assert!(!v.is_dirty(0), "bit actually flipped");
        // The conservative replacement scans everything.
        let repaired = HintVector::all_dirty(v.segments(), v.segment_size());
        assert!(repaired.parity_ok());
        assert_eq!(repaired.clean_fraction(), 0.0);
    }

    #[test]
    fn all_dirty_skips_nothing() {
        let v = HintVector::all_dirty(10, 16);
        assert_eq!(v.clean_fraction(), 0.0);
        assert_eq!(v.dirty_runs(), vec![(0, 9)]);
    }
}
