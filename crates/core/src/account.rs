//! End-to-end cycle and energy accounting (§5.2, Figures 14/15).
//!
//! Three machine points are compared, exactly as the paper plots them:
//!
//! 1. **Baseline** — unmodified HHVM-like software (normalized to 1.0);
//! 2. **+Priors** — the §3 prior optimizations applied to the baseline
//!    profile (paper: 88.15 % average);
//! 3. **+Specialized** — the accelerators on top of the priors (paper:
//!    70.22 % average).

use crate::priors::{self, PriorsOutcome};
use crate::specialized::PhpMachine;
use php_runtime::profile::Category;
use std::collections::HashMap;
use uarch_sim::energy::{AccelActivity, EnergyModel};

/// A finished run's cost ledger.
#[derive(Debug, Clone)]
pub struct Ledger {
    /// Leaf-function rows (hottest first).
    pub rows: Vec<php_runtime::profile::ProfileRow>,
    /// Total µops.
    pub total_uops: u64,
    /// Accelerator cycles consumed (0 for baseline runs).
    pub accel_cycles: u64,
    /// Accelerator activity counters for the energy model.
    pub activity: AccelActivity,
}

impl Ledger {
    /// Snapshots a machine after its workload ran.
    pub fn from_machine(m: &PhpMachine) -> Ledger {
        let rows = m.ctx().profiler().leaf_profile();
        let total_uops = m.ctx().profiler().total_uops();
        let core = m.core();
        let ht = core.htable.stats();
        let heap = core.heap.stats();
        let s = core.straccel.stats();
        let reuse = core.reuse.stats();
        Ledger {
            rows,
            total_uops,
            accel_cycles: core.accel_cycles(),
            activity: AccelActivity {
                htable_accesses: ht.gets + ht.sets + ht.fills,
                rtt_accesses: ht.set_inserts + ht.frees + ht.foreachs,
                heap_accesses: heap.malloc_hits + heap.free_hits,
                string_blocks: s.blocks,
                reuse_accesses: reuse.lookups + reuse.sets,
            },
        }
    }

    /// µops per category.
    pub fn by_category(&self) -> HashMap<Category, u64> {
        let mut out = HashMap::new();
        for r in &self.rows {
            *out.entry(r.category).or_insert(0) += r.uops;
        }
        out
    }
}

/// Simulated cycles of a ledger at the given sustained IPC: core µops
/// convert through IPC; accelerator cycles add serially (they sit on the
/// dependence path of the invoking instruction).
pub fn cycles_of(uops: u64, accel_cycles: u64, ipc: f64) -> f64 {
    uops as f64 / ipc + accel_cycles as f64
}

/// The Figure-14 comparison for one application.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Application label.
    pub app: String,
    /// Baseline cycles (normalized denominator).
    pub baseline_cycles: f64,
    /// Cycles after the prior optimizations.
    pub priors_cycles: f64,
    /// Cycles on the specialized core (priors + accelerators).
    pub specialized_cycles: f64,
    /// Per-category cycles under priors (Figure 5 input).
    pub priors_by_category: HashMap<Category, f64>,
    /// Per-category cycles under specialization (Figure 15 input).
    pub specialized_by_category: HashMap<Category, f64>,
    /// Accelerator cycles in the specialized run.
    pub accel_cycles: u64,
    /// Energy saving vs the priors machine (§5.2 proxy).
    pub energy_saving: f64,
    /// The priors application detail (Figure 3 input).
    pub priors_outcome: PriorsOutcome,
}

impl Comparison {
    /// Normalized execution time of the priors machine (baseline = 1).
    pub fn normalized_priors(&self) -> f64 {
        self.priors_cycles / self.baseline_cycles
    }

    /// Normalized execution time of the specialized machine.
    pub fn normalized_specialized(&self) -> f64 {
        self.specialized_cycles / self.baseline_cycles
    }

    /// Improvement of the specialized machine over the priors machine
    /// (the paper's headline 17.93 % average).
    pub fn improvement_over_priors(&self) -> f64 {
        1.0 - self.specialized_cycles / self.priors_cycles
    }

    /// Figure-15 benefit split: per accelerator category, the cycle delta
    /// between the priors machine and the specialized machine, as a
    /// fraction of priors cycles.
    pub fn benefit_by_category(&self) -> HashMap<Category, f64> {
        let mut out = HashMap::new();
        for cat in [
            Category::HashMap,
            Category::Heap,
            Category::String,
            Category::Regex,
        ] {
            let before = self.priors_by_category.get(&cat).copied().unwrap_or(0.0);
            let after = self
                .specialized_by_category
                .get(&cat)
                .copied()
                .unwrap_or(0.0);
            out.insert(cat, (before - after).max(0.0) / self.priors_cycles);
        }
        out
    }
}

/// Builds the full comparison from a baseline run and a specialized run of
/// the *same* workload.
pub fn compare(
    app: &str,
    baseline: &PhpMachine,
    specialized: &PhpMachine,
    energy: &EnergyModel,
) -> Comparison {
    let cfg = baseline.config();
    let ipc = cfg.baseline_ipc;
    let base_ledger = Ledger::from_machine(baseline);
    let spec_ledger = Ledger::from_machine(specialized);

    // Priors applied analytically to both profiles (accelerators stack on
    // top of the prior optimizations, §5.2).
    let priors_base = priors::apply_to_rows(&base_ledger.rows, &cfg.priors);
    let priors_spec = priors::apply_to_rows(&spec_ledger.rows, &cfg.priors);

    let baseline_cycles = cycles_of(base_ledger.total_uops, 0, ipc);
    let priors_cycles = cycles_of(priors_base.uops_after, 0, ipc);
    let specialized_cycles = cycles_of(priors_spec.uops_after, spec_ledger.accel_cycles, ipc);

    let to_cycles = |m: HashMap<Category, u64>| -> HashMap<Category, f64> {
        m.into_iter().map(|(k, v)| (k, v as f64 / ipc)).collect()
    };
    let mut specialized_by_category = to_cycles(priors_spec.category_breakdown_after());
    // Attribute accelerator cycles to their categories.
    let core = specialized.core();
    *specialized_by_category
        .entry(Category::HashMap)
        .or_insert(0.0) += core.htable.stats().accel_cycles as f64;
    *specialized_by_category.entry(Category::Heap).or_insert(0.0) +=
        core.heap.stats().accel_cycles as f64;
    *specialized_by_category
        .entry(Category::String)
        .or_insert(0.0) += core.straccel.stats().cycles as f64;

    let energy_saving = energy.saving(
        priors_base.uops_after,
        priors_spec.uops_after,
        &spec_ledger.activity,
    );

    Comparison {
        app: app.to_owned(),
        baseline_cycles,
        priors_cycles,
        specialized_cycles,
        priors_by_category: to_cycles(priors_base.category_breakdown_after()),
        specialized_by_category,
        accel_cycles: spec_ledger.accel_cycles,
        energy_saving,
        priors_outcome: priors_base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specialized::{ExecMode, PhpMachine};
    use php_runtime::array::ArrayKey;
    use php_runtime::string::PhpStr;
    use php_runtime::value::PhpValue;

    /// A miniature workload exercising all four categories.
    fn run_mini_workload(m: &mut PhpMachine) {
        for req in 0..20 {
            let mut post = m.new_array();
            for k in 0..12 {
                m.array_set(
                    &mut post,
                    ArrayKey::from(format!("field{k}")),
                    PhpValue::from(req as i64),
                );
            }
            for _ in 0..4 {
                for k in 0..12 {
                    m.array_get(&post, &ArrayKey::from(format!("field{k}")));
                }
            }
            let text = PhpStr::from(
                "It's a post body with <em>markup</em> and then a long plain tail \
                 of regular words that continues for quite a while without specials",
            );
            let lowered = m.strtolower(&text);
            let _ = m.strpos(&lowered, b"markup", 0);
            let _ = m.htmlspecialchars(&text);
            for _ in 0..6 {
                let b = m.alloc(48);
                m.free(b);
            }
            let rules = vec![
                (regex_engine::Regex::new("'").unwrap(), b"&#8217;".to_vec()),
                (
                    regex_engine::Regex::new("<[a-z]+>").unwrap(),
                    b"<TAG>".to_vec(),
                ),
            ];
            let _ = m.texturize(&text, &rules);
            m.array_free(&post);
            m.end_request();
        }
    }

    #[test]
    fn figure14_shape_holds() {
        let mut base = PhpMachine::baseline();
        let mut spec = PhpMachine::specialized();
        run_mini_workload(&mut base);
        run_mini_workload(&mut spec);
        let cmp = compare("mini", &base, &spec, &EnergyModel::default());
        let np = cmp.normalized_priors();
        let ns = cmp.normalized_specialized();
        assert!(np < 1.0, "priors must help: {np}");
        assert!(ns < np, "accelerators must help further: {ns} vs {np}");
        assert!(ns > 0.1, "sanity: {ns}");
        assert!(cmp.improvement_over_priors() > 0.05);
        assert!(cmp.energy_saving > 0.0 && cmp.energy_saving < 1.0);
    }

    #[test]
    fn benefit_split_covers_accel_categories() {
        let mut base = PhpMachine::baseline();
        let mut spec = PhpMachine::specialized();
        run_mini_workload(&mut base);
        run_mini_workload(&mut spec);
        let cmp = compare("mini", &base, &spec, &EnergyModel::default());
        let split = cmp.benefit_by_category();
        assert_eq!(split.len(), 4);
        assert!(split[&Category::HashMap] > 0.0);
        assert!(split[&Category::Heap] > 0.0);
        let total: f64 = split.values().sum();
        let headline = cmp.improvement_over_priors();
        assert!(
            total <= headline + 0.15,
            "split {total} should roughly bound the headline {headline}"
        );
    }

    #[test]
    fn ledger_activity_populated() {
        let mut spec = PhpMachine::new(ExecMode::Specialized, Default::default());
        run_mini_workload(&mut spec);
        let ledger = Ledger::from_machine(&spec);
        assert!(ledger.activity.htable_accesses > 0);
        assert!(ledger.activity.heap_accesses > 0);
        assert!(ledger.activity.string_blocks > 0);
        assert!(ledger.accel_cycles > 0);
    }

    #[test]
    fn cycles_of_composition() {
        assert!((cycles_of(750, 0, 0.75) - 1000.0).abs() < 1e-9);
        assert!((cycles_of(750, 100, 0.75) - 1100.0).abs() < 1e-9);
    }
}
