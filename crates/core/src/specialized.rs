//! The specialized core (§4) and the `PhpMachine` execution facade.
//!
//! [`SpecializedCore`] owns the four accelerators and implements the
//! software-handler fallbacks. [`PhpMachine`] is what workloads program
//! against: the same workload code runs in [`ExecMode::Baseline`] (all
//! software, HHVM-like costs) or [`ExecMode::Specialized`] (accelerators
//! with zero-flag fallbacks), producing comparable cost ledgers.

use crate::config::MachineConfig;
use accel_heap::{FreeOutcome, HwHeapManager, MallocOutcome};
use accel_htable::{Eviction, GetOutcome, HwHashTable, KeyShapeHint, SetOutcome};
use accel_regex::{
    regexp_shadow, regexp_sieve, replace_padded, run_with_reuse, ContentReuseTable, HintVector,
    RegexAccelStats, ShadowMode,
};
use accel_string::StringAccel;
use php_runtime::array::{hash_bytes, ArrayKey, PhpArray};
use php_runtime::profile::{Category, OpCost};
use php_runtime::strfuncs::StrLib;
use php_runtime::string::PhpStr;
use php_runtime::value::PhpValue;
use php_runtime::{AccessStatic, RuntimeContext};
use regex_engine::Regex;

/// Execution mode of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Unmodified software stack (HHVM-like baseline).
    Baseline,
    /// The §4 specialized core: accelerators + software fallbacks.
    Specialized,
}

/// Identifies one of the four accelerator domains, for per-domain
/// enable masks, fault counters, and circuit breakers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccelId {
    /// §4.2 hardware hash table.
    Htable,
    /// §4.3 hardware heap manager.
    Heap,
    /// §4.4 string accelerator.
    Str,
    /// §4.5 regexp acceleration (content reuse table + hint vectors).
    Regex,
}

impl AccelId {
    /// All four domains, in counter-array order.
    pub const ALL: [AccelId; 4] = [AccelId::Htable, AccelId::Heap, AccelId::Str, AccelId::Regex];

    /// Index into `[_; 4]` counter arrays.
    pub fn index(self) -> usize {
        match self {
            AccelId::Htable => 0,
            AccelId::Heap => 1,
            AccelId::Str => 2,
            AccelId::Regex => 3,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            AccelId::Htable => "htable",
            AccelId::Heap => "heap",
            AccelId::Str => "string",
            AccelId::Regex => "regex",
        }
    }
}

/// µops to issue an accelerator instruction and consume its result.
const DISPATCH_UOPS: u64 = 2;
/// Software cost of writing one dirty hash-table entry back to its map.
const DIRTY_WRITEBACK_UOPS: u64 = 30;

/// The four accelerators plus bookkeeping.
#[derive(Debug)]
pub struct SpecializedCore {
    /// §4.2 hardware hash table.
    pub htable: HwHashTable,
    /// §4.3 hardware heap manager.
    pub heap: HwHeapManager,
    /// §4.4 string accelerator.
    pub straccel: StringAccel,
    /// §4.5 content reuse table.
    pub reuse: ContentReuseTable,
    /// Aggregate regexp accelerator statistics (Figure 12).
    pub regex_stats: RegexAccelStats,
    /// Context switches observed.
    pub context_switches: u64,
}

impl SpecializedCore {
    /// Builds the core from a configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        SpecializedCore {
            htable: HwHashTable::new(cfg.htable),
            heap: HwHeapManager::new(cfg.heap),
            straccel: StringAccel::new(cfg.straccel),
            reuse: ContentReuseTable::new(cfg.reuse_entries),
            regex_stats: RegexAccelStats::default(),
            context_switches: 0,
        }
    }

    /// Total accelerator cycles consumed so far.
    pub fn accel_cycles(&self) -> u64 {
        self.htable.stats().accel_cycles
            + self.heap.stats().accel_cycles
            + self.straccel.stats().cycles
    }

    /// Executes one accelerator instruction at the architectural level
    /// (§4.6): result register + zero flag. The zero flag set means the
    /// code must branch to the software handler fallback. Heap instructions
    /// need the software allocator and profiler for their handler paths.
    pub fn execute(
        &mut self,
        instr: &crate::isa::AccelInstr,
        alloc: &mut php_runtime::alloc::SlabAllocator,
        prof: &php_runtime::Profiler,
    ) -> crate::isa::InstrResult {
        use crate::isa::{AccelInstr, InstrResult};
        match instr {
            AccelInstr::HashTableGet { base, key } => match self.htable.get(*base, key) {
                GetOutcome::Hit { value_ptr } => InstrResult::ok(value_ptr, 3),
                GetOutcome::Miss | GetOutcome::Unsupported => InstrResult::fallback(3),
            },
            AccelInstr::HashTableSet {
                base,
                key,
                value_ptr,
            } => {
                match self.htable.set(*base, key, *value_ptr) {
                    SetOutcome::Updated => InstrResult::ok(0, 3),
                    SetOutcome::Inserted {
                        eviction: Eviction::DirtyWriteback { evicted },
                    } => {
                        // Overflow: zero flag — software writes the victim back.
                        InstrResult {
                            zero_flag: true,
                            result: evicted.value_ptr,
                            cycles: 3,
                        }
                    }
                    SetOutcome::Inserted { .. } => InstrResult::ok(0, 3),
                    SetOutcome::Unsupported => InstrResult::fallback(1),
                }
            }
            AccelInstr::HmMalloc { size } => match self.heap.hmmalloc(*size, alloc, prof) {
                MallocOutcome::Hit { addr } => InstrResult::ok(addr, 1),
                // Zero flag: the handler already supplied the block; the
                // result register still carries the address.
                MallocOutcome::SoftwareRefill { addr } => InstrResult {
                    zero_flag: true,
                    result: addr,
                    cycles: 1,
                },
                MallocOutcome::TooLarge => InstrResult::fallback(1),
            },
            AccelInstr::HmFree { addr, size } => {
                match self.heap.hmfree(*addr, *size, alloc, prof) {
                    FreeOutcome::Hit => InstrResult::ok(0, 1),
                    FreeOutcome::Spilled | FreeOutcome::TooLarge => InstrResult::fallback(1),
                }
            }
            AccelInstr::HmFlush => {
                let flushed = self.heap.hmflush(alloc, prof) as u64;
                InstrResult::ok(flushed, 1 + flushed)
            }
            AccelInstr::StringOp { .. } => {
                // Data-carrying string ops go through the typed engine API
                // (PhpMachine); at ISA level we only model the invocation.
                InstrResult::ok(0, self.straccel.config().cycles_per_block)
            }
            AccelInstr::StrReadConfig => {
                let cycles = self.straccel.strreadconfig();
                InstrResult::ok(0, cycles)
            }
            AccelInstr::StrWriteConfig => {
                let stored = self.straccel.strwriteconfig();
                InstrResult::ok(stored as u64, 1)
            }
            AccelInstr::RegexLookup { pc, asid } => {
                // Architectural probe: content comes from the pending scan
                // buffer; modeled here with an empty-content lookup, which
                // is a table access without a content hit.
                match self.reuse.regexlookup(*pc, *asid, &[]) {
                    accel_regex::LookupOutcome::Hit { state, .. } => {
                        InstrResult::ok(state as u64, 1)
                    }
                    _ => InstrResult::fallback(1),
                }
            }
            AccelInstr::RegexSet { pc, asid, state } => {
                self.reuse.regexset(*pc, *asid, *state);
                InstrResult::ok(0, 1)
            }
        }
    }
}

/// A heap block handed out by the machine (hardware- or software-served).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MBlock {
    /// Simulated address.
    pub addr: u64,
    /// Requested size.
    pub size: usize,
    hw: bool,
    sw_block: Option<php_runtime::alloc::Block>,
}

/// Encodes an [`ArrayKey`] as hardware key bytes (int keys get a 0xFF-tag
/// prefix so they cannot collide with string keys).
pub fn key_bytes(key: &ArrayKey) -> Vec<u8> {
    match key {
        ArrayKey::Int(i) => {
            let mut v = Vec::with_capacity(9);
            v.push(0xFF);
            v.extend_from_slice(&i.to_le_bytes());
            v
        }
        ArrayKey::Str(s) => s.as_bytes().to_vec(),
    }
}

fn value_token(base: u64, key: &[u8]) -> u64 {
    hash_bytes(key) ^ base.rotate_left(17)
}

/// Which execution engine drives PHP scripts on a machine. The machine
/// itself never interprets anything — this is a mode flag script runners
/// (the tree-walking `Interp`, the compiled opcode VM) consult, carried
/// here so serve/pool/soak handlers can switch engines per machine without
/// changing any handler plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Tree-walking evaluator (`php_interp::Interp`).
    #[default]
    TreeWalk,
    /// Compiled bytecode VM over a fact-specialized `CompiledUnit`.
    Vm,
}

/// The machine workloads run on.
#[derive(Debug)]
pub struct PhpMachine {
    ctx: RuntimeContext,
    core: SpecializedCore,
    cfg: MachineConfig,
    mode: ExecMode,
    engine: Engine,
    scoped: Vec<MBlock>,
    /// Per-domain enable mask — a tripped circuit breaker clears an entry,
    /// degrading that domain to its software path.
    accel_enabled: [bool; 4],
    /// HV bit flip armed for the next texturize sieve (fault injection).
    pending_hv_flip: Option<usize>,
}

impl PhpMachine {
    /// Creates a machine in the given mode.
    pub fn new(mode: ExecMode, cfg: MachineConfig) -> Self {
        PhpMachine {
            ctx: RuntimeContext::new(),
            core: SpecializedCore::new(&cfg),
            cfg,
            mode,
            engine: Engine::default(),
            scoped: Vec::new(),
            accel_enabled: [true; 4],
            pending_hv_flip: None,
        }
    }

    /// A baseline machine with default configuration.
    pub fn baseline() -> Self {
        Self::new(ExecMode::Baseline, MachineConfig::default())
    }

    /// A specialized machine with default configuration.
    pub fn specialized() -> Self {
        Self::new(ExecMode::Specialized, MachineConfig::default())
    }

    /// The runtime context (profiler, allocator, refcount meter).
    pub fn ctx(&self) -> &RuntimeContext {
        &self.ctx
    }

    /// The accelerator complex.
    pub fn core(&self) -> &SpecializedCore {
        &self.core
    }

    /// Mutable accelerator access (experiments).
    pub fn core_mut(&mut self) -> &mut SpecializedCore {
        &mut self.core
    }

    /// Execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The script engine this machine asks runners to use. Sticky across
    /// requests and request-boundary recovery — an engine choice is part of
    /// the machine's deployment configuration, not per-request state.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Selects the script engine for this machine.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    fn is_specialized(&self) -> bool {
        self.mode == ExecMode::Specialized
    }

    /// Whether accesses in domain `id` take the hardware path right now.
    fn use_accel(&self, id: AccelId) -> bool {
        self.is_specialized() && self.accel_enabled[id.index()]
    }

    /// Enables or disables one accelerator domain. Disabled domains run
    /// their software paths, which are byte-identical by construction
    /// (ground truth lives in the software structures).
    pub fn set_accel_enabled(&mut self, id: AccelId, on: bool) {
        self.accel_enabled[id.index()] = on;
    }

    /// Whether domain `id` is currently enabled.
    pub fn accel_enabled(&self, id: AccelId) -> bool {
        self.accel_enabled[id.index()]
    }

    /// String-accelerator gate: hardware path only when the domain is
    /// enabled AND the config registers pass their parity check. A detected
    /// config fault falls back to software for this op and self-heals.
    fn str_accel_ready(&mut self) -> bool {
        self.use_accel(AccelId::Str) && !self.core.straccel.config_fault_detected()
    }

    /// Arms a hint-vector bit flip to be injected into the next texturize
    /// sieve output (fault injection).
    pub fn arm_hv_flip(&mut self, bit: usize) {
        self.pending_hv_flip = Some(bit);
    }

    /// Detected faults per domain, in [`AccelId::index`] order.
    pub fn detected_fault_counts(&self) -> [u64; 4] {
        [
            self.core.htable.stats().faults_detected,
            self.core.heap.stats().faults_detected,
            self.core.straccel.stats().faults_detected,
            self.core.reuse.stats().faults_detected + self.core.regex_stats.hv_faults_detected,
        ]
    }

    /// Injected faults per domain, in [`AccelId::index`] order.
    pub fn injected_fault_counts(&self) -> [u64; 4] {
        [
            self.core.htable.stats().faults_injected,
            self.core.heap.stats().faults_injected,
            self.core.straccel.stats().faults_injected,
            self.core.reuse.stats().faults_injected + self.core.regex_stats.hv_faults_injected,
        ]
    }

    /// Restores machine invariants after an aborted request (panic, budget
    /// exhaustion, OOM): frees request-scoped blocks, drains the hardware
    /// free lists back to the software allocator (`hmflush`), invalidates
    /// the hardware hash table, and resets string/regexp engine state.
    /// Afterwards the software structures are exactly what a never-
    /// accelerated machine would hold.
    pub fn recover_request(&mut self) {
        // Scoped frees first so hardware-freed segments are on the free
        // lists when the flush drains them.
        self.end_request();
        if self.is_specialized() {
            self.ctx.with_allocator(|a| {
                let prof = self.ctx.profiler();
                self.core.heap.hmflush(a, prof);
            });
            self.core.htable.invalidate_all();
            self.core.straccel.reset_state();
            self.core.reuse.clear();
        }
        self.pending_hv_flip = None;
    }

    fn dispatch(&self, name: &'static str, cat: Category) {
        self.ctx
            .profiler()
            .record(name, cat, OpCost::alu(DISPATCH_UOPS));
    }

    /// Resets every metric (profiler, refcount/alloc counters are kept in
    /// the runtime context; accelerator *contents* stay warm) — called after
    /// load-generator warmup so measurements cover steady state only.
    pub fn reset_metrics(&mut self) {
        self.ctx.profiler().reset();
        self.core.htable.reset_stats();
        self.core.heap.reset_stats();
        self.core.straccel.reset_stats();
        self.core.reuse.reset_stats();
        self.core.regex_stats = RegexAccelStats::default();
    }

    /// Applies analysis-time pre-configuration ahead of the first request:
    /// pre-seeds the hardware heap free lists from statically known
    /// allocation sizes, and pre-loads the string-accelerator sift config
    /// when the analysis pre-compiled regexps (the hint-vector sieve will
    /// run). Called when analysis facts are attached; a no-op in baseline
    /// mode, for disabled domains, and on repeat attachment (the heap skips
    /// already-stocked classes, the sift config load is idempotent).
    pub fn apply_prebuilt(&mut self, alloc_sizes: &[usize], has_precompiled_regex: bool) {
        if self.use_accel(AccelId::Heap) && !alloc_sizes.is_empty() {
            let classes = self.ctx.with_allocator(|a| {
                let prof = self.ctx.profiler();
                self.core.heap.preseed(alloc_sizes, a, prof)
            });
            if classes > 0 {
                self.ctx.profiler().note_heap_classes_preseeded(classes);
            }
        }
        if self.use_accel(AccelId::Str) && has_precompiled_regex {
            self.core.straccel.preload_sift_config();
        }
    }

    // -- request lifecycle ----------------------------------------------------

    /// Ends a simulated request: frees request-scoped blocks.
    pub fn end_request(&mut self) {
        let blocks: Vec<MBlock> = std::mem::take(&mut self.scoped);
        for b in blocks {
            self.free(b);
        }
        self.ctx.end_request();
    }

    /// Simulates an OS context switch: `hmflush`, string-accelerator config
    /// save (the hash table is hardware-coherent and needs nothing, §4.6).
    pub fn context_switch(&mut self) {
        if self.is_specialized() {
            self.core.context_switches += 1;
            self.ctx.with_allocator(|a| {
                let prof = self.ctx.profiler();
                self.core.heap.hmflush(a, prof);
            });
            self.core.straccel.strwriteconfig();
            // On resume the config is reloaded.
            let cycles = self.core.straccel.strreadconfig();
            self.ctx.profiler().record(
                "strreadconfig",
                Category::String,
                OpCost::alu(DISPATCH_UOPS + cycles / 2),
            );
        }
    }

    // -- heap -----------------------------------------------------------------

    /// Allocates `size` bytes (hardware path when ≤128 B in specialized
    /// mode).
    pub fn alloc(&mut self, size: usize) -> MBlock {
        if self.use_accel(AccelId::Heap) {
            let prof = self.ctx.profiler();
            let out = self
                .ctx
                .with_allocator(|a| self.core.heap.hmmalloc(size, a, prof));
            match out {
                MallocOutcome::Hit { addr } => {
                    self.dispatch("hmmalloc", Category::Heap);
                    return MBlock {
                        addr,
                        size,
                        hw: true,
                        sw_block: None,
                    };
                }
                MallocOutcome::SoftwareRefill { addr } => {
                    // Cost already charged by the software handler.
                    self.dispatch("hmmalloc", Category::Heap);
                    return MBlock {
                        addr,
                        size,
                        hw: true,
                        sw_block: None,
                    };
                }
                MallocOutcome::TooLarge => {}
            }
        }
        let b = self.ctx.malloc(size);
        MBlock {
            addr: b.addr,
            size,
            hw: false,
            sw_block: Some(b),
        }
    }

    /// Frees a block.
    pub fn free(&mut self, block: MBlock) {
        if block.hw {
            let prof = self.ctx.profiler();
            let out = self
                .ctx
                .with_allocator(|a| self.core.heap.hmfree(block.addr, block.size, a, prof));
            debug_assert!(!matches!(out, FreeOutcome::TooLarge));
            self.dispatch("hmfree", Category::Heap);
        } else if let Some(sw) = block.sw_block {
            self.ctx.free(sw);
        }
    }

    /// Allocates a block that lives until [`PhpMachine::end_request`].
    pub fn alloc_scoped(&mut self, size: usize) -> u64 {
        let b = self.alloc(size);
        let addr = b.addr;
        self.scoped.push(b);
        addr
    }

    /// [`PhpMachine::alloc_scoped`] with a region-analysis verdict. An
    /// arena-safe site (and arena mode on) bump-allocates through the
    /// context's request arena — bypassing both the hardware heap manager
    /// and this machine's scoped free list — so the end-of-request epoch
    /// reset reclaims it in O(1). Everything else takes the normal path,
    /// keeping the hardware heap's live-count invariants untouched.
    pub fn alloc_scoped_static(&mut self, size: usize, arena_safe: bool) -> u64 {
        if arena_safe && self.ctx.arena_enabled() {
            return self.ctx.alloc_scoped_static(size, true).addr;
        }
        self.alloc_scoped(size)
    }

    /// Creates a transient string value: its backing allocation is taken and
    /// immediately recycled (the paper's HTML-tag churn pattern).
    pub fn transient_str(&mut self, s: impl Into<PhpStr>) -> PhpValue {
        let s: PhpStr = s.into();
        let b = self.alloc(s.heap_size());
        self.free(b);
        PhpValue::str(s)
    }

    /// [`PhpMachine::transient_str`] with a region-analysis verdict:
    /// arena-safe transient churn goes through the bump arena instead of
    /// the (hardware or free-list) malloc/free pair.
    pub fn transient_str_static(&mut self, s: impl Into<PhpStr>, arena_safe: bool) -> PhpValue {
        if arena_safe && self.ctx.arena_enabled() {
            return self.ctx.make_transient_str_static(s, true);
        }
        self.transient_str(s)
    }

    // -- hash maps -------------------------------------------------------------

    /// Creates an array registered with the heap.
    pub fn new_array(&mut self) -> PhpArray {
        self.new_array_static(false)
    }

    /// [`PhpMachine::new_array`] with a region-analysis verdict for the
    /// descriptor allocation.
    pub fn new_array_static(&mut self, arena_safe: bool) -> PhpArray {
        let mut a = PhpArray::new();
        let addr = self.alloc_scoped_static(64, arena_safe);
        a.set_base_addr(addr);
        a
    }

    /// Hash GET.
    pub fn array_get(&mut self, arr: &PhpArray, key: &ArrayKey) -> Option<PhpValue> {
        self.array_get_static(arr, key, AccessStatic::default(), KeyShapeHint::Unknown)
    }

    /// Hash GET with static-analysis facts: proven type checks and refcount
    /// increments are skipped (and counted as avoided); a constant-key hint
    /// lets the hardware table skip its hash stage. Returned values are
    /// identical to [`PhpMachine::array_get`].
    pub fn array_get_static(
        &mut self,
        arr: &PhpArray,
        key: &ArrayKey,
        facts: AccessStatic,
        hint: KeyShapeHint,
    ) -> Option<PhpValue> {
        if self.use_accel(AccelId::Htable) {
            let kb = key_bytes(key);
            match self.core.htable.get_hinted(arr.base_addr(), &kb, hint) {
                GetOutcome::Hit { .. } => {
                    self.dispatch("hashtableget", Category::HashMap);
                    let out = arr.get(key).cloned();
                    if let Some(v) = &out {
                        self.ctx.type_check_elidable(v, facts.skip_type_check);
                        self.ctx.refcount_on_copy_elidable(v, facts.elide_rc);
                    }
                    return out;
                }
                GetOutcome::Miss => {
                    // Zero flag: software walk, then fill the table.
                    let out = self.ctx.array_get_static(arr, key, facts);
                    if out.is_some() {
                        let ev = self.core.htable.fill(
                            arr.base_addr(),
                            &kb,
                            value_token(arr.base_addr(), &kb),
                        );
                        self.charge_eviction(ev);
                    }
                    return out;
                }
                GetOutcome::Unsupported => return self.ctx.array_get_static(arr, key, facts),
            }
        }
        self.ctx.array_get_static(arr, key, facts)
    }

    /// Hash SET.
    pub fn array_set(&mut self, arr: &mut PhpArray, key: ArrayKey, value: PhpValue) {
        self.array_set_static(
            arr,
            key,
            value,
            AccessStatic::default(),
            KeyShapeHint::Unknown,
        );
    }

    /// Hash SET with static-analysis facts (see
    /// [`PhpMachine::array_get_static`]).
    pub fn array_set_static(
        &mut self,
        arr: &mut PhpArray,
        key: ArrayKey,
        value: PhpValue,
        facts: AccessStatic,
        hint: KeyShapeHint,
    ) {
        if self.use_accel(AccelId::Htable) {
            let kb = key_bytes(&key);
            let base = arr.base_addr();
            self.ctx.refcount_on_copy_elidable(&value, facts.elide_rc);
            // Ground truth stays in the software map (write-back happens
            // lazily in hardware; the model keeps contents exact).
            let old = arr.insert(key, value);
            if let Some(old) = old {
                self.ctx.refcount_on_drop_elidable(&old, facts.elide_rc);
            }
            match self
                .core
                .htable
                .set_hinted(base, &kb, value_token(base, &kb), hint)
            {
                SetOutcome::Updated => self.dispatch("hashtableset", Category::HashMap),
                SetOutcome::Inserted { eviction } => {
                    self.dispatch("hashtableset", Category::HashMap);
                    self.charge_eviction(eviction);
                }
                SetOutcome::Unsupported => {
                    // Long key: the software walk cost applies after all.
                    self.ctx.profiler().record(
                        "zend_hash_update",
                        Category::HashMap,
                        OpCost::mixed(90),
                    );
                }
            }
            return;
        }
        self.ctx.array_set_static(arr, key, value, facts);
    }

    /// Appends with the next integer key (PHP `$a[] = v`), going through
    /// the same SET path as [`PhpMachine::array_set`].
    pub fn array_push(&mut self, arr: &mut PhpArray, value: PhpValue) -> ArrayKey {
        self.array_push_static(arr, value, AccessStatic::default(), false)
    }

    /// Append with static-analysis facts. When `hinted_append` is set the
    /// analysis proved this site only ever appends fresh integer keys, so
    /// the hardware SET skips its existence probe.
    pub fn array_push_static(
        &mut self,
        arr: &mut PhpArray,
        value: PhpValue,
        facts: AccessStatic,
        hinted_append: bool,
    ) -> ArrayKey {
        self.ctx.refcount_on_copy_elidable(&value, facts.elide_rc);
        let key = arr.push(value);
        if self.use_accel(AccelId::Htable) {
            let kb = key_bytes(&key);
            let base = arr.base_addr();
            let hint = if hinted_append {
                KeyShapeHint::IntAppend
            } else {
                KeyShapeHint::Unknown
            };
            match self
                .core
                .htable
                .set_hinted(base, &kb, value_token(base, &kb), hint)
            {
                SetOutcome::Inserted { eviction } => {
                    self.dispatch("hashtableset", Category::HashMap);
                    self.charge_eviction(eviction);
                }
                _ => self.dispatch("hashtableset", Category::HashMap),
            }
        } else {
            self.ctx.profiler().record(
                "zend_hash_next_insert",
                Category::HashMap,
                OpCost::mixed(55),
            );
        }
        key
    }

    fn charge_eviction(&self, ev: Eviction) {
        if let Eviction::DirtyWriteback { .. } = ev {
            self.ctx.profiler().record(
                "ht_dirty_writeback",
                Category::HashMap,
                OpCost::mixed(DIRTY_WRITEBACK_UOPS),
            );
        }
    }

    /// Hash unset (software path; the hardware entry is invalidated for
    /// coherence).
    pub fn array_remove(&mut self, arr: &mut PhpArray, key: &ArrayKey) -> Option<PhpValue> {
        if self.use_accel(AccelId::Htable) {
            let kb = key_bytes(key);
            self.core.htable.invalidate_key(arr.base_addr(), &kb);
        }
        self.ctx.array_remove(arr, key)
    }

    /// Whole-map free.
    pub fn array_free(&mut self, arr: &PhpArray) {
        if self.use_accel(AccelId::Htable) {
            self.core.htable.free(arr.base_addr());
            self.dispatch("hashtable_free", Category::HashMap);
            // Software still frees the map structure itself.
            self.ctx
                .profiler()
                .record("zend_hash_destroy", Category::HashMap, OpCost::mixed(16));
            return;
        }
        self.ctx.array_free(arr);
    }

    /// Ordered iteration (`foreach`): returns pairs in insertion order.
    pub fn foreach(&mut self, arr: &PhpArray) -> Vec<(ArrayKey, PhpValue)> {
        let pairs: Vec<(ArrayKey, PhpValue)> =
            arr.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        if self.use_accel(AccelId::Htable) {
            let out = self.core.htable.foreach(arr.base_addr());
            if out.order_lost || out.evicted_pairs > 0 || out.live_pairs.len() < pairs.len() {
                // Hardware can't replay the full order: software iterates.
                self.ctx.charge_foreach(arr);
            } else {
                self.dispatch("hashtable_foreach", Category::HashMap);
                self.ctx.profiler().record(
                    "hashtable_foreach",
                    Category::HashMap,
                    OpCost::alu(pairs.len() as u64 / 4),
                );
            }
        } else {
            self.ctx.charge_foreach(arr);
        }
        pairs
    }

    /// PHP `extract`: imports string-keyed pairs into a symbol-table array.
    pub fn extract(&mut self, symtab: &mut PhpArray, source: &PhpArray) -> usize {
        let pairs = self.foreach(source);
        let mut n = 0;
        for (k, v) in pairs {
            if matches!(k, ArrayKey::Str(_)) {
                self.array_set(symtab, k, v);
                n += 1;
            }
        }
        n
    }

    // -- strings ---------------------------------------------------------------

    fn strlib(&self) -> StrLib<'_> {
        self.ctx.strlib()
    }

    /// `strpos`.
    pub fn strpos(&mut self, haystack: &PhpStr, needle: &[u8], from: usize) -> Option<usize> {
        if self.str_accel_ready() {
            match self.core.straccel.find(haystack.as_bytes(), needle, from) {
                Ok((pos, _cost)) => {
                    self.dispatch("stringop_find", Category::String);
                    return pos;
                }
                Err(_) => self.core.straccel.note_fallback(),
            }
        }
        self.strlib().strpos(haystack, needle, from)
    }

    /// `strcmp`.
    pub fn strcmp(&mut self, a: &PhpStr, b: &PhpStr) -> std::cmp::Ordering {
        if self.str_accel_ready() {
            let (ord, _) = self.core.straccel.compare(a.as_bytes(), b.as_bytes());
            self.dispatch("stringop_compare", Category::String);
            return ord;
        }
        self.strlib().strcmp(a, b)
    }

    /// `strtolower`.
    pub fn strtolower(&mut self, s: &PhpStr) -> PhpStr {
        self.case_convert(s, false)
    }

    /// `strtoupper`.
    pub fn strtoupper(&mut self, s: &PhpStr) -> PhpStr {
        self.case_convert(s, true)
    }

    fn case_convert(&mut self, s: &PhpStr, upper: bool) -> PhpStr {
        if self.str_accel_ready() {
            let (out, _) = self.core.straccel.translate_case(s.as_bytes(), upper);
            self.dispatch("stringop_translate", Category::String);
            return PhpStr::from_bytes(out);
        }
        if upper {
            self.strlib().strtoupper(s)
        } else {
            self.strlib().strtolower(s)
        }
    }

    /// `trim` with the default whitespace set.
    pub fn trim(&mut self, s: &PhpStr) -> PhpStr {
        if self.str_accel_ready() {
            if let Ok(((start, end), _)) = self
                .core
                .straccel
                .trim_range(s.as_bytes(), StrLib::WHITESPACE)
            {
                self.dispatch("stringop_trim", Category::String);
                return PhpStr::from_bytes(s.as_bytes()[start..end].to_vec());
            }
            self.core.straccel.note_fallback();
        }
        self.strlib().trim(s, StrLib::WHITESPACE)
    }

    /// Single-byte `str_replace` (accelerated); multi-byte falls back.
    pub fn str_replace(
        &mut self,
        search: &[u8],
        replace: &[u8],
        subject: &PhpStr,
    ) -> (PhpStr, usize) {
        if search.len() == 1 && replace.len() == 1 && self.str_accel_ready() {
            let (out, n, _) =
                self.core
                    .straccel
                    .replace_byte(subject.as_bytes(), search[0], replace[0]);
            self.dispatch("stringop_replace", Category::String);
            return (PhpStr::from_bytes(out), n);
        }
        self.strlib().str_replace(search, replace, subject)
    }

    /// `htmlspecialchars`: the accelerator pre-scans for special bytes and
    /// clean strings pass through untouched; dirty strings pay software
    /// encoding from the first special byte on.
    pub fn htmlspecialchars(&mut self, s: &PhpStr) -> PhpStr {
        if self.str_accel_ready() {
            let (first, _) = self
                .core
                .straccel
                .find_byte_set(s.as_bytes(), b"&<>\"'", 0)
                .expect("5-byte set fits");
            self.dispatch("stringop_findset", Category::String);
            match first {
                None => return s.clone(),
                Some(pos) => {
                    let head = &s.as_bytes()[..pos];
                    let tail = PhpStr::from_bytes(s.as_bytes()[pos..].to_vec());
                    let encoded = self.strlib().htmlspecialchars(&tail);
                    let mut out = head.to_vec();
                    out.extend_from_slice(encoded.as_bytes());
                    return PhpStr::from_bytes(out);
                }
            }
        }
        self.strlib().htmlspecialchars(s)
    }

    /// `strip_tags`: the accelerator scans for `<`; tag-free strings pass
    /// through untouched, otherwise software strips from the first tag on.
    pub fn strip_tags(&mut self, s: &PhpStr) -> PhpStr {
        if self.str_accel_ready() {
            let (first, _) = self
                .core
                .straccel
                .find_byte_set(s.as_bytes(), b"<", 0)
                .expect("single-byte set fits");
            self.dispatch("stringop_findset", Category::String);
            match first {
                None => return s.clone(),
                Some(pos) => {
                    let tail = PhpStr::from_bytes(s.as_bytes()[pos..].to_vec());
                    let stripped = self.strlib().strip_tags(&tail);
                    let mut out = s.as_bytes()[..pos].to_vec();
                    out.extend_from_slice(stripped.as_bytes());
                    return PhpStr::from_bytes(out);
                }
            }
        }
        self.strlib().strip_tags(s)
    }

    /// `sprintf` (software; format interpretation doesn't map to the matrix).
    pub fn sprintf(&mut self, format: &PhpStr, args: &[PhpValue]) -> PhpStr {
        self.strlib().sprintf(format, args)
    }

    /// `implode` (software copy path).
    pub fn implode(&mut self, glue: &[u8], pieces: &[PhpStr]) -> PhpStr {
        self.strlib().implode(glue, pieces)
    }

    /// `explode` (software; separators found via the accelerated find when
    /// specialized).
    pub fn explode(&mut self, sep: &[u8], s: &PhpStr) -> Vec<PhpStr> {
        if !sep.is_empty() && sep.len() < 16 && self.str_accel_ready() {
            let mut parts = Vec::new();
            let mut pos = 0;
            let b = s.as_bytes();
            loop {
                match self.core.straccel.find(b, sep, pos) {
                    Ok((Some(at), _)) => {
                        parts.push(PhpStr::from_bytes(b[pos..at].to_vec()));
                        pos = at + sep.len();
                    }
                    _ => {
                        parts.push(PhpStr::from_bytes(b[pos..].to_vec()));
                        break;
                    }
                }
            }
            self.dispatch("stringop_find", Category::String);
            return parts;
        }
        self.strlib().explode(sep, s)
    }

    /// `nl2br` (software).
    pub fn nl2br(&mut self, s: &PhpStr) -> PhpStr {
        self.strlib().nl2br(s)
    }

    // -- regular expressions -----------------------------------------------------

    fn charge_regex(&self, name: &'static str, uops: u64) {
        self.ctx
            .profiler()
            .record(name, Category::Regex, OpCost::mixed(uops));
    }

    /// `preg_match`-style boolean search (no sifting context).
    pub fn preg_match(&mut self, re: &Regex, subject: &PhpStr) -> bool {
        let (m, stats) = re.is_match(subject.as_bytes());
        self.charge_regex("pcre_exec", stats.uops);
        m
    }

    /// A single-pattern `preg_replace`: sieve-accelerated matching with
    /// *exact* splicing. Whitespace-padded replacements exist only to keep
    /// the hint vector aligned for later shadow passes of a texturize
    /// pipeline; a lone replace has no downstream consumer, so its output
    /// must be byte-identical to the software path.
    pub fn preg_replace(&mut self, re: &Regex, subject: &PhpStr, replacement: &[u8]) -> PhpStr {
        if !self.use_accel(AccelId::Regex) {
            let (out, _n, stats) = re.replace_all(subject.as_bytes(), replacement);
            self.charge_regex("pcre_replace", stats.uops);
            return PhpStr::from_bytes(out);
        }
        let bytes = subject.as_bytes();
        let sieve = regexp_sieve(re, bytes, self.cfg.segment_size, &mut self.core.straccel);
        self.charge_regex("regexp_sieve", sieve.uops);
        self.core.regex_stats.note_sieve(&sieve, bytes.len());
        let mut cur = bytes.to_vec();
        for m in sieve.matches.iter().rev() {
            cur.splice(m.start..m.end, replacement.iter().copied());
        }
        PhpStr::from_bytes(cur)
    }

    /// Runs a *texturize pipeline*: a series of consecutive regexps over the
    /// same content (Figure 11). In specialized mode the first regexp acts
    /// as the sieve and the rest as shadows; replacements keep the HV
    /// aligned through whitespace padding.
    pub fn texturize(&mut self, content: &PhpStr, rules: &[(Regex, Vec<u8>)]) -> PhpStr {
        if !self.use_accel(AccelId::Regex) {
            let mut cur = content.as_bytes().to_vec();
            for (re, repl) in rules {
                let (out, _n, stats) = re.replace_all(&cur, repl);
                self.charge_regex("pcre_replace", stats.uops);
                cur = out;
            }
            return PhpStr::from_bytes(cur);
        }

        let seg = self.cfg.segment_size;
        let mut cur = content.as_bytes().to_vec();
        let mut hv: Option<HintVector> = None;
        for (i, (re, repl)) in rules.iter().enumerate() {
            if i == 0 {
                // Sieve: full scan + HV generation via the string accelerator.
                let sieve = regexp_sieve(re, &cur, seg, &mut self.core.straccel);
                self.charge_regex("regexp_sieve", sieve.uops);
                self.core.regex_stats.note_sieve(&sieve, cur.len());
                let mut hv_new = sieve.hv;
                cur = apply_padded_replacements(&cur, &sieve.matches, repl, &mut hv_new);
                if let Some(bit) = self.pending_hv_flip.take() {
                    hv_new.inject_bit_flip(bit);
                    self.core.regex_stats.hv_faults_injected += 1;
                }
                hv = Some(hv_new);
            } else {
                let hv_ref = hv.as_mut().expect("sieve ran first");
                if !hv_ref.parity_ok() {
                    // Parity failure: a flipped dirty→clean bit would let a
                    // shadow skip real matches. Degrade to the conservative
                    // all-dirty vector — the shadow scans everything and
                    // output stays correct.
                    *hv_ref = HintVector::all_dirty(hv_ref.segments(), hv_ref.segment_size());
                    self.core.regex_stats.hv_faults_detected += 1;
                }
                let shadow = regexp_shadow(re, &cur, hv_ref);
                self.charge_regex("regexp_shadow", shadow.uops);
                self.core.regex_stats.note_shadow(&shadow, cur.len());
                if matches!(shadow.mode, ShadowMode::Skipping { .. }) {
                    cur = apply_padded_replacements(&cur, &shadow.matches, repl, hv_ref);
                } else {
                    // Full-scan fallback already matched everything.
                    cur = apply_padded_replacements(&cur, &shadow.matches, repl, hv_ref);
                }
            }
        }
        PhpStr::from_bytes(cur)
    }

    /// Anchored match through the content reuse table (`regexlookup`/
    /// `regexset`), e.g. repeated author-URL parsing (Figure 13).
    pub fn match_with_reuse(&mut self, pc: u64, re: &Regex, subject: &PhpStr) -> Option<usize> {
        if self.use_accel(AccelId::Regex) {
            let run = run_with_reuse(re, pc, 1, subject.as_bytes(), &mut self.core.reuse);
            self.dispatch("regexlookup", Category::Regex);
            self.charge_regex(
                "pcre_exec",
                regex_engine::SW_UOPS_PER_CALL + run.bytes_scanned * regex_engine::SW_UOPS_PER_BYTE,
            );
            self.core.regex_stats.bytes_total += subject.len() as u64;
            self.core.regex_stats.bytes_scanned += run.bytes_scanned;
            let reuse_stats = *self.core.reuse.stats();
            self.core.regex_stats.note_reuse(&reuse_stats);
            return run.match_end;
        }
        let (m, scanned) = re.match_at(subject.as_bytes(), 0);
        self.charge_regex(
            "pcre_exec",
            regex_engine::SW_UOPS_PER_CALL + scanned * regex_engine::SW_UOPS_PER_BYTE,
        );
        m.map(|m| m.end)
    }
}

/// Applies non-overlapping `matches` (in ascending order) as padded
/// replacements, back to front so earlier offsets stay valid; the HV is
/// updated in place.
fn apply_padded_replacements(
    content: &[u8],
    matches: &[regex_engine::Match],
    replacement: &[u8],
    hv: &mut HintVector,
) -> Vec<u8> {
    let mut cur = content.to_vec();
    for m in matches.iter().rev() {
        let edit = replace_padded(&cur, m.start, m.end, replacement, hv);
        cur = edit.content;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machines() -> (PhpMachine, PhpMachine) {
        (PhpMachine::baseline(), PhpMachine::specialized())
    }

    /// Send-audit for the worker pool: a `PhpMachine` (the whole per-core
    /// state bundle — runtime context plus all four accelerators) must be
    /// movable into a worker thread. It is deliberately *not* `Sync`:
    /// accelerator state mirrors private per-core hardware and is never
    /// shared between workers.
    #[test]
    fn php_machine_is_send_for_worker_ownership() {
        fn assert_send<T: Send>() {}
        assert_send::<PhpMachine>();
        assert_send::<SpecializedCore>();
    }

    #[test]
    fn array_ops_agree_across_modes() {
        let (mut base, mut spec) = machines();
        for m in [&mut base, &mut spec] {
            let mut a = m.new_array();
            m.array_set(&mut a, ArrayKey::from("title"), PhpValue::from("Hello"));
            m.array_set(&mut a, ArrayKey::from("views"), PhpValue::from(42i64));
            m.array_set(&mut a, ArrayKey::Int(7), PhpValue::from(7i64));
            assert!(m
                .array_get(&a, &ArrayKey::from("title"))
                .unwrap()
                .loose_eq(&PhpValue::from("Hello")));
            assert!(m
                .array_get(&a, &ArrayKey::Int(7))
                .unwrap()
                .loose_eq(&PhpValue::from(7i64)));
            assert!(m.array_get(&a, &ArrayKey::from("nope")).is_none());
            let keys: Vec<String> = m.foreach(&a).iter().map(|(k, _)| k.to_string()).collect();
            assert_eq!(keys, ["title", "views", "7"]);
            m.array_remove(&mut a, &ArrayKey::from("views"));
            assert!(m.array_get(&a, &ArrayKey::from("views")).is_none());
            m.array_free(&a);
        }
    }

    #[test]
    fn specialized_hash_gets_cost_less() {
        let (mut base, mut spec) = machines();
        for m in [&mut base, &mut spec] {
            let mut a = m.new_array();
            for i in 0..50 {
                m.array_set(
                    &mut a,
                    ArrayKey::from(format!("key{i}")),
                    PhpValue::from(i as i64),
                );
            }
            for _ in 0..10 {
                for i in 0..50 {
                    m.array_get(&a, &ArrayKey::from(format!("key{i}")));
                }
            }
        }
        let b_hash = base.ctx().profiler().category_breakdown()[&Category::HashMap];
        let s_hash = spec.ctx().profiler().category_breakdown()[&Category::HashMap];
        assert!(
            (s_hash as f64) < b_hash as f64 * 0.35,
            "specialized hash µops {s_hash} vs baseline {b_hash}"
        );
        assert!(spec.core().htable.stats().hit_rate() > 0.8);
    }

    #[test]
    fn specialized_heap_reuse_cost_less() {
        let (mut base, mut spec) = machines();
        for m in [&mut base, &mut spec] {
            for _ in 0..500 {
                let b1 = m.alloc(48);
                let b2 = m.alloc(96);
                m.free(b1);
                m.free(b2);
            }
        }
        let b = base.ctx().profiler().category_breakdown()[&Category::Heap];
        let s = spec.ctx().profiler().category_breakdown()[&Category::Heap];
        assert!((s as f64) < b as f64 * 0.25, "heap µops {s} vs {b}");
        assert!(spec.core().heap.stats().hit_rate() > 0.9);
    }

    #[test]
    fn string_ops_agree_and_accelerate() {
        let (mut base, mut spec) = machines();
        let s = PhpStr::from("  The Quick <b>Brown</b> Fox's Tale  ");
        for m in [&mut base, &mut spec] {
            assert_eq!(m.strpos(&s, b"Quick", 0), Some(6));
            assert_eq!(
                m.strtolower(&s).to_string_lossy(),
                s.to_string_lossy().to_lowercase()
            );
            assert_eq!(
                m.trim(&s).to_string_lossy(),
                "The Quick <b>Brown</b> Fox's Tale"
            );
            let (r, n) = m.str_replace(b"o", b"0", &s);
            assert_eq!(n, 2);
            assert!(r.to_string_lossy().contains("Br0wn"));
            let html = m.htmlspecialchars(&s);
            assert!(html.to_string_lossy().contains("&lt;b&gt;"));
            assert!(html.to_string_lossy().contains("&#039;"));
        }
        let b = base.ctx().profiler().category_breakdown()[&Category::String];
        let s_uops = spec.ctx().profiler().category_breakdown()[&Category::String];
        assert!(s_uops < b, "specialized string µops {s_uops} vs {b}");
        assert!(spec.core().straccel.stats().ops > 0);
    }

    #[test]
    fn clean_html_passthrough_is_cheap() {
        let mut spec = PhpMachine::specialized();
        let clean = PhpStr::from("just regular words with no markup at all");
        let out = spec.htmlspecialchars(&clean);
        assert_eq!(out.to_string_lossy(), clean.to_string_lossy());
    }

    #[test]
    fn texturize_agrees_across_modes() {
        let rules = vec![
            (Regex::new("'").unwrap(), b"&#8217;".to_vec()),
            (Regex::new("\"").unwrap(), b"&#8221;".to_vec()),
            (Regex::new("\\n").unwrap(), b"<br/>".to_vec()),
        ];
        let content = PhpStr::from(
            "It's a \"wonderful\" day\nwith lots of plain text following the punctuation \
             and then some more plain text that the shadows can skip entirely",
        );
        let (mut base, mut spec) = machines();
        let out_b = base.texturize(&content, &rules);
        let out_s = spec.texturize(&content, &rules);
        // Padding may add whitespace; stripping spaces the outputs agree.
        let squash = |s: &PhpStr| {
            s.as_bytes()
                .iter()
                .filter(|&&b| b != b' ')
                .copied()
                .collect::<Vec<u8>>()
        };
        assert_eq!(squash(&out_b), squash(&out_s));
        assert!(out_s.to_string_lossy().contains("&#8217;"));
        assert!(spec.core().regex_stats.bytes_skipped_sift > 0);
    }

    /// Regression: a lone `preg_replace` must splice exactly — the padded
    /// replacement trick is only valid inside a texturize pipeline, and it
    /// used to leak trailing spaces into specialized-mode output whenever
    /// the replacement was shorter than the match.
    #[test]
    fn preg_replace_is_byte_exact_across_modes() {
        let (mut base, mut spec) = machines();
        let cases = [
            ("!!+", "!", "first comment!!!"),
            ("o+", "0", "foo boo oooo"),
            ("ab", "xyz", "drab slab"), // growing replacement
            ("z+", "-", "no match here"),
        ];
        for (pat, repl, subject) in cases {
            let re = Regex::new(pat).unwrap();
            let s = PhpStr::from(subject);
            let out_b = base.preg_replace(&re, &s, repl.as_bytes());
            let out_s = spec.preg_replace(&re, &s, repl.as_bytes());
            assert_eq!(
                out_b.as_bytes(),
                out_s.as_bytes(),
                "{pat} on {subject:?} diverged"
            );
            let (sw, _, _) = re.replace_all(s.as_bytes(), repl.as_bytes());
            assert_eq!(out_s.as_bytes(), &sw[..], "not byte-exact vs software");
        }
    }

    #[test]
    fn reuse_path_agrees_and_skips() {
        let re = Regex::new("https://localhost/\\?author=[a-z]+").unwrap();
        let (mut base, mut spec) = machines();
        for name in ["ann", "bob", "cat", "dan"] {
            let url = PhpStr::from(format!("https://localhost/?author={name}"));
            let b = base.match_with_reuse(0x400, &re, &url);
            let s = spec.match_with_reuse(0x400, &re, &url);
            assert_eq!(b, s);
            assert_eq!(b, Some(url.len()));
        }
        assert!(spec.core().reuse.stats().hits >= 1);
        assert!(spec.core().reuse.stats().bytes_skipped > 0);
    }

    #[test]
    fn context_switch_flushes_heap() {
        let mut spec = PhpMachine::specialized();
        let b = spec.alloc(32);
        spec.free(b); // hardware free list now holds a block
        spec.context_switch();
        assert_eq!(spec.core().heap.stats().flushes, 1);
        assert!(spec.core().heap.occupancy().iter().all(|&n| n == 0));
    }

    #[test]
    fn end_request_releases_scoped_blocks() {
        let mut spec = PhpMachine::specialized();
        spec.alloc_scoped(64);
        let _arr = spec.new_array();
        spec.end_request();
        let live = spec.ctx().with_allocator(|a| a.live_block_count());
        assert_eq!(live, 0);
    }

    #[test]
    fn arena_mode_end_request_releases_all_blocks() {
        let mut spec = PhpMachine::specialized();
        spec.ctx().set_arena_enabled(true);
        spec.alloc_scoped_static(64, true); // arena
        spec.alloc_scoped_static(64, false); // hardware/scoped path
        let _arr = spec.new_array_static(true);
        let _ = spec.transient_str_static(PhpStr::from("churned html tag"), true);
        assert!(spec.ctx().with_allocator(|a| a.arena_block_count()) >= 2);
        spec.end_request();
        assert_eq!(spec.ctx().with_allocator(|a| a.live_block_count()), 0);
        let savings = spec.ctx().profiler().static_savings();
        assert!(savings.arena_bytes_reclaimed >= 64 * 2);
    }

    #[test]
    fn arena_mode_recover_request_restores_software_truth() {
        // The recovery invariant must hold with arena mode on: scoped and
        // arena blocks all reclaimed, hardware free lists drained.
        let mut spec = PhpMachine::specialized();
        spec.ctx().set_arena_enabled(true);
        let mut a = spec.new_array_static(true);
        for i in 0..10 {
            spec.array_set(&mut a, ArrayKey::from(format!("k{i}")), PhpValue::from(i));
        }
        let b = spec.alloc(64);
        spec.free(b); // hardware free list holds a segment
        spec.recover_request();
        assert_eq!(spec.ctx().with_allocator(|al| al.live_block_count()), 0);
        assert_eq!(spec.ctx().with_allocator(|al| al.arena_block_count()), 0);
        assert!(spec.core().heap.occupancy().iter().all(|&n| n == 0));
    }

    #[test]
    fn arena_verdicts_are_inert_when_arena_disabled() {
        // Call sites pass verdicts unconditionally; with arena mode off the
        // *_static entry points must behave exactly like their plain twins.
        let mut spec = PhpMachine::specialized();
        spec.alloc_scoped_static(64, true);
        let _ = spec.transient_str_static(PhpStr::from("x"), true);
        let _arr = spec.new_array_static(true);
        assert_eq!(spec.ctx().with_allocator(|a| a.arena_block_count()), 0);
        spec.end_request();
        assert_eq!(spec.ctx().with_allocator(|a| a.live_block_count()), 0);
        assert_eq!(
            spec.ctx().profiler().static_savings().arena_bytes_reclaimed,
            0
        );
    }

    #[test]
    fn disabled_domains_degrade_to_software_with_identical_results() {
        let mut base = PhpMachine::baseline();
        let mut spec = PhpMachine::specialized();
        for id in AccelId::ALL {
            spec.set_accel_enabled(id, false);
            assert!(!spec.accel_enabled(id));
        }
        let s = PhpStr::from("  Mixed <b>Case</b> Content  ");
        for m in [&mut base, &mut spec] {
            let mut a = m.new_array();
            m.array_set(&mut a, ArrayKey::from("k"), PhpValue::from(1i64));
            assert!(m.array_get(&a, &ArrayKey::from("k")).is_some());
            assert_eq!(
                m.strtolower(&s).as_bytes(),
                s.to_string_lossy().to_lowercase().as_bytes()
            );
            let b = m.alloc(48);
            m.free(b);
        }
        // No hardware traffic on the disabled machine.
        assert_eq!(spec.core().htable.stats().gets, 0);
        assert_eq!(spec.core().heap.stats().mallocs, 0);
        assert_eq!(spec.core().straccel.stats().ops, 0);
    }

    #[test]
    fn string_config_fault_falls_back_once_then_self_heals() {
        let mut spec = PhpMachine::specialized();
        let s = PhpStr::from("AbC");
        spec.core_mut().straccel.inject_config_fault();
        let out = spec.strtolower(&s);
        assert_eq!(out.as_bytes(), b"abc", "software fallback is correct");
        assert_eq!(spec.detected_fault_counts()[AccelId::Str.index()], 1);
        // Next op runs accelerated again.
        let before = spec.core().straccel.stats().ops;
        spec.strtolower(&s);
        assert!(spec.core().straccel.stats().ops > before);
    }

    #[test]
    fn hv_flip_detected_and_texturize_output_unchanged() {
        let rules = vec![
            (Regex::new("'").unwrap(), b"&#8217;".to_vec()),
            (Regex::new("\"").unwrap(), b"&#8221;".to_vec()),
        ];
        let content = PhpStr::from(
            "It's a \"plain\" day with much clean trailing text that shadows would skip \
             and even more filler text to make several clean segments here",
        );
        let mut clean = PhpMachine::specialized();
        let expect = clean.texturize(&content, &rules);
        let mut faulty = PhpMachine::specialized();
        faulty.arm_hv_flip(3);
        let got = faulty.texturize(&content, &rules);
        assert_eq!(expect.as_bytes(), got.as_bytes());
        assert_eq!(faulty.injected_fault_counts()[AccelId::Regex.index()], 1);
        assert_eq!(faulty.detected_fault_counts()[AccelId::Regex.index()], 1);
    }

    #[test]
    fn recover_request_restores_software_truth() {
        let mut spec = PhpMachine::specialized();
        let mut a = spec.new_array();
        for i in 0..20 {
            spec.array_set(
                &mut a,
                ArrayKey::from(format!("k{i}")),
                PhpValue::from(i as i64),
            );
        }
        let b = spec.alloc(64);
        spec.free(b); // hardware free list holds a segment
        spec.core_mut().htable.inject_entry_fault(0);
        spec.recover_request();
        // All scoped blocks freed, hardware lists drained, table empty.
        assert_eq!(spec.ctx().with_allocator(|al| al.live_block_count()), 0);
        assert!(spec.core().heap.occupancy().iter().all(|&n| n == 0));
        let out = spec.core_mut().htable.foreach(u64::MAX); // arbitrary base: nothing live
        assert!(out.live_pairs.is_empty());
        // A fresh request works normally afterwards.
        let mut a2 = spec.new_array();
        spec.array_set(&mut a2, ArrayKey::from("x"), PhpValue::from(9i64));
        assert!(spec.array_get(&a2, &ArrayKey::from("x")).is_some());
    }

    #[test]
    fn extract_imports_into_symtab() {
        let mut spec = PhpMachine::specialized();
        let mut src = spec.new_array();
        spec.array_set(&mut src, ArrayKey::from("a"), PhpValue::from(1i64));
        spec.array_set(&mut src, ArrayKey::Int(0), PhpValue::from(2i64));
        spec.array_set(&mut src, ArrayKey::from("b"), PhpValue::from(3i64));
        let mut symtab = spec.new_array();
        let n = spec.extract(&mut symtab, &src);
        assert_eq!(n, 2);
        assert_eq!(symtab.len(), 2);
    }
}
