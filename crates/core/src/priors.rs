//! Models of the prior-work optimizations applied in §3.
//!
//! "We apply several hardware and software optimizations from prior research
//! together to these applications": inline caching \[31, 32\] + hash-map
//! inlining \[40\], checked-load hardware type checks \[22\], hardware reference
//! counting \[46\], and kernel-allocation tuning. The goal of §3 is to shrink
//! abstraction overheads so the four fundamental activity categories emerge
//! (Figure 3 / Figure 4).
//!
//! The optimizations are applied *analytically* to a measured leaf-function
//! profile: each targets specific categories/leaf functions with a
//! configured µop reduction. This mirrors the paper, which models these
//! prior proposals in simulation rather than re-implementing each.

use crate::config::PriorsConfig;
use php_runtime::profile::{Category, ProfileRow, Profiler};
use std::collections::HashMap;

/// Which prior optimization touched a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PriorOpt {
    /// Inline caching + hash-map inlining on predictable-key accesses.
    IcHmi,
    /// Checked-load hardware type checks.
    CheckedLoad,
    /// Hardware reference counting.
    HwRefcount,
    /// Kernel allocation tuning.
    AllocTuning,
}

impl PriorOpt {
    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PriorOpt::IcHmi => "inline-caching+HMI",
            PriorOpt::CheckedLoad => "checked-load",
            PriorOpt::HwRefcount => "hw-refcounting",
            PriorOpt::AllocTuning => "kernel-alloc-tuning",
        }
    }
}

/// Result of applying the prior optimizations to a profile.
#[derive(Debug, Clone)]
pub struct PriorsOutcome {
    /// Hottest-first rows before.
    pub before: Vec<ProfileRow>,
    /// Rows after, same order as `before` (shares recomputed).
    pub after: Vec<ProfileRow>,
    /// Total µops before.
    pub uops_before: u64,
    /// Total µops after.
    pub uops_after: u64,
    /// µops removed, attributed per optimization.
    pub saved_by: HashMap<PriorOpt, u64>,
}

impl PriorsOutcome {
    /// Execution fraction remaining (paper: 88.15 % on average).
    pub fn remaining_fraction(&self) -> f64 {
        if self.uops_before == 0 {
            return 1.0;
        }
        self.uops_after as f64 / self.uops_before as f64
    }

    /// Adjusted µops per category.
    pub fn category_breakdown_after(&self) -> HashMap<Category, u64> {
        let mut m = HashMap::new();
        for r in &self.after {
            *m.entry(r.category).or_insert(0) += r.uops;
        }
        m
    }
}

fn reduction_for(row: &ProfileRow, cfg: &PriorsConfig) -> Option<(PriorOpt, f64)> {
    match row.category {
        Category::TypeCheck => Some((PriorOpt::CheckedLoad, cfg.type_check_reduction)),
        Category::RefCount => Some((PriorOpt::HwRefcount, cfg.refcount_reduction)),
        Category::Heap if row.name.starts_with("kernel_mmap") => {
            Some((PriorOpt::AllocTuning, cfg.kernel_alloc_reduction))
        }
        Category::HashMap if row.name.starts_with("zend_hash") => Some((
            PriorOpt::IcHmi,
            cfg.predictable_key_fraction * cfg.ic_hmi_reduction,
        )),
        _ => None,
    }
}

/// Applies the four prior optimizations to profile rows.
pub fn apply_to_rows(rows: &[ProfileRow], cfg: &PriorsConfig) -> PriorsOutcome {
    let uops_before: u64 = rows.iter().map(|r| r.uops).sum();
    let mut saved_by: HashMap<PriorOpt, u64> = HashMap::new();
    let mut after: Vec<ProfileRow> = rows.to_vec();
    for row in after.iter_mut() {
        if let Some((opt, frac)) = reduction_for(row, cfg) {
            let saved = (row.uops as f64 * frac) as u64;
            row.uops -= saved;
            *saved_by.entry(opt).or_insert(0) += saved;
        }
    }
    let uops_after: u64 = after.iter().map(|r| r.uops).sum();
    let total_after = uops_after.max(1) as f64;
    for row in after.iter_mut() {
        row.share = row.uops as f64 / total_after;
    }
    PriorsOutcome {
        before: rows.to_vec(),
        after,
        uops_before,
        uops_after,
        saved_by,
    }
}

/// Convenience: applies the priors to a live profiler's current profile.
pub fn apply(profiler: &Profiler, cfg: &PriorsConfig) -> PriorsOutcome {
    apply_to_rows(&profiler.leaf_profile(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_runtime::profile::OpCost;

    fn sample_profiler() -> Profiler {
        let p = Profiler::new();
        p.record("zend_hash_find", Category::HashMap, OpCost::mixed(10_000));
        p.record("zval_type_check", Category::TypeCheck, OpCost::mixed(5_000));
        p.record(
            "zval_refcount_inc",
            Category::RefCount,
            OpCost::mixed(4_000),
        );
        p.record("kernel_mmap_alloc", Category::Heap, OpCost::mixed(2_000));
        p.record("slab_malloc", Category::Heap, OpCost::mixed(6_000));
        p.record("php_trim", Category::String, OpCost::mixed(3_000));
        p
    }

    #[test]
    fn reductions_target_right_functions() {
        let out = apply(&sample_profiler(), &PriorsConfig::default());
        let find = |rows: &[ProfileRow], n: &str| rows.iter().find(|r| r.name == n).unwrap().uops;
        // Checked-load: −90 %.
        assert_eq!(find(&out.after, "zval_type_check"), 500);
        // HW refcount: −90 %.
        assert_eq!(find(&out.after, "zval_refcount_inc"), 400);
        // Kernel tuning: −60 %.
        assert_eq!(find(&out.after, "kernel_mmap_alloc"), 800);
        // IC+HMI: −(0.35 × 0.85) ≈ −29.75 %.
        assert_eq!(find(&out.after, "zend_hash_find"), 10_000 - 2975);
        // Untouched categories stay.
        assert_eq!(find(&out.after, "php_trim"), 3_000);
        assert_eq!(find(&out.after, "slab_malloc"), 6_000);
    }

    #[test]
    fn remaining_fraction_below_one() {
        let out = apply(&sample_profiler(), &PriorsConfig::default());
        let f = out.remaining_fraction();
        assert!(f < 1.0 && f > 0.5, "remaining {f}");
        assert_eq!(
            out.uops_before - out.uops_after,
            out.saved_by.values().sum::<u64>()
        );
    }

    #[test]
    fn shares_renormalized() {
        let out = apply(&sample_profiler(), &PriorsConfig::default());
        let total: f64 = out.after.iter().map(|r| r.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn survivors_gain_share() {
        // Figure 3: "the contributions of the remaining functions in the
        // overall distribution have gone up."
        let out = apply(&sample_profiler(), &PriorsConfig::default());
        let before_share = out
            .before
            .iter()
            .find(|r| r.name == "php_trim")
            .unwrap()
            .share;
        let after_share = out
            .after
            .iter()
            .find(|r| r.name == "php_trim")
            .unwrap()
            .share;
        assert!(after_share > before_share);
    }

    #[test]
    fn all_saved_sources_present() {
        let out = apply(&sample_profiler(), &PriorsConfig::default());
        assert_eq!(out.saved_by.len(), 4);
        assert!(out.saved_by[&PriorOpt::HwRefcount] > 0);
    }
}
