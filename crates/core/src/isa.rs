//! ISA extensions (§4.6).
//!
//! The paper adds: `hashtableget`/`hashtableset`, `hmmalloc`/`hmfree`/
//! `hmflush`, `stringop[op]` with `strreadconfig`/`strwriteconfig`, and
//! `regexlookup`/`regexset`, plus the `regexp_sieve`/`regexp_shadow` library
//! APIs. "The zero flag is raised upon a miss of a GET, or hash table
//! overflow of a SET, in which case the code branches to the software
//! handler fallback."

use accel_string::StrOpKind;

/// One accelerator instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum AccelInstr {
    /// `hashtableget base, key` — GET from the hardware hash table.
    HashTableGet {
        /// Hash-map base address.
        base: u64,
        /// Key bytes.
        key: Vec<u8>,
    },
    /// `hashtableset base, key, value_ptr` — SET into the hardware table.
    HashTableSet {
        /// Hash-map base address.
        base: u64,
        /// Key bytes.
        key: Vec<u8>,
        /// Pointer to the value in memory.
        value_ptr: u64,
    },
    /// `hmmalloc size` — hardware heap allocation.
    HmMalloc {
        /// Requested bytes.
        size: usize,
    },
    /// `hmfree addr, size` — hardware heap free.
    HmFree {
        /// Block address.
        addr: u64,
        /// Block size.
        size: usize,
    },
    /// `hmflush` — flush hardware free lists (context switch). Resumable.
    HmFlush,
    /// `stringop[op] src, pattern` — invoke the string accelerator.
    StringOp {
        /// Which of the shared-datapath operations to run.
        op: StrOpKind,
    },
    /// `strreadconfig` — (re)load the matching-matrix configuration.
    StrReadConfig,
    /// `strwriteconfig` — save the matching-matrix configuration.
    StrWriteConfig,
    /// `regexlookup pc, asid` — probe the content reuse table.
    RegexLookup {
        /// Regexp site PC.
        pc: u64,
        /// Address-space id.
        asid: u32,
    },
    /// `regexset pc, asid, state` — store an FSM state in the reuse table.
    RegexSet {
        /// Regexp site PC.
        pc: u64,
        /// Address-space id.
        asid: u32,
        /// FSM state to store.
        state: u32,
    },
}

/// Architectural result of executing an accelerator instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrResult {
    /// The zero flag: set ⇒ branch to the software handler fallback.
    pub zero_flag: bool,
    /// Result register payload (value pointer, block address, FSM state...).
    pub result: u64,
    /// Cycles the instruction occupied the accelerator.
    pub cycles: u64,
}

impl InstrResult {
    /// A successful (flag-clear) result.
    pub fn ok(result: u64, cycles: u64) -> Self {
        InstrResult {
            zero_flag: false,
            result,
            cycles,
        }
    }

    /// A fallback (flag-set) result.
    pub fn fallback(cycles: u64) -> Self {
        InstrResult {
            zero_flag: true,
            result: 0,
            cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_constructors() {
        let ok = InstrResult::ok(0xBEEF, 3);
        assert!(!ok.zero_flag);
        assert_eq!(ok.result, 0xBEEF);
        let fb = InstrResult::fallback(1);
        assert!(fb.zero_flag);
    }

    #[test]
    fn instr_variants_construct() {
        let i = AccelInstr::HashTableGet {
            base: 0x10,
            key: b"k".to_vec(),
        };
        assert!(matches!(i, AccelInstr::HashTableGet { .. }));
        let i = AccelInstr::HmMalloc { size: 64 };
        assert!(matches!(i, AccelInstr::HmMalloc { size: 64 }));
    }
}

#[cfg(test)]
mod exec_tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::specialized::SpecializedCore;
    use php_runtime::alloc::SlabAllocator;
    use php_runtime::Profiler;

    fn setup() -> (SpecializedCore, SlabAllocator, Profiler) {
        (
            SpecializedCore::new(&MachineConfig::default()),
            SlabAllocator::new(),
            Profiler::new(),
        )
    }

    #[test]
    fn hashtable_instructions_zero_flag_semantics() {
        let (mut core, mut alloc, prof) = setup();
        // GET miss → zero flag (branch to software handler).
        let r = core.execute(
            &AccelInstr::HashTableGet {
                base: 0x10,
                key: b"k".to_vec(),
            },
            &mut alloc,
            &prof,
        );
        assert!(r.zero_flag);
        // SET never misses → flag clear.
        let r = core.execute(
            &AccelInstr::HashTableSet {
                base: 0x10,
                key: b"k".to_vec(),
                value_ptr: 77,
            },
            &mut alloc,
            &prof,
        );
        assert!(!r.zero_flag);
        // GET now hits and returns the value pointer.
        let r = core.execute(
            &AccelInstr::HashTableGet {
                base: 0x10,
                key: b"k".to_vec(),
            },
            &mut alloc,
            &prof,
        );
        assert!(!r.zero_flag);
        assert_eq!(r.result, 77);
    }

    #[test]
    fn heap_instructions_roundtrip() {
        let (mut core, mut alloc, prof) = setup();
        // Cold hmmalloc: zero flag (software refill) but address delivered.
        let r = core.execute(&AccelInstr::HmMalloc { size: 48 }, &mut alloc, &prof);
        assert!(r.zero_flag);
        let addr = r.result;
        // hmfree hits hardware.
        let r = core.execute(&AccelInstr::HmFree { addr, size: 48 }, &mut alloc, &prof);
        assert!(!r.zero_flag);
        // Warm hmmalloc: hardware hit, same block recycled, flag clear.
        let r = core.execute(&AccelInstr::HmMalloc { size: 48 }, &mut alloc, &prof);
        assert!(!r.zero_flag);
        assert_eq!(r.result, addr);
        // Oversized request: pure software path.
        let r = core.execute(&AccelInstr::HmMalloc { size: 4096 }, &mut alloc, &prof);
        assert!(r.zero_flag);
        // Flush returns the count of flushed blocks.
        let r2 = core.execute(&AccelInstr::HmFree { addr, size: 48 }, &mut alloc, &prof);
        assert!(!r2.zero_flag);
        let r = core.execute(&AccelInstr::HmFlush, &mut alloc, &prof);
        assert!(!r.zero_flag);
        assert_eq!(r.result, 1);
    }

    #[test]
    fn string_config_instructions() {
        let (mut core, mut alloc, prof) = setup();
        // Nothing configured yet: strwriteconfig stores "nothing".
        let r = core.execute(&AccelInstr::StrWriteConfig, &mut alloc, &prof);
        assert_eq!(r.result, 0);
        // Run an op to load a config, then save/restore.
        let _ = core.straccel.sift_special(b"some content", 16);
        let r = core.execute(&AccelInstr::StrWriteConfig, &mut alloc, &prof);
        assert_eq!(r.result, 1);
        let r = core.execute(&AccelInstr::StrReadConfig, &mut alloc, &prof);
        assert!(!r.zero_flag);
        assert!(r.cycles >= 1);
    }

    #[test]
    fn regex_instructions() {
        let (mut core, mut alloc, prof) = setup();
        let r = core.execute(
            &AccelInstr::RegexLookup { pc: 9, asid: 1 },
            &mut alloc,
            &prof,
        );
        assert!(r.zero_flag, "cold lookup misses");
        let r = core.execute(
            &AccelInstr::RegexSet {
                pc: 9,
                asid: 1,
                state: 5,
            },
            &mut alloc,
            &prof,
        );
        assert!(!r.zero_flag);
    }
}
