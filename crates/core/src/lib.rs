//! # phpaccel-core
//!
//! The paper's primary contribution (§4): a general-purpose server core
//! specialized with four tightly-coupled accelerators for server-side PHP
//! processing — a hardware hash table, a hardware heap manager, a
//! generalized string accelerator, and regexp content filtering — invoked
//! through ISA extensions with zero-flag software fallbacks (§4.6).
//!
//! [`PhpMachine`] lets the *same* workload run on the software baseline and
//! on the specialized core; [`account`] turns the two ledgers into the
//! paper's Figure 14/15 comparisons.
//!
//! ```
//! use phpaccel_core::{ExecMode, PhpMachine};
//! use php_runtime::{array::ArrayKey, value::PhpValue};
//!
//! let mut m = PhpMachine::specialized();
//! let mut arr = m.new_array();
//! m.array_set(&mut arr, ArrayKey::from("user"), PhpValue::from("alice"));
//! assert!(m.array_get(&arr, &ArrayKey::from("user")).is_some());
//! assert!(m.core().htable.stats().sets > 0); // went through hardware
//! ```

#![warn(missing_docs)]

pub mod account;
pub mod config;
pub mod isa;
pub mod priors;
pub mod specialized;

pub use accel_htable::KeyShapeHint;
pub use account::{compare, cycles_of, Comparison, Ledger};
pub use config::{MachineConfig, PriorsConfig};
pub use isa::{AccelInstr, InstrResult};
pub use priors::{PriorOpt, PriorsOutcome};
pub use specialized::{key_bytes, AccelId, Engine, ExecMode, MBlock, PhpMachine, SpecializedCore};
