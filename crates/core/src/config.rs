//! Machine configuration for the specialized core.

use accel_heap::HeapConfig;
use accel_htable::HtConfig;
use accel_string::StrAccelConfig;
use uarch_sim::CoreKind;

/// Configuration of the four prior optimizations applied in §3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorsConfig {
    /// Fraction of hash-map accesses whose key is static or predictable, so
    /// inline caching \[31, 32\] + hash-map inlining \[40\] turn them into
    /// offset accesses. Real-world apps keep many *dynamic* keys (§4.2).
    pub predictable_key_fraction: f64,
    /// µop reduction on those predictable accesses.
    pub ic_hmi_reduction: f64,
    /// µop reduction of dynamic type checks via checked-load \[22\].
    pub type_check_reduction: f64,
    /// µop reduction of refcounting via hardware reference counting \[46\].
    pub refcount_reduction: f64,
    /// µop reduction of kernel allocation calls via tuning (§3: "we tuned
    /// the applications to reduce their overhead from expensive memory
    /// allocation and deallocation calls to the kernel").
    pub kernel_alloc_reduction: f64,
}

impl Default for PriorsConfig {
    fn default() -> Self {
        PriorsConfig {
            predictable_key_fraction: 0.35,
            ic_hmi_reduction: 0.85,
            type_check_reduction: 0.90,
            refcount_reduction: 0.90,
            kernel_alloc_reduction: 0.60,
        }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Hardware hash table geometry (§4.2; default 512 entries × 4-probe).
    pub htable: HtConfig,
    /// Hardware heap manager (§4.3; default 8 classes × 32 entries).
    pub heap: HeapConfig,
    /// String accelerator (§4.4; default 64 B / 3 cycles).
    pub straccel: StrAccelConfig,
    /// Content-reuse table entries (§4.5; default 32).
    pub reuse_entries: usize,
    /// Hint-vector segment size in bytes (§4.5).
    pub segment_size: usize,
    /// Host core model (§5.1: 4-wide OoO Xeon-like).
    pub core: CoreKind,
    /// Prior-optimization strengths.
    pub priors: PriorsConfig,
    /// Measured sustained IPC used to convert µops to cycles.
    pub baseline_ipc: f64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            htable: HtConfig::default(),
            heap: HeapConfig::default(),
            straccel: StrAccelConfig::default(),
            reuse_entries: 32,
            segment_size: 32,
            core: CoreKind::OoO4,
            priors: PriorsConfig::default(),
            baseline_ipc: 0.75,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MachineConfig::default();
        assert_eq!(c.htable.entries, 512);
        assert_eq!(c.htable.probe_width, 4);
        assert_eq!(c.heap.freelist_entries, 32);
        assert_eq!(c.straccel.block_width, 64);
        assert_eq!(c.straccel.cycles_per_block, 3);
        assert_eq!(c.reuse_entries, 32);
        assert_eq!(c.core, CoreKind::OoO4);
    }
}
